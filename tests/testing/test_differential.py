"""Differential-compile harness tests, including the broken-compiler
negative path the acceptance criteria require."""

from __future__ import annotations

import pytest

from repro.compiler.passes import Pass, PlaceAndRoutePass
from repro.compiler.strategies import (
    Strategy,
    default_pipeline,
    register_strategy,
    unregister_strategy,
)
from repro.errors import BenchmarkError
from repro.gates.gate import Gate
from repro.testing import (
    default_device_presets,
    differential_compile,
    minimize_circuit,
    random_circuit,
    run_fuzz,
)


class _DropFirstSwapPass(Pass):
    def run(self, context) -> None:
        nodes = context.require("physical_nodes", self.name, "route first")
        for index, node in enumerate(nodes):
            if isinstance(node, Gate) and node.name == "SWAP":
                context.physical_nodes = nodes[:index] + nodes[index + 1:]
                context.invalidate_physical_dag()
                return


@pytest.fixture
def broken_strategy():
    """A registered strategy whose pipeline drops a routed SWAP."""
    strategy = Strategy(
        key="broken-swap",
        description="drops the first routed SWAP (test sabotage)",
        commutativity_detection=False,
        cls_scheduling=False,
        aggregation=False,
        hand_optimization=False,
    )

    def pipeline(strat):
        passes = default_pipeline(strat)
        index = max(
            i
            for i, p in enumerate(passes)
            if isinstance(p, PlaceAndRoutePass)
        )
        return passes[: index + 1] + [_DropFirstSwapPass()] + passes[index + 1:]

    register_strategy(strategy, pipeline)
    yield strategy
    unregister_strategy("broken-swap")


class TestDefaultDevicePresets:
    def test_covers_at_least_three_distinct_targets(self):
        for width in (3, 4, 5):
            keys = default_device_presets(width)
            assert len(keys) >= 3
            assert len(set(keys)) == len(keys)

    def test_isomorphic_targets_are_deduplicated(self):
        # For 3 qubits the 1x3 paper grid *is* the line; only one stays.
        keys = default_device_presets(3)
        assert "paper-grid-1x3" in keys
        assert "line-3" not in keys


class TestDifferentialCompile:
    def test_all_strategies_and_devices_pass_on_a_healthy_compiler(self):
        circuit = random_circuit(4, 12, 3, "soup")
        report = differential_compile(circuit, states=4)
        assert report.ok, report.summary()
        # every registered strategy x >=3 devices actually ran
        assert len(report.outcomes) >= 5 * 3
        assert all(outcome.latency_ns > 0 for outcome in report.outcomes)

    def test_summary_reads_well(self):
        circuit = random_circuit(3, 8, 4, "diagonal")
        report = differential_compile(
            circuit, strategies=["isa"], devices=["line-3"], states=3
        )
        assert "all equivalent" in report.summary()

    def test_broken_strategy_is_caught(self, broken_strategy):
        circuit = random_circuit(4, 16, 5, "soup")
        report = differential_compile(
            circuit,
            strategies=["isa", "broken-swap"],
            devices=["line-4"],
            states=4,
        )
        assert not report.ok
        failing = report.failures
        assert {outcome.strategy_key for outcome in failing} == {"broken-swap"}
        assert "MISMATCH" in failing[0].describe()

    def test_too_small_device_is_an_error(self):
        circuit = random_circuit(4, 6, 6, "soup")
        with pytest.raises(BenchmarkError, match="qubits for the"):
            differential_compile(circuit, devices=["line-3"])

    def test_empty_strategy_list_is_an_error(self):
        circuit = random_circuit(2, 4, 7, "soup")
        with pytest.raises(BenchmarkError, match="at least one strategy"):
            differential_compile(circuit, strategies=[])

    def test_fail_fast_stops_early(self, broken_strategy):
        circuit = random_circuit(4, 16, 5, "soup")
        report = differential_compile(
            circuit,
            strategies=["broken-swap", "isa"],
            devices=["line-4"],
            states=4,
            fail_fast=True,
        )
        assert not report.ok
        assert len(report.outcomes) == 1

    def test_unknown_executor_rejected(self):
        circuit = random_circuit(2, 4, 8, "soup")
        with pytest.raises(BenchmarkError, match="executor"):
            differential_compile(circuit, executor="fiber")


class TestDifferentialProcessExecutor:
    def test_process_cells_match_serial_cells(self):
        circuit = random_circuit(3, 10, 9, "soup")
        serial = differential_compile(
            circuit,
            strategies=["isa", "cls+aggregation"],
            devices=["line-3", "ring-4"],
            states=4,
        )
        process = differential_compile(
            circuit,
            strategies=["isa", "cls+aggregation"],
            devices=["line-3", "ring-4"],
            states=4,
            executor="process",
        )
        assert process.ok, process.summary()
        serial_cells = {
            (o.strategy_key, o.device_key): o.latency_ns
            for o in serial.outcomes
        }
        process_cells = {
            (o.strategy_key, o.device_key): o.latency_ns
            for o in process.outcomes
        }
        assert serial_cells == process_cells

    def test_broken_strategy_still_attributed_under_processes(
        self, broken_strategy
    ):
        circuit = random_circuit(4, 16, 5, "soup")
        report = differential_compile(
            circuit,
            strategies=["isa", "broken-swap"],
            devices=["line-4"],
            states=4,
            executor="process",
        )
        assert not report.ok
        assert {o.strategy_key for o in report.failures} == {"broken-swap"}

    def test_propagator_method_needs_serial(self):
        circuit = random_circuit(2, 4, 10, "soup")
        with pytest.raises(BenchmarkError, match="propagator"):
            differential_compile(
                circuit, method="propagator", executor="process"
            )


class TestMinimizeCircuit:
    def test_minimizes_to_a_still_failing_core(self, broken_strategy):
        circuit = random_circuit(4, 16, 5, "soup")

        def still_fails(candidate) -> bool:
            return not differential_compile(
                candidate,
                strategies=["broken-swap"],
                devices=["line-4"],
                states=4,
            ).ok

        assert still_fails(circuit)
        minimized = minimize_circuit(circuit, still_fails)
        assert still_fails(minimized)
        assert len(minimized.gates) < len(circuit.gates)
        assert minimized.num_qubits == circuit.num_qubits
        assert minimized.name.endswith("-min")

    def test_budget_is_respected(self):
        circuit = random_circuit(3, 12, 8, "soup")
        calls = 0

        def expensive(candidate) -> bool:
            nonlocal calls
            calls += 1
            return True

        minimize_circuit(circuit, expensive, max_checks=5)
        assert calls <= 5


class TestPropagatorForwarding:
    @pytest.mark.slow
    def test_propagator_method_reaches_the_per_device_ocu(self):
        # Regression: the per-device oracle must be forwarded, else
        # every cell errors with "the propagator method ... needs ocu=".
        circuit = random_circuit(2, 4, 1, "diagonal")
        report = differential_compile(
            circuit,
            strategies=["cls+aggregation"],
            devices=["line-2"],
            method="propagator",
            states=2,
        )
        assert report.ok, report.summary()


class TestSizeDevices:
    def test_family_entries_are_deduped_and_padded_per_width(self):
        from repro.testing.fuzz import _size_devices

        keys = _size_devices(
            ("paper-grid", "line", "ring", "all-to-all"), 3
        )
        # 1x3 grid == line-3 and ring-3 == all-to-all-3; padding must
        # restore three topologically distinct targets.
        assert len(keys) >= 3
        assert len(set(keys)) == len(keys)
        assert "line-3" not in keys and "all-to-all-3" not in keys

    def test_exact_keys_pass_through_unmodified(self):
        from repro.testing.fuzz import _size_devices

        assert _size_devices(("ring-6",), 3) == ["ring-6"]
        assert _size_devices(("line", "ring-6"), 4) == ["line-4", "ring-6"]


class TestRunFuzz:
    def test_small_session_is_green(self):
        report = run_fuzz(
            num_circuits=3,
            seed=20190413,
            min_qubits=3,
            max_qubits=4,
            max_gates=10,
            states=3,
        )
        assert report.ok, report.summary()
        assert report.circuits_checked == 3
        assert report.compilations >= 3 * 5 * 3

    def test_fuzz_catches_and_minimizes_a_broken_strategy(
        self, broken_strategy
    ):
        report = run_fuzz(
            num_circuits=4,
            seed=5,
            strategies=["broken-swap"],
            devices=["line"],
            min_qubits=4,
            max_qubits=4,
            max_gates=16,
            states=4,
            fail_fast=True,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.strategy_key == "broken-swap"
        assert failure.minimized_gates <= failure.num_gates
        assert f"qubits {failure.num_qubits}" in failure.minimized_qasm
        assert "random_circuit" in failure.reproduction()

    def test_time_budget_short_circuits(self):
        report = run_fuzz(
            num_circuits=50,
            min_qubits=3,
            max_qubits=3,
            max_gates=6,
            states=2,
            time_budget_s=0.0,
        )
        assert report.budget_exhausted
        assert report.circuits_checked == 0
