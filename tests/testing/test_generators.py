"""Random-circuit generator tests: determinism, families, validity."""

from __future__ import annotations

import pytest

from repro.errors import BenchmarkError
from repro.testing import (
    CIRCUIT_FAMILIES,
    diagonal_heavy_circuit,
    gate_soup_circuit,
    layered_circuit,
    random_circuit,
)


class TestDeterminism:
    @pytest.mark.parametrize("family", CIRCUIT_FAMILIES)
    def test_same_recipe_same_circuit(self, family):
        first = random_circuit(4, 15, 123, family)
        second = random_circuit(4, 15, 123, family)
        assert len(first.gates) == len(second.gates)
        for a, b in zip(first.gates, second.gates):
            assert a.signature == b.signature
            assert a.qubits == b.qubits

    @pytest.mark.parametrize("family", CIRCUIT_FAMILIES)
    def test_different_seeds_differ(self, family):
        first = random_circuit(4, 15, 1, family)
        second = random_circuit(4, 15, 2, family)
        fingerprints = [
            tuple((g.signature, g.qubits) for g in circuit.gates)
            for circuit in (first, second)
        ]
        assert fingerprints[0] != fingerprints[1]

    def test_name_encodes_the_recipe(self):
        circuit = random_circuit(3, 9, 77, "diagonal")
        assert circuit.name == "diagonal-q3-g9-s77"


class TestFamilies:
    def test_soup_mixes_gate_kinds(self):
        counts = gate_soup_circuit(4, 60, 5).gate_counts()
        assert len(counts) >= 4

    def test_diagonal_family_is_diagonal_heavy(self):
        circuit = diagonal_heavy_circuit(4, 80, 5)
        diagonal = sum(1 for gate in circuit.gates if gate.is_diagonal)
        assert diagonal / len(circuit.gates) > 0.6

    def test_layered_family_alternates_layers(self):
        circuit = layered_circuit(4, 24, 5)
        names = {gate.name for gate in circuit.gates}
        assert names == {"RZZ", "RX"}

    def test_single_qubit_registers_work_everywhere(self):
        for family in CIRCUIT_FAMILIES:
            circuit = random_circuit(1, 6, 9, family)
            assert circuit.num_qubits == 1
            assert all(gate.num_qubits == 1 for gate in circuit.gates)

    def test_gates_respect_register_width(self):
        for family in CIRCUIT_FAMILIES:
            circuit = random_circuit(3, 30, 31, family)
            for gate in circuit.gates:
                assert all(0 <= q < 3 for q in gate.qubits)


class TestValidation:
    def test_unknown_family_raises(self):
        with pytest.raises(BenchmarkError, match="unknown circuit family"):
            random_circuit(3, 5, 0, "spaghetti")

    def test_zero_qubits_raises(self):
        with pytest.raises(BenchmarkError, match="at least one qubit"):
            random_circuit(0, 5, 0)

    def test_negative_gates_raises(self):
        with pytest.raises(BenchmarkError, match="negative gate count"):
            random_circuit(2, -1, 0)
