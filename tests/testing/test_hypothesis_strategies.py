"""Hypothesis-strategy tests: drawn circuits and devices are valid."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.device.presets import device_by_key
from repro.errors import BenchmarkError
from repro.testing import (
    SIZEABLE_DEVICE_FAMILIES,
    circuits,
    device_presets,
    devices,
    preset_key_for,
)


class TestCircuitStrategy:
    @given(circuit=circuits(max_qubits=4, max_gates=12))
    @settings(max_examples=25, deadline=None)
    def test_drawn_circuits_are_well_formed(self, circuit):
        assert 1 <= circuit.num_qubits <= 4
        assert 1 <= len(circuit.gates) <= 12
        for gate in circuit.gates:
            assert all(0 <= q < circuit.num_qubits for q in gate.qubits)

    def test_bad_ranges_raise(self):
        with pytest.raises(BenchmarkError, match="bad qubit range"):
            circuits(min_qubits=5, max_qubits=2)
        with pytest.raises(BenchmarkError, match="bad gate range"):
            circuits(min_gates=9, max_gates=2)


class TestDeviceStrategy:
    @given(key=device_presets(min_qubits=3, max_qubits=7))
    @settings(max_examples=25, deadline=None)
    def test_drawn_presets_resolve_and_fit(self, key):
        device = device_by_key(key)
        assert device.num_qubits >= 3

    @given(device=devices(min_qubits=2, max_qubits=5))
    @settings(max_examples=10, deadline=None)
    def test_devices_strategy_resolves(self, device):
        assert device.num_qubits >= 2

    @pytest.mark.parametrize("family", SIZEABLE_DEVICE_FAMILIES)
    def test_preset_key_for_sizes_every_family(self, family):
        key = preset_key_for(family, 5)
        assert device_by_key(key).num_qubits >= 5

    def test_heavy_hex_is_not_sizeable(self):
        with pytest.raises(BenchmarkError, match="cannot size"):
            preset_key_for("heavy-hex", 5)
