"""End-to-end integration tests: semantics, invariants, paper shapes.

These tests run complete circuits through the whole pipeline and check
the one property everything else depends on: compilation must preserve
the circuit's unitary (up to the routing permutation and global phase).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Circuit,
    OptimalControlUnit,
    all_strategies,
    compile_circuit,
)
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.mapping.router import permutation_restore_gates
from repro.mapping.placement import Placement
from repro.mapping.topology import grid_for


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


def _schedule_unitary(result) -> np.ndarray:
    """Unitary realized by a compilation result, conjugated back to the
    logical frame: apply the initial placement, run the schedule, undo
    the final placement.  Idle physical qubits only see identity."""
    n = result.physical_qubits
    topology = grid_for(result.physical_qubits)
    total = np.eye(2**n, dtype=complex)
    # Move logical values from identity positions to their placed homes
    # (inverse of restoring the initial placement; SWAPs are involutions).
    initial = Placement(dict(result.initial_mapping), topology)
    for gate in reversed(permutation_restore_gates(initial)):
        total = embed_operator(gate.matrix, gate.qubits, n) @ total
    ordered = sorted(
        enumerate(result.schedule.operations),
        key=lambda pair: (pair[1].start, pair[0]),
    )
    for _, operation in ordered:
        node = operation.node
        matrix = node.matrix
        assert matrix is not None, "instruction too wide to verify"
        total = embed_operator(matrix, node.qubits, n) @ total
    # Undo the final logical->physical permutation.
    final = Placement(dict(result.final_mapping), topology)
    for gate in permutation_restore_gates(final):
        total = embed_operator(gate.matrix, gate.qubits, n) @ total
    return total


def _embed_reference(circuit: Circuit, physical_qubits: int) -> np.ndarray:
    total = np.eye(2**physical_qubits, dtype=complex)
    for gate in circuit.gates:
        total = embed_operator(gate.matrix, gate.qubits, physical_qubits) @ total
    return total


def _random_circuit(seed: int, num_qubits: int = 4, length: int = 12) -> Circuit:
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"random-{seed}")
    for _ in range(length):
        kind = rng.integers(0, 5)
        if kind == 0:
            circuit.h(int(rng.integers(num_qubits)))
        elif kind == 1:
            circuit.rz(float(rng.uniform(0.1, 3.0)), int(rng.integers(num_qubits)))
        elif kind == 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cnot(int(a), int(b))
        elif kind == 3:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.rzz(float(rng.uniform(0.1, 2.0)), int(a), int(b))
        else:
            circuit.rx(float(rng.uniform(0.1, 3.0)), int(rng.integers(num_qubits)))
    return circuit


class TestSemanticsPreservation:
    @pytest.mark.parametrize("strategy", all_strategies(), ids=lambda s: s.key)
    def test_random_circuits_preserved_under_every_strategy(self, ocu, strategy):
        for seed in range(3):
            circuit = _random_circuit(seed)
            result = compile_circuit(circuit, strategy, ocu=ocu)
            actual = _schedule_unitary(result)
            expected = _embed_reference(circuit, result.physical_qubits)
            assert allclose_up_to_global_phase(actual, expected, atol=1e-6), (
                f"{strategy.key} broke semantics on seed {seed}"
            )

    @given(seed=st.integers(min_value=100, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_full_flow_preserves_unitary(self, seed):
        ocu = OptimalControlUnit(backend="model")
        circuit = _random_circuit(seed, num_qubits=3, length=10)
        result = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        actual = _schedule_unitary(result)
        expected = _embed_reference(circuit, result.physical_qubits)
        assert allclose_up_to_global_phase(actual, expected, atol=1e-6)


class TestPaperShapes:
    def test_strategy_ordering_on_qaoa(self, ocu):
        import networkx as nx

        from repro.benchmarks.qaoa import maxcut_qaoa_circuit

        circuit = maxcut_qaoa_circuit(nx.cycle_graph(8), name="ring8")
        latencies = {
            s.key: compile_circuit(circuit, s, ocu=ocu).latency_ns
            for s in all_strategies()
        }
        # Full flow best; baseline worst; hand between CLS and full.
        assert latencies["cls+aggregation"] <= min(
            latencies["cls"], latencies["cls+hand"]
        )
        assert max(latencies.values()) == latencies["isa"]
        assert latencies["cls+hand"] <= latencies["cls"]

    def test_speedup_grows_with_commutativity(self, ocu):
        """QAOA (commutative) gains more from CLS than Grover (serial)."""
        import networkx as nx

        from repro.benchmarks.grover import grover_sqrt_circuit
        from repro.benchmarks.qaoa import maxcut_qaoa_circuit

        qaoa = maxcut_qaoa_circuit(nx.cycle_graph(6), name="ring6")
        grover = grover_sqrt_circuit(2)

        def cls_gain(circuit):
            isa = compile_circuit(circuit, ISA, ocu=ocu).latency_ns
            cls = compile_circuit(circuit, CLS, ocu=ocu).latency_ns
            return isa / cls

        assert cls_gain(qaoa) > cls_gain(grover)

    def test_decoherence_story(self, ocu):
        """The paper's motivation: speedup converts into survival odds."""
        from repro.benchmarks.uccsd import uccsd_ansatz_circuit
        from repro.noise.decoherence import schedule_survival_probability

        circuit = uccsd_ansatz_circuit(4)
        isa = compile_circuit(circuit, ISA, ocu=ocu)
        full = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert schedule_survival_probability(
            full.schedule
        ) > schedule_survival_probability(isa.schedule)


class TestPermutationRestore:
    def test_restores_identity_mapping(self):
        from repro.mapping.topology import LineTopology

        placement = Placement({0: 2, 1: 0, 2: 1}, LineTopology(3))
        gates = permutation_restore_gates(placement)
        # Simulate the permutation tracking.
        position = placement.as_dict()
        occupant = {p: l for l, p in position.items()}
        for gate in gates:
            a, b = gate.qubits
            la, lb = occupant.get(a), occupant.get(b)
            if la is not None:
                position[la] = b
            if lb is not None:
                position[lb] = a
            occupant[a], occupant[b] = lb, la
        assert all(position[q] == q for q in position)

    def test_identity_placement_needs_no_gates(self):
        from repro.mapping.topology import LineTopology

        placement = Placement({0: 0, 1: 1}, LineTopology(2))
        assert permutation_restore_gates(placement) == []
