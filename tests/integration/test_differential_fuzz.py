"""Cross-strategy differential fuzz suites.

Tier-1 carries a quick seeded smoke (a handful of circuits through every
strategy x several devices); the full CI-sized session — 25 circuits,
every registered strategy, every default device family — runs in the
slow tier (``--runslow``) and as the dedicated CI fuzz job
(``python -m repro.testing.fuzz``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.testing import circuits, differential_compile, run_fuzz


class TestDifferentialSmoke:
    def test_seeded_smoke_every_strategy_three_devices(self):
        report = run_fuzz(
            num_circuits=5,
            seed=20190413,
            min_qubits=3,
            max_qubits=4,
            max_gates=12,
            states=4,
        )
        assert report.ok, report.summary()
        assert report.circuits_checked == 5
        # every registered strategy (>=5) x >=3 presets per circuit
        assert report.compilations >= 5 * 5 * 3

    @given(circuit=circuits(min_qubits=2, max_qubits=4, max_gates=10))
    @settings(max_examples=8, deadline=None)
    def test_property_any_circuit_compiles_equivalently_everywhere(
        self, circuit
    ):
        report = differential_compile(circuit, states=3)
        assert report.ok, report.summary()


@pytest.mark.slow
class TestDifferentialFuzzFull:
    def test_ci_sized_session(self):
        # Mirrors the CI fuzz job: >=25 circuits x all strategies x >=3
        # device presets, fixed seed.
        report = run_fuzz(
            num_circuits=25,
            seed=20190413,
            min_qubits=3,
            max_qubits=5,
            max_gates=16,
            states=5,
        )
        assert report.ok, report.summary()
        assert report.circuits_checked == 25
        assert report.compilations >= 25 * 5 * 3
