"""Hypothesis round-trip properties over the repro.testing strategies.

The acceptance contract of the wire format: for every generator family
and device preset, ``from_json(to_json(x))`` preserves fingerprints and
signatures, and a deserialized :class:`CompilationResult` still passes
``verify_equivalence()`` against its deserialized source circuit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import Circuit
from repro.compiler.pipeline import compile_circuit
from repro.control.cache import PulseCache, config_fingerprint
from repro.control.unit import OptimalControlUnit
from repro.device.presets import device_by_key
from repro.ir import (
    canonical_result_dict,
    device_from_dict,
    device_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.testing import circuits, device_presets

# One shared store across examples: the same gate structures recur, so
# the pulse/latency work is paid once per structural signature.
_CACHE = PulseCache()

_relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCircuitRoundTrip:
    @given(circuit=circuits(max_qubits=5, max_gates=16))
    @_relaxed
    def test_json_round_trip_preserves_signatures_and_matrices(
        self, circuit: Circuit
    ):
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt.name == circuit.name
        assert rebuilt.num_qubits == circuit.num_qubits
        assert [g.signature for g in rebuilt.gates] == [
            g.signature for g in circuit.gates
        ]
        for original, copy in zip(circuit.gates, rebuilt.gates):
            assert np.array_equal(original.matrix, copy.matrix)


class TestDeviceRoundTrip:
    @given(key=device_presets(2, 9))
    @_relaxed
    def test_signature_and_fingerprint_survive(self, key: str):
        device = device_by_key(key)
        rebuilt = device_from_dict(device_to_dict(device))
        assert rebuilt.signature() == device.signature()
        unit = OptimalControlUnit(device=device)
        rebuilt_unit = OptimalControlUnit(device=rebuilt)
        assert config_fingerprint(
            device.config, unit.compiler, 3, unit.grape_dt, unit.seed,
            target=device,
        ) == config_fingerprint(
            rebuilt.config,
            rebuilt_unit.compiler,
            3,
            rebuilt_unit.grape_dt,
            rebuilt_unit.seed,
            target=rebuilt,
        )


class TestCompiledResultRoundTrip:
    @pytest.mark.slow
    @given(
        circuit=circuits(min_qubits=2, max_qubits=4, max_gates=10),
        device_key=device_presets(4, 6),
        strategy=st.sampled_from(["isa", "cls+aggregation", "cls+hand"]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_deserialized_result_still_verifies(
        self, circuit: Circuit, device_key: str, strategy: str
    ):
        device = device_by_key(device_key)
        ocu = OptimalControlUnit(device=device, cache=_CACHE)
        result = compile_circuit(circuit, strategy, device=device, ocu=ocu)
        rebuilt = result_from_dict(result_to_dict(result))
        # The rebuilt artifact is semantically the same compilation...
        assert canonical_result_dict(rebuilt) == canonical_result_dict(result)
        assert rebuilt.latency_ns == result.latency_ns
        # ...and still implements its (deserialized) source circuit.
        assert rebuilt.source_circuit is not circuit
        assert rebuilt.verify_equivalence()
