"""Unit tests for the repro.ir wire format (repro-ir-v1)."""

import json

import numpy as np
import pytest

from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.circuit import Circuit
from repro.compiler.hand_opt import HandOptimizedInstruction
from repro.compiler.pipeline import compile_circuit
from repro.config import CompilerConfig, DeviceConfig
from repro.control.cache import CacheDelta
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.device.device import Device
from repro.device.presets import device_by_key
from repro.device.topology import GridTopology, Topology
from repro.errors import SerializationError
from repro.gates import library as lib
from repro.gates.gate import Gate
from repro.ir import (
    IR_FORMAT,
    cache_delta_from_dict,
    cache_delta_to_dict,
    canonical_result_dict,
    circuit_from_dict,
    circuit_to_dict,
    dumps,
    gate_from_dict,
    gate_to_dict,
    instruction_from_dict,
    instruction_to_dict,
    loads,
    schedule_from_dict,
    schedule_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.scheduling.schedule import Schedule


class TestGateRoundTrip:
    def test_named_gate_serializes_without_matrix(self):
        payload = gate_to_dict(lib.CNOT(0, 1))
        assert payload["format"] == IR_FORMAT
        assert "matrix" not in payload
        rebuilt = gate_from_dict(payload)
        assert rebuilt.signature == lib.CNOT(0, 1).signature
        assert np.array_equal(rebuilt.matrix, lib.CNOT(0, 1).matrix)

    def test_parameterized_gate_exact_params(self):
        theta = 0.1 + 0.2  # a float with no short decimal form
        gate = lib.RZ(theta, 3)
        rebuilt = gate_from_dict(json.loads(json.dumps(gate_to_dict(gate))))
        assert rebuilt.params == gate.params  # bit-equal floats
        assert np.array_equal(rebuilt.matrix, gate.matrix)

    def test_custom_unitary_ships_matrix(self):
        matrix = np.array(
            [[1, 0], [0, np.exp(1j * 0.123456789)]], dtype=complex
        )
        gate = Gate("MYGATE", (2,), matrix)
        payload = gate_to_dict(gate)
        assert "matrix" in payload
        rebuilt = gate_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.name == "MYGATE"
        assert np.array_equal(rebuilt.matrix, matrix)

    def test_daggered_name_falls_back_to_matrix(self):
        gate = lib.T(0).dagger().dagger()  # name "T" again but via matrices
        rebuilt = gate_from_dict(gate_to_dict(gate))
        assert np.array_equal(rebuilt.matrix, gate.matrix)
        odd = lib.S(1).dagger()  # "SDG" is in the library; "S_DG" is not
        weird = Gate("S_DG_X", odd.qubits, odd.matrix)
        payload = gate_to_dict(weird)
        assert "matrix" in payload
        assert np.array_equal(gate_from_dict(payload).matrix, odd.matrix)


class TestInstructionRoundTrip:
    def test_aggregated_instruction(self):
        instr = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)], name="blk"
        )
        rebuilt = instruction_from_dict(instruction_to_dict(instr))
        assert isinstance(rebuilt, AggregatedInstruction)
        assert not isinstance(rebuilt, HandOptimizedInstruction)
        assert rebuilt.name == "blk"
        assert rebuilt.signature == instr.signature
        assert np.array_equal(rebuilt.matrix, instr.matrix)

    def test_hand_optimized_instruction_keeps_latency(self):
        instr = HandOptimizedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)], 123.5
        )
        rebuilt = AggregatedInstruction.from_dict(instr.to_dict())
        assert isinstance(rebuilt, HandOptimizedInstruction)
        assert rebuilt.hand_latency_ns == 123.5
        assert rebuilt.signature == instr.signature


class TestCircuitRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        circuit = (
            Circuit(3, name="rt").h(0).cnot(0, 1).rz(0.25, 1).toffoli(0, 1, 2)
        )
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt.name == circuit.name
        assert rebuilt.num_qubits == circuit.num_qubits
        assert [g.signature for g in rebuilt.gates] == [
            g.signature for g in circuit.gates
        ]
        for a, b in zip(circuit.gates, rebuilt.gates):
            assert np.array_equal(a.matrix, b.matrix)

    def test_circuit_dict_rejects_wrong_kind(self):
        with pytest.raises(SerializationError, match="kind"):
            circuit_from_dict(gate_to_dict(lib.H(0)))


class TestTopologyAndDevice:
    @pytest.mark.parametrize(
        "key",
        ["paper-grid-2x3", "line-4", "ring-5", "heavy-hex-1", "all-to-all-4"],
    )
    def test_preset_topology_round_trip(self, key):
        topology = device_by_key(key).topology
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert type(rebuilt) is type(topology)
        assert rebuilt.signature() == topology.signature()
        # Load-bearing orders survive, not just the edge set.
        assert rebuilt.placement_order() == topology.placement_order()
        assert all(
            rebuilt.neighbors(q) == topology.neighbors(q)
            for q in range(topology.num_qubits)
        )

    def test_generic_graph_round_trip(self):
        topology = Topology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert type(rebuilt) is Topology
        assert rebuilt.signature() == topology.signature()

    def test_custom_topology_subclass_rejected(self):
        class Oddball(Topology):
            kind = "oddball"

        with pytest.raises(SerializationError, match="custom topology"):
            topology_to_dict(Oddball(2, [(0, 1)]))

    def test_heterogeneous_device_round_trip(self):
        device = Device(
            topology=GridTopology(2, 2),
            config=DeviceConfig(coupling_limit_ghz=0.025),
            name="lab-chip",
            t1_us={0: 40.0, 3: 55.5},
            t2_us={1: 21.25},
            coupling_limits_ghz={(0, 1): 0.015, (2, 3): 0.03},
        )
        rebuilt = Device.from_dict(
            json.loads(json.dumps(device.to_dict()))
        )
        assert rebuilt.name == "lab-chip"
        assert rebuilt.signature() == device.signature()
        assert rebuilt.coupling_signature() == device.coupling_signature()
        assert rebuilt.config == device.config

    def test_config_fingerprint_identical_after_round_trip(self):
        from repro.control.cache import config_fingerprint

        device = Device(
            topology=GridTopology(2, 2),
            coupling_limits_ghz={(0, 1): 0.011},
        )
        compiler = CompilerConfig(max_instruction_width=6)
        rebuilt_device = Device.from_dict(device.to_dict())
        rebuilt_compiler = loads(dumps(compiler))
        assert config_fingerprint(
            device.config, compiler, 3, 0.5, 1, target=device
        ) == config_fingerprint(
            rebuilt_device.config,
            rebuilt_compiler,
            3,
            0.5,
            1,
            target=rebuilt_device,
        )


class TestScheduleRoundTrip:
    def test_schedule_round_trip(self):
        schedule = Schedule(3)
        schedule.add(lib.H(0), 0.0, 2.1)
        schedule.add(
            AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.5, 1)], name="G9"),
            2.1,
            40.0,
        )
        schedule.add(lib.X(2), 0.0, 1.0)
        rebuilt = schedule_from_dict(
            json.loads(json.dumps(schedule_to_dict(schedule)))
        )
        assert rebuilt.num_qubits == 3
        assert len(rebuilt) == 3
        assert rebuilt.makespan == schedule.makespan
        assert [op.node_id for op in rebuilt] == [0, 1, 2]
        assert [
            node.signature for node in rebuilt.ordered_nodes()
        ] == [node.signature for node in schedule.ordered_nodes()]
        rebuilt.validate()

    def test_unknown_node_reference_rejected(self):
        payload = schedule_to_dict(Schedule(1))
        payload["operations"] = [{"node": 7, "start": 0.0, "duration": 1.0}]
        with pytest.raises(SerializationError, match="unknown node id"):
            schedule_from_dict(payload)


class TestPulseAndDelta:
    def _grape_result(self):
        pulse = Pulse(
            control_names=["xy"],
            amplitudes=np.array([[0.1], [0.2], [0.15]]),
            dt=0.5,
        )
        return GrapeResult(
            fidelity=0.9991,
            converged=True,
            iterations=17,
            pulse=pulse,
            final_unitary=np.eye(2, dtype=complex),
            loss_history=[0.5, 0.1, 0.0009],
        )

    def test_pulse_round_trip(self):
        pulse = self._grape_result().pulse
        rebuilt = Pulse.from_dict(json.loads(json.dumps(pulse.to_dict())))
        assert rebuilt.control_names == pulse.control_names
        assert rebuilt.dt == pulse.dt
        assert np.array_equal(rebuilt.amplitudes, pulse.amplitudes)

    def test_cache_delta_round_trip(self):
        delta = CacheDelta()
        delta.latencies[("fp", "model", ("CNOT", (), (0, 1)))] = 47.1
        delta.pulses[("fp", ("AGG", 2, ()))] = self._grape_result()
        rebuilt = cache_delta_from_dict(
            json.loads(json.dumps(cache_delta_to_dict(delta)))
        )
        assert rebuilt.latencies == delta.latencies
        (key,) = rebuilt.pulses
        assert key == ("fp", ("AGG", 2, ()))
        original = delta.pulses[key]
        restored = rebuilt.pulses[key]
        assert restored.fidelity == original.fidelity
        assert np.array_equal(
            restored.pulse.amplitudes, original.pulse.amplitudes
        )
        assert np.array_equal(
            restored.final_unitary, original.final_unitary
        )


class TestResultArtifacts:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = (
            Circuit(3, name="artifact").h(0).cnot(0, 1).rz(0.3, 1).cnot(1, 2)
        )
        return compile_circuit(circuit, "cls+aggregation")

    def test_save_load_preserves_metrics_and_verifies(self, tmp_path, result):
        path = result.save(tmp_path / "artifact.json")
        loaded = type(result).load(path)
        assert loaded.latency_ns == result.latency_ns
        assert loaded.swap_count == result.swap_count
        assert loaded.aggregation_merges == result.aggregation_merges
        assert loaded.final_mapping == result.final_mapping
        assert loaded.initial_mapping == result.initial_mapping
        assert loaded.stage_seconds == result.stage_seconds
        assert loaded.verify_equivalence()

    def test_save_without_source_cannot_self_verify(self, tmp_path, result):
        from repro.errors import VerificationError

        path = result.save(tmp_path / "bare.json", include_source=False)
        loaded = type(result).load(path)
        assert loaded.source_circuit is None
        with pytest.raises(VerificationError, match="source circuit"):
            loaded.verify_equivalence()
        # ... but verifies fine against an explicitly supplied circuit.
        assert loaded.verify_equivalence(result.source_circuit)

    def test_generic_loads_dispatches_result(self, result):
        rebuilt = loads(dumps(result))
        assert rebuilt.latency_ns == result.latency_ns
        assert dumps(rebuilt) == dumps(result)

    def test_canonical_dict_renumbers_auto_names(self, result):
        payload = canonical_result_dict(result)
        assert "stage_seconds" not in payload
        assert "pass_seconds" not in payload
        auto_names = [
            entry["node"]["name"]
            for entry in payload["schedule"]["nodes"]
            if entry["node"]["kind"] == "instruction"
        ]
        assert auto_names == [f"G{i + 1}" for i in range(len(auto_names))]


class TestEnvelope:
    def test_wrong_format_rejected(self):
        payload = gate_to_dict(lib.H(0))
        payload["format"] = "repro-ir-v999"
        with pytest.raises(SerializationError, match="unknown IR format"):
            gate_from_dict(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown artifact kind"):
            loads(json.dumps({"format": IR_FORMAT, "kind": "mystery"}))

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError, match="not valid JSON"):
            loads("{nope")

    def test_unknown_top_level_keys_ignored(self):
        payload = circuit_to_dict(Circuit(1, name="fw").h(0))
        payload["added_in_a_future_minor_version"] = {"whatever": 1}
        rebuilt = circuit_from_dict(payload)
        assert rebuilt.name == "fw"
