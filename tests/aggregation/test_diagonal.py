"""Tests for diagonal-block commutativity detection."""

import numpy as np

from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.circuit import Circuit
from repro.config import CompilerConfig
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase


def _nodes_unitary(nodes, num_qubits):
    total = np.eye(2**num_qubits, dtype=complex)
    for node in nodes:
        matrix = node.matrix
        if isinstance(node, AggregatedInstruction):
            total = embed_operator(matrix, node.qubits, num_qubits) @ total
        else:
            total = embed_operator(matrix, node.qubits, num_qubits) @ total
    return total


class TestDetection:
    def test_cnot_rz_cnot_contracted(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.7, 1).cnot(0, 1)
        nodes = detect_diagonal_blocks(circuit.gates)
        assert len(nodes) == 1
        assert isinstance(nodes[0], AggregatedInstruction)
        assert nodes[0].is_diagonal

    def test_trailing_rx_left_out(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.7, 1).cnot(0, 1).rx(0.3, 1)
        nodes = detect_diagonal_blocks(circuit.gates)
        assert len(nodes) == 2
        assert isinstance(nodes[0], AggregatedInstruction)
        assert nodes[1].name == "RX"

    def test_leading_h_not_absorbed(self):
        circuit = Circuit(2).h(1).cnot(0, 1).rz(0.7, 1).cnot(0, 1)
        nodes = detect_diagonal_blocks(circuit.gates)
        names = [
            n.name if not isinstance(n, AggregatedInstruction) else "DIAG"
            for n in nodes
        ]
        assert names == ["H", "DIAG"]

    def test_plain_gates_untouched(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rx(0.5, 1)
        nodes = detect_diagonal_blocks(circuit.gates)
        assert len(nodes) == 3
        assert all(not isinstance(n, AggregatedInstruction) for n in nodes)

    def test_qaoa_layer_gets_one_block_per_edge(self):
        circuit = Circuit(3)
        for a, b in [(0, 1), (1, 2)]:
            circuit.cnot(a, b).rz(1.1, b).cnot(a, b)
        nodes = detect_diagonal_blocks(circuit.gates)
        blocks = [n for n in nodes if isinstance(n, AggregatedInstruction)]
        assert len(blocks) == 2
        assert all(block.width == 2 for block in blocks)

    def test_blocks_commute_after_detection(self):
        from repro.circuit.commutation import CommutationChecker

        circuit = Circuit(3)
        for a, b in [(0, 1), (1, 2)]:
            circuit.cnot(a, b).rz(1.1, b).cnot(a, b)
        blocks = [
            n
            for n in detect_diagonal_blocks(circuit.gates)
            if isinstance(n, AggregatedInstruction)
        ]
        checker = CommutationChecker()
        assert checker.commute(blocks[0], blocks[1])

    def test_depth_limit_respected(self):
        config = CompilerConfig(diagonal_block_depth=3)
        circuit = Circuit(2)
        for _ in range(3):
            circuit.cnot(0, 1).rz(0.4, 1).cnot(0, 1)
        nodes = detect_diagonal_blocks(circuit.gates, config)
        blocks = [n for n in nodes if isinstance(n, AggregatedInstruction)]
        assert all(len(block) <= 3 for block in blocks)

    def test_longer_diagonal_chain_contracts_fully(self):
        circuit = Circuit(2)
        for _ in range(2):
            circuit.cnot(0, 1).rz(0.4, 1).cnot(0, 1)
        nodes = detect_diagonal_blocks(circuit.gates)
        assert len(nodes) == 1
        assert len(nodes[0]) == 6

    def test_semantics_preserved(self):
        circuit = (
            Circuit(3)
            .h(0)
            .cnot(0, 1)
            .rz(0.9, 1)
            .cnot(0, 1)
            .rx(0.2, 0)
            .cnot(1, 2)
            .rz(0.3, 2)
            .cnot(1, 2)
        )
        nodes = detect_diagonal_blocks(circuit.gates)
        total = np.eye(8, dtype=complex)
        for node in nodes:
            total = embed_operator(node.matrix, node.qubits, 3) @ total
        assert allclose_up_to_global_phase(total, circuit.unitary(), atol=1e-8)

    def test_pure_rz_run_not_contracted(self):
        # Single-qubit diagonal runs stay as plain gates (no 2q member).
        circuit = Circuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0)
        nodes = detect_diagonal_blocks(circuit.gates)
        assert all(not isinstance(n, AggregatedInstruction) for n in nodes)

    def test_empty_stream(self):
        assert detect_diagonal_blocks([]) == []
