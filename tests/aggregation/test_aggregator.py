"""Tests for the action space and the monotonic aggregator."""

import numpy as np
import pytest

from repro.aggregation.action_space import candidate_actions
from repro.aggregation.aggregator import aggregate
from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.control.unit import OptimalControlUnit
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase


def build_dag(circuit, detect=False):
    checker = CommutationChecker()
    nodes = detect_diagonal_blocks(circuit.gates) if detect else circuit.gates
    return GateDependenceGraph(circuit.num_qubits, nodes, checker.commute)


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


def dag_unitary(dag, num_qubits):
    total = np.eye(2**num_qubits, dtype=complex)
    for node in dag.stable_topological_order():
        total = embed_operator(node.matrix, node.qubits, num_qubits) @ total
    return total


class TestCandidateActions:
    def test_adjacent_pair_found(self):
        dag = build_dag(Circuit(2).cnot(0, 1).rz(0.5, 1))
        actions = candidate_actions(dag, width_limit=10)
        assert len(actions) == 1

    def test_orientation_earlier_first(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 1)
        dag = build_dag(circuit)
        (earlier, later), = candidate_actions(dag, width_limit=10)
        assert earlier is circuit.gates[0]
        assert later is circuit.gates[1]

    def test_disjoint_gates_not_candidates(self):
        dag = build_dag(Circuit(4).cnot(0, 1).cnot(2, 3))
        assert candidate_actions(dag, width_limit=10) == []

    def test_width_limit_filters(self):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2)
        dag = build_dag(circuit)
        assert len(candidate_actions(dag, width_limit=3)) == 1
        assert len(candidate_actions(dag, width_limit=2)) == 0

    def test_each_pair_reported_once(self):
        # The CNOTs share two qubits; the pair must appear once.
        circuit = Circuit(2).cnot(0, 1).cnot(0, 1)
        dag = build_dag(circuit)
        assert len(candidate_actions(dag, width_limit=10)) == 1

    def test_distant_groups_excluded(self):
        circuit = Circuit(2).cnot(0, 1).h(1).x(1).cnot(0, 1)
        dag = build_dag(circuit)
        actions = candidate_actions(dag, width_limit=10)
        pairs = {
            frozenset((id(a), id(b))) for a, b in actions
        }
        first, h, x, last = circuit.gates
        assert frozenset((id(first), id(last))) not in pairs


class TestAggregate:
    def test_triangle_qaoa_improves_makespan(self, ocu):
        gamma = 5.67
        circuit = Circuit(3)
        for a, b in [(0, 1), (1, 2)]:
            circuit.cnot(a, b).rz(2 * gamma, b).cnot(a, b)
        dag = build_dag(circuit, detect=True)
        report = aggregate(dag, ocu)
        assert report.final_makespan < report.initial_makespan
        assert report.merges >= 1

    def test_unitary_preserved(self, ocu):
        circuit = (
            Circuit(3)
            .h(0)
            .cnot(0, 1)
            .rz(0.9, 1)
            .cnot(0, 1)
            .cnot(1, 2)
            .rx(0.4, 2)
            .swap(0, 1)
        )
        reference = circuit.unitary()
        dag = build_dag(circuit, detect=True)
        aggregate(dag, ocu)
        assert allclose_up_to_global_phase(
            dag_unitary(dag, 3), reference, atol=1e-7
        )

    def test_width_limit_respected(self, ocu):
        circuit = Circuit(6)
        for i in range(5):
            circuit.cnot(i, i + 1)
        dag = build_dag(circuit)
        aggregate(dag, ocu, width_limit=3)
        for node in dag.nodes:
            assert len(set(node.qubits)) <= 3

    def test_serial_chain_fully_aggregates_with_wide_limit(self, ocu):
        circuit = Circuit(4)
        for i in range(3):
            circuit.cnot(i, i + 1)
        dag = build_dag(circuit)
        report = aggregate(dag, ocu, width_limit=10)
        # The whole chain folds into one instruction: one setup charge.
        assert len(dag.nodes) == 1
        assert report.merges == 2

    def test_no_profitable_actions_no_merges(self, ocu):
        # Disjoint parallel gates: nothing to aggregate.
        circuit = Circuit(4).cnot(0, 1).cnot(2, 3)
        dag = build_dag(circuit)
        report = aggregate(dag, ocu)
        assert report.merges == 0
        assert report.final_makespan == pytest.approx(report.initial_makespan)

    def test_monotonic_protection_of_parallelism(self, ocu):
        # Paper Fig. 8 scenario: merging across the critical path would
        # serialize independent work; the aggregator must not regress
        # the makespan.
        circuit = Circuit(4)
        circuit.cnot(0, 1)
        circuit.cnot(2, 3)
        circuit.cnot(1, 2)
        circuit.cnot(0, 1)
        circuit.cnot(2, 3)
        dag = build_dag(circuit)
        before = dag.makespan(ocu.latency)
        report = aggregate(dag, ocu)
        assert report.final_makespan <= before + 1e-6

    def test_batch_false_single_merge_per_round(self, ocu):
        circuit = Circuit(4)
        for i in range(3):
            circuit.cnot(i, i + 1)
        dag = build_dag(circuit)
        report = aggregate(dag, ocu, batch=False)
        assert report.rounds >= report.merges

    def test_makespan_never_increases(self, ocu):
        rng = np.random.default_rng(11)
        for _ in range(3):
            circuit = Circuit(5)
            for _ in range(14):
                a, b = rng.choice(5, size=2, replace=False)
                kind = rng.integers(0, 3)
                if kind == 0:
                    circuit.cnot(int(a), int(b))
                elif kind == 1:
                    circuit.rzz(float(rng.uniform(0.2, 2.0)), int(a), int(b))
                else:
                    circuit.h(int(a))
            dag = build_dag(circuit, detect=True)
            report = aggregate(dag, ocu)
            assert report.final_makespan <= report.initial_makespan + 1e-6

    def test_instructions_in_dag_are_aggregates(self, ocu):
        circuit = Circuit(2).cnot(0, 1).rz(0.4, 1).cnot(0, 1).rx(0.2, 0)
        dag = build_dag(circuit, detect=True)
        aggregate(dag, ocu)
        assert any(
            isinstance(node, AggregatedInstruction) for node in dag.nodes
        )


class TestAggregationReportImprovement:
    def _report(self, initial, final):
        from repro.aggregation.aggregator import AggregationReport

        return AggregationReport(
            merges=0, rounds=1, initial_makespan=initial, final_makespan=final
        )

    def test_normal_ratio(self):
        assert self._report(100.0, 50.0).improvement == pytest.approx(2.0)

    def test_collapse_to_zero_is_infinite(self):
        assert self._report(100.0, 0.0).improvement == float("inf")

    def test_empty_circuit_is_neutral(self):
        assert self._report(0.0, 0.0).improvement == 1.0


class TestLatencyMemoIdReuse:
    """Regression tests: the round-local latency cache used to key by
    ``id(node)`` without holding the node, so a merged-away node's id
    could be recycled onto a new instruction that then inherited the dead
    node's latency."""

    class _StructuralOcu:
        """Latency oracle whose answer depends on the gate count."""

        def latency(self, node):
            return 10.0 * len(getattr(node, "gates", [node]))

    def test_stale_id_entry_is_not_inherited(self):
        from repro.aggregation.aggregator import _NodeLatencyMemo
        from repro.gates import library as lib

        memo = _NodeLatencyMemo(self._StructuralOcu())
        ghost = AggregatedInstruction([lib.CNOT(0, 1)], name="ghost")
        ghost_latency = memo(ghost)
        newcomer = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.3, 1), lib.CNOT(0, 1)], name="new"
        )
        # Simulate CPython recycling the ghost's id for the newcomer: the
        # memo finds an entry under the newcomer's id that belongs to a
        # different node, and must not return it.
        memo._entries[id(newcomer)] = memo._entries.pop(id(ghost))
        assert memo(newcomer) == 30.0
        assert memo(newcomer) != ghost_latency

    def test_forced_id_reuse_after_forget(self):
        import gc

        from repro.aggregation.aggregator import _NodeLatencyMemo
        from repro.gates import library as lib

        memo = _NodeLatencyMemo(self._StructuralOcu())
        ghost = AggregatedInstruction([lib.CNOT(0, 1)], name="ghost")
        assert memo(ghost) == 10.0
        stale_id = id(ghost)
        memo.forget(ghost)  # what the aggregator does on every merge
        del ghost
        gc.collect()
        # Hunt for genuine id reuse: allocate structurally different
        # instructions until one lands on the recycled address.
        newcomer = None
        for _ in range(10_000):
            candidate = AggregatedInstruction(
                [lib.CNOT(0, 1), lib.RZ(0.3, 1)], name="new"
            )
            if id(candidate) == stale_id:
                newcomer = candidate
                break
            del candidate
        if newcomer is None:
            pytest.skip("allocator never recycled the id")
        assert memo(newcomer) == 20.0

    def test_memo_pins_cached_nodes(self):
        import weakref

        from repro.aggregation.aggregator import _NodeLatencyMemo
        from repro.gates import library as lib

        memo = _NodeLatencyMemo(self._StructuralOcu())
        node = AggregatedInstruction([lib.CNOT(0, 1)], name="pinned")
        memo(node)
        ref = weakref.ref(node)
        del node
        # The memo holds the node alive, so its id cannot be recycled
        # while the cache entry exists; forgetting releases it.
        assert ref() is not None
        memo.forget(ref())
        assert ref() is None

    def test_aggregate_final_makespan_consistent_with_fresh_oracle(self, ocu):
        circuit = Circuit(4)
        for i in range(3):
            circuit.cnot(i, i + 1)
            circuit.rz(0.4, i + 1)
            circuit.cnot(i, i + 1)
        dag = build_dag(circuit, detect=True)
        report = aggregate(dag, ocu)
        fresh = OptimalControlUnit(backend="model")
        assert dag.makespan(fresh.latency) == pytest.approx(
            report.final_makespan
        )
