"""Tests for AggregatedInstruction."""

import numpy as np
import pytest

from repro.aggregation.instruction import AggregatedInstruction
from repro.errors import AggregationError
from repro.gates import library as lib
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase


class TestConstruction:
    def test_qubit_union_sorted(self):
        instruction = AggregatedInstruction(
            [lib.CNOT(3, 1), lib.RZ(0.2, 3)]
        )
        assert instruction.qubits == (1, 3)
        assert instruction.width == 2

    def test_empty_rejected(self):
        with pytest.raises(AggregationError):
            AggregatedInstruction([])

    def test_non_gate_member_rejected(self):
        with pytest.raises(AggregationError):
            AggregatedInstruction([lib.H(0), "not a gate"])

    def test_automatic_naming_unique(self):
        a = AggregatedInstruction([lib.H(0)])
        b = AggregatedInstruction([lib.H(0)])
        assert a.name != b.name

    def test_from_nodes_merges_gates(self):
        merged = AggregatedInstruction.from_nodes(lib.H(0), lib.CNOT(0, 1))
        assert len(merged) == 2
        assert merged.qubits == (0, 1)

    def test_from_nodes_flattens_instructions(self):
        inner = AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.1, 1)])
        merged = AggregatedInstruction.from_nodes(inner, lib.CNOT(0, 1))
        assert len(merged) == 3
        assert all(not isinstance(g, AggregatedInstruction) for g in merged.gates)


class TestMatrixAndDiagonality:
    def test_matrix_equals_gate_product(self):
        gates = [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        instruction = AggregatedInstruction(gates)
        expected = np.eye(4, dtype=complex)
        for gate in gates:
            expected = embed_operator(gate.matrix, gate.qubits, 2) @ expected
        assert np.allclose(instruction.matrix, expected)

    def test_matrix_uses_local_indices(self):
        # Same structure on far-apart qubits: small local matrix.
        instruction = AggregatedInstruction([lib.CNOT(7, 2), lib.RZ(0.5, 7)])
        assert instruction.matrix.shape == (4, 4)

    def test_wide_instruction_has_no_matrix(self):
        gates = [lib.CNOT(i, i + 1) for i in range(7)]
        instruction = AggregatedInstruction(gates)
        assert instruction.width == 8
        assert instruction.matrix is None

    def test_cnot_rz_cnot_is_diagonal(self):
        instruction = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        )
        assert instruction.is_diagonal

    def test_cnot_alone_is_not_diagonal(self):
        assert not AggregatedInstruction([lib.CNOT(0, 1)]).is_diagonal

    def test_wide_diagonal_fallback(self):
        gates = [lib.RZZ(0.3, i, i + 1) for i in range(7)]
        instruction = AggregatedInstruction(gates)
        assert instruction.matrix is None
        assert instruction.is_diagonal

    def test_matrix_readonly(self):
        instruction = AggregatedInstruction([lib.H(0)])
        with pytest.raises(ValueError):
            instruction.matrix[0, 0] = 2.0


class TestSignatureAndRetargeting:
    def test_signature_translation_invariant(self):
        a = AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.5, 1)])
        b = AggregatedInstruction([lib.CNOT(4, 5), lib.RZ(0.5, 5)])
        assert a.signature == b.signature

    def test_signature_sensitive_to_structure(self):
        a = AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.5, 1)])
        b = AggregatedInstruction([lib.CNOT(1, 0), lib.RZ(0.5, 1)])
        assert a.signature != b.signature

    def test_on_remaps_all_gates(self):
        instruction = AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.5, 1)])
        moved = instruction.on((5, 9))
        assert moved.qubits == (5, 9)
        assert moved.gates[0].qubits == (5, 9)
        assert moved.gates[1].qubits == (9,)

    def test_on_preserves_unitary(self):
        instruction = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.9, 1), lib.CNOT(0, 1)]
        )
        moved = instruction.on((3, 8))
        assert allclose_up_to_global_phase(moved.matrix, instruction.matrix)

    def test_on_wrong_arity(self):
        instruction = AggregatedInstruction([lib.CNOT(0, 1)])
        with pytest.raises(AggregationError):
            instruction.on((1, 2, 3))

    def test_gate_counts(self):
        instruction = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.5, 1), lib.CNOT(0, 1)]
        )
        assert instruction.gate_counts() == {"CNOT": 2, "RZ": 1}

    def test_repr_contains_name(self):
        instruction = AggregatedInstruction([lib.H(0)], name="G42")
        assert "G42" in repr(instruction)
