"""Functional tests of reversible arithmetic and the Grover benchmark."""

import numpy as np
import pytest

from repro.benchmarks.arithmetic import (
    AncillaPool,
    controlled_increment,
    flip_zero_bits,
    multi_controlled_x,
    multi_controlled_z,
    squarer,
    unsquarer,
)
from repro.benchmarks.grover import (
    grover_iterations_for,
    grover_sqrt_circuit,
    sqrt_benchmark_qubits,
)
from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError
from repro.linalg.simulator import StatevectorSimulator


def _run_basis(circuit, input_bits):
    """Run a circuit on a computational basis state given per-qubit bits."""
    sim = StatevectorSimulator(circuit.num_qubits)
    index = 0
    for qubit, bit in enumerate(input_bits):
        if bit:
            index |= 1 << (circuit.num_qubits - 1 - qubit)
    sim.reset(index)
    sim.run_circuit(circuit)
    out = int(np.argmax(sim.probabilities()))
    assert sim.probabilities()[out] > 0.999  # classical circuit stays classical
    return [(out >> (circuit.num_qubits - 1 - q)) & 1 for q in range(circuit.num_qubits)]


class TestAncillaPool:
    def test_take_and_return(self):
        pool = AncillaPool([5, 6])
        a = pool.take()
        b = pool.take()
        assert {a, b} == {5, 6}
        with pytest.raises(BenchmarkError):
            pool.take()
        pool.give_back(a)
        assert pool.available() == 1

    def test_high_water_tracking(self):
        pool = AncillaPool([1, 2, 3])
        a = pool.take()
        b = pool.take()
        pool.give_back(a)
        pool.give_back(b)
        assert pool.high_water == 2


class TestControlledIncrement:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive(self, width):
        total = 1 + width + max(0, width - 1)
        for control in (0, 1):
            for start in range(2**width):
                circuit = Circuit(total)
                pool = AncillaPool(list(range(1 + width, total)))
                controlled_increment(
                    circuit, 0, list(range(1, 1 + width)), pool
                )
                bits = [0] * total
                bits[0] = control
                for i in range(width):
                    bits[1 + i] = (start >> i) & 1
                out = _run_basis(circuit, bits)
                value = sum(out[1 + i] << i for i in range(width))
                assert value == (start + control) % 2**width
                assert all(b == 0 for b in out[1 + width:]), "dirty ancilla"

    def test_pool_returned_clean(self):
        circuit = Circuit(6)
        pool = AncillaPool([4, 5])
        controlled_increment(circuit, 0, [1, 2, 3], pool)
        assert pool.available() == 2


class TestSquarer:
    @pytest.mark.parametrize("m", [2, 3])
    def test_squares_all_inputs(self, m):
        total = sqrt_benchmark_qubits(m)
        for x in range(2**m):
            circuit = Circuit(total)
            pool = AncillaPool(list(range(3 * m, total)))
            squarer(circuit, list(range(m)), list(range(m, 3 * m)), pool)
            bits = [0] * total
            for i in range(m):
                bits[i] = (x >> i) & 1
            out = _run_basis(circuit, bits)
            accumulator = sum(out[m + i] << i for i in range(2 * m))
            assert accumulator == x * x
            assert all(b == 0 for b in out[3 * m:]), "dirty ancilla"

    def test_unsquarer_reverses(self):
        m = 2
        total = sqrt_benchmark_qubits(m)
        circuit = Circuit(total)
        pool = AncillaPool(list(range(3 * m, total)))
        squarer(circuit, list(range(m)), list(range(m, 3 * m)), pool)
        unsquarer(circuit, list(range(m)), list(range(m, 3 * m)), pool)
        for x in range(2**m):
            bits = [0] * total
            for i in range(m):
                bits[i] = (x >> i) & 1
            out = _run_basis(circuit, bits)
            assert out == bits

    def test_accumulator_width_validated(self):
        circuit = Circuit(5)
        pool = AncillaPool([4])
        with pytest.raises(BenchmarkError):
            squarer(circuit, [0, 1], [2, 3], pool)


class TestMultiControlled:
    @pytest.mark.parametrize("num_controls", [1, 2, 3, 4])
    def test_mcx_truth_table(self, num_controls):
        total = num_controls + 1 + max(0, num_controls - 2)
        target = num_controls
        for pattern in range(2**num_controls):
            circuit = Circuit(total)
            pool = AncillaPool(list(range(num_controls + 1, total)))
            multi_controlled_x(
                circuit, list(range(num_controls)), target, pool
            )
            bits = [0] * total
            for i in range(num_controls):
                bits[i] = (pattern >> i) & 1
            out = _run_basis(circuit, bits)
            expected = 1 if pattern == 2**num_controls - 1 else 0
            assert out[target] == expected

    def test_mcz_phase_flip(self):
        # |11> gets a minus sign, others unchanged.
        circuit = Circuit(2)
        pool = AncillaPool([])
        multi_controlled_z(circuit, [0, 1], pool)
        unitary = circuit.unitary()
        assert np.allclose(np.diag(unitary), [1, 1, 1, -1])

    def test_flip_zero_bits_masks_value(self):
        circuit = Circuit(3)
        flip_zero_bits(circuit, [0, 1, 2], 0b101)
        # value bit 0 = 1 (no X on qubit 0), bit 1 = 0 (X on qubit 1)...
        flipped = {g.qubits[0] for g in circuit.gates}
        assert flipped == {1}


class TestGroverCircuit:
    def test_qubit_counts_match_paper(self):
        assert sqrt_benchmark_qubits(3) == 17
        assert sqrt_benchmark_qubits(4) == 30
        assert sqrt_benchmark_qubits(5) == 47

    def test_search_finds_square_root(self):
        # m=2: search for sqrt(4) = 2 with the optimal iteration count.
        circuit = grover_sqrt_circuit(
            2, target_value=4, iterations=grover_iterations_for(2)
        )
        sim = StatevectorSimulator(circuit.num_qubits)
        sim.run_circuit(circuit)
        probabilities = sim.probabilities()
        n = circuit.num_qubits
        marginal = {}
        for index, p in enumerate(probabilities):
            if p < 1e-12:
                continue
            bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
            x = bits[0] | (bits[1] << 1)
            marginal[x] = marginal.get(x, 0.0) + p
        assert marginal.get(2, 0.0) > 0.95

    def test_single_iteration_default(self):
        one = grover_sqrt_circuit(3)
        two = grover_sqrt_circuit(3, iterations=2)
        assert len(two) > 1.8 * len(one) - 10

    def test_serial_low_commutativity_character(self):
        from repro.benchmarks.registry import circuit_characteristics

        circuit = grover_sqrt_circuit(3)
        traits = circuit_characteristics(circuit)
        assert traits["parallelism"] < 0.2
        assert traits["commutativity"] < 0.1

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            grover_sqrt_circuit(1)
        with pytest.raises(BenchmarkError):
            grover_sqrt_circuit(3, target_value=64)
        with pytest.raises(BenchmarkError):
            grover_sqrt_circuit(3, iterations=0)
