"""Tests for QAOA MAXCUT circuit generation."""


import networkx as nx
import pytest

from repro.benchmarks.qaoa import (
    cluster_graph,
    line_graph,
    maxcut_qaoa_circuit,
    regular4_graph,
)
from repro.errors import BenchmarkError
from repro.linalg.simulator import StatevectorSimulator


class TestGraphFamilies:
    def test_line_graph(self):
        graph = line_graph(5)
        assert graph.number_of_edges() == 4

    def test_line_too_small(self):
        with pytest.raises(BenchmarkError):
            line_graph(1)

    def test_regular4_degrees(self):
        graph = regular4_graph(30)
        assert all(d == 4 for _, d in graph.degree)

    def test_regular4_seeded(self):
        a = regular4_graph(10, seed=1)
        b = regular4_graph(10, seed=1)
        assert set(a.edges) == set(b.edges)

    def test_regular4_validation(self):
        with pytest.raises(BenchmarkError):
            regular4_graph(4)

    def test_cluster_graph_structure(self):
        graph = cluster_graph(12, cluster_size=4, seed=2)
        # Intra-cluster edges are complete.
        for base in (0, 4, 8):
            for i in range(base, base + 4):
                for j in range(i + 1, base + 4):
                    assert graph.has_edge(i, j)

    def test_cluster_graph_has_intercluster_edges(self):
        graph = cluster_graph(12, cluster_size=4, seed=2)
        cross = [
            (u, v) for u, v in graph.edges if u // 4 != v // 4
        ]
        assert cross

    def test_cluster_size_must_divide(self):
        with pytest.raises(BenchmarkError):
            cluster_graph(10, cluster_size=4)


class TestQaoaCircuit:
    def test_gate_structure(self):
        graph = line_graph(3)
        circuit = maxcut_qaoa_circuit(graph, layers=1)
        counts = circuit.gate_counts()
        assert counts["H"] == 3
        assert counts["CNOT"] == 2 * graph.number_of_edges()
        assert counts["RZ"] == graph.number_of_edges()
        assert counts["RX"] == 3

    def test_layers_multiply_body(self):
        graph = line_graph(4)
        one = maxcut_qaoa_circuit(graph, layers=1)
        two = maxcut_qaoa_circuit(graph, layers=2)
        assert len(two) == len(one) + (len(one) - 4)  # H layer not repeated

    def test_vertex_labels_validated(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(BenchmarkError):
            maxcut_qaoa_circuit(graph)

    def test_layer_validation(self):
        with pytest.raises(BenchmarkError):
            maxcut_qaoa_circuit(line_graph(3), layers=0)

    def test_qaoa_expectation_beats_random_guess(self):
        # With tuned angles, one QAOA layer must beat the random-cut
        # baseline of |E|/2 on a triangle-free graph.
        graph = line_graph(4)
        circuit = maxcut_qaoa_circuit(graph, gamma=0.5, beta=1.1)
        sim = StatevectorSimulator(4)
        sim.run_circuit(circuit)
        probs = sim.probabilities()
        expected_cut = 0.0
        for state, p in enumerate(probs):
            bits = [(state >> (3 - q)) & 1 for q in range(4)]
            cut = sum(bits[u] != bits[v] for u, v in graph.edges)
            expected_cut += p * cut
        assert expected_cut > graph.number_of_edges() / 2 + 0.2

    def test_diagonal_phase_structure(self):
        # The ZZ blocks are diagonal: |00> and |11> inputs acquire equal
        # magnitude amplitudes under the cost layer alone.
        graph = line_graph(2)
        circuit = maxcut_qaoa_circuit(graph, gamma=0.7, beta=0.0)
        unitary = circuit.unitary()
        assert unitary.shape == (4, 4)
