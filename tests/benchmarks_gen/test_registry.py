"""Tests for the Table 3 suite registry and characteristics."""

import pytest

from repro.benchmarks.registry import (
    benchmark_by_key,
    circuit_characteristics,
    classify,
    table3_suite,
)
from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError


class TestSuite:
    def test_paper_suite_has_ten_rows(self):
        assert len(table3_suite("paper")) == 10

    def test_paper_qubit_counts_match_table3(self):
        qubits = [spec.qubits for spec in table3_suite("paper")]
        assert qubits == [20, 30, 30, 30, 60, 17, 30, 47, 4, 6]

    def test_small_suite_builds_quickly(self):
        for spec in table3_suite("small"):
            circuit = spec.build()
            assert circuit.num_qubits == spec.qubits
            assert len(circuit) > 0

    def test_build_checks_width(self):
        spec = table3_suite("paper")[0]
        object.__setattr__(spec, "qubits", 999)
        with pytest.raises(BenchmarkError):
            spec.build()

    def test_unknown_scale(self):
        with pytest.raises(BenchmarkError):
            table3_suite("huge")

    def test_lookup_by_key(self):
        spec = benchmark_by_key("maxcut-line-20")
        assert spec.qubits == 20
        with pytest.raises(BenchmarkError):
            benchmark_by_key("nope")

    def test_keys_unique(self):
        keys = [spec.key for spec in table3_suite("paper")]
        assert len(set(keys)) == len(keys)


class TestCharacteristics:
    def test_empty_circuit(self):
        traits = circuit_characteristics(Circuit(2))
        assert traits["parallelism"] == 0.0

    def test_qaoa_is_highly_commutative(self):
        spec = benchmark_by_key("maxcut-line-20")
        traits = circuit_characteristics(spec.build())
        assert traits["commutativity"] > 0.5

    def test_sqrt_is_serial_and_noncommutative(self):
        spec = benchmark_by_key("sqrt-17")
        traits = circuit_characteristics(spec.build())
        assert traits["commutativity"] < 0.1
        assert traits["parallelism"] < 0.15

    def test_ising_is_parallel(self):
        spec = benchmark_by_key("ising-30")
        traits = circuit_characteristics(spec.build())
        assert traits["parallelism"] > 0.4

    def test_locality_ordering_of_maxcut_family(self):
        # Table 3: line > reg4 > cluster in spatial locality.
        line = circuit_characteristics(benchmark_by_key("maxcut-line-20").build())
        reg4 = circuit_characteristics(benchmark_by_key("maxcut-reg4-30").build())
        cluster = circuit_characteristics(
            benchmark_by_key("maxcut-cluster-30").build()
        )
        assert (
            line["spatial_locality"]
            > reg4["spatial_locality"]
            > cluster["spatial_locality"]
        )

    def test_classify_thresholds(self):
        assert classify(0.1, 0.3, 0.6) == "Low"
        assert classify(0.4, 0.3, 0.6) == "Medium"
        assert classify(0.9, 0.3, 0.6) == "High"
