"""Tests for the Ising, UCCSD and QFT generators."""

import math

import numpy as np
import pytest
import scipy.linalg

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qft import qft_circuit
from repro.benchmarks.uccsd import (
    double_excitation,
    pauli_exponential,
    single_excitation,
    uccsd_ansatz_circuit,
)
from repro.circuit.circuit import Circuit
from repro.errors import BenchmarkError
from repro.linalg.embed import embed_operator
from repro.linalg.paulis import pauli_string
from repro.linalg.predicates import allclose_up_to_global_phase, is_unitary


class TestIsing:
    def test_gate_counts(self):
        circuit = ising_model_circuit(6, trotter_steps=1)
        counts = circuit.gate_counts()
        assert counts["CNOT"] == 2 * 5  # 5 bonds
        assert counts["RZ"] == 5
        assert counts["RX"] == 6

    def test_trotter_steps_scale(self):
        one = ising_model_circuit(6, trotter_steps=1)
        three = ising_model_circuit(6, trotter_steps=3)
        assert len(three) == 3 * len(one)

    def test_brickwork_is_parallel(self):
        circuit = ising_model_circuit(10)
        # Even bonds all run in the first two layers.
        assert circuit.depth <= 8

    def test_matches_exact_evolution_small(self):
        # One fine Trotter step approximates exp(-i H dt) on 3 qubits.
        n, j, h, dt = 3, 1.0, 0.8, 0.05
        circuit = ising_model_circuit(n, coupling=j, field=h, dt=dt)
        hamiltonian = np.zeros((8, 8), dtype=complex)
        for a in range(n - 1):
            hamiltonian += j * embed_operator(
                pauli_string("ZZ"), [a, a + 1], n
            )
        for q in range(n):
            hamiltonian += h * embed_operator(pauli_string("X"), [q], n)
        exact = scipy.linalg.expm(-1j * dt * hamiltonian)
        assert allclose_up_to_global_phase(circuit.unitary(), exact, atol=0.02)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            ising_model_circuit(1)
        with pytest.raises(BenchmarkError):
            ising_model_circuit(4, trotter_steps=0)


class TestPauliExponential:
    @pytest.mark.parametrize(
        "labels", [{0: "Z"}, {0: "X", 1: "Y"}, {0: "Y", 1: "Z", 2: "X"}]
    )
    def test_matches_matrix_exponential(self, labels):
        theta = 0.731
        n = max(labels) + 1
        circuit = Circuit(n)
        pauli_exponential(circuit, labels, theta)
        string = "".join(labels.get(q, "I") for q in range(n))
        exact = scipy.linalg.expm(-0.5j * theta * pauli_string(string))
        assert allclose_up_to_global_phase(circuit.unitary(), exact, atol=1e-8)

    def test_empty_string_is_noop(self):
        circuit = Circuit(1)
        pauli_exponential(circuit, {}, 0.5)
        assert len(circuit) == 0

    def test_bad_letter(self):
        circuit = Circuit(1)
        with pytest.raises(BenchmarkError):
            pauli_exponential(circuit, {0: "Q"}, 0.5)


class TestExcitations:
    def test_single_excitation_preserves_particle_number(self):
        # exp(theta(a2^dag a0 - h.c.)) maps |100> within span{|100>,|001>}.
        circuit = Circuit(3)
        single_excitation(circuit, 0, 2, 0.83)
        unitary = circuit.unitary()
        state = np.zeros(8)
        state[0b100] = 1.0
        result = unitary @ state
        support = {i for i, a in enumerate(result) if abs(a) > 1e-9}
        assert support <= {0b100, 0b001}
        assert abs(np.linalg.norm(result) - 1.0) < 1e-9

    def test_single_excitation_angle_rotates_population(self):
        circuit = Circuit(2)
        single_excitation(circuit, 0, 1, math.pi)
        state = np.zeros(4)
        state[0b10] = 1.0
        result = circuit.unitary() @ state
        # Complete transfer |10> -> |01> at theta = pi in this convention.
        assert abs(result[0b01]) ** 2 > 0.99

    def test_single_excitation_half_transfer(self):
        circuit = Circuit(2)
        single_excitation(circuit, 0, 1, math.pi / 2)
        state = np.zeros(4)
        state[0b10] = 1.0
        result = circuit.unitary() @ state
        assert abs(result[0b01]) ** 2 == pytest.approx(0.5, abs=1e-9)
        assert abs(result[0b10]) ** 2 == pytest.approx(0.5, abs=1e-9)

    def test_double_excitation_unitary(self):
        circuit = Circuit(4)
        double_excitation(circuit, 0, 1, 2, 3, 0.37)
        assert is_unitary(circuit.unitary())

    def test_double_excitation_distinct_orbitals(self):
        circuit = Circuit(4)
        with pytest.raises(BenchmarkError):
            double_excitation(circuit, 0, 0, 2, 3, 0.5)


class TestUccsdAnsatz:
    def test_qubit_count(self):
        assert uccsd_ansatz_circuit(4).num_qubits == 4
        assert uccsd_ansatz_circuit(6, num_electrons=3).num_qubits == 6

    def test_excitation_count_n4(self):
        # 2 electrons, 2 virtuals: 4 singles + 1 double.
        circuit = uccsd_ansatz_circuit(4, amplitudes=np.full(5, 0.3))
        assert len(circuit) > 0

    def test_amplitude_count_validation(self):
        with pytest.raises(BenchmarkError):
            uccsd_ansatz_circuit(4, amplitudes=np.ones(3))

    def test_electron_count_validation(self):
        with pytest.raises(BenchmarkError):
            uccsd_ansatz_circuit(4, num_electrons=0)
        with pytest.raises(BenchmarkError):
            uccsd_ansatz_circuit(4, num_electrons=4)

    def test_ansatz_is_unitary_and_seeded(self):
        a = uccsd_ansatz_circuit(4, seed=3)
        b = uccsd_ansatz_circuit(4, seed=3)
        assert [g.signature for g in a] == [g.signature for g in b]
        assert is_unitary(a.unitary())

    def test_low_commutativity_character(self):
        from repro.benchmarks.registry import circuit_characteristics

        traits = circuit_characteristics(uccsd_ansatz_circuit(4))
        assert traits["commutativity"] < 0.5


class TestQft:
    def test_qft_matrix(self):
        n = 3
        circuit = qft_circuit(n, include_swaps=True)
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        expected = np.array(
            [[omega ** (r * c) for c in range(dim)] for r in range(dim)]
        ) / math.sqrt(dim)
        assert allclose_up_to_global_phase(circuit.unitary(), expected, atol=1e-8)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            qft_circuit(0)
