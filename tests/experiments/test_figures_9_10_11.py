"""Tests for the Figure 9/10/11 experiments (small scale)."""

import pytest

from repro.control.unit import OptimalControlUnit
from repro.experiments.figure9 import (
    format_figure9,
    geometric_mean_speedups,
    max_speedup,
    run_figure9,
)
from repro.experiments.figure10 import (
    format_figure10,
    run_figure10,
)
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


@pytest.fixture(scope="module")
def figure9_rows(ocu):
    keys = ["maxcut-line-6", "maxcut-cluster-8", "ising-6", "uccsd-4"]
    return run_figure9(scale="small", ocu=ocu, benchmark_keys=keys)


class TestFigure9:
    def test_row_per_benchmark(self, figure9_rows):
        assert len(figure9_rows) == 4

    def test_baseline_normalizes_to_one(self, figure9_rows):
        for row in figure9_rows:
            assert row.normalized()["isa"] == pytest.approx(1.0)

    def test_full_flow_always_wins(self, figure9_rows):
        for row in figure9_rows:
            assert row.normalized()["cls+aggregation"] < 1.0

    def test_cls_helps_commutative_benchmarks_most(self, figure9_rows):
        by_name = {row.benchmark: row for row in figure9_rows}
        qaoa_gain = by_name["maxcut-line-6"].speedup("cls")
        uccsd_gain = by_name["uccsd-4"].speedup("cls")
        assert qaoa_gain > uccsd_gain

    def test_geomean_speedups_positive(self, figure9_rows):
        means = geometric_mean_speedups(figure9_rows)
        assert means["cls+aggregation"] > 1.5
        assert means["cls+hand"] > 1.0
        assert means["cls+aggregation"] > means["cls+hand"]

    def test_max_speedup(self, figure9_rows):
        assert max_speedup(figure9_rows, "cls+aggregation") >= geometric_mean_speedups(
            figure9_rows
        )["cls+aggregation"]

    def test_format(self, figure9_rows):
        text = format_figure9(figure9_rows)
        assert "geomean" in text
        assert "maxcut-line-6" in text


class TestFigure10:
    @pytest.fixture(scope="class")
    def series(self, ocu):
        benchmarks = {"maxcut-line-6": "parallel", "sqrt-9": "serial"}
        return run_figure10(
            benchmarks=benchmarks,
            widths=range(2, 7),
            scale="small",
            ocu=ocu,
        )

    def test_one_series_per_benchmark(self, series):
        assert len(series) == 2

    def test_latency_non_increasing_with_width(self, series):
        for entry in series:
            latencies = [p.normalized_latency for p in entry.points]
            for earlier, later in zip(latencies, latencies[1:]):
                assert later <= earlier * 1.05  # small tolerance

    def test_serial_benchmark_keeps_improving(self, series):
        serial = next(s for s in series if s.classification == "serial")
        first = serial.points[0].normalized_latency
        last = serial.points[-1].normalized_latency
        assert last < first

    def test_band_edges_ordered(self, series):
        for entry in series:
            for point in entry.points:
                assert point.most_optimized <= point.least_optimized + 1e-9

    def test_format(self, series):
        text = format_figure10(series)
        assert "width" in text and "saturates" in text


class TestFigure11:
    @pytest.fixture(scope="class")
    def rows(self, ocu):
        return run_figure11(scale="small", ocu=ocu)

    def test_three_instances(self, rows):
        assert [row.locality for row in rows] == ["high", "medium", "low"]

    def test_normalized_at_most_one(self, rows):
        for row in rows:
            assert row.normalized <= 1.0 + 1e-9

    def test_lower_locality_more_aggregation_benefit(self, rows):
        by_locality = {row.locality: row.normalized for row in rows}
        # The paper's headline shape: cluster (low locality) gains most.
        assert by_locality["low"] <= by_locality["high"] + 1e-9

    def test_format(self, rows):
        text = format_figure11(run_figure11(scale="small"))
        assert "locality" in text


class TestTable3Experiment:
    def test_rows_and_format(self):
        rows = run_table3(scale="small")
        assert len(rows) == 10
        text = format_table3(rows)
        assert "benchmark" in text
        for row in rows:
            assert row.key in text

    def test_labels_are_valid(self):
        for row in run_table3(scale="small"):
            for label in (
                row.parallelism_label,
                row.locality_label,
                row.commutativity_label,
            ):
                assert label in ("Low", "Medium", "High")
