"""Tests for the Table 1 and Figure 4 experiments."""

import pytest

from repro.control.unit import OptimalControlUnit
from repro.experiments.figure4 import (
    format_figure4,
    run_figure4,
    triangle_circuit,
)
from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


class TestTable1:
    def test_all_rows_present(self, ocu):
        rows = run_table1(ocu=ocu)
        assert len(rows) == 10
        labels = [row.label for row in rows]
        assert "CNOT" in labels and "SWAP" in labels

    def test_single_gates_within_shape_tolerance(self, ocu):
        rows = {row.label: row for row in run_table1(ocu=ocu)}
        # Two-qubit gate times within 10% of the paper.
        assert rows["CNOT"].ratio == pytest.approx(1.0, abs=0.10)
        assert rows["SWAP"].ratio == pytest.approx(1.0, abs=0.10)
        # One-qubit gates within a factor ~2.5 (angle-wrapping convention
        # differences); the key ordering CNOT >> 1q holds regardless.
        for label in ("H", "Rz(2g)", "Rx(2b)"):
            assert 0.3 <= rows[label].ratio <= 1.3

    def test_aggregated_g3_matches_paper(self, ocu):
        rows = {row.label: row for row in run_table1(ocu=ocu)}
        g3 = rows["G3 (CNOT-Rz-CNOT)"]
        assert g3.measured_ns == pytest.approx(42.0, rel=0.1)

    def test_g1_close_to_paper(self, ocu):
        rows = {row.label: row for row in run_table1(ocu=ocu)}
        assert rows["G1 (H,H + CNOT-Rz-CNOT)"].ratio == pytest.approx(
            1.0, abs=0.25
        )

    def test_aggregates_beat_serial_members(self, ocu):
        rows = {row.label: row for row in run_table1(ocu=ocu)}
        serial_g3 = (
            2 * rows["CNOT"].measured_ns + rows["Rz(2g)"].measured_ns
        )
        assert rows["G3 (CNOT-Rz-CNOT)"].measured_ns < 0.5 * serial_g3

    def test_format_mentions_every_row(self, ocu):
        rows = run_table1(ocu=ocu)
        text = format_table1(rows)
        for row in rows:
            assert row.label in text


class TestFigure4:
    def test_triangle_circuit_structure(self):
        circuit = triangle_circuit()
        assert circuit.num_qubits == 3
        counts = circuit.gate_counts()
        assert counts["CNOT"] == 6  # three ZZ blocks
        assert counts["H"] == 3
        assert counts["RX"] == 3

    def test_speedup_in_paper_range(self, ocu):
        result = run_figure4(ocu=ocu)
        # Paper: 2.97x; accept the same order (2x..6x) for the model.
        assert 2.0 <= result.speedup <= 6.5

    def test_latencies_same_order_as_paper(self, ocu):
        result = run_figure4(ocu=ocu)
        assert result.isa_latency_ns == pytest.approx(
            result.paper_isa_ns, rel=0.35
        )

    def test_format_contains_speedups(self, ocu):
        text = format_figure4(run_figure4(ocu=ocu))
        assert "speedup" in text
        assert "381.9" in text  # the paper's gate-based latency
