"""Tests for the experiment runner CLI."""

import pytest

from repro.control.unit import OptimalControlUnit
from repro.experiments.runner import main, run_experiment


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


class TestRunExperiment:
    @pytest.mark.parametrize(
        "name", ["table1", "table3", "figure4", "figure11"]
    )
    def test_fast_experiments_produce_reports(self, name, ocu):
        report = run_experiment(name, scale="small", ocu=ocu)
        assert isinstance(report, str)
        assert len(report.splitlines()) >= 3

    def test_unknown_experiment(self, ocu):
        with pytest.raises(ValueError):
            run_experiment("figure99", scale="small", ocu=ocu)


class TestCli:
    def test_single_experiment_cli(self, capsys):
        exit_code = main(["--experiment", "table1", "--scale", "small"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "finished in" in captured.out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "nope"])
