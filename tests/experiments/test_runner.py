"""Tests for the experiment runner CLI."""

import os

import pytest

from repro.compiler.result import CompilationResult
from repro.control.unit import OptimalControlUnit
from repro.experiments.runner import (
    artifact_filename,
    load_artifacts_report,
    main,
    run_experiment,
)


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


class TestRunExperiment:
    @pytest.mark.parametrize(
        "name", ["table1", "table3", "figure4", "figure11"]
    )
    def test_fast_experiments_produce_reports(self, name, ocu):
        report = run_experiment(name, scale="small", ocu=ocu)
        assert isinstance(report, str)
        assert len(report.splitlines()) >= 3

    def test_unknown_experiment(self, ocu):
        with pytest.raises(ValueError):
            run_experiment("figure99", scale="small", ocu=ocu)


class TestCli:
    def test_single_experiment_cli(self, capsys):
        exit_code = main(["--experiment", "table1", "--scale", "small"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "finished in" in captured.out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "nope"])


class TestArtifacts:
    _SWEEP = [
        "--experiment", "figure9",
        "--scale", "small",
        "--benchmarks", "maxcut-line-6",
        "--strategies", "isa,cls+aggregation",
    ]

    def test_save_then_load_round_trip(self, tmp_path, capsys):
        directory = str(tmp_path / "artifacts")
        assert main([*self._SWEEP, "--save-artifacts", directory]) == 0
        saved = sorted(os.listdir(directory))
        assert len(saved) == 2  # one per strategy
        assert all(name.endswith(".json") for name in saved)
        capsys.readouterr()

        assert main(["--load-artifacts", directory]) == 0
        out = capsys.readouterr().out
        assert "all verified" in out
        assert "Figure 9" in out

        # The loaded artifacts carry the full results.
        for name in saved:
            result = CompilationResult.load(os.path.join(directory, name))
            assert result.verify_equivalence()
            assert artifact_filename(result) == name

    def test_load_tolerates_inconsistent_strategy_sets(self, tmp_path):
        """A directory mixing sweeps must print a table, not crash."""
        directory = str(tmp_path / "artifacts")
        assert main([*self._SWEEP, "--save-artifacts", directory]) == 0
        # Drop one strategy's artifact for one benchmark by adding a
        # second benchmark compiled under only one strategy.
        assert main([
            "--experiment", "figure9", "--scale", "small",
            "--benchmarks", "ising-6", "--strategies", "isa",
            "--save-artifacts", directory,
        ]) == 0
        report, ok = load_artifacts_report(directory)
        assert ok, report
        assert "Figure 9" in report  # restricted to the common strategies

    def test_load_flags_corrupt_artifact(self, tmp_path):
        directory = tmp_path / "artifacts"
        directory.mkdir()
        (directory / "junk.json").write_text("{not json")
        report, ok = load_artifacts_report(directory)
        assert not ok
        assert "UNREADABLE" in report

    def test_load_empty_directory_fails(self, tmp_path):
        report, ok = load_artifacts_report(tmp_path)
        assert not ok
        assert "no .json artifacts" in report
