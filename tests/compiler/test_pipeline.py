"""End-to-end pipeline tests across all strategies."""

import pytest

from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.benchmarks.registry import benchmark_by_key
from repro.circuit.circuit import Circuit
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    all_strategies,
)
from repro.control.unit import OptimalControlUnit
from repro.mapping.topology import LineTopology


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


@pytest.fixture(scope="module")
def qaoa_circuit():
    return maxcut_qaoa_circuit(line_graph(6), name="line6")


class TestPipelineBasics:
    def test_all_strategies_produce_valid_schedules(self, ocu, qaoa_circuit):
        for strategy in all_strategies():
            result = compile_circuit(qaoa_circuit, strategy, ocu=ocu)
            result.schedule.validate()
            assert result.latency_ns > 0
            assert result.strategy_key == strategy.key

    def test_isa_baseline_is_slowest(self, ocu, qaoa_circuit):
        results = {
            s.key: compile_circuit(qaoa_circuit, s, ocu=ocu)
            for s in all_strategies()
        }
        baseline = results["isa"].latency_ns
        for key, result in results.items():
            assert result.latency_ns <= baseline + 1e-6, key

    def test_full_flow_beats_cls_alone(self, ocu, qaoa_circuit):
        cls = compile_circuit(qaoa_circuit, CLS, ocu=ocu)
        full = compile_circuit(qaoa_circuit, CLS_AGGREGATION, ocu=ocu)
        assert full.latency_ns <= cls.latency_ns + 1e-6

    def test_hand_beats_cls_alone_on_commutative_circuit(self, ocu, qaoa_circuit):
        cls = compile_circuit(qaoa_circuit, CLS, ocu=ocu)
        hand = compile_circuit(qaoa_circuit, CLS_HAND, ocu=ocu)
        assert hand.latency_ns <= cls.latency_ns + 1e-6

    def test_aggregation_beats_isa_on_serial_circuit(self, ocu):
        circuit = Circuit(3, name="serial")
        circuit.h(0).cnot(0, 1).h(1).cnot(1, 2).t(2).cnot(0, 1)
        isa = compile_circuit(circuit, ISA, ocu=ocu)
        agg = compile_circuit(circuit, AGGREGATION, ocu=ocu)
        assert agg.latency_ns < isa.latency_ns

    def test_width_limit_respected(self, ocu):
        circuit = Circuit(6, name="chain")
        for i in range(5):
            circuit.cnot(i, i + 1)
        result = compile_circuit(
            circuit, AGGREGATION, ocu=ocu, width_limit=3
        )
        assert result.widest_instruction() <= 3

    def test_routing_makes_everything_adjacent(self, ocu):
        circuit = Circuit(6, name="nonlocal")
        circuit.cnot(0, 5).cnot(1, 4).cnot(2, 3)
        topology = LineTopology(6)
        result = compile_circuit(circuit, ISA, ocu=ocu, topology=topology)
        for operation in result.schedule:
            qubits = sorted(set(operation.node.qubits))
            if len(qubits) == 2:
                assert topology.are_adjacent(*qubits)
        assert result.swap_count > 0

    def test_toffoli_gets_lowered(self, ocu):
        circuit = Circuit(3, name="tof").toffoli(0, 1, 2)
        result = compile_circuit(circuit, ISA, ocu=ocu)
        assert result.lowered_gate_count == 15

    def test_stage_times_recorded(self, ocu, qaoa_circuit):
        result = compile_circuit(qaoa_circuit, CLS_AGGREGATION, ocu=ocu)
        assert set(result.stage_seconds) == {
            "lowering",
            "detection",
            "logical_scheduling",
            "mapping",
            "backend",
            "final_scheduling",
        }

    def test_result_metrics(self, ocu, qaoa_circuit):
        result = compile_circuit(qaoa_circuit, CLS_AGGREGATION, ocu=ocu)
        histogram = result.instruction_width_histogram()
        assert sum(histogram.values()) == result.node_count
        assert result.widest_instruction() <= 10
        assert "line6" in result.summary()

    def test_speedup_over(self, ocu, qaoa_circuit):
        isa = compile_circuit(qaoa_circuit, ISA, ocu=ocu)
        full = compile_circuit(qaoa_circuit, CLS_AGGREGATION, ocu=ocu)
        assert full.speedup_over(isa) > 1.0
        assert isa.speedup_over(isa) == pytest.approx(1.0)


class TestPipelineOnSuite:
    @pytest.mark.parametrize(
        "key",
        ["maxcut-line-6", "ising-6", "uccsd-4"],
    )
    def test_small_suite_shapes(self, ocu, key):
        spec = benchmark_by_key(key, scale="small")
        circuit = spec.build()
        isa = compile_circuit(circuit, ISA, ocu=ocu)
        full = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        isa.schedule.validate()
        full.schedule.validate()
        assert full.latency_ns < isa.latency_ns

    def test_aggregation_merges_recorded_on_serial_circuit(self, ocu):
        circuit = Circuit(3, name="serial-chain")
        circuit.h(0).cnot(0, 1).t(1).cnot(1, 2).h(2).cnot(0, 1)
        result = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert result.aggregation_merges >= 1
        assert result.aggregated_instructions()

    def test_detection_blocks_still_reported_without_merges(self, ocu):
        # On a balanced QAOA layer CLS leaves no slack, so the monotonic
        # rule blocks pair merges — but the detected diagonal blocks are
        # still compiled as aggregated single-pulse instructions.
        spec = benchmark_by_key("maxcut-line-6", scale="small")
        result = compile_circuit(spec.build(), CLS_AGGREGATION, ocu=ocu)
        assert result.aggregated_instructions()


class TestWidthLimitOverride:
    """Regression tests: ``width_limit or default`` silently discarded a
    falsy explicit override."""

    def test_zero_rejected_not_silently_defaulted(self, ocu, qaoa_circuit):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            compile_circuit(
                qaoa_circuit, CLS_AGGREGATION, ocu=ocu, width_limit=0
            )

    def test_negative_rejected(self, ocu, qaoa_circuit):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            compile_circuit(
                qaoa_circuit, CLS_AGGREGATION, ocu=ocu, width_limit=-3
            )

    def test_width_one_disables_merging(self, ocu, qaoa_circuit):
        result = compile_circuit(
            qaoa_circuit, AGGREGATION, ocu=ocu, width_limit=1
        )
        assert result.aggregation_merges == 0

    def test_none_uses_config_default(self, ocu, qaoa_circuit):
        explicit = compile_circuit(
            qaoa_circuit,
            CLS_AGGREGATION,
            ocu=ocu,
            width_limit=10,  # the CompilerConfig default
        )
        defaulted = compile_circuit(
            qaoa_circuit, CLS_AGGREGATION, ocu=ocu, width_limit=None
        )
        assert defaulted.latency_ns == explicit.latency_ns
