"""Tests for the strategy definitions."""

import pytest

from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Strategy,
    all_strategies,
    strategy_by_key,
)
from repro.errors import ConfigError


class TestStrategies:
    def test_five_strategies(self):
        assert len(all_strategies()) == 5

    def test_baseline_first(self):
        assert all_strategies()[0] is ISA

    def test_isa_has_nothing_enabled(self):
        assert not ISA.commutativity_detection
        assert not ISA.cls_scheduling
        assert not ISA.aggregation
        assert not ISA.hand_optimization

    def test_full_flow_flags(self):
        assert CLS_AGGREGATION.commutativity_detection
        assert CLS_AGGREGATION.cls_scheduling
        assert CLS_AGGREGATION.aggregation

    def test_aggregation_without_cls(self):
        assert AGGREGATION.aggregation
        assert not AGGREGATION.cls_scheduling

    def test_hand_excludes_aggregation(self):
        assert CLS_HAND.hand_optimization
        assert not CLS_HAND.aggregation
        with pytest.raises(ConfigError):
            Strategy("bad", "", True, True, True, True)

    def test_lookup(self):
        assert strategy_by_key("cls") is CLS
        with pytest.raises(ConfigError):
            strategy_by_key("nope")

    def test_keys_unique(self):
        keys = [s.key for s in all_strategies()]
        assert len(set(keys)) == len(keys)
