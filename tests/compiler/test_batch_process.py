"""Process-executor tests: thread/process parity, deltas, rejections."""

import pytest

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.passes import LowerPass
from repro.compiler.strategies import all_strategies
from repro.errors import ConfigError
from repro.ir import canonical_result_dict


@pytest.fixture(scope="module")
def sweep_jobs():
    """Two circuits x all five strategies, one with a pinned device."""
    line = maxcut_qaoa_circuit(line_graph(5), name="line5")
    ising = ising_model_circuit(4)
    jobs = [
        BatchJob(circuit=circuit, strategy=strategy)
        for circuit in (line, ising)
        for strategy in all_strategies()
    ]
    jobs.append(BatchJob(circuit=ising, strategy="cls", device="ring-6"))
    return jobs


class TestThreadProcessParity:
    def test_reports_bit_identical_on_canonical_form(self, sweep_jobs):
        """The ISSUE acceptance check: process == thread on every job.

        Identity is judged on the canonical wire form: everything except
        wall-clock timings and the process-global auto-name counter of
        aggregated instructions (renumbered identically on both sides).
        """
        thread = BatchCompiler(max_workers=2).compile_batch(sweep_jobs)
        process = BatchCompiler(
            max_workers=2, executor="process"
        ).compile_batch(sweep_jobs)
        assert thread.executor == "thread"
        assert process.executor == "process"
        assert len(thread) == len(process) == len(sweep_jobs)
        for a, b in zip(thread, process):
            assert a.latency_ns == b.latency_ns
            assert a.swap_count == b.swap_count
            assert a.aggregation_merges == b.aggregation_merges
            assert canonical_result_dict(a) == canonical_result_dict(b)

    def test_process_results_in_job_order(self, sweep_jobs):
        report = BatchCompiler(
            max_workers=2, executor="process"
        ).compile_batch(sweep_jobs)
        expected = [(j.circuit.name, j.strategy.key) for j in sweep_jobs]
        produced = [(r.circuit_name, r.strategy_key) for r in report]
        assert produced == expected

    def test_process_results_verify_against_local_source(self, sweep_jobs):
        report = BatchCompiler(executor="process").compile_batch(
            sweep_jobs[:3]
        )
        for job, result in zip(sweep_jobs, report):
            # The result crossed the process boundary: its embedded
            # source circuit is a deserialized copy, and it must still
            # implement the parent's original circuit.
            assert result.source_circuit is not job.circuit
            assert result.verify_equivalence(job.circuit)


class TestDeltaMerging:
    def test_worker_deltas_land_in_shared_store(self, sweep_jobs):
        engine = BatchCompiler(max_workers=2, executor="process")
        assert engine.cache.latency_count == 0
        report = engine.compile_batch(sweep_jobs)
        assert engine.cache.latency_count > 0
        assert report.cache_info["latency_entries"] == engine.cache.latency_count

    def test_warm_store_seeds_worker_processes(self, sweep_jobs):
        """A warm shared store must reach process workers (pool seeding)."""
        engine = BatchCompiler(max_workers=1, executor="process")
        cold = engine.compile_batch(sweep_jobs)
        assert cold.cache_info["model_evals"] > 0
        # Same engine, fresh pool: workers are seeded with the merged
        # store and must answer every repeated structure from cache.
        warm = engine.compile_batch(sweep_jobs)
        assert warm.cache_info["model_evals"] == 0
        for a, b in zip(cold, warm):
            assert a.latency_ns == b.latency_ns

    def test_merged_store_warms_thread_mode(self, sweep_jobs):
        store_engine = BatchCompiler(max_workers=1, executor="process")
        store_engine.compile_batch(sweep_jobs)
        warm = BatchCompiler(
            cache=store_engine.cache, max_workers=1
        ).compile_batch(sweep_jobs)
        cold = BatchCompiler(max_workers=1).compile_batch(sweep_jobs)
        assert warm.cache_info["model_evals"] * 5 <= max(
            cold.cache_info["model_evals"], 1
        )
        for a, b in zip(warm, cold):
            assert a.latency_ns == b.latency_ns


class TestProcessModeRejections:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigError, match="executor"):
            BatchCompiler(executor="fiber")

    def test_pass_callbacks_rejected(self):
        with pytest.raises(ConfigError, match="pass_callbacks"):
            BatchCompiler(
                executor="process",
                pass_callbacks=[lambda *args: None],
            )

    def test_explicit_pass_list_rejected(self):
        job = BatchJob(
            circuit=maxcut_qaoa_circuit(line_graph(3), name="tiny"),
            passes=(LowerPass(),),
        )
        engine = BatchCompiler(executor="process")
        with pytest.raises(ConfigError, match="cannot cross a process"):
            engine.compile_batch([job])
