"""Tests for the batch pre-warm planner.

The planner dry-runs every job against the analytic model, extracts the
batch's distinct GRAPE worklist by cache signature, synthesizes each
distinct control problem exactly once across workers, and only then
dispatches the jobs — which run entirely warm.  These tests pin the
three contracts that matter: the worklist dedup arithmetic, the
"exactly one synthesis per signature" guarantee (thread AND process
executors, asserted through the ``cache_info`` counters), and bit-level
canonical parity between the pre-warmed and cold paths.
"""

import pytest

from repro.circuit.circuit import Circuit
from repro.compiler.batch import BatchCompiler, BatchJob, _PlanningUnit
from repro.control.cache import CacheSession, PulseCache
from repro.errors import ConfigError
from repro.ir import canonical_result_dict


def _jobs(n=3):
    """``n`` structurally identical two-qubit jobs (distinct names)."""
    jobs = []
    for i in range(n):
        circuit = Circuit(2, name=f"job{i}")
        circuit.h(0)
        circuit.cnot(0, 1)
        circuit.rz(0.4, 1)
        circuit.cnot(0, 1)
        jobs.append(BatchJob(circuit=circuit, strategy="aggregation"))
    return jobs


def _canon(report):
    return [canonical_result_dict(result) for result in report.results]


class TestPrewarmMode:
    def test_auto_tracks_backend(self):
        assert not BatchCompiler(backend="model").prewarm_active()
        assert BatchCompiler(backend="grape").prewarm_active()

    def test_explicit_override_wins(self):
        assert BatchCompiler(backend="model", prewarm=True).prewarm_active()
        assert not BatchCompiler(
            backend="grape", prewarm=False
        ).prewarm_active()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="prewarm"):
            BatchCompiler(prewarm="sometimes")


class TestPlanner:
    def test_identical_jobs_collapse_to_one_worklist(self):
        engine = BatchCompiler(backend="model", prewarm=True)
        worklist, demand = engine.plan_prewarm(_jobs(3))
        assert len(worklist) >= 1
        # Three structurally identical jobs demand every signature three
        # times but contribute it to the worklist once.
        assert demand == 3 * len(worklist)

    def test_planning_unit_respects_qubit_limit(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cnot(0, 1)
        one_qubit, two_qubit = circuit.gates
        recorded = {}
        unit = _PlanningUnit(
            recorded,
            grape_qubit_limit=1,
            cache=CacheSession(PulseCache()),
        )
        unit.latency(two_qubit)
        assert not recorded  # above the GRAPE width limit: never recorded
        unit.latency(one_qubit)
        assert len(recorded) == 1
        (key,) = recorded
        assert key == (unit.fingerprint, unit.node_signature(one_qubit))
        assert recorded[key] == (one_qubit, True)
        # The planning unit prices through the model regardless of the
        # recorded worklist.
        assert unit.backend == "model"
        assert unit.grape_calls == 0

    def test_model_backend_prewarm_has_nothing_to_synthesize(self):
        # The dry-run itself caches every model latency, so the
        # synthesis stage of a model-backend pre-warm finds only hits.
        engine = BatchCompiler(backend="model", prewarm=True)
        report = engine.compile_batch(_jobs(3))
        assert report.prewarm is not None
        assert report.prewarm["synthesized"] == 0
        assert report.prewarm["dedup_ratio"] == pytest.approx(3.0)

    def test_model_backend_canonical_parity(self):
        cold = BatchCompiler(backend="model", prewarm=False).compile_batch(
            _jobs(3)
        )
        warm = BatchCompiler(backend="model", prewarm=True).compile_batch(
            _jobs(3)
        )
        assert _canon(cold) == _canon(warm)

    def test_report_prewarm_none_when_inactive(self):
        report = BatchCompiler(backend="model").compile_batch(_jobs(1))
        assert report.prewarm is None

    def test_lifetime_info_accumulates(self):
        engine = BatchCompiler(backend="model", prewarm=True)
        engine.compile_batch(_jobs(2))
        first = dict(engine.lifetime_info)
        engine.compile_batch(_jobs(2))
        assert engine.lifetime_info["model_evals"] >= first["model_evals"]
        assert engine.lifetime_info["cache_hits"] > first["cache_hits"]


@pytest.mark.slow
class TestPrewarmGrape:
    """End-to-end guarantees with real GRAPE synthesis (tier-2)."""

    @pytest.fixture(scope="class")
    def cold_report(self):
        return BatchCompiler(backend="grape", prewarm=False).compile_batch(
            _jobs(3)
        )

    def test_thread_single_synthesis_and_parity(self, cold_report):
        engine = BatchCompiler(backend="grape", max_workers=2)
        assert engine.prewarm_active()  # auto mode follows the backend
        report = engine.compile_batch(_jobs(3))
        stats = report.prewarm
        assert stats["signatures"] >= 1
        assert stats["dedup_ratio"] == pytest.approx(3.0)
        # Every distinct problem was synthesized exactly once, by the
        # pre-warm stage; the jobs themselves ran entirely from cache.
        assert stats["synthesized"] == stats["signatures"]
        assert report.cache_info["grape_calls"] == stats["signatures"]
        assert report.cache_info["grape_evals"] > 0
        assert report.cache_info["grape_wall_seconds"] > 0.0
        assert _canon(report) == _canon(cold_report)

    def test_process_single_synthesis_and_parity(self, cold_report):
        engine = BatchCompiler(
            backend="grape", executor="process", max_workers=2
        )
        report = engine.compile_batch(_jobs(3))
        stats = report.prewarm
        assert stats["synthesized"] == stats["signatures"]
        assert report.cache_info["grape_calls"] == stats["signatures"]
        assert _canon(report) == _canon(cold_report)

    def test_warm_cache_skips_synthesis_entirely(self, cold_report):
        cache = PulseCache()
        engine = BatchCompiler(backend="grape", cache=cache, max_workers=2)
        engine.compile_batch(_jobs(3))
        again = engine.compile_batch(_jobs(3))
        assert again.prewarm["synthesized"] == 0
        assert again.cache_info["grape_calls"] == 0
        assert _canon(again) == _canon(cold_report)
