"""Tests for the hand-optimization rules."""

import pytest

from repro.aggregation.instruction import AggregatedInstruction
from repro.compiler.hand_opt import (
    HandOptimizedInstruction,
    hand_optimize,
    hand_zz_latency,
)
from repro.config import DEFAULT_DEVICE
from repro.control.latency_model import AnalyticLatencyModel
from repro.gates import library as lib


@pytest.fixture(scope="module")
def model():
    return AnalyticLatencyModel()


class TestHandZzRule:
    def test_cnot_rz_cnot_replaced(self):
        nodes = [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        optimized = hand_optimize(nodes)
        assert len(optimized) == 1
        assert isinstance(optimized[0], HandOptimizedInstruction)

    def test_hand_latency_between_serial_and_optimal(self, model):
        nodes = [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        optimized = hand_optimize(nodes)
        hand = optimized[0].hand_latency_ns
        serial = sum(model.gate_latency(g) for g in nodes)
        optimal = model.sequence_latency(nodes)
        assert optimal < hand < serial

    def test_two_setup_charges(self):
        unitary = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)], name="p"
        ).matrix
        latency = hand_zz_latency(unitary, DEFAULT_DEVICE)
        assert latency >= 2 * DEFAULT_DEVICE.setup_time_2q_ns

    def test_detected_diagonal_block_converted(self):
        block = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        )
        optimized = hand_optimize([block])
        assert isinstance(optimized[0], HandOptimizedInstruction)
        assert optimized[0].hand_latency_ns > 0

    def test_wide_instruction_passes_through(self):
        wide = AggregatedInstruction(
            [lib.CNOT(i, i + 1) for i in range(4)]
        )
        optimized = hand_optimize([wide])
        assert optimized[0] is wide

    def test_non_diagonal_pattern_untouched(self):
        nodes = [lib.CNOT(0, 1), lib.RX(0.7, 1), lib.CNOT(0, 1)]
        optimized = hand_optimize(nodes)
        two_qubit = [n for n in optimized if len(n.qubits) == 2]
        assert len(two_qubit) == 2


class TestSingleQubitFusion:
    def test_consecutive_run_fused(self):
        nodes = [lib.H(0), lib.T(0), lib.H(0)]
        optimized = hand_optimize(nodes)
        assert len(optimized) == 1
        assert isinstance(optimized[0], HandOptimizedInstruction)

    def test_fused_latency_collapses_rotations(self, model):
        # H then H cancels: almost free after fusion.
        optimized = hand_optimize([lib.H(0), lib.H(0)])
        assert optimized[0].hand_latency_ns <= (
            DEFAULT_DEVICE.setup_time_1q_ns + 1e-6
        )

    def test_runs_on_different_qubits_not_fused(self):
        nodes = [lib.H(0), lib.H(1)]
        optimized = hand_optimize(nodes)
        assert len(optimized) == 2

    def test_two_qubit_gate_breaks_run(self):
        nodes = [lib.H(0), lib.CNOT(0, 1), lib.H(0)]
        optimized = hand_optimize(nodes)
        assert len(optimized) == 3

    def test_retarget_preserves_hand_latency(self):
        optimized = hand_optimize([lib.H(0), lib.T(0)])
        moved = optimized[0].on((5,))
        assert isinstance(moved, HandOptimizedInstruction)
        assert moved.hand_latency_ns == pytest.approx(
            optimized[0].hand_latency_ns
        )
        assert moved.qubits == (5,)
