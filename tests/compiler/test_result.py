"""Tests for CompilationResult metrics."""

import pytest

from repro.compiler.result import CompilationResult
from repro.gates import library as lib
from repro.scheduling.schedule import Schedule


def _result(latency=100.0):
    schedule = Schedule(3)
    schedule.add(lib.H(0), 0.0, 10.0)
    schedule.add(lib.CNOT(0, 1), 10.0, 40.0)
    schedule.add(lib.SWAP(1, 2), 50.0, 50.0)
    return CompilationResult(
        strategy_key="isa",
        circuit_name="demo",
        logical_qubits=3,
        physical_qubits=3,
        schedule=schedule,
        latency_ns=latency,
        swap_count=1,
        lowered_gate_count=3,
        aggregation_merges=0,
        stage_seconds={"lowering": 0.01},
        final_mapping={0: 0, 1: 1, 2: 2},
        initial_mapping={0: 0, 1: 1, 2: 2},
    )


class TestCompilationResult:
    def test_node_count(self):
        assert _result().node_count == 3

    def test_width_histogram(self):
        histogram = _result().instruction_width_histogram()
        assert histogram[1] == 1
        assert histogram[2] == 2

    def test_widest_instruction(self):
        assert _result().widest_instruction() == 2

    def test_no_aggregates_in_plain_result(self):
        assert _result().aggregated_instructions() == []

    def test_speedup_over(self):
        fast = _result(latency=50.0)
        slow = _result(latency=200.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert slow.speedup_over(fast) == pytest.approx(0.25)

    def test_speedup_over_zero_latency(self):
        zero = _result(latency=0.0)
        other = _result(latency=10.0)
        assert zero.speedup_over(other) == float("inf")

    def test_summary_contains_key_facts(self):
        text = _result().summary()
        assert "demo" in text and "isa" in text and "swaps" in text
