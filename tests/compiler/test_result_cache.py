"""Tests for the content-addressed compiled-result cache."""

import json

import pytest

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.pipeline import compile_circuit
from repro.compiler.result_cache import (
    RESULT_CACHE_FORMAT,
    DiskResultCache,
    ResultCache,
    engine_component,
    result_key,
)
from repro.compiler.strategies import CLS, CLS_AGGREGATION
from repro.config import DEFAULT_COMPILER
from repro.control.cache import PulseCache
from repro.errors import VerificationError
from repro.ir import canonical_result_dict
from repro.ir.serialize import batch_job_to_dict, circuit_to_dict


def _circuit(name="rc", nodes=4):
    return maxcut_qaoa_circuit(line_graph(nodes), name=name)


def _job(name="rc", nodes=4, strategy="cls"):
    return BatchJob(circuit=_circuit(name, nodes), strategy=strategy)


class TestKeying:
    def test_label_never_changes_the_key(self):
        plain = batch_job_to_dict(_job())
        labelled = batch_job_to_dict(
            BatchJob(circuit=_circuit(), strategy="cls", label="renamed")
        )
        assert result_key(plain) == result_key(labelled)

    def test_circuit_and_strategy_change_the_key(self):
        base = batch_job_to_dict(_job())
        other_circuit = batch_job_to_dict(_job(name="other"))
        other_strategy = batch_job_to_dict(_job(strategy="isa"))
        assert result_key(base) != result_key(other_circuit)
        assert result_key(base) != result_key(other_strategy)

    def test_engine_component_partitions_the_store(self):
        """Same envelope under different engine settings never collides:
        a model-priced result must not serve a grape-priced lookup."""
        envelope = batch_job_to_dict(_job())
        engine = BatchCompiler()
        probe = engine.make_ocu(cache=PulseCache())
        model = engine_component(
            engine.device, DEFAULT_COMPILER, "model", probe.fingerprint
        )
        grape = engine_component(
            engine.device, DEFAULT_COMPILER, "grape", probe.fingerprint
        )
        assert model != grape
        assert result_key(envelope, model) != result_key(envelope, grape)
        assert result_key(envelope, model) != result_key(envelope)


class TestStore:
    def test_round_trip_returns_a_fresh_equal_result(self):
        cache = ResultCache()
        result = compile_circuit(_circuit(), CLS)
        cache.put("k", result)
        loaded = cache.get("k")
        assert loaded is not result
        assert canonical_result_dict(loaded) == canonical_result_dict(result)
        # Every hit deserializes anew: callers never share mutable state.
        assert cache.get("k") is not loaded

    def test_miss_and_hit_counters(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        cache.put("k", compile_circuit(_circuit(), CLS))
        assert cache.get("k") is not None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["lookup_seconds"] > 0

    def test_verify_on_load_accepts_a_genuine_entry(self):
        cache = ResultCache()
        cache.put("k", compile_circuit(_circuit(), CLS))
        loaded = cache.get("k", verify=True)
        assert loaded is not None
        assert cache.stats()["verified_loads"] == 1

    def test_verify_on_load_rejects_a_forged_entry(self, tmp_path):
        """A disk entry whose schedule does not implement its embedded
        source circuit raises at load instead of serving garbage."""
        cache = DiskResultCache(tmp_path / "store")
        result = compile_circuit(_circuit(), CLS)
        cache.put("forged", result)
        # Forge: swap the embedded source for a different program.
        tampered = result.to_dict(include_source=True)
        tampered["source_circuit"] = circuit_to_dict(
            ising_model_circuit(result.logical_qubits)
        )
        path = tmp_path / "store" / "forged.json"
        path.write_text(
            json.dumps(
                {
                    "format": RESULT_CACHE_FORMAT,
                    "key": "forged",
                    "result": tampered,
                }
            )
        )
        fresh = DiskResultCache(tmp_path / "store")
        with pytest.raises(VerificationError):
            fresh.get("forged", verify=True)


class TestEviction:
    def test_lru_eviction_under_a_tight_budget(self):
        entries = {
            f"k{i}": compile_circuit(_circuit(f"evict{i}"), CLS)
            for i in range(3)
        }
        unbounded = ResultCache()
        for key, result in entries.items():
            unbounded.put(key, result)
        one_entry = unbounded.stats()["total_bytes"] // 3
        cache = ResultCache(max_bytes=2 * one_entry + one_entry // 2)
        for key, result in entries.items():
            cache.put(key, result)
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert stats["evicted_bytes"] > 0
        assert stats["total_bytes"] <= cache.max_bytes
        # Least-recently-used went first; the newest entry survives.
        assert cache.get("k0") is None
        assert cache.get("k2") is not None

    def test_get_refreshes_recency(self):
        entries = {
            f"k{i}": compile_circuit(_circuit(f"lru{i}"), CLS)
            for i in range(3)
        }
        unbounded = ResultCache()
        for key, result in entries.items():
            unbounded.put(key, result)
        one_entry = unbounded.stats()["total_bytes"] // 3
        cache = ResultCache(max_bytes=2 * one_entry + one_entry // 2)
        cache.put("k0", entries["k0"])
        cache.put("k1", entries["k1"])
        assert cache.get("k0") is not None  # k1 becomes the LRU victim
        cache.put("k2", entries["k2"])
        assert cache.get("k1") is None
        assert cache.get("k0") is not None

    def test_one_oversized_entry_still_caches(self):
        cache = ResultCache(max_bytes=1)
        cache.put("big", compile_circuit(_circuit(), CLS))
        assert cache.get("big") is not None
        assert cache.stats()["evictions"] == 0


class TestDiskRestart:
    def test_restart_serves_every_job_with_zero_model_evals(self, tmp_path):
        """The kill-and-restart contract: a fresh engine over the same
        directory re-serves the whole batch without compiling."""
        directory = tmp_path / "results"
        jobs = [
            BatchJob(circuit=_circuit(f"disk{i}"), strategy=strategy)
            for i in range(2)
            for strategy in (CLS, CLS_AGGREGATION)
        ]
        first = BatchCompiler(result_cache=DiskResultCache(directory))
        cold = first.compile_batch(jobs)
        assert cold.result_cache["stores"] == len(jobs)

        # "Kill": everything in-memory is gone; only the directory lives.
        reborn = BatchCompiler(result_cache=DiskResultCache(directory))
        warm = reborn.compile_batch(jobs)
        assert warm.result_cache["hits"] == len(jobs)
        assert warm.result_cache["compiled"] == 0
        assert reborn.lifetime_info["model_evals"] == 0
        for a, b in zip(cold, warm):
            assert canonical_result_dict(a) == canonical_result_dict(b)

    def test_string_spec_mounts_a_disk_store(self, tmp_path):
        directory = str(tmp_path / "spec")
        engine = BatchCompiler(result_cache=directory)
        assert isinstance(engine.result_cache, DiskResultCache)
        engine.compile_batch([_job()])
        reborn = BatchCompiler(result_cache=directory)
        report = reborn.compile_batch([_job()])
        assert report.result_cache["hits"] == 1


class TestCompileCircuitIntegration:
    def test_second_call_is_served_from_the_cache(self):
        cache = ResultCache()
        fresh = compile_circuit(_circuit(), CLS, result_cache=cache)
        served = compile_circuit(_circuit(), CLS, result_cache=cache)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == 1
        assert canonical_result_dict(fresh) == canonical_result_dict(served)

    def test_different_strategy_misses(self):
        cache = ResultCache()
        compile_circuit(_circuit(), CLS, result_cache=cache)
        compile_circuit(_circuit(), CLS_AGGREGATION, result_cache=cache)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["stores"] == 2

    def test_cross_layer_parity_with_the_batch_engine(self):
        """compile_circuit and a default BatchCompiler resolve the same
        job to the same key, so either layer can serve the other."""
        cache = ResultCache()
        compile_circuit(_circuit(), CLS, result_cache=cache)
        engine = BatchCompiler(result_cache=cache)
        report = engine.compile_batch([_job()])
        assert report.result_cache["hits"] == 1
        assert report.cache_info["model_evals"] == 0


class TestBatchIntegration:
    def test_in_batch_duplicates_compile_once(self):
        engine = BatchCompiler(result_cache=ResultCache())
        jobs = [
            BatchJob(circuit=_circuit(), strategy="cls", label="a"),
            BatchJob(circuit=_circuit(), strategy="cls", label="b"),
            _job(name="distinct"),
        ]
        report = engine.compile_batch(jobs)
        assert report.result_cache["deduped"] == 1
        assert report.result_cache["compiled"] == 2
        assert report.seconds[1] == 0.0
        assert canonical_result_dict(report[0]) == canonical_result_dict(
            report[1]
        )

    def test_uncacheable_jobs_still_compile(self):
        engine = BatchCompiler(result_cache=ResultCache())
        explicit = BatchJob(
            circuit=_circuit(), passes=tuple(CLS.pipeline())
        )
        report = engine.compile_batch([explicit, explicit])
        assert report.result_cache["uncacheable"] == 2
        assert report.result_cache["compiled"] == 2
        assert len(report) == 2

    def test_run_job_single_serves_from_the_store(self):
        engine = BatchCompiler(result_cache=ResultCache())
        first, _, counters = engine.run_job(_job())
        again, seconds, counters = engine.run_job(_job())
        assert counters["model_evals"] == 0
        assert canonical_result_dict(first) == canonical_result_dict(again)
