"""Pass-manager core tests: parity with the seed monolith, ordering,
instrumentation, and custom pass/strategy registration."""

import time

import pytest

from repro.aggregation.aggregator import aggregate
from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction
from repro.benchmarks.grover import grover_sqrt_circuit
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.context import CompilationContext, STAGES
from repro.compiler.hand_opt import hand_optimize
from repro.compiler.manager import PassManager
from repro.compiler.passes import (
    AggregatePass,
    DetectDiagonalsPass,
    FinalSchedulePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
)
from repro.compiler.pipeline import compile_circuit, compile_with_pipeline
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import (
    CLS_AGGREGATION,
    ISA,
    Strategy,
    all_strategies,
    available_strategy_keys,
    default_pipeline,
    register_strategy,
    registered_strategies,
    strategy_by_key,
    unregister_strategy,
)
from repro.config import DEFAULT_COMPILER, DEFAULT_DEVICE
from repro.control.unit import OptimalControlUnit
from repro.errors import (
    ConfigError,
    PassExecutionError,
    PassOrderingError,
    ReproError,
)
from repro.gates.decompositions import lower_to_standard_set
from repro.mapping.placement import initial_placement
from repro.mapping.router import route
from repro.mapping.topology import grid_for
from repro.scheduling.cls import cls_schedule
from repro.scheduling.list_scheduler import list_schedule


def _seed_compile_circuit(
    circuit,
    strategy,
    device=DEFAULT_DEVICE,
    compiler_config=DEFAULT_COMPILER,
    ocu=None,
    topology=None,
    width_limit=None,
):
    """Frozen copy of the pre-pass-manager ``compile_circuit`` monolith.

    This is the parity oracle: the refactored pipeline must reproduce
    its results bit-for-bit (latencies, swaps, merges, mappings).
    """
    ocu = ocu or OptimalControlUnit(device=device, compiler=compiler_config)
    if width_limit is None:
        width_limit = compiler_config.max_instruction_width
    checker = CommutationChecker(
        exact_qubits=compiler_config.exact_commutation_qubits
    )
    stage_seconds = {}

    def latency_fn(node):
        hand_latency = getattr(node, "hand_latency_ns", None)
        if hand_latency is not None:
            return hand_latency
        if isinstance(node, AggregatedInstruction) and not strategy.aggregation:
            return sum(ocu.latency(gate) for gate in node.gates)
        return ocu.latency(node)

    started = time.perf_counter()
    lowered = lower_to_standard_set(circuit.gates)
    stage_seconds["lowering"] = time.perf_counter() - started

    started = time.perf_counter()
    if strategy.commutativity_detection:
        nodes = detect_diagonal_blocks(lowered, compiler_config)
    else:
        nodes = list(lowered)
    stage_seconds["detection"] = time.perf_counter() - started

    started = time.perf_counter()
    logical_dag = GateDependenceGraph(
        circuit.num_qubits, nodes, checker.commute
    )
    if strategy.cls_scheduling:
        logical_order = cls_schedule(logical_dag, latency_fn).ordered_nodes()
        logical_dag.reorder(logical_order)
    ordered_nodes = logical_dag.stable_topological_order()
    stage_seconds["logical_scheduling"] = time.perf_counter() - started

    started = time.perf_counter()
    topology = topology or grid_for(circuit.num_qubits)
    placement = initial_placement(circuit, topology)
    routing = route(ordered_nodes, placement)
    physical_nodes = routing.nodes
    stage_seconds["mapping"] = time.perf_counter() - started

    started = time.perf_counter()
    aggregation_merges = 0
    if strategy.hand_optimization:
        physical_nodes = hand_optimize(physical_nodes, device)
    physical_dag = GateDependenceGraph(
        topology.num_qubits, physical_nodes, checker.commute
    )
    if strategy.aggregation:
        report = aggregate(
            physical_dag,
            ocu,
            width_limit=width_limit,
            max_rounds=10_000,
        )
        aggregation_merges = report.merges
    stage_seconds["backend"] = time.perf_counter() - started

    started = time.perf_counter()
    if strategy.cls_scheduling:
        schedule = cls_schedule(physical_dag, latency_fn)
    else:
        schedule = list_schedule(physical_dag, latency_fn)
    stage_seconds["final_scheduling"] = time.perf_counter() - started

    return CompilationResult(
        strategy_key=strategy.key,
        circuit_name=circuit.name,
        logical_qubits=circuit.num_qubits,
        physical_qubits=topology.num_qubits,
        schedule=schedule,
        latency_ns=schedule.makespan,
        swap_count=routing.swap_count,
        lowered_gate_count=len(lowered),
        aggregation_merges=aggregation_merges,
        stage_seconds=stage_seconds,
        final_mapping=routing.placement.as_dict(),
        initial_mapping=routing.initial_placement.as_dict(),
    )


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


def _mixed_circuits():
    serial = Circuit(3, name="serial-chain")
    serial.h(0).cnot(0, 1).t(1).cnot(1, 2).h(2).cnot(0, 1)
    return [
        maxcut_qaoa_circuit(line_graph(6), name="line6"),
        ising_model_circuit(5),
        grover_sqrt_circuit(2),
        serial,
    ]


class TestSeedParity:
    """The ISSUE acceptance check: the pass-manager pipeline must be
    bit-identical to the seed ``compile_circuit`` across all five
    Figure 9 strategies and a mixed circuit set."""

    @pytest.mark.parametrize(
        "strategy", all_strategies(), ids=lambda s: s.key
    )
    def test_bit_identical_to_seed_monolith(self, ocu, strategy):
        for circuit in _mixed_circuits():
            seed = _seed_compile_circuit(circuit, strategy, ocu=ocu)
            new = compile_circuit(circuit, strategy, ocu=ocu)
            assert new.latency_ns == seed.latency_ns, circuit.name
            assert new.swap_count == seed.swap_count
            assert new.aggregation_merges == seed.aggregation_merges
            assert new.lowered_gate_count == seed.lowered_gate_count
            assert new.node_count == seed.node_count
            assert new.physical_qubits == seed.physical_qubits
            assert new.final_mapping == seed.final_mapping
            assert new.initial_mapping == seed.initial_mapping
            assert set(new.stage_seconds) == set(seed.stage_seconds)
            assert (
                new.instruction_width_histogram()
                == seed.instruction_width_histogram()
            )

    def test_width_limit_parity(self, ocu):
        circuit = maxcut_qaoa_circuit(line_graph(6), name="line6")
        for width in (1, 3, 10):
            seed = _seed_compile_circuit(
                circuit, CLS_AGGREGATION, ocu=ocu, width_limit=width
            )
            new = compile_circuit(
                circuit, CLS_AGGREGATION, ocu=ocu, width_limit=width
            )
            assert new.latency_ns == seed.latency_ns
            assert new.aggregation_merges == seed.aggregation_merges


class TestPassManager:
    def test_per_pass_timing_recorded(self, ocu):
        circuit = ising_model_circuit(4)
        result = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        expected = {
            "LowerPass",
            "DetectDiagonalsPass",
            "LogicalSchedulePass",
            "PlaceAndRoutePass",
            "AggregatePass",
            "FinalSchedulePass",
        }
        assert set(result.pass_seconds) == expected
        assert all(value >= 0.0 for value in result.pass_seconds.values())

    def test_stage_keys_always_complete(self, ocu):
        # Even the ISA pipeline (no detection/backend passes) reports
        # the full canonical stage-key set, like the seed monolith did.
        circuit = ising_model_circuit(4)
        result = compile_circuit(circuit, ISA, ocu=ocu)
        assert set(result.stage_seconds) == set(STAGES)

    def test_callbacks_see_every_pass(self, ocu):
        seen = []
        compile_circuit(
            ising_model_circuit(4),
            CLS_AGGREGATION,
            ocu=ocu,
            callbacks=[lambda p, ctx, dt: seen.append((p.name, dt))],
        )
        assert [name for name, _ in seen] == [
            "LowerPass",
            "DetectDiagonalsPass",
            "LogicalSchedulePass",
            "PlaceAndRoutePass",
            "AggregatePass",
            "FinalSchedulePass",
        ]
        assert all(dt >= 0.0 for _, dt in seen)

    def test_raising_callback_wrapped_with_context(self, ocu):
        def broken(pass_, context, elapsed):
            raise KeyError("oops")

        with pytest.raises(PassExecutionError) as excinfo:
            compile_circuit(
                ising_model_circuit(4), ISA, ocu=ocu, callbacks=[broken]
            )
        error = excinfo.value
        assert error.pass_name == "LowerPass"
        assert "broken" in str(error)
        assert isinstance(error.__cause__, KeyError)

    def test_callback_library_error_keeps_type(self, ocu):
        # Same contract as pass bodies: a ReproError from a callback
        # propagates with its original type plus a locating note.
        def strict(pass_, context, elapsed):
            raise ConfigError("callback objects")

        with pytest.raises(ConfigError) as excinfo:
            compile_circuit(
                ising_model_circuit(4), ISA, ocu=ocu, callbacks=[strict]
            )
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("callback after pass" in note for note in notes)

    def test_manager_rejects_non_pass(self):
        with pytest.raises(ConfigError):
            PassManager([object()])

    def test_chainable_construction(self):
        manager = PassManager().append(LowerPass()).extend(
            [PlaceAndRoutePass(), FinalSchedulePass(use_cls=False)]
        )
        assert len(manager) == 3
        assert [p.name for p in manager] == [
            "LowerPass",
            "PlaceAndRoutePass",
            "FinalSchedulePass",
        ]

    def test_metrics_recorded_per_pass(self, ocu):
        context = CompilationContext.create(
            ising_model_circuit(4),
            strategy_key=CLS_AGGREGATION.key,
            pulse_backend=True,
            ocu=ocu,
        )
        PassManager(default_pipeline(CLS_AGGREGATION)).run(context)
        assert context.metrics["LowerPass"]["lowered_gates"] > 0
        assert "merges" in context.metrics["AggregatePass"]
        assert "swaps" in context.metrics["PlaceAndRoutePass"]


class TestContextValidation:
    def test_scheduling_before_lowering_raises_clear_error(self, ocu):
        circuit = ising_model_circuit(4)
        with pytest.raises(PassOrderingError) as excinfo:
            compile_with_pipeline(
                circuit, [LogicalSchedulePass()], ocu=ocu
            )
        message = str(excinfo.value)
        assert "LogicalSchedulePass" in message
        assert "LowerPass" in message

    def test_final_schedule_before_routing_raises(self, ocu):
        with pytest.raises(PassOrderingError) as excinfo:
            compile_with_pipeline(
                ising_model_circuit(4),
                [LowerPass(), FinalSchedulePass()],
                ocu=ocu,
            )
        assert "PlaceAndRoutePass" in str(excinfo.value)

    def test_result_without_schedule_raises(self, ocu):
        context = CompilationContext.create(
            ising_model_circuit(4), ocu=ocu
        )
        with pytest.raises(PassOrderingError):
            context.result()

    def test_library_errors_keep_their_type_and_gain_context(self, ocu):
        # width_limit=0 is rejected before any pass runs.
        with pytest.raises(ConfigError):
            compile_circuit(
                ising_model_circuit(4), CLS_AGGREGATION, ocu=ocu,
                width_limit=0,
            )
        # An ordering failure is still a ReproError (not wrapped) and
        # its note names the failing pass and circuit.
        with pytest.raises(ReproError) as excinfo:
            compile_with_pipeline(
                ising_model_circuit(4), [FinalSchedulePass()], ocu=ocu
            )
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("FinalSchedulePass" in note for note in notes)
        assert any("ising" in note for note in notes)

    def test_foreign_exception_wrapped_with_structured_context(self, ocu):
        class ExplodingPass(Pass):
            def run(self, context):
                raise ValueError("boom")

        with pytest.raises(PassExecutionError) as excinfo:
            compile_with_pipeline(
                ising_model_circuit(4),
                [LowerPass(), ExplodingPass()],
                strategy_key="exploding",
                ocu=ocu,
            )
        error = excinfo.value
        assert error.pass_name == "ExplodingPass"
        assert error.pass_index == 1
        assert error.strategy_key == "exploding"
        assert isinstance(error.__cause__, ValueError)


class _CountNodesPass(Pass):
    """Test pass: identity transformation that records a metric."""

    def run(self, context):
        nodes = context.require("nodes", self.name, "run LowerPass first")
        context.record_metrics(self.name, nodes=len(nodes))


@pytest.fixture
def custom_strategy():
    strategy = Strategy(
        key="custom-counted",
        description="full flow plus a user-defined metrics pass",
        commutativity_detection=True,
        cls_scheduling=True,
        aggregation=True,
        hand_optimization=False,
    )
    register_strategy(
        strategy,
        pipeline_factory=lambda s: [
            LowerPass(),
            _CountNodesPass(),
            DetectDiagonalsPass(),
            LogicalSchedulePass(use_cls=True),
            PlaceAndRoutePass(),
            AggregatePass(),
            FinalSchedulePass(use_cls=True),
        ],
    )
    yield strategy
    unregister_strategy("custom-counted")


class TestStrategyRegistration:
    def test_custom_strategy_compiles_end_to_end(self, ocu, custom_strategy):
        circuit = ising_model_circuit(4)
        result = compile_circuit(circuit, custom_strategy, ocu=ocu)
        result.schedule.validate()
        assert result.strategy_key == "custom-counted"
        assert "_CountNodesPass" in result.pass_seconds

    def test_custom_strategy_resolvable_by_key(self, ocu, custom_strategy):
        circuit = ising_model_circuit(4)
        by_key = compile_circuit(circuit, "custom-counted", ocu=ocu)
        direct = compile_circuit(circuit, custom_strategy, ocu=ocu)
        assert by_key.latency_ns == direct.latency_ns

    def test_custom_strategy_through_batch_engine(self, ocu, custom_strategy):
        # The ISSUE acceptance check: a registered strategy compiles
        # through both compile_circuit and the batch engine.
        circuit = ising_model_circuit(4)
        engine = BatchCompiler(max_workers=2)
        report = engine.compile_batch(
            [
                BatchJob(circuit=circuit, strategy="custom-counted"),
                BatchJob(circuit=circuit, strategy=CLS_AGGREGATION),
            ]
        )
        serial = compile_circuit(circuit, custom_strategy, ocu=ocu)
        assert report.results[0].latency_ns == serial.latency_ns
        assert report.results[0].strategy_key == "custom-counted"
        assert report.pass_seconds["_CountNodesPass"] >= 0.0

    def test_job_level_pipeline_override(self, ocu):
        circuit = ising_model_circuit(4)
        engine = BatchCompiler()
        custom = engine.compile_batch(
            [
                BatchJob(
                    circuit=circuit,
                    strategy=ISA,
                    passes=(
                        LowerPass(),
                        LogicalSchedulePass(use_cls=False),
                        PlaceAndRoutePass(),
                        FinalSchedulePass(use_cls=False),
                    ),
                )
            ]
        )
        reference = compile_circuit(circuit, ISA, ocu=ocu)
        assert custom.results[0].latency_ns == reference.latency_ns

    def test_registry_listing_and_errors(self, custom_strategy):
        assert "custom-counted" in available_strategy_keys()
        assert custom_strategy in registered_strategies()
        # Built-ins stay first and untouched.
        assert available_strategy_keys()[:5] == [
            "isa",
            "cls",
            "aggregation",
            "cls+aggregation",
            "cls+hand",
        ]
        assert len(all_strategies()) == 5

    def test_unknown_key_error_lists_available(self, custom_strategy):
        with pytest.raises(ConfigError) as excinfo:
            strategy_by_key("nope")
        message = str(excinfo.value)
        assert "'isa'" in message
        assert "'cls+aggregation'" in message
        assert "'custom-counted'" in message

    def test_duplicate_registration_rejected(self, custom_strategy):
        with pytest.raises(ConfigError):
            register_strategy(custom_strategy)
        # Explicit overwrite is allowed.
        register_strategy(custom_strategy, overwrite=True)

    def test_builtin_keys_protected(self):
        clash = Strategy(
            key="isa",
            description="impostor",
            commutativity_detection=True,
            cls_scheduling=False,
            aggregation=False,
            hand_optimization=False,
        )
        with pytest.raises(ConfigError):
            register_strategy(clash, overwrite=True)
        # Even the genuine built-in object cannot be re-registered (that
        # would silently swap in a custom pipeline factory for its key).
        with pytest.raises(ConfigError):
            register_strategy(ISA, overwrite=True)
        with pytest.raises(ConfigError):
            unregister_strategy("isa")

    def test_non_strategy_rejected(self):
        with pytest.raises(ConfigError):
            register_strategy("not-a-strategy")

    def test_explicit_pipeline_autodetects_pulse_pricing(self, ocu):
        # Regression: an explicit pipeline containing AggregatePass must
        # price aggregated blocks as single pulses without the caller
        # remembering to pass pulse_backend=True.
        circuit = ising_model_circuit(4)
        explicit = compile_with_pipeline(
            circuit,
            [
                LowerPass(),
                DetectDiagonalsPass(),
                LogicalSchedulePass(),
                PlaceAndRoutePass(),
                AggregatePass(),
                FinalSchedulePass(),
            ],
            ocu=ocu,
        )
        reference = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert explicit.latency_ns == reference.latency_ns

    def test_job_pipeline_autodetects_pulse_pricing(self, ocu):
        # Same trap through the batch engine's per-job passes override:
        # the ISA-labeled job runs an aggregation pipeline and must be
        # priced like one.
        circuit = ising_model_circuit(4)
        report = BatchCompiler().compile_batch(
            [
                BatchJob(
                    circuit=circuit,
                    strategy=ISA,
                    passes=(
                        LowerPass(),
                        DetectDiagonalsPass(),
                        LogicalSchedulePass(),
                        PlaceAndRoutePass(),
                        AggregatePass(),
                        FinalSchedulePass(),
                    ),
                )
            ]
        )
        reference = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert report.results[0].latency_ns == reference.latency_ns

    def test_flag_divergent_factory_priced_by_pipeline(self, ocu):
        # A registered factory may diverge from the strategy flags (the
        # only way to combine backends the flags forbid pairing).  Block
        # pricing must follow the pass list that actually runs, and both
        # entry points must agree.
        pipeline = [
            LowerPass(),
            DetectDiagonalsPass(),
            LogicalSchedulePass(),
            PlaceAndRoutePass(),
            AggregatePass(),
            FinalSchedulePass(),
        ]
        strategy = Strategy(
            key="divergent-agg",
            description="aggregating factory under non-aggregation flags",
            commutativity_detection=True,
            cls_scheduling=True,
            aggregation=False,
            hand_optimization=False,
        )
        register_strategy(strategy, pipeline_factory=lambda s: list(pipeline))
        try:
            circuit = ising_model_circuit(4)
            single = compile_circuit(circuit, "divergent-agg", ocu=ocu)
            explicit = compile_with_pipeline(circuit, pipeline, ocu=ocu)
            batched = BatchCompiler().compile_batch(
                [BatchJob(circuit=circuit, strategy="divergent-agg")]
            )
            assert single.latency_ns == explicit.latency_ns
            assert batched.results[0].latency_ns == explicit.latency_ns
        finally:
            unregister_strategy("divergent-agg")

    def test_custom_backend_strategy_honors_aggregation_flag(self, ocu):
        # A registered factory may use a custom backend pass the
        # AggregatePass auto-detection cannot see; the strategy's
        # aggregation flag then still enables single-pulse pricing,
        # through compile_circuit and the batch engine alike.
        class MiniAggregatePass(Pass):
            stage = "backend"

            def run(self, context):
                dag = context.ensure_physical_dag(self.name)
                from repro.aggregation.aggregator import (
                    aggregate as run_aggregate,
                )

                run_aggregate(dag, context.ocu, width_limit=context.width_limit)

        strategy = Strategy(
            key="custom-backend",
            description="non-AggregatePass backend",
            commutativity_detection=True,
            cls_scheduling=True,
            aggregation=True,
            hand_optimization=False,
        )
        register_strategy(
            strategy,
            pipeline_factory=lambda s: [
                LowerPass(),
                DetectDiagonalsPass(),
                LogicalSchedulePass(),
                PlaceAndRoutePass(),
                MiniAggregatePass(),
                FinalSchedulePass(),
            ],
        )
        try:
            circuit = ising_model_circuit(4)
            custom = compile_circuit(circuit, "custom-backend", ocu=ocu)
            reference = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
            assert custom.latency_ns == reference.latency_ns
            batched = BatchCompiler().compile_batch(
                [BatchJob(circuit=circuit, strategy="custom-backend")]
            )
            assert batched.results[0].latency_ns == reference.latency_ns
        finally:
            unregister_strategy("custom-backend")

    def test_job_pulse_backend_override(self, ocu):
        # A custom backend pass the auto-detection cannot see: the job
        # can force single-pulse pricing explicitly.
        circuit = ising_model_circuit(4)
        pipeline = (
            LowerPass(),
            DetectDiagonalsPass(),
            LogicalSchedulePass(),
            PlaceAndRoutePass(),
            AggregatePass(),
            FinalSchedulePass(),
        )
        forced_off = BatchCompiler().compile_batch(
            [
                BatchJob(
                    circuit=circuit,
                    strategy=ISA,
                    passes=pipeline,
                    pulse_backend=False,
                )
            ]
        )
        auto = BatchCompiler().compile_batch(
            [BatchJob(circuit=circuit, strategy=ISA, passes=pipeline)]
        )
        # Detection-only pricing sums member gates, so forcing the
        # backend off yields a strictly slower (or equal) makespan.
        assert forced_off.results[0].latency_ns >= auto.results[0].latency_ns

    def test_key_collision_with_registered_strategy_rejected(
        self, custom_strategy
    ):
        import dataclasses

        variant = dataclasses.replace(
            custom_strategy, description="tweaked variant"
        )
        with pytest.raises(ConfigError):
            variant.pipeline()

    def test_default_pipeline_shapes(self):
        assert [p.name for p in default_pipeline(ISA)] == [
            "LowerPass",
            "LogicalSchedulePass",
            "PlaceAndRoutePass",
            "FinalSchedulePass",
        ]
        assert [p.name for p in default_pipeline(CLS_AGGREGATION)] == [
            "LowerPass",
            "DetectDiagonalsPass",
            "LogicalSchedulePass",
            "PlaceAndRoutePass",
            "AggregatePass",
            "FinalSchedulePass",
        ]
        # Fresh instances every call: pipelines are safe to mutate.
        assert default_pipeline(ISA)[0] is not default_pipeline(ISA)[0]


class TestAggregationRoundsConfig:
    """Satellite regression: ``max_aggregation_rounds`` was validated
    but never used — the old pipeline hard-coded 10_000."""

    def test_config_rounds_honored(self, ocu):
        from repro.config import CompilerConfig

        circuit = Circuit(3, name="serial-chain")
        circuit.h(0).cnot(0, 1).t(1).cnot(1, 2).h(2).cnot(0, 1)
        unlimited = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert unlimited.aggregation_merges > 1
        capped_config = CompilerConfig(max_aggregation_rounds=1)
        capped = compile_circuit(
            circuit,
            CLS_AGGREGATION,
            compiler_config=capped_config,
            ocu=OptimalControlUnit(compiler=capped_config),
        )
        # One round executes strictly fewer merges than convergence.
        assert capped.aggregation_merges < unlimited.aggregation_merges

    def test_pass_level_override_wins(self, ocu):
        circuit = Circuit(3, name="serial-chain")
        circuit.h(0).cnot(0, 1).t(1).cnot(1, 2).h(2).cnot(0, 1)
        result = compile_with_pipeline(
            circuit,
            [
                LowerPass(),
                DetectDiagonalsPass(),
                LogicalSchedulePass(),
                PlaceAndRoutePass(),
                AggregatePass(max_rounds=1),
                FinalSchedulePass(),
            ],
            pulse_backend=True,
            ocu=ocu,
        )
        reference = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        assert result.aggregation_merges <= reference.aggregation_merges
