"""Tests for the batch compilation engine and its shared cache."""

import pytest

from repro.benchmarks.grover import grover_sqrt_circuit
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import (
    BatchCompiler,
    BatchJob,
    compile_batch,
    resolve_engine,
)
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import CLS, CLS_AGGREGATION, ISA, all_strategies
from repro.config import DeviceConfig
from repro.control.cache import DiskPulseCache, PulseCache
from repro.control.unit import OptimalControlUnit
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def suite_jobs():
    """Ten jobs over two circuits and all five strategies."""
    line = maxcut_qaoa_circuit(line_graph(6), name="line6")
    ising = ising_model_circuit(5)
    return [
        BatchJob(circuit=circuit, strategy=strategy)
        for circuit in (line, ising)
        for strategy in all_strategies()
    ]


class TestBatchSerialParity:
    def test_batch_matches_serial_bit_for_bit(self, suite_jobs):
        """The ISSUE acceptance check: >= 8 jobs, >= 2 workers."""
        assert len(suite_jobs) >= 8
        serial = [
            compile_circuit(job.circuit, job.strategy) for job in suite_jobs
        ]
        report = BatchCompiler(max_workers=2).compile_batch(suite_jobs)
        assert len(report) == len(suite_jobs)
        for batched, reference in zip(report, serial):
            assert batched.latency_ns == reference.latency_ns
            assert batched.swap_count == reference.swap_count
            assert batched.aggregation_merges == reference.aggregation_merges
            assert batched.strategy_key == reference.strategy_key

    def test_results_in_job_order(self, suite_jobs):
        report = BatchCompiler(max_workers=3).compile_batch(suite_jobs)
        expected = [(j.circuit.name, j.strategy.key) for j in suite_jobs]
        produced = [(r.circuit_name, r.strategy_key) for r in report]
        assert produced == expected

    def test_single_worker_path(self, suite_jobs):
        serial_report = BatchCompiler(max_workers=1).compile_batch(suite_jobs)
        threaded_report = BatchCompiler(max_workers=4).compile_batch(suite_jobs)
        for a, b in zip(serial_report, threaded_report):
            assert a.latency_ns == b.latency_ns


class TestWarmCache:
    def test_second_run_needs_far_fewer_model_evals(self, suite_jobs):
        engine = BatchCompiler(max_workers=2)
        cold = engine.compile_batch(suite_jobs)
        warm = engine.compile_batch(suite_jobs)
        assert cold.cache_info["model_evals"] > 0
        assert warm.cache_info["model_evals"] * 5 <= cold.cache_info["model_evals"]
        assert warm.cache_info["grape_calls"] == 0
        for a, b in zip(cold, warm):
            assert a.latency_ns == b.latency_ns

    def test_cache_reused_across_engines_sharing_store(self, suite_jobs):
        store = PulseCache()
        cold = BatchCompiler(cache=store, max_workers=2).compile_batch(suite_jobs)
        warm = BatchCompiler(cache=store, max_workers=2).compile_batch(suite_jobs)
        assert warm.cache_info["model_evals"] * 5 <= cold.cache_info["model_evals"]

    def test_disk_round_trip_warms_new_process_engine(self, tmp_path, suite_jobs):
        stem = tmp_path / "pulse_cache"
        engine = BatchCompiler(cache=DiskPulseCache(stem), max_workers=2)
        cold = engine.compile_batch(suite_jobs)
        assert engine.save_cache() > 0

        # A brand-new engine over freshly loaded files: simulates a new
        # process picking the cache up from disk.
        warm_engine = BatchCompiler(cache=DiskPulseCache(stem), max_workers=2)
        warm = warm_engine.compile_batch(suite_jobs)
        assert warm.cache_info["model_evals"] * 5 <= cold.cache_info["model_evals"]
        for a, b in zip(cold, warm):
            assert a.latency_ns == b.latency_ns

    def test_device_change_invalidates_fingerprint(self, suite_jobs):
        # Serial workers: concurrent jobs can duplicate an uncached
        # evaluation (deltas merge at job completion), which would make
        # the eval counts nondeterministic.
        store = PulseCache()
        cold = BatchCompiler(cache=store, max_workers=1).compile_batch(suite_jobs)
        other_device = DeviceConfig(coupling_limit_ghz=0.04)
        other = BatchCompiler(
            device=other_device, cache=store, max_workers=1
        ).compile_batch(suite_jobs)
        # Different physics: no entry may be reused, so the second run
        # re-evaluates every unique structure (and computes different
        # latencies).
        assert other.cache_info["model_evals"] == cold.cache_info["model_evals"]
        assert other.cache_info["model_evals"] > 0
        assert store.latency_count == 2 * cold.cache_info["model_evals"]
        assert any(
            a.latency_ns != b.latency_ns for a, b in zip(cold, other)
        )


class TestJobCoercion:
    def test_tuple_and_bare_circuit_jobs(self):
        circuit = maxcut_qaoa_circuit(line_graph(4), name="line4")
        report = compile_batch(
            [circuit, (circuit, CLS), (circuit, CLS_AGGREGATION, 3)]
        )
        assert [r.strategy_key for r in report] == [
            "isa",
            "cls",
            "cls+aggregation",
        ]

    def test_bad_jobs_rejected(self):
        circuit = maxcut_qaoa_circuit(line_graph(4), name="line4")
        engine = BatchCompiler()
        with pytest.raises(ConfigError):
            engine.compile_batch([42])
        with pytest.raises(ConfigError):
            engine.compile_batch([(circuit, "isa")])
        with pytest.raises(ConfigError):
            engine.compile_batch([(circuit, ISA, 3, None)])

    def test_job_key_label(self):
        circuit = maxcut_qaoa_circuit(line_graph(4), name="line4")
        assert BatchJob(circuit=circuit, strategy=CLS).key == "line4/cls"
        assert BatchJob(circuit=circuit, label="custom").key == "custom"


class TestEngineBasics:
    def test_empty_batch(self):
        report = BatchCompiler().compile_batch([])
        assert len(report) == 0
        assert report.workers == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError):
            BatchCompiler(max_workers=0)

    def test_compile_single_through_shared_cache(self):
        engine = BatchCompiler()
        circuit = grover_sqrt_circuit(2)
        first = engine.compile(circuit, CLS_AGGREGATION)
        reference = compile_circuit(circuit, CLS_AGGREGATION)
        assert first.latency_ns == reference.latency_ns

    def test_from_ocu_shares_cache(self):
        ocu = OptimalControlUnit(backend="model")
        ocu.latency(maxcut_qaoa_circuit(line_graph(4)).gates[0])
        engine = BatchCompiler.from_ocu(ocu, max_workers=2)
        assert engine.cache is ocu.cache
        assert engine.backend == "model"

    def test_with_disk_cache(self, tmp_path):
        engine = BatchCompiler.with_disk_cache(tmp_path / "store")
        assert isinstance(engine.cache, DiskPulseCache)

    def test_resolve_engine_precedence(self):
        explicit = BatchCompiler()
        ocu = OptimalControlUnit()
        assert resolve_engine(explicit, ocu) is explicit
        wrapped = resolve_engine(None, ocu)
        assert wrapped.cache is ocu.cache
        assert resolve_engine(None, None).cache is not ocu.cache

    def test_report_total_latency(self, suite_jobs):
        report = BatchCompiler(max_workers=2).compile_batch(suite_jobs[:3])
        assert report.total_latency_ns() == pytest.approx(
            sum(r.latency_ns for r in report.results)
        )
