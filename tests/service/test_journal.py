"""Tests for the crash-safe job journal."""

import json
import os

import pytest

from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.errors import ServiceError
from repro.ir.serialize import batch_job_to_dict
from repro.service.journal import JobJournal


def _record(job_id: str, serial: int, state: str) -> dict:
    circuit = maxcut_qaoa_circuit(line_graph(3), name="j")
    return {
        "job_id": job_id,
        "serial": serial,
        "state": state,
        "job": batch_job_to_dict(BatchJob(circuit=circuit)),
        "signature": "s" * 64,
        "label": None,
        "submitted_at": 1.0,
        "started_at": None,
        "finished_at": None,
        "attempts": 0,
        "error": None,
    }


class TestManifest:
    def test_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        journal.record(_record("job-1", 1, "queued"))
        journal.record(_record("job-2", 2, "done"))
        reloaded = JobJournal(tmp_path / "journal")
        assert len(reloaded) == 2
        assert reloaded.get("job-1")["state"] == "queued"
        assert reloaded.get("job-2")["state"] == "done"

    def test_update_replaces_in_place(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        journal.record(_record("job-1", 1, "queued"))
        journal.record(_record("job-1", 1, "running"))
        assert len(journal) == 1
        assert JobJournal(tmp_path / "journal").get("job-1")["state"] == "running"

    def test_no_temp_droppings(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        for index in range(5):
            journal.record(_record(f"job-{index}", index, "queued"))
        leftovers = [
            name
            for name in os.listdir(journal.directory)
            if ".tmp" in name
        ]
        assert leftovers == []

    def test_unknown_format_rejected(self, tmp_path):
        directory = tmp_path / "journal"
        directory.mkdir()
        (directory / "journal.json").write_text(
            json.dumps({"format": "something-else", "jobs": []})
        )
        with pytest.raises(ServiceError, match="unknown journal format"):
            JobJournal(directory)

    def test_serial_survives_restart(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        assert journal.allocate_serial() == 1
        journal.record(_record("job-1", 1, "queued"))
        reloaded = JobJournal(tmp_path / "journal")
        assert reloaded.allocate_serial() == 2


class TestResumable:
    def test_queued_and_running_resume_in_serial_order(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        journal.record(_record("job-3", 3, "queued"))
        journal.record(_record("job-1", 1, "running"))
        journal.record(_record("job-2", 2, "failed"))
        resumable = [r["job_id"] for r in journal.resumable()]
        assert resumable == ["job-1", "job-3"]

    def test_done_with_artifact_does_not_resume(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        circuit = maxcut_qaoa_circuit(line_graph(3), name="done")
        result, _, _ = BatchCompiler().run_job(BatchJob(circuit=circuit))
        journal.write_result("job-1", result)
        journal.record(_record("job-1", 1, "done"))
        assert journal.resumable() == []

    def test_done_with_missing_artifact_resumes(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        journal.record(_record("job-1", 1, "done"))
        assert [r["job_id"] for r in journal.resumable()] == ["job-1"]


class TestResultArtifacts:
    def test_write_then_read_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        circuit = maxcut_qaoa_circuit(line_graph(4), name="art")
        result, _, _ = BatchCompiler().run_job(BatchJob(circuit=circuit))
        path = journal.write_result("job-1", result)
        assert os.path.exists(path)
        loaded = journal.read_result("job-1")
        assert loaded.latency_ns == result.latency_ns
        assert loaded.verify_equivalence()

    def test_missing_or_corrupt_artifact_reads_none(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        assert journal.read_result("job-1") is None
        with open(journal.result_path("job-2"), "w") as handle:
            handle.write("{not json")
        assert journal.read_result("job-2") is None
