"""Tests for the per-signature circuit breaker."""

import pytest

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def breaker(clock) -> CircuitBreaker:
    return CircuitBreaker(threshold=3, cooldown=30.0, clock=clock)


class TestTrip:
    def test_unknown_signature_is_allowed(self, breaker):
        allowed, retry_after = breaker.allow("sig")
        assert allowed
        assert retry_after == 0.0

    def test_failures_below_threshold_stay_closed(self, breaker):
        for _ in range(2):
            assert not breaker.record_failure("sig")
        assert breaker.state_of("sig") == CLOSED
        assert breaker.allow("sig")[0]

    def test_threshold_consecutive_failures_trip(self, breaker):
        breaker.record_failure("sig")
        breaker.record_failure("sig")
        assert breaker.record_failure("sig")
        assert breaker.state_of("sig") == OPEN
        allowed, retry_after = breaker.allow("sig")
        assert not allowed
        assert 0.0 < retry_after <= 30.0

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure("sig")
        breaker.record_failure("sig")
        breaker.record_success("sig")
        assert not breaker.record_failure("sig")
        assert breaker.state_of("sig") == CLOSED

    def test_signatures_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        assert not breaker.allow("bad")[0]
        assert breaker.allow("good")[0]


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure("sig")

    def test_cooldown_admits_exactly_one_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance(31.0)
        assert breaker.state_of("sig") == HALF_OPEN
        assert breaker.allow("sig")[0]  # the probe
        allowed, retry_after = breaker.allow("sig")  # others wait on it
        assert not allowed
        assert retry_after == 1.0

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(31.0)
        assert breaker.allow("sig")[0]
        breaker.record_success("sig")
        assert breaker.state_of("sig") == CLOSED
        assert breaker.allow("sig")[0]
        assert breaker.stats()["recoveries"] == 1

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(31.0)
        assert breaker.allow("sig")[0]
        assert breaker.record_failure("sig")
        assert breaker.state_of("sig") == OPEN
        assert not breaker.allow("sig")[0]
        clock.advance(31.0)
        assert breaker.allow("sig")[0]  # next probe slot


class TestStats:
    def test_counters(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("sig")
        breaker.allow("sig")
        stats = breaker.stats()
        assert stats["tripped"] == 1
        assert stats["rejections"] == 1
        assert stats["open"] == 1
        assert stats["tracked_signatures"] == 1

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
