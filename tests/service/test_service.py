"""End-to-end tests for the compile service over real sockets.

Determinism notes: ``workers=0`` keeps submitted jobs queued forever,
which pins queue states for the backpressure and cancel-while-queued
tests; the poisoned job (a 5-qubit circuit pinned to a 3-qubit device)
fails placement identically on every attempt, which drives the breaker
tests; restart tests share one journal directory and one disk cache
stem across server generations.
"""

import threading
import time

import pytest

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.result_cache import ResultCache
from repro.control.cache import DiskPulseCache
from repro.errors import ServiceBusyError, ServiceError
from repro.service import CompileService, ServiceClient
from repro.service.protocol import (
    REJECT_QUARANTINED,
    REJECT_QUEUE_FULL,
    SERVICE_FORMAT,
    send_message,
)


def _circuit(name="svc", nodes=4):
    return maxcut_qaoa_circuit(line_graph(nodes), name=name)


def _poisoned_job() -> BatchJob:
    """Deterministically uncompilable: 5 qubits on a 3-qubit device."""
    return BatchJob(circuit=ising_model_circuit(5), device="line-3")


@pytest.fixture
def service():
    with CompileService(workers=2) as running:
        yield running


class TestRoundTrip:
    def test_submit_poll_fetch_verify(self, service):
        with ServiceClient(service.url) as client:
            assert client.ping() == SERVICE_FORMAT
            circuit = _circuit()
            job_id = client.submit(circuit, strategy="cls", label="rt")
            result = client.wait(job_id, timeout=120)
            assert result.verify_equivalence(circuit=circuit)
            status = client.status(job_id)
            assert status["state"] == "done"
            assert status["attempts"] == 1
            assert status["seconds"] > 0
            assert status["pass_seconds"]  # per-pass timing travelled

    def test_batch_of_three_through_one_connection(self, service):
        with ServiceClient(service.url) as client:
            circuits = [_circuit(f"b{i}", nodes=3 + i) for i in range(3)]
            job_ids = [
                client.submit(circuit, label=f"b{i}")
                for i, circuit in enumerate(circuits)
            ]
            assert len(set(job_ids)) == 3
            for circuit, job_id in zip(circuits, job_ids):
                result = client.wait(job_id, timeout=120)
                assert result.verify_equivalence(circuit=circuit)
            stats = client.stats()
            assert stats["completed"] >= 3
            assert stats["queue"]["depth"] == 0

    def test_jobs_listing_in_submission_order(self, service):
        with ServiceClient(service.url) as client:
            first = client.submit(_circuit("first"), label="first")
            second = client.submit(_circuit("second"), label="second")
            client.wait(first, timeout=120)
            client.wait(second, timeout=120)
            labels = [job["label"] for job in client.jobs()]
            assert labels == ["first", "second"]

    def test_result_before_done_is_none(self):
        with CompileService(workers=0) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(_circuit())
                assert client.result(job_id) is None
                assert client.status(job_id)["state"] == "queued"

    def test_unknown_job_id_is_an_error(self, service):
        with ServiceClient(service.url) as client:
            with pytest.raises(ServiceError, match="unknown job id"):
                client.status("job-999-deadbeef")

    def test_malformed_submission_fails_the_submitter(self, service):
        with ServiceClient(service.url) as client:
            with pytest.raises(ServiceError):
                client.submit_job({"format": "nope"})
            # The connection (and server) survive the bad frame.
            assert client.ping() == SERVICE_FORMAT


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        with CompileService(workers=0, queue_limit=2) as service:
            with ServiceClient(service.url) as client:
                client.submit(_circuit("a"))
                client.submit(_circuit("b"))
                with pytest.raises(ServiceBusyError) as excinfo:
                    client.submit(_circuit("c"))
                assert excinfo.value.reason == REJECT_QUEUE_FULL
                assert excinfo.value.retry_after > 0
                stats = client.stats()
                assert stats["rejected_busy"] == 1
                assert stats["queue"]["depth"] == 2

    def test_cancel_while_queue_full_resolves_the_job(self):
        with CompileService(workers=0, queue_limit=1) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(_circuit("a"))
                with pytest.raises(ServiceBusyError):
                    client.submit(_circuit("b"))
                assert client.cancel(job_id) == "cancelled"
                # The queue slot is held by the dead entry until a
                # worker skips it; submit_retrying rides the hint.
                assert client.status(job_id)["state"] == "cancelled"


class TestCancellation:
    def test_cancel_queued_job_resolves_immediately(self):
        with CompileService(workers=0) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(_circuit())
                assert client.cancel(job_id) == "cancelled"
                status = client.status(job_id)
                assert status["state"] == "cancelled"
                with pytest.raises(ServiceError, match="cancelled"):
                    client.result(job_id)

    def test_cancelled_job_never_runs(self):
        with CompileService(workers=0) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(_circuit())
                client.cancel(job_id)
                stats = client.stats()
                assert stats["completed"] == 0
                assert stats["cancelled"] == 1

    def test_timeout_cancels_and_counts_as_failure(self):
        with CompileService(workers=1, job_timeout=0.0) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(_circuit())
                with pytest.raises(ServiceError, match="timed out"):
                    client.wait(job_id, timeout=120)
                status = client.status(job_id)
                assert status["state"] == "failed"
                assert "timed out" in status["error"]
                assert client.stats()["timed_out"] == 1


class TestCircuitBreaker:
    def test_consecutive_failures_quarantine_the_signature(self):
        with CompileService(
            workers=1, breaker_threshold=2, breaker_cooldown=300.0
        ) as service:
            with ServiceClient(service.url) as client:
                for _ in range(2):
                    job_id = client.submit_job(_poisoned_job())
                    with pytest.raises(ServiceError, match="failed"):
                        client.wait(job_id, timeout=120)
                with pytest.raises(ServiceBusyError) as excinfo:
                    client.submit_job(_poisoned_job())
                assert excinfo.value.reason == REJECT_QUARANTINED
                assert excinfo.value.retry_after > 0
                stats = client.stats()
                assert stats["failed"] == 2
                assert stats["rejected_quarantined"] == 1
                assert stats["breaker"]["open"] == 1
                # A different circuit is unaffected.
                good = client.submit(_circuit())
                client.wait(good, timeout=120)

    def test_half_open_admits_one_probe_whose_failure_reopens(self):
        with CompileService(
            workers=1, breaker_threshold=1, breaker_cooldown=0.05
        ) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit_job(_poisoned_job())
                with pytest.raises(ServiceError):
                    client.wait(job_id, timeout=120)
                # Quarantined; after the cooldown one probe is admitted.
                time.sleep(0.1)
                probe_id = client.submit_job(_poisoned_job())
                with pytest.raises(ServiceError):
                    client.wait(probe_id, timeout=120)
                # The failed probe re-opened the breaker immediately.
                with pytest.raises(ServiceBusyError) as excinfo:
                    client.submit_job(_poisoned_job())
                assert excinfo.value.reason == REJECT_QUARANTINED
                assert client.stats()["breaker"]["tripped"] == 2

    def test_success_closes_the_breaker(self):
        with CompileService(workers=1, breaker_threshold=3) as service:
            with ServiceClient(service.url) as client:
                circuit = _circuit()
                for _ in range(2):
                    # Failures of one signature never block another.
                    bad = client.submit_job(_poisoned_job())
                    with pytest.raises(ServiceError):
                        client.wait(bad, timeout=120)
                good = client.submit(circuit)
                client.wait(good, timeout=120)
                assert client.stats()["breaker"]["open"] == 0


class TestRestart:
    def test_completed_jobs_survive_a_restart(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        stem = str(tmp_path / "cache")
        circuit = _circuit("restart")
        with CompileService(
            engine=BatchCompiler(cache=DiskPulseCache(stem)),
            workers=1,
            journal=journal_dir,
        ) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(circuit, label="restart")
                first = client.wait(job_id, timeout=120)

        with CompileService(
            engine=BatchCompiler(cache=DiskPulseCache(stem)),
            workers=1,
            journal=journal_dir,
        ) as reborn:
            with ServiceClient(reborn.url) as client:
                status = client.status(job_id)
                assert status["state"] == "done"
                assert status["attempts"] == 1  # not recompiled
                again = client.result(job_id)
                assert again.latency_ns == first.latency_ns
                assert again.verify_equivalence(circuit=circuit)
            # Serving the artifact costs zero compilation.
            assert reborn.engine.lifetime_info["model_evals"] == 0

    def test_interrupted_jobs_resume_warm(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        stem = str(tmp_path / "cache")
        circuit = _circuit("resume")
        # Generation 1: one job completes, warming the disk cache for
        # this circuit/strategy.
        with CompileService(
            engine=BatchCompiler(cache=DiskPulseCache(stem)),
            workers=1,
            journal=journal_dir,
        ) as service:
            with ServiceClient(service.url) as client:
                done_id = client.submit(circuit, label="done")
                client.wait(done_id, timeout=120)

        # Generation 2 has no workers: two accepted jobs are still
        # queued when it "dies" — the mid-batch kill.  Distinct circuit
        # names keep their signatures fresh (a byte-identical repeat of
        # the generation-1 job would be served done from its artifact
        # instead of queueing).
        queued_circuits = [_circuit(f"resume-q{i}") for i in range(2)]
        with CompileService(
            engine=BatchCompiler(cache=DiskPulseCache(stem)),
            workers=0,
            journal=journal_dir,
        ) as service:
            with ServiceClient(service.url) as client:
                queued = [
                    client.submit(queued_circuits[i], label=f"queued-{i}")
                    for i in range(2)
                ]
                assert client.stats()["queue"]["depth"] == 2

        # Generation 3 over the same journal and cache resumes them.
        with CompileService(
            engine=BatchCompiler(cache=DiskPulseCache(stem)),
            workers=1,
            journal=journal_dir,
        ) as reborn:
            assert reborn.resumed == 2
            with ServiceClient(reborn.url) as client:
                for job_id, queued_circuit in zip(queued, queued_circuits):
                    result = client.wait(job_id, timeout=120)
                    assert result.verify_equivalence(circuit=queued_circuit)
                assert client.status(done_id)["state"] == "done"
            # The resumed jobs answer every optimal-control query from
            # the warm cache: zero fresh work in the whole generation.
            assert reborn.engine.lifetime_info["model_evals"] == 0


class TestResultCacheServing:
    def test_resubmission_is_served_done_at_submit_time(self):
        engine = BatchCompiler(result_cache=ResultCache())
        with CompileService(engine=engine, workers=1) as service:
            with ServiceClient(service.url) as client:
                circuit = _circuit("served")
                first = client.submit(circuit, label="one")
                original = client.wait(first, timeout=120)
                # Different label, same signature: done on arrival.
                second = client.submit(circuit, label="two")
                assert second != first
                assert client.status(second)["state"] == "done"
                again = client.result(second)
                assert again.latency_ns == original.latency_ns
                assert again.verify_equivalence(circuit=circuit)
                stats = client.stats()
                assert stats["completed"] == 1  # served != compiled
                assert stats["result_cache"]["hits"] == 1
                assert stats["result_cache"]["misses"] == 1
                # The engine's own store stats travel alongside.
                assert stats["result_cache"]["engine"]["stores"] == 1

    def test_serving_survives_a_restart_via_the_journal(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        circuit = _circuit("journal-served")
        with CompileService(workers=1, journal=journal_dir) as service:
            with ServiceClient(service.url) as client:
                job_id = client.submit(circuit)
                client.wait(job_id, timeout=120)

        with CompileService(workers=1, journal=journal_dir) as reborn:
            with ServiceClient(reborn.url) as client:
                again = client.submit(circuit)
                assert again != job_id
                assert client.status(again)["state"] == "done"
                result = client.result(again)
                assert result.verify_equivalence(circuit=circuit)
                assert client.stats()["completed"] == 0
            # The artifact came off disk: zero compilation work.
            assert reborn.engine.lifetime_info["model_evals"] == 0

    def test_stats_envelope_round_trips_the_new_counters(self, service):
        from repro.ir.serialize import (
            service_stats_from_dict,
            service_stats_to_dict,
        )

        raw = service.stats()
        assert raw["coalesced_submissions"] == 0
        assert raw["result_cache"] == {"hits": 0, "misses": 0}
        decoded = service_stats_from_dict(service_stats_to_dict(raw))
        assert decoded["coalesced_submissions"] == 0
        assert decoded["result_cache"] == raw["result_cache"]


class TestCoalescing:
    def test_identical_queued_submissions_coalesce(self):
        with CompileService(workers=0) as service:
            with ServiceClient(service.url) as client:
                circuit = _circuit("co")
                primary = client.submit(circuit, label="primary")
                follower = client.submit(circuit, label="follower")
                assert follower != primary
                assert client.status(follower)["state"] == "queued"
                stats = client.stats()
                assert stats["coalesced_submissions"] == 1
                # The follower rides the primary: one queue slot total.
                assert stats["queue"]["depth"] == 1

    def test_follower_completes_with_the_primary(self):
        with CompileService(workers=1) as service:
            with ServiceClient(service.url) as client:
                circuit = _circuit("co-done", nodes=8)
                primary = client.submit(circuit, label="p")
                follower = client.submit(circuit, label="f")
                a = client.wait(primary, timeout=120)
                b = client.wait(follower, timeout=120)
                assert a.latency_ns == b.latency_ns
                stats = client.stats()
                assert stats["completed"] == 1
                # The second submission either coalesced onto the live
                # primary or (if the primary already finished) was
                # served from its result — one compilation either way.
                assert (
                    stats["coalesced_submissions"]
                    + stats["result_cache"]["hits"]
                ) == 1

    def test_cancelling_the_primary_promotes_a_follower(self):
        with CompileService(workers=0) as service:
            with ServiceClient(service.url) as client:
                circuit = _circuit("promote")
                primary = client.submit(circuit, label="primary")
                follower = client.submit(circuit, label="follower")
                assert client.cancel(primary) == "cancelled"
                # The follower took over the signature and queued.
                assert client.status(follower)["state"] == "queued"
                # A third identical submission coalesces onto it.
                client.submit(circuit, label="third")
                assert client.stats()["coalesced_submissions"] == 2

    def test_followers_share_the_primary_failure(self):
        with CompileService(workers=1) as service:
            with ServiceClient(service.url) as client:
                first = client.submit_job(_poisoned_job())
                second = client.submit_job(_poisoned_job())
                for job_id in (first, second):
                    with pytest.raises(ServiceError, match="failed"):
                        client.wait(job_id, timeout=120)
                assert client.stats()["failed"] == 2


class TestCounters:
    def test_threaded_dispatch_loses_no_op_counts(self, service):
        threads, pings = 8, 400

        def hammer():
            with ServiceClient(service.url) as client:
                for _ in range(pings):
                    client.ping()

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert service.op_counts["ping"] == threads * pings

    def test_dispatch_exception_counts_as_error(self, service):
        import socket

        from repro.control.cache.protocol import recv_message

        with socket.create_connection(service.address) as sock:
            send_message(sock, {"op": "submit", "job": "not-a-dict"})
            response = recv_message(sock)
        assert response["ok"] is False
        assert service.errors == 1
