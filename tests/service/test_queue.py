"""Tests for the bounded reject-not-block job queue."""

import threading

import pytest

from repro.service.queue import BoundedJobQueue


class TestAdmission:
    def test_fifo_order(self):
        queue = BoundedJobQueue()
        for item in ("a", "b", "c"):
            assert queue.offer(item)
        assert [queue.take(timeout=0) for _ in range(3)] == ["a", "b", "c"]

    def test_full_queue_rejects_without_blocking(self):
        queue = BoundedJobQueue(limit=2)
        assert queue.offer("a")
        assert queue.offer("b")
        assert not queue.offer("c")
        assert len(queue) == 2
        assert queue.stats()["rejected"] == 1

    def test_force_bypasses_the_limit(self):
        queue = BoundedJobQueue(limit=1)
        assert queue.offer("a")
        assert not queue.offer("b")
        assert queue.offer("b", force=True)
        assert len(queue) == 2

    def test_take_frees_a_slot(self):
        queue = BoundedJobQueue(limit=1)
        assert queue.offer("a")
        assert queue.take(timeout=0) == "a"
        assert queue.offer("b")

    def test_limit_below_one_rejected(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(limit=0)


class TestTake:
    def test_timeout_returns_none(self):
        queue = BoundedJobQueue()
        assert queue.take(timeout=0.01) is None

    def test_take_wakes_on_offer(self):
        queue = BoundedJobQueue()
        taken = []
        thread = threading.Thread(
            target=lambda: taken.append(queue.take(timeout=5))
        )
        thread.start()
        queue.offer("wake")
        thread.join(timeout=5)
        assert taken == ["wake"]


class TestClose:
    def test_close_drains_and_stops_admissions(self):
        queue = BoundedJobQueue()
        queue.offer("a")
        queue.offer("b")
        drained = queue.close()
        assert drained == ["a", "b"]
        assert queue.closed
        assert not queue.offer("c")
        assert not queue.offer("c", force=True)
        assert queue.take(timeout=0) is None

    def test_close_wakes_blocked_takers(self):
        queue = BoundedJobQueue()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.take(timeout=30))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert results == [None]
