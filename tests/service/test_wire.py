"""Round-trip tests for the service's repro-ir-v1 envelopes."""

import json

import pytest

from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchJob
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import Strategy
from repro.errors import SerializationError
from repro.ir.serialize import (
    batch_job_from_dict,
    batch_job_to_dict,
    dumps,
    job_status_from_dict,
    job_status_to_dict,
    loads,
    service_stats_from_dict,
    service_stats_to_dict,
)
from repro.service.server import job_signature


def _circuit(name="wire"):
    return maxcut_qaoa_circuit(line_graph(4), name=name)


class TestJobEnvelope:
    def test_round_trip_preserves_the_job(self):
        job = BatchJob(
            circuit=_circuit(),
            strategy="cls",
            width_limit=3,
            label="wire/cls",
        )
        payload = json.loads(json.dumps(batch_job_to_dict(job)))
        rebuilt = batch_job_from_dict(payload)
        assert rebuilt.strategy.key == "cls"
        assert rebuilt.width_limit == 3
        assert rebuilt.label == "wire/cls"
        assert rebuilt.circuit.num_qubits == job.circuit.num_qubits
        assert len(rebuilt.circuit) == len(job.circuit)

    def test_round_trip_compiles_identically(self):
        job = BatchJob(circuit=_circuit(), strategy="cls")
        rebuilt = batch_job_from_dict(batch_job_to_dict(job))
        original = compile_circuit(job.circuit, job.strategy)
        again = compile_circuit(rebuilt.circuit, rebuilt.strategy)
        assert again.latency_ns == original.latency_ns

    def test_device_pinned_job_round_trips(self):
        job = BatchJob(circuit=_circuit(), device="line-5")
        rebuilt = batch_job_from_dict(batch_job_to_dict(job))
        assert rebuilt.device is not None
        assert rebuilt.device.num_qubits == 5

    def test_explicit_passes_rejected(self):
        job = BatchJob(
            circuit=_circuit(),
            passes=tuple(BatchJob(circuit=_circuit()).pipeline()),
        )
        with pytest.raises(SerializationError, match="passes"):
            batch_job_to_dict(job)

    def test_unregistered_strategy_rejected(self):
        unregistered = Strategy(
            key="wire-throwaway",
            description="never registered",
            commutativity_detection=False,
            cls_scheduling=False,
            aggregation=False,
            hand_optimization=False,
        )
        job = BatchJob(circuit=_circuit(), strategy=unregistered)
        with pytest.raises(SerializationError, match="unregistered"):
            batch_job_to_dict(job)

    def test_generic_loads_dispatches(self):
        job = BatchJob(circuit=_circuit(), strategy="isa")
        rebuilt = loads(dumps(job))
        assert isinstance(rebuilt, BatchJob)
        assert rebuilt.strategy.key == "isa"


class TestSignature:
    def test_label_does_not_change_the_signature(self):
        a = batch_job_to_dict(BatchJob(circuit=_circuit(), label="one"))
        b = batch_job_to_dict(BatchJob(circuit=_circuit(), label="two"))
        assert job_signature(a) == job_signature(b)

    def test_circuit_change_changes_the_signature(self):
        a = batch_job_to_dict(BatchJob(circuit=_circuit()))
        b = batch_job_to_dict(
            BatchJob(circuit=maxcut_qaoa_circuit(line_graph(5), name="wire"))
        )
        assert job_signature(a) != job_signature(b)

    def test_strategy_change_changes_the_signature(self):
        a = batch_job_to_dict(BatchJob(circuit=_circuit(), strategy="isa"))
        b = batch_job_to_dict(BatchJob(circuit=_circuit(), strategy="cls"))
        assert job_signature(a) != job_signature(b)


class TestStatusAndStats:
    def test_status_round_trip(self):
        status = {
            "job_id": "job-1-abc",
            "state": "done",
            "attempts": 2,
            "error": None,
            "pass_seconds": {"LowerPass": 0.01},
        }
        rebuilt = job_status_from_dict(
            json.loads(json.dumps(job_status_to_dict(status)))
        )
        assert rebuilt == status

    def test_stats_round_trip(self):
        stats = {"completed": 4, "queue": {"depth": 1}, "workers": 2}
        rebuilt = service_stats_from_dict(
            json.loads(json.dumps(service_stats_to_dict(stats)))
        )
        assert rebuilt == stats

    def test_wrong_kind_rejected(self):
        envelope = job_status_to_dict({"state": "queued"})
        with pytest.raises(SerializationError):
            service_stats_from_dict(envelope)
