"""Tests for matching-based conflict resolution."""

import pytest

from repro.errors import SchedulingError
from repro.gates import library as lib
from repro.scheduling.matching import resolve_conflicts


class TestResolveConflicts:
    def test_empty(self):
        assert resolve_conflicts([]) == []

    def test_disjoint_gates_all_selected(self):
        gates = [lib.CNOT(0, 1), lib.CNOT(2, 3), lib.H(4)]
        assert len(resolve_conflicts(gates)) == 3

    def test_conflicting_pair_resolved(self):
        gates = [lib.CNOT(0, 1), lib.CNOT(1, 2)]
        selected = resolve_conflicts(gates)
        assert len(selected) == 1

    def test_matching_beats_greedy_on_paper_figure7_shape(self):
        # Path graph a-b-c-d: greedy picking the middle edge yields 1,
        # matching picks the two outer edges.
        gates = [lib.CNOT(0, 1), lib.CNOT(1, 2), lib.CNOT(2, 3)]
        selected = resolve_conflicts(gates)
        assert len(selected) == 2
        names = {tuple(g.qubits) for g in selected}
        assert names == {(0, 1), (2, 3)}

    def test_six_qubit_ring(self):
        # A 6-cycle admits a perfect matching of 3 edges.
        gates = [lib.CNOT(i, (i + 1) % 6) for i in range(6)]
        assert len(resolve_conflicts(gates)) == 3

    def test_one_qubit_gates_fill_free_qubits(self):
        gates = [lib.CNOT(0, 1), lib.H(2), lib.H(3)]
        assert len(resolve_conflicts(gates)) == 3

    def test_one_qubit_gate_conflicts_with_two_qubit(self):
        gates = [lib.CNOT(0, 1), lib.H(0)]
        selected = resolve_conflicts(gates)
        assert len(selected) == 1

    def test_priority_breaks_ties(self):
        critical = lib.H(0)
        cheap = lib.CNOT(0, 1)
        priorities = {id(critical): 100.0, id(cheap): 1.0}
        selected = resolve_conflicts(
            [cheap, critical], lambda node: priorities[id(node)]
        )
        assert selected == [critical]

    def test_parallel_candidates_on_same_pair(self):
        first = lib.CNOT(0, 1)
        second = lib.CNOT(0, 1)
        priorities = {id(first): 1.0, id(second): 5.0}
        selected = resolve_conflicts(
            [first, second], lambda node: priorities[id(node)]
        )
        assert selected == [second]

    def test_two_one_qubit_gates_same_qubit(self):
        first = lib.H(0)
        second = lib.X(0)
        priorities = {id(first): 1.0, id(second): 5.0}
        selected = resolve_conflicts(
            [first, second], lambda node: priorities[id(node)]
        )
        assert selected == [second]

    def test_wide_node_rejected(self):
        with pytest.raises(SchedulingError):
            resolve_conflicts([lib.TOFFOLI(0, 1, 2)])
