"""Tests for the Schedule data structure."""

import pytest

from repro.errors import SchedulingError
from repro.gates import library as lib
from repro.ir.timed import (
    DEPENDENCE_EPSILON_NS,
    OVERLAP_EPSILON_NS,
    TimedInstruction,
)
from repro.scheduling.schedule import Schedule, TimedOperation


class TestTimedOperation:
    def test_end_time(self):
        op = TimedOperation(lib.H(0), 1.0, 2.5)
        assert op.end == pytest.approx(3.5)

    def test_overlap_detection(self):
        a = TimedOperation(lib.H(0), 0.0, 2.0)
        b = TimedOperation(lib.X(0), 1.0, 2.0)
        c = TimedOperation(lib.Z(0), 2.0, 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching intervals do not overlap


class TestSchedule:
    def test_makespan(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.H(1), 1.0, 5.0)
        assert schedule.makespan == pytest.approx(6.0)

    def test_empty_makespan(self):
        assert Schedule(1).makespan == 0.0

    def test_negative_time_rejected(self):
        schedule = Schedule(1)
        with pytest.raises(SchedulingError):
            schedule.add(lib.H(0), -1.0, 1.0)
        with pytest.raises(SchedulingError):
            schedule.add(lib.H(0), 0.0, -1.0)

    def test_qubit_timeline_sorted(self):
        schedule = Schedule(2)
        schedule.add(lib.X(0), 5.0, 1.0)
        schedule.add(lib.H(0), 0.0, 1.0)
        schedule.add(lib.H(1), 0.0, 1.0)
        timeline = schedule.qubit_timeline(0)
        assert [op.start for op in timeline] == [0.0, 5.0]

    def test_validate_detects_qubit_overlap(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.CNOT(0, 1), 1.0, 2.0)
        with pytest.raises(SchedulingError, match="overlap"):
            schedule.validate()

    def test_validate_accepts_disjoint(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.H(1), 0.0, 2.0)
        schedule.add(lib.CNOT(0, 1), 2.0, 3.0)
        schedule.validate()

    def test_utilization(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 1.0)
        schedule.add(lib.H(1), 0.0, 1.0)
        assert schedule.utilization() == pytest.approx(1.0)

    def test_utilization_empty(self):
        assert Schedule(3).utilization() == 0.0

    def test_busy_time_counts_qubit_time(self):
        schedule = Schedule(2)
        schedule.add(lib.CNOT(0, 1), 0.0, 3.0)
        assert schedule.busy_time() == pytest.approx(6.0)

    def test_ordered_nodes(self):
        schedule = Schedule(2)
        a = lib.H(0)
        b = lib.H(1)
        schedule.add(b, 2.0, 1.0)
        schedule.add(a, 0.0, 1.0)
        assert schedule.ordered_nodes() == [a, b]

    def test_ordered_nodes_ties_follow_insertion_order(self):
        schedule = Schedule(2)
        first = lib.H(0)
        second = lib.H(1)
        schedule.add(first, 0.0, 1.0)
        schedule.add(second, 0.0, 1.0)
        assert schedule.ordered_nodes() == [first, second]


class TestTypedIR:
    def test_add_assigns_stable_node_ids(self):
        schedule = Schedule(2)
        ops = [
            schedule.add(lib.H(0), 0.0, 1.0),
            schedule.add(lib.H(1), 0.0, 1.0),
            schedule.add(lib.CNOT(0, 1), 1.0, 2.0),
        ]
        assert [op.node_id for op in ops] == [0, 1, 2]
        assert all(isinstance(op, TimedInstruction) for op in schedule)

    def test_timed_operation_alias(self):
        assert TimedOperation is TimedInstruction
        free = TimedOperation(lib.H(0), 1.0, 2.0)
        assert free.node_id == -1  # free-standing, not schedule-owned

    def test_epsilon_constants_documented_and_ordered(self):
        # The overlap tolerance is the tight numerical one; the
        # dependence tolerance absorbs whole latency-chain accumulation.
        assert OVERLAP_EPSILON_NS == 1e-12
        assert DEPENDENCE_EPSILON_NS == 1e-9
        assert OVERLAP_EPSILON_NS < DEPENDENCE_EPSILON_NS

    def test_overlap_uses_named_epsilon(self):
        a = TimedInstruction(lib.H(0), 0.0, 1.0)
        b = TimedInstruction(lib.X(0), 1.0 - OVERLAP_EPSILON_NS / 2, 1.0)
        assert not a.overlaps(b)

    def test_qubit_index_invalidated_by_add(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 1.0)
        assert [op.start for op in schedule.qubit_timeline(0)] == [0.0]
        # The cached index must not go stale when new work is placed.
        schedule.add(lib.X(0), 2.0, 1.0)
        assert [op.start for op in schedule.qubit_timeline(0)] == [0.0, 2.0]
        assert schedule.busy_time() == pytest.approx(2.0)

    def test_timeline_returns_copy(self):
        schedule = Schedule(1)
        schedule.add(lib.H(0), 0.0, 1.0)
        schedule.qubit_timeline(0).append("junk")
        assert len(schedule.qubit_timeline(0)) == 1
