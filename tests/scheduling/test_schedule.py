"""Tests for the Schedule data structure."""

import pytest

from repro.errors import SchedulingError
from repro.gates import library as lib
from repro.scheduling.schedule import Schedule, TimedOperation


class TestTimedOperation:
    def test_end_time(self):
        op = TimedOperation(lib.H(0), 1.0, 2.5)
        assert op.end == pytest.approx(3.5)

    def test_overlap_detection(self):
        a = TimedOperation(lib.H(0), 0.0, 2.0)
        b = TimedOperation(lib.X(0), 1.0, 2.0)
        c = TimedOperation(lib.Z(0), 2.0, 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching intervals do not overlap


class TestSchedule:
    def test_makespan(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.H(1), 1.0, 5.0)
        assert schedule.makespan == pytest.approx(6.0)

    def test_empty_makespan(self):
        assert Schedule(1).makespan == 0.0

    def test_negative_time_rejected(self):
        schedule = Schedule(1)
        with pytest.raises(SchedulingError):
            schedule.add(lib.H(0), -1.0, 1.0)
        with pytest.raises(SchedulingError):
            schedule.add(lib.H(0), 0.0, -1.0)

    def test_qubit_timeline_sorted(self):
        schedule = Schedule(2)
        schedule.add(lib.X(0), 5.0, 1.0)
        schedule.add(lib.H(0), 0.0, 1.0)
        schedule.add(lib.H(1), 0.0, 1.0)
        timeline = schedule.qubit_timeline(0)
        assert [op.start for op in timeline] == [0.0, 5.0]

    def test_validate_detects_qubit_overlap(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.CNOT(0, 1), 1.0, 2.0)
        with pytest.raises(SchedulingError, match="overlap"):
            schedule.validate()

    def test_validate_accepts_disjoint(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 2.0)
        schedule.add(lib.H(1), 0.0, 2.0)
        schedule.add(lib.CNOT(0, 1), 2.0, 3.0)
        schedule.validate()

    def test_utilization(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 1.0)
        schedule.add(lib.H(1), 0.0, 1.0)
        assert schedule.utilization() == pytest.approx(1.0)

    def test_utilization_empty(self):
        assert Schedule(3).utilization() == 0.0

    def test_busy_time_counts_qubit_time(self):
        schedule = Schedule(2)
        schedule.add(lib.CNOT(0, 1), 0.0, 3.0)
        assert schedule.busy_time() == pytest.approx(6.0)

    def test_ordered_nodes(self):
        schedule = Schedule(2)
        a = lib.H(0)
        b = lib.H(1)
        schedule.add(b, 2.0, 1.0)
        schedule.add(a, 0.0, 1.0)
        assert schedule.ordered_nodes() == [a, b]
