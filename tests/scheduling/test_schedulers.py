"""Tests for the list scheduler and CLS, including schedule invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.scheduling.cls import cls_schedule
from repro.scheduling.list_scheduler import list_schedule


def build_dag(circuit):
    return GateDependenceGraph.from_circuit(circuit, CommutationChecker())


def unit_latency(_node) -> float:
    return 1.0


class TestListScheduler:
    def test_serial_chain(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        schedule = list_schedule(build_dag(circuit), unit_latency)
        assert schedule.makespan == pytest.approx(3.0)
        schedule.validate()

    def test_parallel_layer(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        schedule = list_schedule(build_dag(circuit), unit_latency)
        assert schedule.makespan == pytest.approx(1.0)

    def test_matches_dag_makespan(self):
        circuit = Circuit(3).h(0).cnot(0, 1).cnot(1, 2).rz(0.3, 0)
        dag = build_dag(circuit)
        schedule = list_schedule(dag, unit_latency)
        assert schedule.makespan == pytest.approx(dag.makespan(unit_latency))

    def test_respects_dependencies(self):
        circuit = Circuit(2).h(0).cnot(0, 1).h(1)
        dag = build_dag(circuit)
        schedule = list_schedule(dag, unit_latency)
        schedule.validate(dag)

    def test_weighted_latencies(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        dag = build_dag(circuit)
        latencies = {"H": 13.7, "CNOT": 47.1}
        schedule = list_schedule(dag, lambda n: latencies[n.name])
        assert schedule.makespan == pytest.approx(60.8)

    def test_empty_circuit(self):
        schedule = list_schedule(build_dag(Circuit(2)), unit_latency)
        assert schedule.makespan == 0.0


class TestClsScheduler:
    def test_no_commutativity_matches_list_schedule(self):
        # Serial Grover-like chain: CLS cannot improve anything.
        circuit = Circuit(2).h(0).cnot(0, 1).h(1).cnot(0, 1).h(0)
        dag = build_dag(circuit)
        cls = cls_schedule(dag, unit_latency)
        plain = list_schedule(dag, unit_latency)
        assert cls.makespan == pytest.approx(plain.makespan)
        cls.validate()

    def test_commuting_rzz_chain_parallelizes(self):
        # Three ZZ interactions on a path 0-1-2-3: program order serializes
        # the middle one, but they all commute, so CLS packs (0,1) and
        # (2,3) together.
        circuit = (
            Circuit(4).rzz(0.3, 1, 2).rzz(0.3, 0, 1).rzz(0.3, 2, 3)
        )
        dag = build_dag(circuit)
        plain = list_schedule(dag, unit_latency)
        cls = cls_schedule(dag, unit_latency)
        assert plain.makespan == pytest.approx(2.0)
        assert cls.makespan == pytest.approx(2.0)
        # On a 6-ring the gain is visible:
        ring = Circuit(6)
        for i in range(6):
            ring.rzz(0.3, i, (i + 1) % 6)
        ring_dag = build_dag(ring)
        assert list_schedule(ring_dag, unit_latency).makespan >= 3.0
        assert cls_schedule(ring_dag, unit_latency).makespan == pytest.approx(2.0)

    def test_cls_never_worse_than_list_on_commutative_circuits(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            circuit = Circuit(6)
            for _ in range(12):
                a, b = rng.choice(6, size=2, replace=False)
                circuit.rzz(float(rng.uniform(0.1, 1.0)), int(a), int(b))
            dag = build_dag(circuit)
            cls = cls_schedule(dag, unit_latency)
            plain = list_schedule(dag, unit_latency)
            assert cls.makespan <= plain.makespan + 1e-9
            cls.validate()

    def test_schedule_order_is_valid_reorder(self):
        circuit = Circuit(4)
        for i in range(4):
            circuit.rzz(0.2, i, (i + 1) % 4)
        dag = build_dag(circuit)
        schedule = cls_schedule(dag, unit_latency)
        dag.reorder(schedule.ordered_nodes())  # must not raise
        assert dag.makespan(unit_latency) <= schedule.makespan + 1e-9

    def test_qaoa_triangle_with_swap_structure(self):
        # Shape of the paper's Fig. 4 circuit: H layer, three ZZ blocks
        # (one needs the SWAP), Rx layer.
        gamma, beta = 5.67, 1.26
        circuit = Circuit(3)
        for q in range(3):
            circuit.h(q)
        for (a, b) in [(0, 1), (1, 2), (0, 2)]:
            circuit.cnot(a, b).rz(2 * gamma, b).cnot(a, b)
        for q in range(3):
            circuit.rx(2 * beta, q)
        dag = build_dag(circuit)
        cls = cls_schedule(dag, unit_latency)
        plain = list_schedule(dag, unit_latency)
        cls.validate()
        assert cls.makespan <= plain.makespan

    def test_single_gate(self):
        circuit = Circuit(1).h(0)
        schedule = cls_schedule(build_dag(circuit), unit_latency)
        assert schedule.makespan == pytest.approx(1.0)

    def test_empty(self):
        schedule = cls_schedule(build_dag(Circuit(2)), unit_latency)
        assert schedule.makespan == 0.0

    def test_wide_nodes_scheduled_greedily(self):
        circuit = Circuit(3).toffoli(0, 1, 2).h(0)
        dag = build_dag(circuit)
        schedule = cls_schedule(dag, unit_latency)
        schedule.validate()
        assert schedule.makespan == pytest.approx(2.0)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_valid_schedules_on_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(5)
        for _ in range(15):
            kind = rng.integers(0, 3)
            if kind == 0:
                circuit.h(int(rng.integers(0, 5)))
            elif kind == 1:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cnot(int(a), int(b))
            else:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.rzz(float(rng.uniform(0.1, 2.0)), int(a), int(b))
        dag = build_dag(circuit)
        for scheduler in (list_schedule, cls_schedule):
            schedule = scheduler(dag, unit_latency)
            schedule.validate()
            assert len(schedule) == len(circuit)
            # Makespan is bounded by the serial sum and at least the depth.
            assert schedule.makespan <= len(circuit)
            assert schedule.makespan >= circuit.depth / 2
