"""Tests for fidelity measures."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.fidelity import (
    average_gate_fidelity,
    state_fidelity,
    unitary_infidelity,
    unitary_trace_fidelity,
)
from repro.linalg.paulis import PAULI_X, PAULI_Z
from repro.linalg.random import random_statevector, random_unitary


class TestUnitaryTraceFidelity:
    def test_self_fidelity_is_one(self, rng):
        u = random_unitary(4, rng)
        assert unitary_trace_fidelity(u, u) == pytest.approx(1.0)

    def test_global_phase_invariant(self, rng):
        u = random_unitary(4, rng)
        assert unitary_trace_fidelity(u, np.exp(0.5j) * u) == pytest.approx(1.0)

    def test_orthogonal_paulis_have_zero_fidelity(self):
        assert unitary_trace_fidelity(PAULI_X, PAULI_Z) == pytest.approx(0.0)

    def test_bounded_in_unit_interval(self, rng):
        for _ in range(10):
            f = unitary_trace_fidelity(random_unitary(4, rng), random_unitary(4, rng))
            assert 0.0 <= f <= 1.0 + 1e-12

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LinalgError):
            unitary_trace_fidelity(np.eye(2), np.eye(4))

    def test_infidelity_complements(self, rng):
        u, v = random_unitary(4, rng), random_unitary(4, rng)
        assert unitary_infidelity(u, v) == pytest.approx(
            1.0 - unitary_trace_fidelity(u, v)
        )


class TestAverageGateFidelity:
    def test_perfect_gate(self, rng):
        u = random_unitary(4, rng)
        assert average_gate_fidelity(u, u) == pytest.approx(1.0)

    def test_worst_case_above_inverse_dim(self):
        # For d=2, average fidelity of orthogonal gates is 1/(d+1).
        assert average_gate_fidelity(PAULI_X, PAULI_Z) == pytest.approx(1.0 / 3.0)


class TestStateFidelity:
    def test_same_state(self, rng):
        psi = random_statevector(3, rng)
        assert state_fidelity(psi, psi) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert state_fidelity(a, b) == pytest.approx(0.0)

    def test_phase_invariant(self, rng):
        psi = random_statevector(2, rng)
        assert state_fidelity(psi, np.exp(2.1j) * psi) == pytest.approx(1.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(LinalgError):
            state_fidelity(np.ones(2), np.ones(4))
