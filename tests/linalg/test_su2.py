"""Tests for SU(2) decompositions and rotation content."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinalgError
from repro.linalg.paulis import PAULI_X
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.linalg.random import random_unitary
from repro.linalg.su2 import (
    rotation_axis_angle,
    rotation_content,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    zyz_angles,
)

angles = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestRotationContent:
    def test_identity_has_zero_content(self):
        assert rotation_content(np.eye(2)) == pytest.approx(0.0)

    def test_pauli_x_is_pi_rotation(self):
        assert rotation_content(PAULI_X) == pytest.approx(math.pi)

    @given(theta=angles)
    @settings(max_examples=30, deadline=None)
    def test_rz_content_matches_angle(self, theta):
        assert rotation_content(rz_matrix(theta)) == pytest.approx(
            abs(theta), abs=1e-6
        )

    def test_content_wraps_beyond_two_pi(self):
        # Rz(2*pi) == -I: zero net rotation.
        assert rotation_content(rz_matrix(2 * math.pi)) == pytest.approx(0.0, abs=1e-9)

    def test_content_takes_short_way_around(self):
        # A 3*pi/2 rotation is the same gate as a -pi/2 rotation.
        assert rotation_content(rz_matrix(1.5 * math.pi)) == pytest.approx(
            0.5 * math.pi, abs=1e-9
        )

    def test_global_phase_invariant(self, rng):
        u = random_unitary(2, rng)
        assert rotation_content(u) == pytest.approx(
            rotation_content(np.exp(0.3j) * u)
        )

    def test_non_unitary_rejected(self):
        with pytest.raises(LinalgError):
            rotation_content(np.array([[1.0, 1.0], [0.0, 1.0]]))


class TestRotationAxisAngle:
    def test_x_rotation_axis(self):
        axis, angle = rotation_axis_angle(rx_matrix(0.7))
        assert angle == pytest.approx(0.7)
        assert np.allclose(axis, [1.0, 0.0, 0.0], atol=1e-9)

    def test_z_rotation_axis(self):
        axis, angle = rotation_axis_angle(rz_matrix(1.1))
        assert angle == pytest.approx(1.1)
        assert np.allclose(axis, [0.0, 0.0, 1.0], atol=1e-9)

    def test_hadamard_axis_is_x_plus_z(self):
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        axis, angle = rotation_axis_angle(h)
        assert angle == pytest.approx(math.pi)
        expected = np.array([1.0, 0.0, 1.0]) / math.sqrt(2)
        assert np.allclose(np.abs(axis), expected, atol=1e-9)

    def test_identity_angle_zero(self):
        _, angle = rotation_axis_angle(np.eye(2))
        assert angle == pytest.approx(0.0)


class TestZyzDecomposition:
    def _reconstruct(self, a, b, c, d):
        return np.exp(1j * a) * (rz_matrix(b) @ ry_matrix(c) @ rz_matrix(d))

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_product_reconstructs(self, data):
        b = data.draw(angles, label="b")
        c = data.draw(st.floats(min_value=0.05, max_value=3.0), label="c")
        d = data.draw(angles, label="d")
        u = rz_matrix(b) @ ry_matrix(c) @ rz_matrix(d)
        decomposed = zyz_angles(u)
        assert np.allclose(self._reconstruct(*decomposed), u, atol=1e-8)

    def test_haar_random_reconstructs(self, rng):
        for _ in range(20):
            u = random_unitary(2, rng)
            decomposed = zyz_angles(u)
            assert np.allclose(self._reconstruct(*decomposed), u, atol=1e-8)

    def test_diagonal_gate(self):
        u = rz_matrix(0.9)
        assert np.allclose(self._reconstruct(*zyz_angles(u)), u, atol=1e-9)

    def test_antidiagonal_gate(self):
        assert np.allclose(
            self._reconstruct(*zyz_angles(PAULI_X)), PAULI_X, atol=1e-9
        )

    def test_phase_only(self):
        u = np.exp(0.4j) * np.eye(2)
        assert np.allclose(self._reconstruct(*zyz_angles(u)), u, atol=1e-9)


class TestRotationMatrices:
    @given(theta=angles)
    @settings(max_examples=20, deadline=None)
    def test_rx_equals_h_rz_h(self, theta):
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert allclose_up_to_global_phase(
            rx_matrix(theta), h @ rz_matrix(theta) @ h
        )

    def test_rotations_compose(self):
        assert np.allclose(
            rz_matrix(0.3) @ rz_matrix(0.4), rz_matrix(0.7), atol=1e-12
        )
