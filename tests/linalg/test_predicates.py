"""Tests for operator predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinalgError
from repro.linalg.paulis import PAULI_X, PAULI_Z, pauli_string
from repro.linalg.predicates import (
    allclose_up_to_global_phase,
    commutes,
    is_diagonal,
    is_hermitian,
    is_identity,
    is_unitary,
)
from repro.linalg.random import random_unitary


class TestIsUnitary:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(4))

    def test_pauli_is_unitary(self):
        assert is_unitary(PAULI_X)

    def test_projector_is_not_unitary(self):
        assert not is_unitary(np.diag([1.0, 0.0]))

    def test_random_unitary_is_unitary(self, rng):
        assert is_unitary(random_unitary(8, rng))

    def test_non_square_rejected(self):
        with pytest.raises(LinalgError):
            is_unitary(np.ones((2, 3)))


class TestIsHermitian:
    def test_pauli_is_hermitian(self):
        assert is_hermitian(PAULI_X)

    def test_phase_matrix_is_not_hermitian(self):
        assert not is_hermitian(np.diag([1.0, 1.0j]))


class TestIsDiagonal:
    def test_rz_is_diagonal(self):
        assert is_diagonal(np.diag([1.0, np.exp(0.3j)]))

    def test_cnot_is_not_diagonal(self):
        cnot = np.eye(4)[[0, 1, 3, 2]]
        assert not is_diagonal(cnot)

    def test_zz_string_is_diagonal(self):
        assert is_diagonal(pauli_string("ZZ"))


class TestIsIdentity:
    def test_plain_identity(self):
        assert is_identity(np.eye(8))

    def test_global_phase_identity(self):
        assert is_identity(np.exp(0.77j) * np.eye(4))

    def test_global_phase_rejected_when_strict(self):
        assert not is_identity(
            np.exp(0.77j) * np.eye(4), up_to_global_phase=False
        )

    def test_pauli_is_not_identity(self):
        assert not is_identity(PAULI_Z)


class TestGlobalPhaseComparison:
    def test_equal_up_to_phase(self, rng):
        u = random_unitary(4, rng)
        assert allclose_up_to_global_phase(np.exp(1.23j) * u, u)

    def test_different_matrices(self, rng):
        assert not allclose_up_to_global_phase(
            random_unitary(4, rng), random_unitary(4, rng)
        )

    def test_shape_mismatch_is_false(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))

    @given(phase=st.floats(min_value=-np.pi, max_value=np.pi))
    @settings(max_examples=25, deadline=None)
    def test_any_phase_detected(self, phase):
        u = pauli_string("XY")
        assert allclose_up_to_global_phase(np.exp(1j * phase) * u, u)


class TestCommutes:
    def test_diagonal_matrices_commute(self):
        assert commutes(np.diag([1.0, 2.0]), np.diag([3.0, 4.0]))

    def test_x_and_z_anticommute(self):
        assert not commutes(PAULI_X, PAULI_Z)

    def test_xx_and_zz_commute(self):
        assert commutes(pauli_string("XX"), pauli_string("ZZ"))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LinalgError):
            commutes(np.eye(2), np.eye(4))
