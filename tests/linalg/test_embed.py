"""Tests for operator embedding and qubit permutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinalgError
from repro.linalg.embed import embed_operator, kron_all, permute_qubits
from repro.linalg.paulis import IDENTITY, PAULI_X, PAULI_Z, pauli_string
from repro.linalg.random import random_unitary

CNOT = np.eye(4)[[0, 1, 3, 2]].astype(complex)


class TestKronAll:
    def test_two_factors(self):
        assert np.allclose(kron_all([PAULI_X, PAULI_Z]), np.kron(PAULI_X, PAULI_Z))

    def test_single_factor(self):
        assert np.allclose(kron_all([PAULI_X]), PAULI_X)

    def test_empty_rejected(self):
        with pytest.raises(LinalgError):
            kron_all([])


class TestPermuteQubits:
    def test_identity_permutation(self, rng):
        u = random_unitary(8, rng)
        assert np.allclose(permute_qubits(u, [0, 1, 2]), u)

    def test_swap_two_qubits_of_xz(self):
        xz = pauli_string("XZ")
        zx = pauli_string("ZX")
        assert np.allclose(permute_qubits(xz, [1, 0]), zx)

    def test_three_qubit_cycle(self):
        xyz = pauli_string("XYZ")
        # X goes to position 1, Y to 2, Z to 0 -> "ZXY"
        assert np.allclose(permute_qubits(xyz, [1, 2, 0]), pauli_string("ZXY"))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(LinalgError):
            permute_qubits(np.eye(4), [0, 0])

    def test_permutation_is_unitary_conjugation(self, rng):
        u = random_unitary(8, rng)
        v = permute_qubits(u, [2, 0, 1])
        assert np.allclose(v @ v.conj().T, np.eye(8))


class TestEmbedOperator:
    def test_single_qubit_on_first(self):
        embedded = embed_operator(PAULI_X, [0], 2)
        assert np.allclose(embedded, pauli_string("XI"))

    def test_single_qubit_on_last(self):
        embedded = embed_operator(PAULI_X, [1], 2)
        assert np.allclose(embedded, pauli_string("IX"))

    def test_cnot_adjacent(self):
        embedded = embed_operator(CNOT, [0, 1], 2)
        assert np.allclose(embedded, CNOT)

    def test_cnot_reversed_flips_control(self):
        embedded = embed_operator(CNOT, [1, 0], 2)
        # Control on qubit 1, target on qubit 0: |x y> -> |x^y, y>
        expected = np.zeros((4, 4))
        for x in range(2):
            for y in range(2):
                expected[((x ^ y) << 1) | y, (x << 1) | y] = 1.0
        assert np.allclose(embedded, expected)

    def test_cnot_non_adjacent(self):
        embedded = embed_operator(CNOT, [0, 2], 3)
        # Apply to basis state |101>: control=1 -> flips qubit 2 -> |100>
        state = np.zeros(8)
        state[0b101] = 1.0
        result = embedded @ state
        assert result[0b100] == pytest.approx(1.0)

    def test_composition_matches_matrix_product(self, rng):
        a = random_unitary(4, rng)
        b = random_unitary(4, rng)
        full_a = embed_operator(a, [0, 2], 3)
        full_b = embed_operator(b, [0, 2], 3)
        product = embed_operator(b @ a, [0, 2], 3)
        assert np.allclose(full_b @ full_a, product)

    def test_disjoint_embeddings_commute(self, rng):
        a = embed_operator(random_unitary(2, rng), [0], 3)
        b = embed_operator(random_unitary(4, rng), [1, 2], 3)
        assert np.allclose(a @ b, b @ a)

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(LinalgError):
            embed_operator(CNOT, [0], 2)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(LinalgError):
            embed_operator(CNOT, [1, 1], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(LinalgError):
            embed_operator(PAULI_X, [5], 2)

    def test_identity_embeds_to_identity(self):
        assert np.allclose(embed_operator(IDENTITY, [3], 5), np.eye(32))

    @given(position=st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_embedded_operator_is_unitary(self, position):
        embedded = embed_operator(PAULI_X, [position], 5)
        assert np.allclose(embedded @ embedded.conj().T, np.eye(32))
