"""Tests for the KAK / Weyl-chamber decomposition."""

import math

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.kak import (
    canonical_gate,
    canonicalize_coordinates,
    interaction_time,
    makhlin_invariants,
    weyl_coordinates,
    weyl_decomposition,
    weyl_orbit,
)
from repro.linalg.random import random_unitary

PI4 = math.pi / 4

CNOT = np.eye(4)[[0, 1, 3, 2]].astype(complex)
CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
SWAP = np.eye(4)[[0, 2, 1, 3]].astype(complex)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _coords_equal(a, b, atol=1e-7):
    return np.allclose(np.sort(a), np.sort(b), atol=atol)


class TestWeylCoordinates:
    @pytest.mark.parametrize(
        "gate,expected",
        [
            (np.eye(4, dtype=complex), (0.0, 0.0, 0.0)),
            (CNOT, (PI4, 0.0, 0.0)),
            (CZ, (PI4, 0.0, 0.0)),
            (SWAP, (PI4, PI4, PI4)),
            (ISWAP, (PI4, PI4, 0.0)),
        ],
        ids=["identity", "cnot", "cz", "swap", "iswap"],
    )
    def test_known_gates(self, gate, expected):
        assert _coords_equal(weyl_coordinates(gate), expected)

    def test_local_gates_have_zero_coordinates(self, rng):
        local = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        assert _coords_equal(weyl_coordinates(local), (0.0, 0.0, 0.0))

    def test_invariant_under_local_conjugation(self, rng):
        for _ in range(10):
            u = random_unitary(4, rng)
            left = np.kron(random_unitary(2, rng), random_unitary(2, rng))
            right = np.kron(random_unitary(2, rng), random_unitary(2, rng))
            assert _coords_equal(
                weyl_coordinates(u), weyl_coordinates(left @ u @ right)
            )

    def test_invariant_under_global_phase(self, rng):
        u = random_unitary(4, rng)
        assert _coords_equal(
            weyl_coordinates(u), weyl_coordinates(np.exp(0.31j) * u)
        )

    def test_canonical_gate_round_trip(self, rng):
        for _ in range(10):
            u = random_unitary(4, rng)
            c = weyl_coordinates(u)
            assert _coords_equal(weyl_coordinates(canonical_gate(c)), c)

    def test_sqrt_iswap_coordinates(self):
        sqrt_iswap = np.array(
            [
                [1, 0, 0, 0],
                [0, 1 / math.sqrt(2), 1j / math.sqrt(2), 0],
                [0, 1j / math.sqrt(2), 1 / math.sqrt(2), 0],
                [0, 0, 0, 1],
            ],
            dtype=complex,
        )
        assert _coords_equal(weyl_coordinates(sqrt_iswap), (PI4 / 2, PI4 / 2, 0.0))

    def test_non_unitary_rejected(self):
        with pytest.raises(LinalgError):
            weyl_coordinates(np.ones((4, 4)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(LinalgError):
            weyl_coordinates(np.eye(8))


class TestMakhlinInvariants:
    def test_cnot_and_cz_share_invariants(self):
        assert makhlin_invariants(CNOT) == pytest.approx(makhlin_invariants(CZ))

    def test_cnot_invariants_value(self):
        g12, g3 = makhlin_invariants(CNOT)
        assert g12 == pytest.approx(0.0)
        assert g3 == pytest.approx(1.0)

    def test_swap_invariants_value(self):
        g12, g3 = makhlin_invariants(SWAP)
        assert g12 == pytest.approx(-1.0)
        assert g3 == pytest.approx(-3.0)

    def test_local_invariance(self, rng):
        u = random_unitary(4, rng)
        locals_ = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        a = makhlin_invariants(u)
        b = makhlin_invariants(locals_ @ u)
        assert a[0] == pytest.approx(b[0], abs=1e-9)
        assert a[1] == pytest.approx(b[1], abs=1e-9)

    def test_canonical_representative_matches(self, rng):
        u = random_unitary(4, rng)
        c = weyl_coordinates(u)
        a = makhlin_invariants(u)
        b = makhlin_invariants(canonical_gate(c))
        assert a[0] == pytest.approx(b[0], abs=1e-7)
        assert a[1] == pytest.approx(b[1], abs=1e-7)


class TestWeylDecomposition:
    def test_reconstruction_known_gates(self):
        for gate in (CNOT, CZ, SWAP, ISWAP, np.eye(4, dtype=complex)):
            decomposition = weyl_decomposition(gate)
            assert np.allclose(decomposition.reconstruct(), gate, atol=1e-8)

    def test_reconstruction_random(self, rng):
        for _ in range(30):
            u = random_unitary(4, rng)
            decomposition = weyl_decomposition(u)
            assert np.allclose(decomposition.reconstruct(), u, atol=1e-7)

    def test_local_factors_are_unitary(self, rng):
        decomposition = weyl_decomposition(random_unitary(4, rng))
        for factor in (
            decomposition.k1a,
            decomposition.k1b,
            decomposition.k2a,
            decomposition.k2b,
        ):
            assert np.allclose(factor @ factor.conj().T, np.eye(2), atol=1e-8)

    def test_local_content_is_finite_and_nonnegative(self):
        # For degenerate classes (CNOT, SWAP) the KAK factorization is not
        # unique, so the local content is only a diagnostic; it must still
        # be a well-formed angle sum.
        for gate in (CNOT, SWAP, ISWAP):
            qubit_a, qubit_b = weyl_decomposition(gate).local_rotation_content
            assert 0.0 <= qubit_a <= 4 * math.pi
            assert 0.0 <= qubit_b <= 4 * math.pi

    def test_pure_canonical_gate_has_clifford_local_factors(self):
        # Decomposing CAN(c) itself can permute the Weyl axes, but the
        # compensating local factors must then be single-qubit Cliffords.
        c = np.array([0.3, 0.2, 0.1])
        decomposition = weyl_decomposition(canonical_gate(c))
        paulis = [
            np.array([[0, 1], [1, 0]], dtype=complex),
            np.array([[0, -1j], [1j, 0]], dtype=complex),
            np.diag([1.0, -1.0]).astype(complex),
        ]
        for factor in (
            decomposition.k1a,
            decomposition.k1b,
            decomposition.k2a,
            decomposition.k2b,
        ):
            for pauli in paulis:
                conjugated = factor @ pauli @ factor.conj().T
                matches = any(
                    np.allclose(conjugated, sign * other, atol=1e-6)
                    for other in paulis
                    for sign in (1.0, -1.0)
                )
                assert matches, "local factor is not a Clifford"

    def test_canonical_coordinates_match_weyl(self, rng):
        u = random_unitary(4, rng)
        assert _coords_equal(
            weyl_decomposition(u).canonical_coordinates, weyl_coordinates(u)
        )


class TestWeylOrbit:
    def test_orbit_contains_canonical(self):
        c = np.array([0.3, 0.2, 0.1])
        orbit = weyl_orbit(c)
        canonical = canonicalize_coordinates(c)
        assert any(np.allclose(rep, canonical) for rep in orbit)

    def test_orbit_elements_are_sorted_and_wrapped(self):
        for rep in weyl_orbit([1.0, 2.0, 3.0]):
            assert np.all(rep >= -1e-12)
            assert np.all(rep < math.pi / 2)
            assert rep[0] >= rep[1] >= rep[2]

    def test_canonicalization_is_idempotent(self, rng):
        c = rng.uniform(0, math.pi / 2, 3)
        once = canonicalize_coordinates(c)
        twice = canonicalize_coordinates(once)
        assert np.allclose(once, twice)


class TestInteractionTime:
    COUPLING = 2 * math.pi * 0.02  # rad/ns at the paper's field limit

    def test_cnot_needs_half_iswap_pair(self):
        # Schuch & Siewert: CNOT needs total XY interaction pi/(2g).
        assert interaction_time(CNOT, self.COUPLING) == pytest.approx(
            math.pi / (2 * self.COUPLING)
        )

    def test_iswap_equals_cnot_time(self):
        assert interaction_time(ISWAP, self.COUPLING) == pytest.approx(
            interaction_time(CNOT, self.COUPLING)
        )

    def test_swap_is_three_halves_of_iswap(self):
        assert interaction_time(SWAP, self.COUPLING) == pytest.approx(
            1.5 * interaction_time(ISWAP, self.COUPLING)
        )

    def test_identity_is_free(self):
        assert interaction_time(np.eye(4, dtype=complex), self.COUPLING) == 0.0

    def test_local_gates_are_free(self, rng):
        local = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        assert interaction_time(local, self.COUPLING) == pytest.approx(0.0, abs=1e-6)

    def test_accepts_coordinates_directly(self):
        direct = interaction_time(np.array([PI4, 0.0, 0.0]), self.COUPLING)
        assert direct == pytest.approx(interaction_time(CNOT, self.COUPLING))

    def test_small_rzz_cheaper_than_cnot(self):
        theta = 0.2
        rzz = np.diag(np.exp(-0.5j * theta * np.array([1, -1, -1, 1])))
        assert interaction_time(rzz, self.COUPLING) < interaction_time(
            CNOT, self.COUPLING
        )

    def test_scales_inversely_with_coupling(self):
        slow = interaction_time(CNOT, self.COUPLING)
        fast = interaction_time(CNOT, 2 * self.COUPLING)
        assert slow == pytest.approx(2 * fast)

    def test_non_positive_rate_rejected(self):
        with pytest.raises(LinalgError):
            interaction_time(CNOT, 0.0)
