"""Tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.embed import embed_operator
from repro.linalg.random import random_statevector, random_unitary
from repro.linalg.simulator import StatevectorSimulator, apply_unitary

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
CNOT = np.eye(4)[[0, 1, 3, 2]].astype(complex)


class TestApplyUnitary:
    def test_matches_embedded_matrix(self, rng):
        state = random_statevector(4, rng)
        u = random_unitary(4, rng)
        direct = apply_unitary(state, u, [1, 3], 4)
        embedded = embed_operator(u, [1, 3], 4) @ state
        assert np.allclose(direct, embedded)

    def test_reversed_qubit_order(self, rng):
        state = random_statevector(3, rng)
        u = random_unitary(4, rng)
        direct = apply_unitary(state, u, [2, 0], 3)
        embedded = embed_operator(u, [2, 0], 3) @ state
        assert np.allclose(direct, embedded)

    def test_shape_validation(self):
        with pytest.raises(LinalgError):
            apply_unitary(np.ones(4), CNOT, [0], 2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(LinalgError):
            apply_unitary(np.ones(4), CNOT, [0, 0], 2)


class TestStatevectorSimulator:
    def test_initial_state(self):
        sim = StatevectorSimulator(2)
        assert sim.probability_of(0) == pytest.approx(1.0)

    def test_bell_state(self):
        sim = StatevectorSimulator(2)
        sim.apply(H, [0])
        sim.apply(CNOT, [0, 1])
        probs = sim.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_x_flips_bit(self):
        sim = StatevectorSimulator(3)
        sim.apply(X, [1])
        assert sim.probability_of(0b010) == pytest.approx(1.0)

    def test_reset_to_basis_state(self):
        sim = StatevectorSimulator(2)
        sim.reset(0b10)
        assert sim.probability_of(0b10) == pytest.approx(1.0)

    def test_reset_out_of_range(self):
        sim = StatevectorSimulator(2)
        with pytest.raises(LinalgError):
            sim.reset(4)

    def test_expectation_of_projector(self):
        sim = StatevectorSimulator(1)
        sim.apply(H, [0])
        z = np.diag([1.0, -1.0])
        assert sim.expectation(z) == pytest.approx(0.0, abs=1e-12)

    def test_expectation_shape_check(self):
        sim = StatevectorSimulator(1)
        with pytest.raises(LinalgError):
            sim.expectation(np.eye(4))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(LinalgError):
            StatevectorSimulator(25)

    def test_norm_preserved(self, rng):
        sim = StatevectorSimulator(4)
        for _ in range(5):
            sim.apply(random_unitary(4, rng), [0, 2])
        assert np.linalg.norm(sim.state) == pytest.approx(1.0)
