"""Tests for Pauli matrices and Pauli strings."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.paulis import (
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    pauli_matrix,
    pauli_string,
)


class TestSingleQubitPaulis:
    def test_squares_are_identity(self):
        for pauli in (PAULI_X, PAULI_Y, PAULI_Z):
            assert np.allclose(pauli @ pauli, IDENTITY)

    def test_anticommutation(self):
        assert np.allclose(PAULI_X @ PAULI_Y, -PAULI_Y @ PAULI_X)
        assert np.allclose(PAULI_Y @ PAULI_Z, -PAULI_Z @ PAULI_Y)
        assert np.allclose(PAULI_Z @ PAULI_X, -PAULI_X @ PAULI_Z)

    def test_xy_product_is_iz(self):
        assert np.allclose(PAULI_X @ PAULI_Y, 1j * PAULI_Z)

    def test_pauli_matrix_lookup(self):
        assert np.allclose(pauli_matrix("x"), PAULI_X)
        assert np.allclose(pauli_matrix("I"), IDENTITY)

    def test_pauli_matrix_unknown_label(self):
        with pytest.raises(LinalgError):
            pauli_matrix("Q")


class TestPauliStrings:
    def test_two_qubit_string(self):
        expected = np.kron(PAULI_X, PAULI_Z)
        assert np.allclose(pauli_string("XZ"), expected)

    def test_three_qubit_string(self):
        expected = np.kron(np.kron(PAULI_Y, IDENTITY), PAULI_X)
        assert np.allclose(pauli_string("YIX"), expected)

    def test_strings_are_traceless_unless_identity(self):
        assert abs(np.trace(pauli_string("XY"))) < 1e-12
        assert np.trace(pauli_string("II")) == pytest.approx(4.0)

    def test_lower_case_accepted(self):
        assert np.allclose(pauli_string("zz"), pauli_string("ZZ"))

    def test_empty_string_rejected(self):
        with pytest.raises(LinalgError):
            pauli_string("")

    def test_unknown_label_rejected(self):
        with pytest.raises(LinalgError):
            pauli_string("XQ")

    def test_cached_matrix_is_readonly(self):
        matrix = pauli_string("XX")
        with pytest.raises(ValueError):
            matrix[0, 0] = 5.0
