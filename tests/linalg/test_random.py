"""Tests for random unitaries and states."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.random import random_statevector, random_unitary


class TestRandomUnitary:
    def test_is_unitary(self, rng):
        u = random_unitary(8, rng)
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-10)

    def test_seeded_reproducibility(self):
        a = random_unitary(4, np.random.default_rng(7))
        b = random_unitary(4, np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_different_draws_differ(self, rng):
        assert not np.allclose(random_unitary(4, rng), random_unitary(4, rng))

    def test_invalid_dimension(self):
        with pytest.raises(LinalgError):
            random_unitary(0)


class TestRandomStatevector:
    def test_is_normalized(self, rng):
        psi = random_statevector(4, rng)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_dimension(self, rng):
        assert random_statevector(3, rng).shape == (8,)

    def test_invalid_qubits(self):
        with pytest.raises(LinalgError):
            random_statevector(0)
