"""Tests for the analytic latency model (incl. Table 1 calibration)."""


import pytest

from repro.config import DeviceConfig
from repro.control.latency_model import AnalyticLatencyModel, _collapse_runs
from repro.errors import ControlError
from repro.gates import library as lib

GAMMA, BETA = 5.67, 1.26  # the paper's QAOA angles


@pytest.fixture(scope="module")
def model():
    return AnalyticLatencyModel()


class TestSingleGateLatencies:
    """Shape agreement with paper Table 1."""

    def test_cnot_near_paper_value(self, model):
        assert model.gate_latency(lib.CNOT(0, 1)) == pytest.approx(47.1, rel=0.06)

    def test_swap_near_paper_value(self, model):
        assert model.gate_latency(lib.SWAP(0, 1)) == pytest.approx(50.1, rel=0.06)

    def test_swap_slower_than_cnot(self, model):
        assert model.gate_latency(lib.SWAP(0, 1)) > model.gate_latency(
            lib.CNOT(0, 1)
        )

    def test_rx_matches_paper(self, model):
        assert model.gate_latency(lib.RX(2 * BETA, 0)) == pytest.approx(
            6.1, rel=0.05
        )

    def test_one_qubit_gates_much_cheaper_than_two_qubit(self, model):
        for gate in (lib.H(0), lib.RZ(1.0, 0), lib.RX(0.5, 0), lib.T(0)):
            assert model.gate_latency(gate) < 15.0

    def test_identity_is_cheap(self, model):
        assert model.gate_latency(lib.I(0)) == pytest.approx(2.1, abs=1e-6)

    def test_latency_scales_with_rotation_angle(self, model):
        assert model.gate_latency(lib.RZ(2.0, 0)) > model.gate_latency(
            lib.RZ(1.0, 0)
        )

    def test_small_rzz_cheaper_than_cnot(self, model):
        assert model.gate_latency(lib.RZZ(0.3, 0, 1)) < model.gate_latency(
            lib.CNOT(0, 1)
        )

    def test_wide_gate_rejected(self, model):
        with pytest.raises(ControlError):
            model.gate_latency(lib.TOFFOLI(0, 1, 2))

    def test_empty_sequence_free(self, model):
        assert model.sequence_latency([]) == 0.0


class TestAggregatedLatencies:
    def test_cnot_rz_cnot_folds_to_single_interaction(self, model):
        block = [lib.CNOT(0, 1), lib.RZ(2 * GAMMA, 1), lib.CNOT(0, 1)]
        aggregated = model.sequence_latency(block)
        serial = sum(model.gate_latency(g) for g in block)
        assert aggregated < 0.6 * serial
        # Paper Table 1: G3 (this block) takes 42.0 ns.
        assert aggregated == pytest.approx(42.0, rel=0.08)

    def test_setup_amortization(self, model):
        pair = [lib.CNOT(0, 1), lib.CNOT(1, 2)]
        aggregated = model.sequence_latency(pair)
        serial = sum(model.gate_latency(g) for g in pair)
        # One setup charge instead of two.
        assert serial - aggregated >= 0.9 * model.device.setup_time_2q_ns

    def test_cancelling_cnots_cost_almost_nothing(self, model):
        block = [lib.CNOT(0, 1), lib.CNOT(0, 1)]
        assert model.sequence_latency(block) <= model.device.setup_time_1q_ns + 1e-6

    def test_disjoint_pairs_run_in_parallel(self, model):
        parallel = model.sequence_latency(
            [lib.CNOT(0, 1), lib.CNOT(2, 3)]
        )
        single = model.gate_latency(lib.CNOT(0, 1))
        assert parallel == pytest.approx(single, rel=1e-6)

    def test_shared_qubit_serializes(self, model):
        chained = model.sequence_latency([lib.CNOT(0, 1), lib.CNOT(1, 2)])
        single = model.gate_latency(lib.CNOT(0, 1))
        assert chained > 1.5 * single - model.device.setup_time_2q_ns

    def test_one_qubit_run_collapse(self, model):
        # H H = identity: the pair costs only the setup overhead.
        block = [lib.H(0), lib.H(0)]
        assert model.sequence_latency(block) == pytest.approx(
            model.device.setup_time_1q_ns, abs=1e-9
        )

    def test_triangle_qaoa_aggregate_beats_serial(self, model):
        gates = []
        for a, b in [(0, 1), (1, 2)]:
            gates += [lib.CNOT(a, b), lib.RZ(2 * GAMMA, b), lib.CNOT(a, b)]
        aggregated = model.sequence_latency(gates)
        serial = sum(model.gate_latency(g) for g in gates)
        assert aggregated < 0.55 * serial

    def test_custom_device_scaling(self):
        fast = AnalyticLatencyModel(DeviceConfig(coupling_limit_ghz=0.04))
        slow = AnalyticLatencyModel(DeviceConfig(coupling_limit_ghz=0.02))
        gate = lib.SWAP(0, 1)
        fast_busy = fast.gate_latency(gate) - fast.device.setup_time_2q_ns
        slow_busy = slow.gate_latency(gate) - slow.device.setup_time_2q_ns
        assert slow_busy == pytest.approx(2 * fast_busy)


class TestRunCollapsing:
    def test_single_gate_single_run(self):
        runs = _collapse_runs([lib.CNOT(0, 1)])
        assert len(runs) == 1
        assert runs[0].support == (0, 1)

    def test_same_pair_gates_merge(self):
        runs = _collapse_runs(
            [lib.CNOT(0, 1), lib.RZ(0.3, 1), lib.CNOT(0, 1)]
        )
        assert len(runs) == 1

    def test_disjoint_pairs_stay_separate(self):
        runs = _collapse_runs([lib.CNOT(0, 1), lib.CNOT(2, 3)])
        assert len(runs) == 2

    def test_chain_breaks_runs(self):
        runs = _collapse_runs(
            [lib.CNOT(0, 1), lib.CNOT(1, 2), lib.CNOT(0, 1)]
        )
        # Qubit 1 is shared: the middle gate closes the first run.
        assert len(runs) == 3

    def test_one_qubit_gate_absorbed_into_pair_run(self):
        runs = _collapse_runs([lib.CNOT(0, 1), lib.H(1), lib.H(0)])
        assert len(runs) == 1

    def test_one_qubit_runs_grow_to_pairs(self):
        runs = _collapse_runs([lib.H(0), lib.CNOT(0, 1)])
        assert len(runs) == 1
        assert runs[0].support == (0, 1)
