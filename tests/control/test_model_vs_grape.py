"""Cross-validation: the analytic model against real GRAPE optima.

These tests pin the property the whole compilation study rests on: the
analytic model's latencies track what numeric optimal control actually
achieves (same ordering, comparable magnitudes).
"""

import numpy as np
import pytest

from repro.control.grape import GrapeOptimizer
from repro.control.hamiltonian import xy_hamiltonian
from repro.control.latency_model import AnalyticLatencyModel
from repro.gates import library as lib
from repro.linalg.embed import embed_operator


@pytest.fixture(scope="module")
def model():
    return AnalyticLatencyModel()


@pytest.fixture(scope="module")
def two_qubit_ham():
    return xy_hamiltonian(2)


def _target_of(gates, width):
    total = np.eye(2**width, dtype=complex)
    for gate in gates:
        total = embed_operator(gate.matrix, gate.qubits, width) @ total
    return total


pytestmark = pytest.mark.slow  # every test runs real GRAPE optimizations


class TestModelTracksGrape:
    def test_model_busy_time_is_feasible_for_cnot(self, model, two_qubit_ham):
        # GRAPE must reach the target within the model's busy-time
        # estimate plus a discretization allowance (dt = 0.5 ns steps
        # cap fidelity very close to the speed limit).
        gates = [lib.CNOT(0, 1)]
        busy = model.sequence_latency(gates) - model.device.setup_time_2q_ns
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=500)
        result = optimizer.optimize(_target_of(gates, 2), duration=busy + 6.0)
        assert result.converged

    def test_model_busy_time_feasible_for_folded_block(self, model, two_qubit_ham):
        gates = [lib.CNOT(0, 1), lib.RZ(1.1, 1), lib.CNOT(0, 1)]
        busy = model.sequence_latency(gates) - model.device.setup_time_2q_ns
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=500)
        result = optimizer.optimize(_target_of(gates, 2), duration=busy + 6.0)
        assert result.converged

    def test_grape_confirms_swap_slower_than_cnot(self, two_qubit_ham):
        # At a duration between the two speed limits, CNOT converges and
        # SWAP does not: the model's ordering is physical.
        duration = 17.0  # CNOT limit 12.5 < 17.0 < SWAP limit 18.75
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=500)
        cnot = optimizer.optimize(_target_of([lib.CNOT(0, 1)], 2), duration)
        swap = optimizer.optimize(_target_of([lib.SWAP(0, 1)], 2), duration)
        assert cnot.converged
        assert not swap.converged

    def test_small_angle_rzz_fast_in_grape_too(self, model, two_qubit_ham):
        gates = [lib.RZZ(0.4, 0, 1)]
        busy = model.sequence_latency(gates) - model.device.setup_time_2q_ns
        assert busy < 6.0  # far below a CNOT's 12.5 ns
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=500)
        result = optimizer.optimize(_target_of(gates, 2), duration=busy + 4.5)
        assert result.converged
