"""Tests for pulse containers."""

import numpy as np
import pytest

from repro.control.pulse import Pulse, PulseSequence
from repro.errors import ControlError


def _pulse(steps=4, controls=2, dt=0.5):
    return Pulse(
        control_names=[f"c{i}" for i in range(controls)],
        amplitudes=np.ones((steps, controls)),
        dt=dt,
    )


class TestPulse:
    def test_duration(self):
        assert _pulse(steps=8, dt=0.25).duration == pytest.approx(2.0)

    def test_shape_validation(self):
        with pytest.raises(ControlError):
            Pulse(["a"], np.ones((3, 2)), 0.5)
        with pytest.raises(ControlError):
            Pulse(["a"], np.ones(3), 0.5)

    def test_dt_validation(self):
        with pytest.raises(ControlError):
            Pulse(["a"], np.ones((3, 1)), 0.0)

    def test_ghz_conversion(self):
        pulse = _pulse()
        assert np.allclose(pulse.amplitudes_ghz(), 1.0 / (2 * np.pi))

    def test_time_axis(self):
        pulse = _pulse(steps=3, dt=2.0)
        assert np.allclose(pulse.time_axis(), [0.0, 2.0, 4.0])

    def test_channel_lookup(self):
        pulse = _pulse()
        assert np.allclose(pulse.channel("c1"), 1.0)
        with pytest.raises(ControlError):
            pulse.channel("missing")

    def test_max_amplitude(self):
        pulse = Pulse(["a"], np.array([[0.5], [-2.0], [1.0]]), 0.5)
        assert pulse.max_amplitude() == pytest.approx(2.0)


class TestPulseSequence:
    def test_total_duration(self):
        sequence = PulseSequence()
        sequence.add("G1", _pulse(steps=4, dt=0.5))
        sequence.add("G2", _pulse(steps=2, dt=0.5))
        assert sequence.total_duration == pytest.approx(3.0)
        assert len(sequence) == 2

    def test_iteration_preserves_order(self):
        sequence = PulseSequence()
        sequence.add("first", _pulse())
        sequence.add("second", _pulse())
        labels = [label for label, _ in sequence]
        assert labels == ["first", "second"]
