"""Tests for the fleet-shared cache: sharded store, wire protocol, server.

The multiprocess stress classes are the PR's load-bearing guarantee:
N worker processes hammering one shared store (sharded directory, then
the socket server) with overlapping signatures must lose no writes,
corrupt no shard files, and synthesize each distinct signature exactly
once *fleet-wide*.  Synthesis is stubbed (a deterministic GrapeResult
built from the key) so the stress stays in the tier-1 time budget —
the real-GRAPE path is covered by the benchmarks.
"""

from __future__ import annotations

import os
import socket
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.control.cache import (
    CacheDelta,
    CacheServer,
    DiskPulseCache,
    ProtocolError,
    PulseCache,
    RemotePulseCache,
    ShardedDiskPulseCache,
    parse_cache_url,
    resolve_cache,
)
from repro.control.cache.metrics import cache_summary, format_bytes, hit_rate
from repro.control.cache.protocol import (
    decode_latency_key,
    decode_pulse_key,
    encode_latency_key,
    encode_pulse_key,
    recv_message,
    send_message,
)
from repro.control.cache.store import latency_entry_bytes
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.errors import ControlError


def _result(seed: int = 7, steps: int = 4) -> GrapeResult:
    rng = np.random.default_rng(seed)
    return GrapeResult(
        fidelity=0.999,
        converged=True,
        iterations=9,
        pulse=Pulse(
            control_names=["c0", "c1"],
            amplitudes=rng.standard_normal((steps, 2)),
            dt=0.5,
        ),
        final_unitary=np.eye(2, dtype=complex),
        loss_history=[0.4, 0.01],
    )


def _pulse_key(index: int) -> tuple:
    return ("fp", (1, ((f"G{index}", (), (0,)),)))


def _latency_key(index: int) -> tuple:
    return ("fp", "model", (1, ((f"G{index}", (), (0,)),)))


# ----------------------------------------------------------------------
# Sharded directory store


class TestShardedStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = ShardedDiskPulseCache(tmp_path / "cache", shards=4)
        first.put_latency(_latency_key(0), 12.5)
        first.put_pulse(_pulse_key(0), _result())
        first.save()

        second = ShardedDiskPulseCache(tmp_path / "cache")
        assert second.shards == 4  # adopted from sharding.json
        assert second.get_latency(_latency_key(0)) == 12.5
        restored = second.get_pulse(_pulse_key(0))
        np.testing.assert_array_equal(
            restored.pulse.amplitudes, _result().pulse.amplitudes
        )

    def test_conflicting_shard_count_rejected(self, tmp_path):
        ShardedDiskPulseCache(tmp_path / "cache", shards=4)
        with pytest.raises(ControlError, match="sharded 4 ways"):
            ShardedDiskPulseCache(tmp_path / "cache", shards=8)

    def test_entries_spread_across_shard_files(self, tmp_path):
        cache = ShardedDiskPulseCache(tmp_path / "cache", shards=4)
        for index in range(32):
            cache.put_latency(_latency_key(index), float(index))
        cache.save()
        shard_files = [
            name
            for name in os.listdir(tmp_path / "cache")
            if name.startswith("shard-") and name.endswith(".json")
        ]
        assert len(shard_files) > 1

    def test_miss_read_through_sees_other_writers(self, tmp_path):
        reader = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        writer = ShardedDiskPulseCache(tmp_path / "cache")
        assert reader.get_latency(_latency_key(1)) is None
        writer.put_latency(_latency_key(1), 8.0)
        writer.save()
        # No restart, no explicit reload: the miss stats the shard file,
        # notices the replace, and reloads it.
        assert reader.get_latency(_latency_key(1)) == 8.0
        assert reader.shard_loads >= 1

    def test_unchanged_shard_not_reloaded(self, tmp_path):
        reader = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        reader.get_latency(_latency_key(1))
        loads = reader.shard_loads
        reader.get_latency(_latency_key(1))  # same miss, file unchanged
        assert reader.shard_loads == loads

    def test_concurrent_flushes_merge_not_clobber(self, tmp_path):
        # Two instances write different keys (some sharing shards),
        # both flush; the union must survive.
        a = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        b = ShardedDiskPulseCache(tmp_path / "cache")
        for index in range(0, 10, 2):
            a.put_latency(_latency_key(index), float(index))
        for index in range(1, 10, 2):
            b.put_latency(_latency_key(index), float(index))
        a.save()
        b.save()
        merged = ShardedDiskPulseCache(tmp_path / "cache")
        assert merged.loaded_entries == 10
        for index in range(10):
            assert merged.get_latency(_latency_key(index)) == float(index)

    def test_exclusive_publishes_before_release(self, tmp_path):
        writer = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        peer = ShardedDiskPulseCache(tmp_path / "cache")
        key = _pulse_key(3)
        with writer.exclusive(key):
            writer.put_pulse(key, _result())
        # The guard flushed on release; a peer's re-check read-through
        # finds the published pulse instead of re-synthesizing.
        assert peer.get_pulse(key) is not None

    def test_max_shard_bytes_trims_on_flush(self, tmp_path):
        budget = sum(latency_entry_bytes(_latency_key(i)) for i in range(3))
        cache = ShardedDiskPulseCache(
            tmp_path / "cache", shards=1, max_shard_bytes=budget
        )
        for index in range(12):
            cache.put_latency(_latency_key(index), float(index))
        cache.save()
        assert cache.disk_evictions > 0
        reloaded = ShardedDiskPulseCache(tmp_path / "cache")
        assert 0 < reloaded.loaded_entries <= 3

    def test_trim_never_evicts_pulse_mid_exclusive(self, tmp_path):
        # The flush that *publishes* a synthesized pulse must not also
        # evict it, or peers blocked on the key lock re-synthesize and
        # the exactly-once guarantee silently breaks under tight budgets.
        key = _pulse_key(0)
        budget = latency_entry_bytes(_latency_key(0))  # << one pulse
        cache = ShardedDiskPulseCache(
            tmp_path / "cache", shards=1, max_shard_bytes=budget
        )
        with cache.exclusive(key):
            cache.put_pulse(key, _result())
            for index in range(8):  # fresher entries than the pulse
                cache.put_latency(_latency_key(index), float(index))
        assert cache.disk_evictions > 0  # the budget did bite
        peer = ShardedDiskPulseCache(tmp_path / "cache")
        assert peer.get_pulse(key) is not None

    def test_threaded_misses_reload_shard_once(self, tmp_path):
        writer = ShardedDiskPulseCache(tmp_path / "cache", shards=1)
        for index in range(4):
            writer.put_latency(_latency_key(index), float(index))
        writer.save()
        reader = ShardedDiskPulseCache(tmp_path / "cache", autoload=False)
        with ThreadPoolExecutor(max_workers=4) as pool:
            values = list(
                pool.map(lambda i: reader.get_latency(_latency_key(i)), range(4))
            )
        assert values == [0.0, 1.0, 2.0, 3.0]
        # Concurrent misses on one shard coalesce into a single load.
        assert reader.shard_loads == 1

    def test_stats_report_backend_fields(self, tmp_path):
        cache = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        cache.put_latency(_latency_key(0), 1.0)
        cache.save()
        stats = cache.stats()
        assert stats["backend"] == "sharded-disk"
        assert stats["shards"] == 2
        assert stats["shard_flushes"] == 1
        assert "lock_wait_seconds" in stats


# ----------------------------------------------------------------------
# Wire protocol


class TestProtocol:
    def test_framing_round_trip(self):
        left, right = socket.socketpair()
        try:
            payload = {"op": "ping", "nested": {"a": [1, 2.5, "x"]}}
            send_message(left, payload)
            assert recv_message(right) == payload
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x01\x00partial")
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()

    def test_oversized_announcement_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="cap"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_object_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x02[]")
            with pytest.raises(ProtocolError, match="object"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_key_wire_forms_round_trip_exactly(self):
        latency_key = ("fp", "grape", (2, (("CNOT", (0.5,), (0, 1)),)))
        pulse_key = ("fp", (2, (("CNOT", (0.5,), (0, 1)),)))
        assert decode_latency_key(encode_latency_key(latency_key)) == latency_key
        assert decode_pulse_key(encode_pulse_key(pulse_key)) == pulse_key

    def test_parse_cache_url(self):
        assert parse_cache_url("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_cache_url("tcp://box:80") == ("box", 80)
        with pytest.raises(ProtocolError):
            parse_cache_url("no-port")
        with pytest.raises(ProtocolError):
            parse_cache_url("host:abc")


# ----------------------------------------------------------------------
# Cache server + remote client


@pytest.fixture()
def server():
    with CacheServer() as running:
        yield running


class TestCacheServer:
    def test_latency_round_trip_between_clients(self, server):
        writer = RemotePulseCache(server.url, flush_threshold=0)
        reader = RemotePulseCache(server.url)
        writer.put_latency(_latency_key(0), 4.5)
        assert reader.get_latency(_latency_key(0)) == 4.5
        assert reader.remote_hits == 1

    def test_pulse_round_trip_between_clients(self, server):
        writer = RemotePulseCache(server.url, flush_threshold=0)
        reader = RemotePulseCache(server.url)
        original = _result(seed=3)
        writer.put_pulse(_pulse_key(0), original)
        restored = reader.get_pulse(_pulse_key(0))
        np.testing.assert_array_equal(
            restored.pulse.amplitudes, original.pulse.amplitudes
        )
        # Second read answers from the local L1, no extra round trip.
        requests = reader.remote_requests
        reader.get_pulse(_pulse_key(0))
        assert reader.remote_requests == requests

    def test_write_behind_batches_until_threshold(self, server):
        client = RemotePulseCache(server.url, flush_threshold=4)
        for index in range(4):
            client.put_latency(_latency_key(index), float(index))
        assert client.flushes == 0  # still buffered
        assert server.store.latency_count == 0
        client.put_latency(_latency_key(4), 4.0)  # crosses the threshold
        assert client.flushes == 1
        assert server.store.latency_count == 5

    def test_save_flushes_pending(self, server):
        client = RemotePulseCache(server.url)
        client.put_latency(_latency_key(0), 1.0)
        assert client.save() == 1
        assert server.store.latency_count == 1

    def test_merge_delta_forwards_upstream(self, server):
        client = RemotePulseCache(server.url, flush_threshold=0)
        client.merge_delta(
            CacheDelta(latencies={_latency_key(i): float(i) for i in range(3)})
        )
        assert server.store.latency_count == 3

    def test_exclusive_lease_excludes_other_owners(self, server):
        key = _pulse_key(9)
        holder = RemotePulseCache(server.url)
        with holder.exclusive(key):
            assert not server.leases.acquire(key, "someone-else")
        assert server.leases.acquire(key, "someone-else")  # released

    def test_expired_lease_is_grantable(self):
        with CacheServer(lock_ttl=0.0) as fast:
            key = _pulse_key(1)
            assert fast.leases.acquire(key, "a")
            assert fast.leases.acquire(key, "b")  # a's lease expired
            assert fast.leases.expired == 1

    def test_lock_op_honors_requested_ttl(self, server):
        key = _pulse_key(6)
        assert server.leases.acquire(key, "a", ttl=0.0)
        # a's per-request lease already expired despite the 300 s default.
        assert server.leases.acquire(key, "b")

    def test_lock_op_clamps_requested_ttl(self, server):
        from repro.control.cache.server import MAX_LOCK_TTL_SECONDS

        wire = encode_pulse_key(_pulse_key(7))
        assert server.dispatch(
            {"op": "lock", "key": wire, "owner": "a", "ttl": 1e12}
        )["granted"]
        _, deadline = server.leases._leases[_pulse_key(7)]
        assert deadline - time.monotonic() <= MAX_LOCK_TTL_SECONDS + 1

    def test_client_lock_ttl_rides_the_lock_op(self, server):
        client = RemotePulseCache(server.url, lock_ttl=1234.0)
        key = _pulse_key(8)
        with client.exclusive(key):
            _, deadline = server.leases._leases[key]
            remaining = deadline - time.monotonic()
            assert 1200 < remaining <= 1234

    def test_threads_share_one_client_without_crossing_responses(self, server):
        seeder = RemotePulseCache(server.url, flush_threshold=0)
        for index in range(32):
            seeder.put_latency(_latency_key(index), float(index))
        # A tiny L1 keeps every lookup a real socket round trip, so
        # interleaved frames would hand threads each other's responses.
        client = RemotePulseCache(server.url, max_bytes=1)
        with ThreadPoolExecutor(max_workers=8) as pool:
            values = list(
                pool.map(
                    lambda i: client.get_latency(_latency_key(i % 32)),
                    range(256),
                )
            )
        assert values == [float(i % 32) for i in range(256)]

    def test_threaded_writers_lose_no_pending_entries(self, server):
        client = RemotePulseCache(server.url, flush_threshold=2)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(
                    lambda i: client.put_latency(_latency_key(i), float(i)),
                    range(64),
                )
            )
        client.flush()
        assert server.store.latency_count == 64

    def test_unknown_op_is_protocol_error(self, server):
        client = RemotePulseCache(server.url)
        with pytest.raises(ProtocolError, match="unknown op"):
            client._request({"op": "bogus"})

    def test_server_side_eviction_budget(self):
        budget = sum(latency_entry_bytes(_latency_key(i)) for i in range(2))
        with CacheServer(store=PulseCache(max_bytes=budget)) as bounded:
            client = RemotePulseCache(bounded.url, flush_threshold=0)
            for index in range(6):
                client.put_latency(_latency_key(index), float(index))
            assert bounded.store.latency_count == 2
            assert bounded.store.stats()["evictions"] == 4

    def test_server_stats_envelope(self, server):
        client = RemotePulseCache(server.url, flush_threshold=0)
        client.put_latency(_latency_key(0), 1.0)
        client.get_latency(_latency_key(1))
        stats = client.server_stats()
        assert stats["backend"] == "memory"
        assert stats["server_requests"]["push_delta"] == 1
        assert stats["server_errors"] == 0

    def test_disk_backed_server_persists_on_stop(self, tmp_path):
        stem = tmp_path / "served"
        server = CacheServer(store=DiskPulseCache(stem)).start()
        client = RemotePulseCache(server.url, flush_threshold=0)
        client.put_latency(_latency_key(0), 2.5)
        assert server.stop() == 1
        assert DiskPulseCache(stem).get_latency(_latency_key(0)) == 2.5

    def test_client_pickles_without_socket(self, server):
        import pickle

        client = RemotePulseCache(server.url)
        client.get_latency(_latency_key(0))  # open the connection
        clone = pickle.loads(pickle.dumps(client))
        assert clone.owner != client.owner
        assert clone.get_latency(_latency_key(1)) is None  # reconnects


# ----------------------------------------------------------------------
# Server counter integrity and bind-address resolution


class TestCacheServerCounters:
    def test_threaded_dispatch_loses_no_op_counts(self, server):
        # op_counts[op] += 1 is a read-modify-write executed from one
        # handler thread per client; unlocked, concurrent bumps lose
        # increments.  With the counter lock the total is exact.
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: server.dispatch({"op": "ping"}), range(800)))
        assert server.op_counts["ping"] == 800

    def test_threaded_unknown_ops_lose_no_error_counts(self, server):
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: server.dispatch({"op": "bogus"}), range(800)))
        assert server.errors == 800

    def test_handler_exception_counts_as_error(self, server):
        # A request whose dispatch *raises* (malformed key) must bump
        # the error counter, not just return ok=False to the client.
        with socket.create_connection(server.address, timeout=5) as sock:
            send_message(sock, {"op": "get_latency", "key": 42})
            response = recv_message(sock)
        assert response["ok"] is False
        assert server.stats()["server_errors"] == 1

    def test_wildcard_bind_url_is_connectable(self):
        with CacheServer(host="0.0.0.0") as wildcard:
            host, port = wildcard.url.rsplit(":", 1)
            assert host == "127.0.0.1"
            client = RemotePulseCache(wildcard.url, flush_threshold=0)
            client.put_latency(_latency_key(0), 1.5)
            assert wildcard.store.latency_count == 1

    def test_reachable_host_mapping(self):
        from repro.control.cache.protocol import reachable_host

        assert reachable_host("0.0.0.0") == "127.0.0.1"
        assert reachable_host("") == "127.0.0.1"
        assert reachable_host("::") == "::1"
        assert reachable_host("192.0.2.7") == "192.0.2.7"


# ----------------------------------------------------------------------
# resolve_cache backend selection


class TestResolveCache:
    def test_none_when_nothing_requested(self):
        assert resolve_cache() is None

    def test_stem_mounts_single_pair_cache(self, tmp_path):
        cache = resolve_cache(path=str(tmp_path / "cache"))
        assert type(cache) is DiskPulseCache

    def test_shards_mount_sharded_store(self, tmp_path):
        cache = resolve_cache(path=str(tmp_path / "cache"), shards=4)
        assert isinstance(cache, ShardedDiskPulseCache)
        assert cache.shards == 4

    def test_existing_sharded_dir_auto_detected(self, tmp_path):
        ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        cache = resolve_cache(path=str(tmp_path / "cache"))
        assert isinstance(cache, ShardedDiskPulseCache)
        assert cache.shards == 2

    def test_url_mounts_remote_client(self):
        cache = resolve_cache(url="127.0.0.1:1", max_bytes=512)
        assert isinstance(cache, RemotePulseCache)
        assert cache.max_bytes == 512


# ----------------------------------------------------------------------
# Metrics helpers


class TestMetrics:
    def test_hit_rate(self):
        assert hit_rate(3, 1) == 0.75
        assert hit_rate(0, 0) is None

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.5 KiB"

    def test_summary_mentions_backend_specifics(self, tmp_path):
        sharded = ShardedDiskPulseCache(tmp_path / "cache", shards=2)
        sharded.put_latency(_latency_key(0), 1.0)
        sharded.get_latency(_latency_key(0))
        line = cache_summary(sharded.stats())
        assert "cache[sharded-disk]" in line
        assert "2 shards" in line
        remote_line = cache_summary(
            {"backend": "remote", "url": "h:1", "latency_entries": 0,
             "pulse_entries": 0, "remote_hits": 1, "remote_misses": 1,
             "remote_requests": 2}
        )
        assert "remote h:1" in remote_line
        assert "remote 1/2 (50%)" in remote_line


# ----------------------------------------------------------------------
# Multiprocess stress: N workers, one shared store, exactly-once synthesis


STRESS_WORKERS = 4
STRESS_SIGNATURES = 12


def _stress_keys(worker: int) -> list[int]:
    # Overlapping, worker-dependent orderings: every worker wants every
    # signature, starting from a different offset so the workers collide.
    return [
        (worker * 3 + step) % STRESS_SIGNATURES
        for step in range(STRESS_SIGNATURES)
    ]


def _stub_synthesize(cache, index: int) -> int:
    """Cache-check / lock / re-check / synthesize, as the OCU does.

    Returns 1 when this call actually synthesized (the stub GrapeResult
    is deterministic per signature, mirroring real GRAPE determinism).
    """
    key = _pulse_key(index)
    if cache.get_pulse(key) is not None:
        return 0
    with cache.exclusive(key):
        if cache.get_pulse(key) is not None:
            return 0
        cache.put_pulse(key, _result(seed=index))
        return 1


def _sharded_stress_worker(args) -> int:
    worker, directory = args
    cache = ShardedDiskPulseCache(directory)
    synthesized = 0
    for index in _stress_keys(worker):
        synthesized += _stub_synthesize(cache, index)
        cache.put_latency(_latency_key(index), float(index))
    cache.save()
    return synthesized


def _server_stress_worker(args) -> int:
    worker, url = args
    cache = RemotePulseCache(url, flush_threshold=2)
    synthesized = 0
    for index in _stress_keys(worker):
        synthesized += _stub_synthesize(cache, index)
        cache.put_latency(_latency_key(index), float(index))
    cache.close()
    return synthesized


class TestMultiprocessStress:
    def test_sharded_store_exactly_once_no_lost_writes(self, tmp_path):
        directory = str(tmp_path / "fleet")
        ShardedDiskPulseCache(directory, shards=4)  # pin the layout
        with ProcessPoolExecutor(max_workers=STRESS_WORKERS) as pool:
            synth_counts = list(
                pool.map(
                    _sharded_stress_worker,
                    [(w, directory) for w in range(STRESS_WORKERS)],
                )
            )
        # Exactly-once synthesis fleet-wide, not once per process.
        assert sum(synth_counts) == STRESS_SIGNATURES
        # No lost writes and no corrupt shards: a cold load parses every
        # shard pair and finds every entry every worker wrote.
        merged = ShardedDiskPulseCache(directory)
        for index in range(STRESS_SIGNATURES):
            assert merged.get_latency(_latency_key(index)) == float(index)
            restored = merged.get_pulse(_pulse_key(index))
            np.testing.assert_array_equal(
                restored.pulse.amplitudes,
                _result(seed=index).pulse.amplitudes,
            )

    def test_cache_server_exactly_once_no_lost_writes(self):
        with CacheServer() as server:
            with ProcessPoolExecutor(max_workers=STRESS_WORKERS) as pool:
                synth_counts = list(
                    pool.map(
                        _server_stress_worker,
                        [(w, server.url) for w in range(STRESS_WORKERS)],
                    )
                )
            assert sum(synth_counts) == STRESS_SIGNATURES
            assert server.store.latency_count == STRESS_SIGNATURES
            assert server.store.pulse_count == STRESS_SIGNATURES
            assert server.leases.expired == 0
            for index in range(STRESS_SIGNATURES):
                restored = server.store.get_pulse(_pulse_key(index))
                np.testing.assert_array_equal(
                    restored.pulse.amplitudes,
                    _result(seed=index).pulse.amplitudes,
                )
