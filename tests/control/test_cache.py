"""Tests for the shared pulse/latency cache backends."""

import os
import pickle

import numpy as np
import pytest

from repro.config import CompilerConfig, DeviceConfig
from repro.control.cache import (
    CacheDelta,
    CacheSession,
    DiskPulseCache,
    PulseCache,
    config_fingerprint,
)
from repro.control.grape import GrapeResult
from repro.control.pulse import Pulse
from repro.control.unit import OptimalControlUnit
from repro.errors import ControlError
from repro.gates import library as lib


def _fingerprint(device=None, compiler=None, **overrides):
    kwargs = {
        "device": device or DeviceConfig(),
        "compiler": compiler or CompilerConfig(),
        "grape_qubit_limit": 3,
        "grape_dt": 0.5,
        "seed": 20190413,
    }
    kwargs.update(overrides)
    return config_fingerprint(**kwargs)


def _grape_result(steps=4, controls=2, seed=7) -> GrapeResult:
    rng = np.random.default_rng(seed)
    pulse = Pulse(
        control_names=[f"c{i}" for i in range(controls)],
        amplitudes=rng.standard_normal((steps, controls)),
        dt=0.5,
    )
    unitary = np.eye(2, dtype=complex) * np.exp(1j * 0.25)
    return GrapeResult(
        fidelity=0.9991,
        converged=True,
        iterations=17,
        pulse=pulse,
        final_unitary=unitary,
        loss_history=[0.5, 0.1, 0.0009],
    )


class TestFingerprint:
    def test_deterministic(self):
        assert _fingerprint() == _fingerprint()

    def test_device_changes_fingerprint(self):
        assert _fingerprint() != _fingerprint(
            device=DeviceConfig(coupling_limit_ghz=0.04)
        )

    def test_compiler_changes_fingerprint(self):
        assert _fingerprint() != _fingerprint(
            compiler=CompilerConfig(fidelity_threshold=0.99)
        )

    def test_grape_settings_change_fingerprint(self):
        assert _fingerprint() != _fingerprint(grape_dt=0.25)
        assert _fingerprint() != _fingerprint(seed=1)
        assert _fingerprint() != _fingerprint(grape_qubit_limit=4)

    def test_aggregation_rounds_do_not_change_fingerprint(self):
        # The round cap shapes which merges execute, never the latency
        # or pulse of a given instruction; an ablation sweep over it
        # must keep hitting the same cache entries.
        assert _fingerprint() == _fingerprint(
            compiler=CompilerConfig(max_aggregation_rounds=1)
        )


class TestPulseCache:
    def test_latency_round_trip(self):
        cache = PulseCache()
        key = ("fp", "model", (1, ()))
        assert cache.get_latency(key) is None
        cache.put_latency(key, 47.1)
        assert cache.get_latency(key) == 47.1
        assert cache.latency_count == 1

    def test_pulse_round_trip(self):
        cache = PulseCache()
        key = ("fp", (2, ()))
        assert cache.get_pulse(key) is None
        result = _grape_result()
        cache.put_pulse(key, result)
        assert cache.get_pulse(key) is result
        assert cache.pulse_count == 1

    def test_stats_track_hits_and_misses(self):
        cache = PulseCache()
        cache.get_latency(("a",))
        cache.put_latency(("a",), 1.0)
        cache.get_latency(("a",))
        stats = cache.stats()
        assert stats["store_hits"] == 1
        assert stats["store_misses"] == 1
        assert stats["store_writes"] == 1

    def test_merge_delta_counts_new_entries(self):
        cache = PulseCache()
        cache.put_latency(("old",), 1.0)
        delta = CacheDelta(
            latencies={("old",): 1.0, ("new",): 2.0},
            pulses={("p",): _grape_result()},
        )
        assert cache.merge_delta(delta) == 2
        assert cache.get_latency(("new",)) == 2.0

    def test_picklable_across_processes(self):
        cache = PulseCache()
        cache.put_latency(("k",), 3.5)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get_latency(("k",)) == 3.5
        clone.put_latency(("k2",), 4.5)  # lock was reconstructed


class TestEviction:
    """LRU byte-budget eviction (shared by every cache backend)."""

    def _latency_budget(self, *keys):
        from repro.control.cache.store import latency_entry_bytes

        return sum(latency_entry_bytes(key) for key in keys)

    def test_unbounded_by_default(self):
        cache = PulseCache()
        for i in range(100):
            cache.put_latency((f"k{i}",), float(i))
        assert cache.latency_count == 100
        assert cache.stats()["evictions"] == 0

    def test_budget_evicts_least_recently_used(self):
        keys = [("a",), ("b",), ("c",)]
        cache = PulseCache(max_bytes=self._latency_budget(*keys[:2]))
        cache.put_latency(keys[0], 1.0)
        cache.put_latency(keys[1], 2.0)
        cache.put_latency(keys[2], 3.0)  # evicts ("a",), the LRU
        assert cache.get_latency(keys[0]) is None
        assert cache.get_latency(keys[1]) == 2.0
        assert cache.get_latency(keys[2]) == 3.0
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["total_bytes"] <= stats["max_bytes"]

    def test_get_refreshes_recency(self):
        keys = [("a",), ("b",), ("c",)]
        cache = PulseCache(max_bytes=self._latency_budget(*keys[:2]))
        cache.put_latency(keys[0], 1.0)
        cache.put_latency(keys[1], 2.0)
        cache.get_latency(keys[0])  # ("a",) is now the most recent
        cache.put_latency(keys[2], 3.0)  # so ("b",) is the victim
        assert cache.get_latency(keys[0]) == 1.0
        assert cache.get_latency(keys[1]) is None

    def test_entry_being_written_is_never_the_victim(self):
        # One pulse entry dwarfs the whole budget; it must still
        # round-trip (put-then-get hits) and evict everything *else*.
        cache = PulseCache(max_bytes=16)
        cache.put_latency(("small",), 1.0)
        result = _grape_result()
        cache.put_pulse(("fp", (1, ())), result)
        assert cache.get_pulse(("fp", (1, ()))) is result
        assert cache.get_latency(("small",)) is None

    def test_recency_is_global_across_latencies_and_pulses(self):
        result = _grape_result()
        from repro.control.cache.store import pulse_entry_bytes

        budget = pulse_entry_bytes(("fp", (1, ())), result) + self._latency_budget(
            ("b",)
        )
        cache = PulseCache(max_bytes=budget)
        cache.put_pulse(("fp", (1, ())), result)
        cache.put_latency(("b",), 2.0)
        cache.get_pulse(("fp", (1, ())))  # pulse most recent
        cache.put_latency(("c",), 3.0)  # latency ("b",) is the global LRU
        assert cache.get_latency(("b",)) is None
        assert cache.get_pulse(("fp", (1, ()))) is result

    def test_merge_delta_respects_budget(self):
        keys = [(f"k{i}",) for i in range(6)]
        cache = PulseCache(max_bytes=self._latency_budget(*keys[:3]))
        cache.merge_delta(
            CacheDelta(latencies={key: float(i) for i, key in enumerate(keys)})
        )
        assert cache.latency_count == 3
        assert cache.stats()["evictions"] == 3

    def test_disk_cache_budget_applies_on_load(self, tmp_path):
        stem = tmp_path / "cache"
        big = DiskPulseCache(stem)
        keys = [("fp", "model", (i, ())) for i in range(4)]
        for i, key in enumerate(keys):
            big.put_latency(key, float(i))
        big.save()
        bounded = DiskPulseCache(stem, max_bytes=self._latency_budget(*keys[:2]))
        assert bounded.latency_count == 2
        # What survives is what the next save writes: the budget governs
        # the persisted pair too.
        bounded.save()
        assert DiskPulseCache(stem).loaded_entries == 2


class TestMergeDeltaProperties:
    """The algebra the fleet-wide delta sync relies on."""

    def _snapshot(self, cache):
        return (dict(cache._latencies), dict(cache._pulses))

    def test_merging_same_delta_twice_changes_nothing(self):
        cache = PulseCache()
        delta = CacheDelta(
            latencies={("a",): 1.0, ("b",): 2.0},
            pulses={("fp", (1, ())): _grape_result()},
        )
        assert cache.merge_delta(delta) == 3
        before = self._snapshot(cache)
        assert cache.merge_delta(delta) == 0  # idempotent: nothing new
        assert self._snapshot(cache) == before

    def test_interleaved_merges_commute(self):
        delta_a = CacheDelta(
            latencies={("a",): 1.0, ("shared",): 5.0},
            pulses={("fp", (1, ())): _grape_result(seed=1)},
        )
        delta_b = CacheDelta(
            latencies={("b",): 2.0, ("shared",): 5.0},
            pulses={("fp", (2, ())): _grape_result(seed=2)},
        )
        forward, backward = PulseCache(), PulseCache()
        forward.merge_delta(delta_a)
        forward.merge_delta(delta_b)
        backward.merge_delta(delta_b)
        backward.merge_delta(delta_a)
        assert dict(forward._latencies) == dict(backward._latencies)
        assert set(forward._pulses) == set(backward._pulses)
        assert forward.latency_count == 3

    def test_new_entry_counts_sum_to_distinct_keys(self):
        # However merges interleave, the per-merge "new" counts total
        # the number of distinct keys — the invariant the exactly-once
        # accounting in the benchmarks is built on.
        delta_a = CacheDelta(latencies={("a",): 1.0, ("shared",): 5.0})
        delta_b = CacheDelta(latencies={("b",): 2.0, ("shared",): 5.0})
        cache = PulseCache()
        total = cache.merge_delta(delta_a) + cache.merge_delta(delta_b)
        assert total == 3 == cache.latency_count

    def test_extend_is_last_write_wins(self):
        base = CacheDelta(latencies={("a",): 1.0})
        base.extend(CacheDelta(latencies={("a",): 1.0, ("b",): 2.0}))
        assert len(base) == 2


class TestCrashSafety:
    def test_save_leaves_no_temp_files(self, tmp_path):
        cache = DiskPulseCache(tmp_path / "cache")
        cache.put_latency(("fp", "model", (1, ())), 1.0)
        cache.put_pulse(("fp", (1, ())), _grape_result())
        cache.save()
        cache.save()  # overwrite path too
        leftovers = [name for name in os.listdir(tmp_path) if ".tmp" in name]
        assert leftovers == []

    def test_failed_write_preserves_old_file_and_cleans_temp(self, tmp_path):
        from repro.control.cache.disk import replace_into

        final = tmp_path / "cache.json"
        final.write_text("precious")

        def exploding_writer(handle):
            handle.write(b"partial")
            raise OSError("disk full")

        with pytest.raises(OSError):
            replace_into(exploding_writer, str(final), ".tmp.json")
        assert final.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [final]


class TestCacheSession:
    def test_reads_fall_through_to_store(self):
        store = PulseCache()
        store.put_latency(("k",), 9.0)
        session = CacheSession(store)
        assert session.get_latency(("k",)) == 9.0

    def test_writes_buffer_into_delta(self):
        store = PulseCache()
        session = CacheSession(store)
        session.put_latency(("k",), 5.0)
        assert session.get_latency(("k",)) == 5.0
        assert store.get_latency(("k",)) is None
        assert len(session.delta) == 1
        store.merge_delta(session.delta)
        assert store.get_latency(("k",)) == 5.0

    def test_counts_include_both_layers(self):
        store = PulseCache()
        store.put_latency(("a",), 1.0)
        session = CacheSession(store)
        session.put_latency(("b",), 2.0)
        assert session.latency_count == 2

    def test_hit_miss_counters_cover_both_layers(self):
        store = PulseCache()
        store.put_latency(("stored",), 1.0)
        session = CacheSession(store)
        session.put_latency(("buffered",), 2.0)
        session.get_latency(("stored",))  # store layer answers
        session.get_latency(("buffered",))  # delta layer answers
        session.get_latency(("absent",))  # neither does
        session.get_pulse(("fp", (1, ())))  # pulse misses count too
        assert session.hits == 2
        assert session.misses == 2
        stats = session.stats()
        assert stats["session_hits"] == 2
        assert stats["session_misses"] == 2
        assert stats["session_buffered"] == 1

    def test_exclusive_writes_synthesized_pulse_through_to_store(self):
        store = PulseCache()
        session = CacheSession(store)
        key = ("fp", (1, ()))
        with session.exclusive(key):
            assert store.get_pulse(key) is None
            session.put_pulse(key, _grape_result())
        # Published before the guard released: peers blocked on the
        # store's single-flight lock must find it on their re-check.
        assert store.get_pulse(key) is not None

    def test_exclusive_without_synthesis_writes_nothing(self):
        store = PulseCache()
        session = CacheSession(store)
        with session.exclusive(("fp", (1, ()))):
            pass  # re-check found it elsewhere; nothing synthesized
        assert store.pulse_count == 0


class TestDiskPulseCache:
    def test_round_trip_latencies_and_pulses(self, tmp_path):
        stem = tmp_path / "cache"
        cache = DiskPulseCache(stem)
        latency_key = ("fp", "model", (2, (("CNOT", (), (0, 1)),)))
        pulse_key = ("fp", (2, (("CNOT", (), (0, 1)),)))
        cache.put_latency(latency_key, 47.1)
        original = _grape_result()
        cache.put_pulse(pulse_key, original)
        assert cache.save() == 2

        reloaded = DiskPulseCache(stem)
        assert reloaded.loaded_entries == 2
        assert reloaded.get_latency(latency_key) == 47.1
        restored = reloaded.get_pulse(pulse_key)
        assert restored.fidelity == original.fidelity
        assert restored.converged == original.converged
        assert restored.iterations == original.iterations
        assert restored.pulse.dt == original.pulse.dt
        assert restored.pulse.control_names == original.pulse.control_names
        np.testing.assert_array_equal(
            restored.pulse.amplitudes, original.pulse.amplitudes
        )
        np.testing.assert_array_equal(
            restored.final_unitary, original.final_unitary
        )
        assert restored.loss_history == pytest.approx(original.loss_history)

    def test_missing_files_load_empty(self, tmp_path):
        cache = DiskPulseCache(tmp_path / "nothing")
        assert cache.loaded_entries == 0
        assert cache.latency_count == 0

    def test_json_suffix_addresses_same_pair(self, tmp_path):
        cache = DiskPulseCache(tmp_path / "cache")
        cache.put_latency(("fp", "model", (1, ())), 1.0)
        cache.save()
        assert DiskPulseCache(tmp_path / "cache.json").loaded_entries == 1

    def test_unknown_format_rejected(self, tmp_path):
        stem = tmp_path / "cache"
        (tmp_path / "cache.json").write_text('{"format": "bogus"}')
        with pytest.raises(ControlError):
            DiskPulseCache(stem)

    def test_torn_file_pair_drops_pulses_keeps_latencies(self, tmp_path):
        stem = tmp_path / "cache"
        cache = DiskPulseCache(stem)
        latency_key = ("fp", "model", (1, ()))
        pulse_key = ("fp", (1, ()))
        cache.put_latency(latency_key, 5.0)
        cache.put_pulse(pulse_key, _grape_result())
        cache.save()

        # Simulate a crash between the two atomic replaces: the npz on
        # disk belongs to a different save than the json manifest.
        other = DiskPulseCache(tmp_path / "other")
        other.put_pulse(("fp", (9, ())), _grape_result(steps=6))
        other.save()
        (tmp_path / "other.npz").rename(tmp_path / "cache.npz")

        reloaded = DiskPulseCache(stem)
        assert reloaded.get_latency(latency_key) == 5.0
        assert reloaded.get_pulse(pulse_key) is None  # miss, not mispair
        assert reloaded.pulse_entries_skipped == 1

    def test_same_keys_different_slot_order_not_mispaired(self, tmp_path):
        """Two saves of the same pulse set in different insertion order
        assign slots differently; their files must never cross-pair."""
        key_a = ("fp", (1, (("H", (), (0,)),)))
        key_b = ("fp", (1, (("X", (), (0,)),)))
        result_a = _grape_result(seed=1)
        result_b = _grape_result(seed=2)

        first = DiskPulseCache(tmp_path / "first")
        first.put_pulse(key_a, result_a)
        first.put_pulse(key_b, result_b)
        first.save()
        second = DiskPulseCache(tmp_path / "second")
        second.put_pulse(key_b, result_b)
        second.put_pulse(key_a, result_a)
        second.save()

        # Torn pair: first's manifest with second's arrays.
        (tmp_path / "second.npz").rename(tmp_path / "first.npz")
        reloaded = DiskPulseCache(tmp_path / "first")
        assert reloaded.pulse_count == 0
        assert reloaded.pulse_entries_skipped == 2

    def test_missing_npz_drops_pulses_keeps_latencies(self, tmp_path):
        stem = tmp_path / "cache"
        cache = DiskPulseCache(stem)
        cache.put_latency(("fp", "model", (1, ())), 5.0)
        cache.put_pulse(("fp", (1, ())), _grape_result())
        cache.save()
        (tmp_path / "cache.npz").unlink()
        reloaded = DiskPulseCache(stem)
        assert reloaded.get_latency(("fp", "model", (1, ()))) == 5.0
        assert reloaded.pulse_count == 0
        assert reloaded.pulse_entries_skipped == 1

    def test_save_without_pulses_removes_stale_npz(self, tmp_path):
        stem = tmp_path / "cache"
        cache = DiskPulseCache(stem)
        cache.put_pulse(("fp", (1, ())), _grape_result())
        cache.save()
        assert (tmp_path / "cache.npz").exists()
        empty = DiskPulseCache(tmp_path / "other")
        empty.stem = str(stem)
        empty.put_latency(("fp", "model", (1, ())), 1.0)
        empty.save()
        assert not (tmp_path / "cache.npz").exists()


class TestSharedCacheAcrossUnits:
    def test_units_with_same_config_share_entries(self):
        store = PulseCache()
        first = OptimalControlUnit(cache=store)
        second = OptimalControlUnit(cache=store)
        first.latency(lib.CNOT(0, 1))
        assert first.model_evals == 1
        second.latency(lib.CNOT(0, 1))
        assert second.model_evals == 0
        assert second.cache_hits == 1

    def test_different_device_does_not_share(self):
        store = PulseCache()
        first = OptimalControlUnit(cache=store)
        other_device = DeviceConfig(coupling_limit_ghz=0.04)
        second = OptimalControlUnit(device=other_device, cache=store)
        first.latency(lib.CNOT(0, 1))
        second.latency(lib.CNOT(0, 1))
        assert second.model_evals == 1
        assert store.latency_count == 2

    def test_warm_disk_cache_skips_model(self, tmp_path):
        stem = tmp_path / "cache"
        cold_cache = DiskPulseCache(stem)
        cold = OptimalControlUnit(cache=cold_cache)
        gates = [lib.CNOT(0, 1), lib.SWAP(1, 2), lib.H(0), lib.RZ(0.3, 2)]
        cold_values = [cold.latency(gate) for gate in gates]
        assert cold.model_evals == len(gates)
        cold_cache.save()

        warm = OptimalControlUnit(cache=DiskPulseCache(stem))
        warm_values = [warm.latency(gate) for gate in gates]
        assert warm_values == cold_values  # bit-identical through JSON
        assert warm.model_evals == 0

    def test_warm_disk_cache_skips_grape(self, tmp_path):
        stem = tmp_path / "cache"
        cold_cache = DiskPulseCache(stem)
        cold = OptimalControlUnit(backend="grape", seed=11, cache=cold_cache)
        cold_latency = cold.latency(lib.H(0))
        assert cold.grape_calls == 1
        cold_cache.save()

        warm = OptimalControlUnit(
            backend="grape", seed=11, cache=DiskPulseCache(stem)
        )
        assert warm.latency(lib.H(0)) == cold_latency
        assert warm.grape_calls == 0
        pulse = warm.synthesize_pulse(lib.H(0))
        assert pulse.converged
        assert warm.grape_calls == 0
