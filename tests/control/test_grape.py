"""Tests for the GRAPE optimizer."""

import numpy as np
import pytest

from repro.control.grape import (
    GRAPE_KERNELS,
    GrapeOptimizer,
    _loss_and_gradient,
    _propagate,
    _reduce_product,
    _step_propagators,
)
from repro.control.hamiltonian import xy_hamiltonian
from repro.errors import ControlError
from repro.linalg.fidelity import unitary_trace_fidelity

CNOT = np.eye(4)[[0, 1, 3, 2]].astype(complex)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
X = np.array([[0, 1], [1, 0]], dtype=complex)


@pytest.fixture(scope="module")
def two_qubit_ham():
    return xy_hamiltonian(2)


@pytest.fixture(scope="module")
def one_qubit_ham():
    return xy_hamiltonian(1)


class TestGradient:
    def test_exact_gradient_matches_finite_differences(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(3)
        amplitudes = 0.1 * rng.standard_normal((5, two_qubit_ham.num_controls))
        _, gradient = _loss_and_gradient(amplitudes, operators, CNOT, 0.5)
        eps = 1e-6
        for j, k in [(0, 0), (2, 2), (4, 4), (3, 1)]:
            plus = amplitudes.copy()
            plus[j, k] += eps
            minus = amplitudes.copy()
            minus[j, k] -= eps
            loss_plus, _ = _loss_and_gradient(plus, operators, CNOT, 0.5)
            loss_minus, _ = _loss_and_gradient(minus, operators, CNOT, 0.5)
            finite = (loss_plus - loss_minus) / (2 * eps)
            assert gradient[j, k] == pytest.approx(finite, abs=1e-7)

    def test_zero_pulse_propagates_to_identity(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        amplitudes = np.zeros((4, two_qubit_ham.num_controls))
        total = _propagate(amplitudes, operators, 0.5)
        assert np.allclose(total, np.eye(4), atol=1e-12)

    def test_loss_in_unit_interval(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(1)
        amplitudes = 0.1 * rng.standard_normal((6, two_qubit_ham.num_controls))
        loss, _ = _loss_and_gradient(amplitudes, operators, CNOT, 0.5)
        assert 0.0 <= loss <= 1.0


def _random_unitary(dim: int, rng) -> np.ndarray:
    """Haar-ish random unitary via QR of a complex Gaussian matrix."""
    matrix = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal(
        (dim, dim)
    )
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


class TestKernelParity:
    """The vectorized kernel must reproduce the reference loop exactly
    (same contractions, different association order: ~1e-12 agreement)."""

    @pytest.mark.parametrize(
        "num_qubits,steps", [(1, 5), (2, 17), (2, 64), (3, 31)]
    )
    def test_matches_reference_on_xy_model(self, num_qubits, steps):
        ham = xy_hamiltonian(num_qubits)
        operators = np.stack([t.operator for t in ham.terms])
        rng = np.random.default_rng(steps)
        amplitudes = 0.2 * rng.standard_normal((steps, ham.num_controls))
        target = _random_unitary(ham.dim, rng)
        loss_v, grad_v = _loss_and_gradient(
            amplitudes, operators, target, 0.5, kernel="vectorized"
        )
        loss_r, grad_r = _loss_and_gradient(
            amplitudes, operators, target, 0.5, kernel="reference"
        )
        assert loss_v == pytest.approx(loss_r, abs=1e-12)
        assert np.allclose(grad_v, grad_r, atol=1e-12)

    @pytest.mark.parametrize("trial", range(4))
    def test_matches_reference_on_random_hermitians(self, trial):
        # Unstructured control operators: nothing about the XY model's
        # sparsity can be load-bearing for parity.
        rng = np.random.default_rng(100 + trial)
        dim = int(rng.integers(2, 9))
        num_controls = int(rng.integers(1, 5))
        steps = int(rng.integers(2, 40))
        raw = rng.standard_normal(
            (num_controls, dim, dim)
        ) + 1j * rng.standard_normal((num_controls, dim, dim))
        operators = (raw + raw.conj().transpose(0, 2, 1)) / 2.0
        amplitudes = 0.3 * rng.standard_normal((steps, num_controls))
        target = _random_unitary(dim, rng)
        loss_v, grad_v = _loss_and_gradient(
            amplitudes, operators, target, 0.4, kernel="vectorized"
        )
        loss_r, grad_r = _loss_and_gradient(
            amplitudes, operators, target, 0.4, kernel="reference"
        )
        assert loss_v == pytest.approx(loss_r, abs=1e-12)
        assert np.allclose(grad_v, grad_r, atol=1e-12)

    def test_degenerate_eigenvalues(self, two_qubit_ham):
        # A zero pulse makes every step Hamiltonian identically zero —
        # all eigenvalues coincide, exercising the divided-difference
        # diagonal branch in both kernels.
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        amplitudes = np.zeros((6, two_qubit_ham.num_controls))
        loss_v, grad_v = _loss_and_gradient(
            amplitudes, operators, CNOT, 0.5, kernel="vectorized"
        )
        loss_r, grad_r = _loss_and_gradient(
            amplitudes, operators, CNOT, 0.5, kernel="reference"
        )
        assert loss_v == pytest.approx(loss_r, abs=1e-12)
        assert np.allclose(grad_v, grad_r, atol=1e-12)

    @pytest.mark.parametrize("kernel", GRAPE_KERNELS)
    def test_finite_differences(self, kernel, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(7)
        amplitudes = 0.1 * rng.standard_normal((5, two_qubit_ham.num_controls))
        _, gradient = _loss_and_gradient(
            amplitudes, operators, CNOT, 0.5, kernel=kernel
        )
        eps = 1e-6
        for j, k in [(0, 0), (2, 3), (4, 1)]:
            plus = amplitudes.copy()
            plus[j, k] += eps
            minus = amplitudes.copy()
            minus[j, k] -= eps
            loss_plus, _ = _loss_and_gradient(
                plus, operators, CNOT, 0.5, kernel=kernel
            )
            loss_minus, _ = _loss_and_gradient(
                minus, operators, CNOT, 0.5, kernel=kernel
            )
            finite = (loss_plus - loss_minus) / (2 * eps)
            assert gradient[j, k] == pytest.approx(finite, abs=1e-7)

    @pytest.mark.parametrize("steps", [1, 2, 3, 5, 8, 13])
    def test_reduce_product_matches_sequential(self, steps, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(steps)
        amplitudes = 0.3 * rng.standard_normal(
            (steps, two_qubit_ham.num_controls)
        )
        propagators, *_ = _step_propagators(amplitudes, operators, 0.5)
        sequential = np.eye(two_qubit_ham.dim, dtype=complex)
        for propagator in propagators:
            sequential = propagator @ sequential
        assert np.allclose(_reduce_product(propagators), sequential, atol=1e-13)

    def test_unknown_kernel_rejected(self, two_qubit_ham):
        with pytest.raises(ControlError, match="kernel"):
            GrapeOptimizer(two_qubit_ham, kernel="looped")
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        with pytest.raises(ControlError, match="kernel"):
            _loss_and_gradient(
                np.zeros((2, len(operators))), operators, CNOT, 0.5, kernel="gpu"
            )

    def test_reference_kernel_optimizes_identically_short_runs(
        self, one_qubit_ham
    ):
        # Short trajectories (before 1e-12 kernel noise can amplify):
        # both kernels walk the same path.
        fast = GrapeOptimizer(
            one_qubit_ham, max_iterations=40, kernel="vectorized"
        ).optimize(X, 8.0)
        loop = GrapeOptimizer(
            one_qubit_ham, max_iterations=40, kernel="reference"
        ).optimize(X, 8.0)
        assert np.allclose(
            fast.pulse.amplitudes, loop.pulse.amplitudes, atol=1e-8
        )
        assert fast.fidelity == pytest.approx(loop.fidelity, abs=1e-8)


class TestPlateau:
    def test_infeasible_duration_stops_early(self, two_qubit_ham):
        # 9 ns is below the iSWAP speed limit: the loss plateaus above
        # the threshold, and the plateau budget cuts the attempt short.
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=250)
        result = optimizer.optimize(ISWAP, 9.0, plateau_iterations=25)
        assert not result.converged
        assert result.evaluations < 250

    def test_feasible_target_still_converges(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=400)
        result = optimizer.optimize(CNOT, 20.0, plateau_iterations=40)
        assert result.converged
        assert result.fidelity >= 0.999

    def test_evaluations_counts_iterations(self, one_qubit_ham):
        result = GrapeOptimizer(one_qubit_ham, max_iterations=30).optimize(
            X, 8.0
        )
        assert result.evaluations == len(result.loss_history)
        assert result.evaluations == result.iterations


class TestOptimization:
    def test_single_qubit_x_gate(self, one_qubit_ham):
        optimizer = GrapeOptimizer(one_qubit_ham, max_iterations=200)
        # Pi rotation at the drive limit needs pi/0.628 ~ 5 ns; allow 8.
        result = optimizer.optimize(X, duration=8.0)
        assert result.converged
        assert result.fidelity >= 0.999

    def test_cnot_converges_with_slack(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=400)
        result = optimizer.optimize(CNOT, duration=20.0)
        assert result.converged
        assert result.fidelity >= 0.999

    def test_iswap_below_speed_limit_fails(self, two_qubit_ham):
        # Minimal iSWAP time at the coupling limit is pi/(2g) = 12.5 ns.
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=250)
        result = optimizer.optimize(ISWAP, duration=9.0)
        assert not result.converged
        assert result.fidelity < 0.999

    def test_respects_amplitude_limits(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=150)
        result = optimizer.optimize(CNOT, duration=20.0)
        limits = two_qubit_ham.limits()
        assert np.all(np.abs(result.pulse.amplitudes) <= limits + 1e-12)

    def test_final_unitary_matches_reported_fidelity(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=100)
        result = optimizer.optimize(CNOT, duration=20.0)
        recomputed = unitary_trace_fidelity(CNOT, result.final_unitary)
        assert recomputed == pytest.approx(result.fidelity, abs=1e-9)

    def test_loss_history_weakly_improves(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=150)
        result = optimizer.optimize(CNOT, duration=20.0)
        assert min(result.loss_history) <= result.loss_history[0]

    def test_deterministic_given_seed(self, two_qubit_ham):
        first = GrapeOptimizer(two_qubit_ham, max_iterations=50, seed=9).optimize(
            CNOT, 18.0
        )
        second = GrapeOptimizer(two_qubit_ham, max_iterations=50, seed=9).optimize(
            CNOT, 18.0
        )
        assert np.allclose(first.pulse.amplitudes, second.pulse.amplitudes)

    def test_warm_start(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=60)
        cold = optimizer.optimize(CNOT, duration=20.0)
        warm = optimizer.optimize(
            CNOT, duration=20.0, initial_amplitudes=cold.pulse.amplitudes
        )
        assert warm.fidelity >= cold.fidelity - 1e-6

    def test_target_shape_validation(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham)
        with pytest.raises(ControlError):
            optimizer.optimize(np.eye(2), duration=10.0)

    def test_bad_initial_shape(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham)
        with pytest.raises(ControlError):
            optimizer.optimize(
                CNOT, duration=10.0, initial_amplitudes=np.zeros((3, 2))
            )

    def test_constructor_validation(self, two_qubit_ham):
        with pytest.raises(ControlError):
            GrapeOptimizer(two_qubit_ham, dt=0.0)
        with pytest.raises(ControlError):
            GrapeOptimizer(two_qubit_ham, max_iterations=0)
