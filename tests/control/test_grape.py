"""Tests for the GRAPE optimizer."""

import numpy as np
import pytest

from repro.control.grape import GrapeOptimizer, _loss_and_gradient, _propagate
from repro.control.hamiltonian import xy_hamiltonian
from repro.errors import ControlError
from repro.linalg.fidelity import unitary_trace_fidelity

CNOT = np.eye(4)[[0, 1, 3, 2]].astype(complex)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
X = np.array([[0, 1], [1, 0]], dtype=complex)


@pytest.fixture(scope="module")
def two_qubit_ham():
    return xy_hamiltonian(2)


@pytest.fixture(scope="module")
def one_qubit_ham():
    return xy_hamiltonian(1)


class TestGradient:
    def test_exact_gradient_matches_finite_differences(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(3)
        amplitudes = 0.1 * rng.standard_normal((5, two_qubit_ham.num_controls))
        _, gradient = _loss_and_gradient(amplitudes, operators, CNOT, 0.5)
        eps = 1e-6
        for j, k in [(0, 0), (2, 2), (4, 4), (3, 1)]:
            plus = amplitudes.copy()
            plus[j, k] += eps
            minus = amplitudes.copy()
            minus[j, k] -= eps
            loss_plus, _ = _loss_and_gradient(plus, operators, CNOT, 0.5)
            loss_minus, _ = _loss_and_gradient(minus, operators, CNOT, 0.5)
            finite = (loss_plus - loss_minus) / (2 * eps)
            assert gradient[j, k] == pytest.approx(finite, abs=1e-7)

    def test_zero_pulse_propagates_to_identity(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        amplitudes = np.zeros((4, two_qubit_ham.num_controls))
        total = _propagate(amplitudes, operators, 0.5)
        assert np.allclose(total, np.eye(4), atol=1e-12)

    def test_loss_in_unit_interval(self, two_qubit_ham):
        operators = np.stack([t.operator for t in two_qubit_ham.terms])
        rng = np.random.default_rng(1)
        amplitudes = 0.1 * rng.standard_normal((6, two_qubit_ham.num_controls))
        loss, _ = _loss_and_gradient(amplitudes, operators, CNOT, 0.5)
        assert 0.0 <= loss <= 1.0


class TestOptimization:
    def test_single_qubit_x_gate(self, one_qubit_ham):
        optimizer = GrapeOptimizer(one_qubit_ham, max_iterations=200)
        # Pi rotation at the drive limit needs pi/0.628 ~ 5 ns; allow 8.
        result = optimizer.optimize(X, duration=8.0)
        assert result.converged
        assert result.fidelity >= 0.999

    def test_cnot_converges_with_slack(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=400)
        result = optimizer.optimize(CNOT, duration=20.0)
        assert result.converged
        assert result.fidelity >= 0.999

    def test_iswap_below_speed_limit_fails(self, two_qubit_ham):
        # Minimal iSWAP time at the coupling limit is pi/(2g) = 12.5 ns.
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=250)
        result = optimizer.optimize(ISWAP, duration=9.0)
        assert not result.converged
        assert result.fidelity < 0.999

    def test_respects_amplitude_limits(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=150)
        result = optimizer.optimize(CNOT, duration=20.0)
        limits = two_qubit_ham.limits()
        assert np.all(np.abs(result.pulse.amplitudes) <= limits + 1e-12)

    def test_final_unitary_matches_reported_fidelity(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=100)
        result = optimizer.optimize(CNOT, duration=20.0)
        recomputed = unitary_trace_fidelity(CNOT, result.final_unitary)
        assert recomputed == pytest.approx(result.fidelity, abs=1e-9)

    def test_loss_history_weakly_improves(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=150)
        result = optimizer.optimize(CNOT, duration=20.0)
        assert min(result.loss_history) <= result.loss_history[0]

    def test_deterministic_given_seed(self, two_qubit_ham):
        first = GrapeOptimizer(two_qubit_ham, max_iterations=50, seed=9).optimize(
            CNOT, 18.0
        )
        second = GrapeOptimizer(two_qubit_ham, max_iterations=50, seed=9).optimize(
            CNOT, 18.0
        )
        assert np.allclose(first.pulse.amplitudes, second.pulse.amplitudes)

    def test_warm_start(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham, max_iterations=60)
        cold = optimizer.optimize(CNOT, duration=20.0)
        warm = optimizer.optimize(
            CNOT, duration=20.0, initial_amplitudes=cold.pulse.amplitudes
        )
        assert warm.fidelity >= cold.fidelity - 1e-6

    def test_target_shape_validation(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham)
        with pytest.raises(ControlError):
            optimizer.optimize(np.eye(2), duration=10.0)

    def test_bad_initial_shape(self, two_qubit_ham):
        optimizer = GrapeOptimizer(two_qubit_ham)
        with pytest.raises(ControlError):
            optimizer.optimize(
                CNOT, duration=10.0, initial_amplitudes=np.zeros((3, 2))
            )

    def test_constructor_validation(self, two_qubit_ham):
        with pytest.raises(ControlError):
            GrapeOptimizer(two_qubit_ham, dt=0.0)
        with pytest.raises(ControlError):
            GrapeOptimizer(two_qubit_ham, max_iterations=0)
