"""Tests for control Hamiltonians."""

import numpy as np
import pytest

from repro.config import DeviceConfig
from repro.control.hamiltonian import ControlHamiltonian, ControlTerm, xy_hamiltonian
from repro.errors import ControlError
from repro.linalg.paulis import pauli_string
from repro.linalg.predicates import is_hermitian


class TestXyHamiltonian:
    def test_control_count_chain(self):
        # k qubits: 2k drives + (k-1) couplings on a chain.
        ham = xy_hamiltonian(3)
        assert ham.num_controls == 2 * 3 + 2

    def test_control_count_custom_edges(self):
        ham = xy_hamiltonian(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert ham.num_controls == 2 * 4 + 4

    def test_duplicate_edges_collapsed(self):
        ham = xy_hamiltonian(2, [(0, 1), (1, 0)])
        assert ham.num_controls == 2 * 2 + 1

    def test_bad_edge_rejected(self):
        with pytest.raises(ControlError):
            xy_hamiltonian(2, [(0, 0)])
        with pytest.raises(ControlError):
            xy_hamiltonian(2, [(0, 5)])

    def test_drive_limits_are_five_times_coupling(self):
        device = DeviceConfig()
        ham = xy_hamiltonian(2, device=device)
        drive = next(t for t in ham.terms if t.name == "x0")
        coupling = next(t for t in ham.terms if t.name.startswith("xy"))
        assert drive.limit == pytest.approx(5 * coupling.limit)
        assert coupling.limit == pytest.approx(2 * np.pi * 0.02)

    def test_all_operators_hermitian(self):
        ham = xy_hamiltonian(3)
        for term in ham.terms:
            assert is_hermitian(term.operator), term.name

    def test_coupling_operator_matrix(self):
        ham = xy_hamiltonian(2)
        coupling = next(t for t in ham.terms if t.name == "xy0_1")
        expected = (pauli_string("XX") + pauli_string("YY")) / 2.0
        assert np.allclose(coupling.operator, expected)

    def test_drive_embedding(self):
        ham = xy_hamiltonian(2)
        x1 = next(t for t in ham.terms if t.name == "x1")
        assert np.allclose(x1.operator, pauli_string("IX") / 2.0)

    def test_assemble_hamiltonian(self):
        ham = xy_hamiltonian(1)
        matrix = ham.hamiltonian([0.3, 0.0])
        assert np.allclose(matrix, 0.3 * pauli_string("X") / 2.0)

    def test_assemble_wrong_length(self):
        ham = xy_hamiltonian(1)
        with pytest.raises(ControlError):
            ham.hamiltonian([0.1])

    def test_limits_vector(self):
        ham = xy_hamiltonian(2)
        limits = ham.limits()
        assert limits.shape == (5,)
        assert np.all(limits > 0)


class TestControlHamiltonianValidation:
    def test_empty_terms_rejected(self):
        with pytest.raises(ControlError):
            ControlHamiltonian(1, [])

    def test_shape_mismatch_rejected(self):
        term = ControlTerm("bad", np.eye(2), 1.0)
        with pytest.raises(ControlError):
            ControlHamiltonian(2, [term])

    def test_non_positive_limit_rejected(self):
        term = ControlTerm("bad", np.eye(2), 0.0)
        with pytest.raises(ControlError):
            ControlHamiltonian(1, [term])
