"""Golden cache-fingerprint regression tests.

The pulse cache namespaces every entry by ``config_fingerprint``; any
change to the fingerprint silently cold-starts every persistent cache on
disk (this happened once: PR 2 excluded ``max_aggregation_rounds`` and
invalidated all pre-existing caches).  These tests freeze the current
values for the paper's homogeneous configuration and one heterogeneous
device, so future invalidations are deliberate decisions — when one of
these fails, either revert the fingerprint change or bump the golden
value *and* call out the cache cold-start in the changelog.
"""

from __future__ import annotations

from repro.config import DEFAULT_COMPILER, DEFAULT_DEVICE
from repro.control.cache import config_fingerprint
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device
from repro.device.presets import device_by_key

#: Frozen digest of the paper's default (homogeneous) configuration.
PAPER_GRID_FINGERPRINT = "446e874149f3fc43"

#: Frozen digest of a heterogeneous line-3 device (one weak edge, one
#: short-lived qubit).  Covers the ``target=`` folding path.
HETEROGENEOUS_FINGERPRINT = "42786c0ed797f439"


def _heterogeneous_device() -> Device:
    base = device_by_key("line-3")
    return Device(
        topology=base.topology,
        config=base.config,
        name="golden-hetero",
        coupling_limits_ghz={(0, 1): 0.015},
        t1_us={1: 40.0},
    )


class TestGoldenFingerprints:
    def test_paper_configuration_fingerprint_is_frozen(self):
        fingerprint = config_fingerprint(
            device=DEFAULT_DEVICE,
            compiler=DEFAULT_COMPILER,
            grape_qubit_limit=3,
            grape_dt=DEFAULT_COMPILER.grape_dt_ns,
            seed=20190413,
        )
        assert fingerprint == PAPER_GRID_FINGERPRINT, (
            "config_fingerprint changed for the paper configuration: "
            "every persistent pulse cache on disk will cold-start. If "
            "this is deliberate, update PAPER_GRID_FINGERPRINT and note "
            "the invalidation in CHANGES.md."
        )

    def test_heterogeneous_device_fingerprint_is_frozen(self):
        device = _heterogeneous_device()
        fingerprint = config_fingerprint(
            device=device.config,
            compiler=DEFAULT_COMPILER,
            grape_qubit_limit=3,
            grape_dt=DEFAULT_COMPILER.grape_dt_ns,
            seed=20190413,
            target=device,
        )
        assert fingerprint == HETEROGENEOUS_FINGERPRINT, (
            "config_fingerprint changed for heterogeneous devices: "
            "their cache entries will cold-start. If deliberate, update "
            "HETEROGENEOUS_FINGERPRINT and note it in CHANGES.md."
        )

    def test_default_ocu_agrees_with_golden_value(self):
        # The unit builds its fingerprint from its own constructor
        # defaults; drifting defaults invalidate caches just as surely
        # as fingerprint-algorithm changes.
        assert OptimalControlUnit().fingerprint == PAPER_GRID_FINGERPRINT
        assert (
            OptimalControlUnit(device=_heterogeneous_device()).fingerprint
            == HETEROGENEOUS_FINGERPRINT
        )

    def test_default_grape_knobs_do_not_change_the_fingerprint(self):
        # The optimal-control fast path (vectorized kernel, warm starts,
        # plateau termination) is the *default* and is deliberately left
        # out of the default fingerprint, so existing caches stay warm;
        # only opting out folds in.
        assert (
            config_fingerprint(
                device=DEFAULT_DEVICE,
                compiler=DEFAULT_COMPILER,
                grape_qubit_limit=3,
                grape_dt=DEFAULT_COMPILER.grape_dt_ns,
                seed=20190413,
                grape_kernel="vectorized",
                grape_warm_start=True,
                grape_plateau_iterations=60,
            )
            == PAPER_GRID_FINGERPRINT
        )

    def test_legacy_grape_knobs_namespace_their_own_entries(self):
        base = dict(
            device=DEFAULT_DEVICE,
            compiler=DEFAULT_COMPILER,
            grape_qubit_limit=3,
            grape_dt=DEFAULT_COMPILER.grape_dt_ns,
            seed=20190413,
        )
        variants = {
            config_fingerprint(**base, grape_kernel="reference"),
            config_fingerprint(**base, grape_warm_start=False),
            config_fingerprint(**base, grape_plateau_iterations=None),
        }
        # Three distinct non-default fingerprints, none colliding with
        # the frozen default: legacy-mode pulses (whose optimization
        # trajectories differ) can never answer fast-path queries.
        assert len(variants) == 3
        assert PAPER_GRID_FINGERPRINT not in variants

    def test_t1_override_alone_does_not_change_the_fingerprint(self):
        # t1/t2 feed the decoherence model, never pulse latencies: a
        # t1-only variant must share cache entries with the homogeneous
        # baseline (warm-cache coverage, not a collision).
        base = device_by_key("line-3")
        t1_only = Device(
            topology=base.topology, config=base.config, t1_us={0: 25.0}
        )
        assert (
            OptimalControlUnit(device=t1_only).fingerprint
            == PAPER_GRID_FINGERPRINT
        )
