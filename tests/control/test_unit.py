"""Tests for the OptimalControlUnit facade."""

import pytest

from repro.control.unit import OptimalControlUnit, _signature_of
from repro.errors import ControlError
from repro.gates import library as lib


class _FakeInstruction:
    """Minimal aggregated-instruction stand-in."""

    def __init__(self, gates):
        self.gates = list(gates)
        qubits: set[int] = set()
        for gate in gates:
            qubits.update(gate.qubits)
        self.qubits = tuple(sorted(qubits))


class TestModelBackend:
    def test_gate_latency_positive(self):
        ocu = OptimalControlUnit()
        assert ocu.latency(lib.CNOT(0, 1)) > 0

    def test_instruction_latency_less_than_serial(self):
        ocu = OptimalControlUnit()
        gates = [lib.CNOT(0, 1), lib.RZ(0.7, 1), lib.CNOT(0, 1)]
        instruction = _FakeInstruction(gates)
        serial = sum(ocu.latency(g) for g in gates)
        assert ocu.latency(instruction) < serial

    def test_cache_hits_on_repeated_structure(self):
        ocu = OptimalControlUnit()
        ocu.latency(lib.CNOT(0, 1))
        before = ocu.cache_hits
        ocu.latency(lib.CNOT(5, 6))  # same structure elsewhere
        assert ocu.cache_hits == before + 1

    def test_cache_distinguishes_direction(self):
        ocu = OptimalControlUnit()
        a = ocu.latency(lib.CNOT(0, 1))
        b = ocu.latency(lib.CNOT(1, 0))
        # Same class, same latency value, but cached under distinct keys.
        assert a == pytest.approx(b)
        assert ocu.cache_info()["latency_entries"] == 2

    def test_model_latency_helper(self):
        ocu = OptimalControlUnit(backend="model")
        assert ocu.model_latency(lib.SWAP(0, 1)) == pytest.approx(
            ocu.latency(lib.SWAP(0, 1))
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ControlError):
            OptimalControlUnit(backend="quantum_magic")


class TestSignature:
    def test_same_structure_same_signature(self):
        a = _signature_of(lib.CNOT(0, 1))
        b = _signature_of(lib.CNOT(7, 9))
        assert a == b

    def test_qubit_order_matters(self):
        assert _signature_of(lib.CNOT(0, 1)) != _signature_of(lib.CNOT(1, 0))

    def test_params_matter(self):
        assert _signature_of(lib.RZ(0.5, 0)) != _signature_of(lib.RZ(0.6, 0))

    def test_instruction_signature_includes_layout(self):
        chain = _FakeInstruction([lib.CNOT(0, 1), lib.CNOT(1, 2)])
        fan = _FakeInstruction([lib.CNOT(0, 1), lib.CNOT(0, 2)])
        assert _signature_of(chain) != _signature_of(fan)


@pytest.mark.slow
class TestGrapeBackend:
    def test_grape_latency_close_to_model(self):
        grape_ocu = OptimalControlUnit(backend="grape", seed=11)
        model_ocu = OptimalControlUnit(backend="model")
        gate = lib.CNOT(0, 1)
        grape_latency = grape_ocu.latency(gate)
        model_latency = model_ocu.latency(gate)
        assert grape_latency == pytest.approx(model_latency, rel=0.25)

    def test_grape_pulse_cached(self):
        ocu = OptimalControlUnit(backend="grape", seed=11)
        ocu.latency(lib.CNOT(0, 1))
        calls_before = ocu.grape_calls
        ocu.synthesize_pulse(lib.CNOT(2, 3))  # structurally identical
        assert ocu.grape_calls == calls_before

    def test_wide_instruction_falls_back_to_model(self):
        ocu = OptimalControlUnit(backend="grape", grape_qubit_limit=2)
        wide = _FakeInstruction(
            [lib.CNOT(0, 1), lib.CNOT(1, 2), lib.CNOT(2, 3)]
        )
        latency = ocu.latency(wide)
        assert latency == pytest.approx(ocu.model_latency(wide))
        assert ocu.grape_fallbacks == 1

    def test_synthesize_pulse_width_check(self):
        ocu = OptimalControlUnit(backend="grape", grape_qubit_limit=2)
        wide = _FakeInstruction([lib.CNOT(0, 1), lib.CNOT(1, 2)])
        with pytest.raises(ControlError):
            ocu.synthesize_pulse(wide)
