"""Tests for minimal-pulse-time search."""

import numpy as np
import pytest

from repro.control.hamiltonian import xy_hamiltonian
from repro.control.time_search import minimal_pulse_time
from repro.errors import ControlError

X = np.array([[0, 1], [1, 0]], dtype=complex)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


class TestMinimalPulseTime:
    def test_x_gate_near_drive_speed_limit(self):
        # Pi rotation at drive limit 2*pi*0.1 rad/ns: minimum 5 ns.
        ham = xy_hamiltonian(1)
        result = minimal_pulse_time(
            X, ham, estimate=6.0, max_iterations=250
        )
        assert result.grape.converged
        assert 4.0 <= result.duration <= 9.0

    def test_iswap_respects_quantum_speed_limit(self):
        # iSWAP minimum is pi/(2g) = 12.5 ns: the search must not return
        # a faster pulse.
        ham = xy_hamiltonian(2)
        result = minimal_pulse_time(
            ISWAP, ham, estimate=13.0, max_iterations=300
        )
        assert result.grape.converged
        assert result.duration >= 11.5

    def test_bad_estimate_rejected(self):
        ham = xy_hamiltonian(1)
        with pytest.raises(ControlError):
            minimal_pulse_time(X, ham, estimate=0.0)

    def test_impossible_budget_raises(self):
        ham = xy_hamiltonian(2)
        with pytest.raises(ControlError, match="did not converge"):
            minimal_pulse_time(
                ISWAP,
                ham,
                estimate=1.0,
                max_attempts=2,
                max_iterations=30,
            )
