"""Tests for minimal-pulse-time search."""

import numpy as np
import pytest

from repro.control import time_search
from repro.control.grape import GrapeResult
from repro.control.hamiltonian import xy_hamiltonian
from repro.control.pulse import Pulse
from repro.control.time_search import _resample_amplitudes, minimal_pulse_time
from repro.errors import ControlError

X = np.array([[0, 1], [1, 0]], dtype=complex)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


class TestMinimalPulseTime:
    def test_x_gate_near_drive_speed_limit(self):
        # Pi rotation at drive limit 2*pi*0.1 rad/ns: minimum 5 ns.
        ham = xy_hamiltonian(1)
        result = minimal_pulse_time(
            X, ham, estimate=6.0, max_iterations=250
        )
        assert result.grape.converged
        assert 4.0 <= result.duration <= 9.0

    def test_iswap_respects_quantum_speed_limit(self):
        # iSWAP minimum is pi/(2g) = 12.5 ns: the search must not return
        # a faster pulse.
        ham = xy_hamiltonian(2)
        result = minimal_pulse_time(
            ISWAP, ham, estimate=13.0, max_iterations=300
        )
        assert result.grape.converged
        assert result.duration >= 11.5

    def test_bad_estimate_rejected(self):
        ham = xy_hamiltonian(1)
        with pytest.raises(ControlError):
            minimal_pulse_time(X, ham, estimate=0.0)

    def test_impossible_budget_raises(self):
        ham = xy_hamiltonian(2)
        with pytest.raises(ControlError, match="did not converge"):
            minimal_pulse_time(
                ISWAP,
                ham,
                estimate=1.0,
                max_attempts=2,
                max_iterations=30,
            )

    def test_accumulates_evaluations(self):
        ham = xy_hamiltonian(1)
        result = minimal_pulse_time(X, ham, estimate=6.0, max_iterations=250)
        assert result.evaluations > 0
        assert result.evaluations >= result.grape.evaluations


class TestWarmStart:
    def test_warm_start_cheaper_than_legacy_cold_restarts(self):
        # The legacy search (cold random restarts, full iteration budget
        # per attempt) and the warm-started plateau search must agree on
        # the physics — both converge above threshold, near the same
        # duration — while the warm path spends far fewer evaluations.
        ham = xy_hamiltonian(2)
        legacy = minimal_pulse_time(
            ISWAP,
            ham,
            estimate=13.0,
            max_iterations=300,
            warm_start=False,
            plateau_iterations=None,
        )
        warm = minimal_pulse_time(
            ISWAP, ham, estimate=13.0, max_iterations=300
        )
        assert legacy.grape.converged and warm.grape.converged
        assert warm.grape.fidelity >= 0.999
        assert warm.duration >= 11.5  # still respects the speed limit
        assert warm.evaluations < legacy.evaluations


class _StubOptimizer:
    """Records every duration the search probes; converges at a set
    threshold.  Lets bisection behavior be pinned without running GRAPE."""

    threshold = 1.2
    probed: list[float] = []

    def __init__(self, hamiltonian, dt=0.5, **kwargs) -> None:
        self.hamiltonian = hamiltonian
        self.dt = dt

    def optimize(self, target, duration, **kwargs):
        type(self).probed.append(duration)
        converged = duration >= self.threshold
        steps = max(2, int(round(duration / self.dt)))
        return GrapeResult(
            fidelity=0.9999 if converged else 0.5,
            converged=converged,
            iterations=3,
            pulse=Pulse(
                control_names=tuple(self.hamiltonian.control_names()),
                amplitudes=np.zeros((steps, self.hamiltonian.num_controls)),
                dt=duration / steps,
            ),
            final_unitary=np.eye(self.hamiltonian.dim, dtype=complex),
            loss_history=[0.5, 0.3, 0.1],
        )


class TestBisectionFloor:
    """When the *first* attempt converges, ``last_failure`` is still 0.0;
    the bisection window must be floored at ``2*dt`` instead of probing
    sub-physical durations against zero."""

    @pytest.fixture
    def stub(self, monkeypatch):
        _StubOptimizer.probed = []
        monkeypatch.setattr(time_search, "GrapeOptimizer", _StubOptimizer)
        return _StubOptimizer

    def test_first_attempt_success_skips_degenerate_bisection(self, stub):
        # First probe: max(2*dt, 0.6*2.4) = 1.44 >= 1.2 -> converges.
        # Floored window [1.0, 1.44] is already narrower than 2*dt, so
        # the search stops instead of bisecting toward zero.
        result = minimal_pulse_time(X, xy_hamiltonian(1), estimate=2.4)
        assert result.attempts == 1
        assert stub.probed == [pytest.approx(1.44)]
        assert result.duration == pytest.approx(1.44)
        assert result.evaluations == 3

    def test_no_probe_below_two_steps(self, stub):
        # Even with a wide-open window, every bisection probe stays at
        # or above the two-step physical floor.
        stub.threshold = 6.0
        try:
            result = minimal_pulse_time(
                X, xy_hamiltonian(1), estimate=20.0, bisection_rounds=6
            )
        finally:
            stub.threshold = 1.2
        assert result.grape.converged
        assert min(stub.probed) >= 2 * 0.5
        assert result.evaluations == 3 * result.attempts


class TestResampling:
    def test_identity_when_steps_match(self):
        limits = np.array([1.0, 2.0])
        amplitudes = np.array([[0.5, -1.5], [-0.25, 0.75]])
        out = _resample_amplitudes(amplitudes, 2, limits)
        assert np.allclose(out, amplitudes)

    def test_constant_pulse_stays_constant(self):
        limits = np.array([1.0])
        amplitudes = np.full((5, 1), 0.7)
        out = _resample_amplitudes(amplitudes, 11, limits)
        assert out.shape == (11, 1)
        assert np.allclose(out, 0.7)

    def test_resampled_respects_limits(self):
        limits = np.array([0.3, 0.3])
        rng = np.random.default_rng(5)
        amplitudes = np.clip(rng.standard_normal((7, 2)), -0.3, 0.3)
        out = _resample_amplitudes(amplitudes, 19, limits)
        assert np.all(np.abs(out) <= limits + 1e-12)

    def test_linear_ramp_preserved(self):
        # A linear ramp resamples onto a denser grid as the same ramp.
        limits = np.array([10.0])
        ramp = np.linspace(-1.0, 1.0, 6)[:, None]
        out = _resample_amplitudes(ramp, 12, limits)
        inner = out[1:-1, 0]  # edges clamp to the old end centers
        assert np.all(np.diff(inner) > 0)
        assert out[0, 0] == pytest.approx(-1.0)
        assert out[-1, 0] == pytest.approx(1.0)
