"""Tests for loop unrolling and module flattening."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.errors import ProgramError
from repro.frontend.passes import flatten_program, unroll_loops
from repro.frontend.program import ForStatement, Program


class TestUnrollLoops:
    def test_simple_loop_expands(self):
        program = Program("p", num_qubits=4)
        loop = program.for_range("i", 0, 4)
        loop.gate("h", ["i"])
        unrolled = unroll_loops(program)
        assert len(unrolled.statements) == 4
        assert not any(
            isinstance(s, ForStatement) for s in unrolled.statements
        )
        assert [s.qubits for s in unrolled.statements] == [(0,), (1,), (2,), (3,)]

    def test_nested_loops(self):
        program = Program("p", num_qubits=9)
        outer = program.for_range("i", 0, 2)
        inner = outer.for_range("j", 0, 3)
        inner.gate("h", ["3*i+j"])
        unrolled = unroll_loops(program)
        assert len(unrolled.statements) == 6

    def test_loop_bounds_from_enclosing_variable(self):
        program = Program("p", num_qubits=8)
        outer = program.for_range("i", 1, 3)
        inner = outer.for_range("j", 0, "i")
        inner.gate("h", ["j"])
        unrolled = unroll_loops(program)
        # i=1 -> 1 statement; i=2 -> 2 statements.
        assert len(unrolled.statements) == 3

    def test_module_loops_with_free_parameters_kept(self):
        program = Program("p", num_qubits=4)
        module = program.module("m", qubits=["a"])
        body = module.for_range("i", 0, "a")
        body.gate("h", ["i"])
        unrolled = unroll_loops(program)
        kept = unrolled.modules["m"].statements
        assert len(kept) == 1 and isinstance(kept[0], ForStatement)

    def test_empty_loop_vanishes(self):
        program = Program("p", num_qubits=2)
        loop = program.for_range("i", 3, 3)
        loop.gate("h", ["i"])
        assert unroll_loops(program).statements == []


class TestFlattenProgram:
    def test_flatten_plain_gates(self):
        program = Program("p", num_qubits=2)
        program.gate("h", [0]).gate("cnot", [0, 1])
        circuit = flatten_program(program)
        assert [g.name for g in circuit] == ["H", "CNOT"]

    def test_flatten_loop(self):
        program = Program("p", num_qubits=3)
        loop = program.for_range("i", 0, 3)
        loop.gate("x", ["i"])
        circuit = flatten_program(program)
        assert [g.qubits for g in circuit] == [(0,), (1,), (2,)]

    def test_flatten_module_call(self):
        program = Program("p", num_qubits=4)
        layer = program.module("zz", qubits=["a", "b"], angles=["g"])
        layer.gate("cnot", ["a", "b"])
        layer.gate("rz", ["b"], ["2*g"])
        layer.gate("cnot", ["a", "b"])
        program.call("zz", [1, 2], [0.35])
        circuit = flatten_program(program)
        assert [g.name for g in circuit] == ["CNOT", "RZ", "CNOT"]
        assert circuit.gates[1].params == (0.7,)
        assert circuit.gates[1].qubits == (2,)

    def test_flatten_matches_hand_written_circuit(self):
        # QAOA-style ring: the flattened program equals the direct build.
        program = Program("ring", num_qubits=4)
        layer = program.module("layer", qubits=["a", "b"], angles=["g"])
        layer.gate("cnot", ["a", "b"])
        layer.gate("rz", ["b"], ["g"])
        layer.gate("cnot", ["a", "b"])
        loop = program.for_range("i", 0, 3)
        loop.call("layer", ["i", "i+1"], [0.9])
        flattened = flatten_program(program)

        direct = Circuit(4)
        for i in range(3):
            direct.cnot(i, i + 1).rz(0.9, i + 1).cnot(i, i + 1)
        assert np.allclose(flattened.unitary(), direct.unitary())

    def test_module_loop_bound_from_parameter(self):
        program = Program("p", num_qubits=5)
        module = program.module("ladder", qubits=["n"])
        body = module.for_range("i", 0, "n")
        body.gate("h", ["i"])
        program.call("ladder", [4])
        circuit = flatten_program(program)
        assert len(circuit) == 4

    def test_nested_module_calls(self):
        program = Program("p", num_qubits=2)
        inner = program.module("inner", qubits=["q"])
        inner.gate("h", ["q"])
        outer = program.module("outer", qubits=["q"])
        outer.call("inner", ["q"])
        outer.call("inner", ["q"])
        program.call("outer", [1])
        circuit = flatten_program(program)
        assert len(circuit) == 2
        assert all(g.qubits == (1,) for g in circuit)

    def test_recursion_detected(self):
        program = Program("p", num_qubits=1)
        module = program.module("loop", qubits=["q"])
        module.call("loop", ["q"])
        program.call("loop", [0])
        with pytest.raises(ProgramError, match="recursive"):
            flatten_program(program)

    def test_unknown_module(self):
        program = Program("p", num_qubits=1)
        program.call("nope", [0])
        with pytest.raises(ProgramError, match="unknown module"):
            flatten_program(program)

    def test_wrong_arity(self):
        program = Program("p", num_qubits=2)
        program.module("m", qubits=["a", "b"])
        program.call("m", [0])
        with pytest.raises(ProgramError, match="arity"):
            flatten_program(program)

    def test_bad_gate_reported(self):
        program = Program("p", num_qubits=1)
        program.gate("frobnicate", [0])
        with pytest.raises(ProgramError, match="bad gate"):
            flatten_program(program)

    def test_unroll_then_flatten_equals_direct_flatten(self):
        program = Program("p", num_qubits=6)
        loop = program.for_range("i", 0, 5)
        loop.gate("cnot", ["i", "i+1"])
        direct = flatten_program(program)
        staged = flatten_program(unroll_loops(program))
        assert [g.qubits for g in staged] == [g.qubits for g in direct]
