"""Tests for the program IR and expression evaluator."""

import pytest

from repro.errors import ProgramError
from repro.frontend.program import (
    Block,
    Module,
    Program,
    evaluate_expression,
    evaluate_qubit,
)


class TestExpressionEvaluator:
    def test_literal_int(self):
        assert evaluate_expression(7, {}) == 7

    def test_literal_float(self):
        assert evaluate_expression(0.5, {}) == 0.5

    def test_variable_lookup(self):
        assert evaluate_expression("i", {"i": 3}) == 3

    def test_arithmetic(self):
        env = {"i": 4, "g": 0.5}
        assert evaluate_expression("2*i+1", env) == 9
        assert evaluate_expression("i-2", env) == 2
        assert evaluate_expression("2*g", env) == 1.0
        assert evaluate_expression("i//3", env) == 1
        assert evaluate_expression("i%3", env) == 1
        assert evaluate_expression("-i", env) == -4
        assert evaluate_expression("(i+1)*2", env) == 10

    def test_unbound_variable(self):
        with pytest.raises(ProgramError):
            evaluate_expression("j", {"i": 1})

    def test_disallowed_constructs(self):
        for bad in ("__import__('os')", "i**2", "f(1)", "[1,2]", "i if 1 else 2"):
            with pytest.raises(ProgramError):
                evaluate_expression(bad, {"i": 1})

    def test_malformed_expression(self):
        with pytest.raises(ProgramError):
            evaluate_expression("2 +", {})

    def test_qubit_must_be_integer(self):
        assert evaluate_qubit("2*i", {"i": 3}) == 6
        with pytest.raises(ProgramError):
            evaluate_qubit("i/2", {"i": 3})


class TestBuilders:
    def test_block_builders_chain(self):
        block = Block()
        block.gate("h", [0]).gate("cnot", [0, 1])
        assert len(block.statements) == 2

    def test_for_range_returns_body(self):
        block = Block()
        body = block.for_range("i", 0, 4)
        body.gate("h", ["i"])
        assert block.statement_count() == 2

    def test_bad_loop_variable(self):
        with pytest.raises(ProgramError):
            Block().for_range("2i", 0, 4)

    def test_module_parameter_validation(self):
        with pytest.raises(ProgramError):
            Module("m", qubits=["a", "a"])
        with pytest.raises(ProgramError):
            Module("m", qubits=["1bad"])

    def test_program_module_registry(self):
        program = Program("p", num_qubits=3)
        program.module("layer", qubits=["a"])
        with pytest.raises(ProgramError):
            program.module("layer")

    def test_program_width_validation(self):
        with pytest.raises(ProgramError):
            Program("p", num_qubits=0)
