"""Whole-program equivalence checker tests (the PR-4 tentpole).

Covers the positive direction (every strategy, several devices, all
three methods) and — critically — the negative direction: a compiler
sabotaged to drop a routing SWAP or inject a stray gate must be caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CLS_AGGREGATION,
    Circuit,
    ISA,
    OptimalControlUnit,
    VerifyEquivalencePass,
    all_strategies,
    compile_circuit,
    compile_with_pipeline,
    verify_equivalence,
)
from repro.compiler.passes import Pass, PlaceAndRoutePass
from repro.errors import VerificationError
from repro.gates.gate import Gate
from repro.testing import random_circuit


@pytest.fixture(scope="module")
def ocu():
    return OptimalControlUnit(backend="model")


def _routed_circuit(seed: int = 3, num_qubits: int = 5) -> Circuit:
    """A circuit wide and tangled enough that routing must insert SWAPs."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name="routed")
    for _ in range(18):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        circuit.cnot(int(a), int(b))
        circuit.rz(0.3, int(rng.integers(num_qubits)))
    return circuit


class _DropFirstSwapPass(Pass):
    """Sabotage: silently delete the first routed SWAP gate."""

    def run(self, context) -> None:
        nodes = context.require("physical_nodes", self.name, "route first")
        for index, node in enumerate(nodes):
            if isinstance(node, Gate) and node.name == "SWAP":
                context.physical_nodes = nodes[:index] + nodes[index + 1:]
                context.invalidate_physical_dag()
                return


class _InjectStrayGatePass(Pass):
    """Sabotage: append a phase kick the source program never had."""

    def run(self, context) -> None:
        from repro.gates import library

        nodes = context.require("physical_nodes", self.name, "route first")
        context.physical_nodes = nodes + [library.RZ(0.5, 0)]
        context.invalidate_physical_dag()


def _sabotaged_pipeline(sabotage: Pass) -> list[Pass]:
    passes = ISA.pipeline()
    index = max(
        i for i, p in enumerate(passes) if isinstance(p, PlaceAndRoutePass)
    )
    return passes[: index + 1] + [sabotage] + passes[index + 1:]


class TestPositive:
    @pytest.mark.parametrize("strategy", all_strategies(), ids=lambda s: s.key)
    def test_every_strategy_verifies(self, ocu, strategy):
        circuit = random_circuit(4, 14, 11, "soup")
        result = compile_circuit(circuit, strategy, ocu=ocu)
        report = result.verify_equivalence()
        assert report.equivalent, report.summary()
        assert report.method == "unitary"
        assert report.states_checked == 16

    @pytest.mark.parametrize(
        "device", ["line-4", "ring-4", "all-to-all-4", "paper-grid-2x2"]
    )
    def test_devices_with_and_without_ancillas(self, device):
        circuit = random_circuit(4, 12, 23, "diagonal")
        result = compile_circuit(
            circuit, CLS_AGGREGATION, device=device, ocu=OptimalControlUnit()
        )
        report = result.verify_equivalence()
        assert report.equivalent, report.summary()
        assert report.device_name == device

    def test_ancilla_register_wider_than_circuit(self, ocu):
        # 3 logical qubits on a 6-cell ring: three ancilla cells that
        # routing SWAPs may shuffle; they must come back to |0>.
        circuit = random_circuit(3, 10, 5, "soup")
        result = compile_circuit(circuit, CLS_AGGREGATION, device="ring-6")
        report = result.verify_equivalence()
        assert report.equivalent, report.summary()
        assert report.ancilla_leakage <= report.atol

    def test_statevector_method_matches_unitary_verdict(self, ocu):
        circuit = random_circuit(4, 14, 17, "layered")
        result = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        by_states = result.verify_equivalence(method="statevector", states=5)
        assert by_states.equivalent
        assert by_states.states_checked == 5
        assert by_states.method == "statevector"

    def test_auto_switches_to_statevector_on_wide_circuits(self, ocu):
        circuit = random_circuit(6, 12, 2, "soup")
        result = compile_circuit(circuit, ISA, ocu=ocu)
        report = result.verify_equivalence()
        assert report.method == "statevector"
        assert report.equivalent, report.summary()

    def test_explicit_circuit_argument_wins(self, ocu):
        circuit = random_circuit(3, 8, 9, "soup")
        result = compile_circuit(circuit, ISA, ocu=ocu)
        other = Circuit(3, name="other").h(0).cnot(0, 1).cnot(1, 2)
        assert verify_equivalence(result, circuit).equivalent
        assert not verify_equivalence(result, other).equivalent

    def test_report_is_truthy_and_summarizable(self, ocu):
        circuit = random_circuit(2, 6, 1, "soup")
        result = compile_circuit(circuit, ISA, ocu=ocu)
        report = result.verify_equivalence()
        assert bool(report)
        assert "equivalent" in report.summary()


class TestNegative:
    def test_dropped_swap_is_caught(self):
        circuit = _routed_circuit()
        baseline = compile_circuit(circuit, ISA)
        assert baseline.swap_count > 0, "need routing SWAPs to drop"
        result = compile_with_pipeline(
            circuit,
            _sabotaged_pipeline(_DropFirstSwapPass()),
            strategy_key="sabotaged",
        )
        report = result.verify_equivalence()
        assert not report.equivalent
        assert report.max_deviation > 0.1

    def test_injected_gate_is_caught(self, ocu):
        circuit = random_circuit(3, 10, 13, "soup")
        result = compile_with_pipeline(
            circuit,
            _sabotaged_pipeline(_InjectStrayGatePass()),
            strategy_key="sabotaged",
        )
        assert not result.verify_equivalence().equivalent

    def test_raise_on_failure(self):
        circuit = _routed_circuit()
        result = compile_with_pipeline(
            circuit,
            _sabotaged_pipeline(_DropFirstSwapPass()),
            strategy_key="sabotaged",
        )
        with pytest.raises(VerificationError, match="not equivalent"):
            result.verify_equivalence(raise_on_failure=True)

    def test_missing_source_circuit_is_an_error(self, ocu):
        circuit = random_circuit(2, 5, 2, "soup")
        result = compile_circuit(circuit, ISA, ocu=ocu)
        result.source_circuit = None
        with pytest.raises(VerificationError, match="source circuit"):
            result.verify_equivalence()

    def test_unknown_method_is_an_error(self, ocu):
        circuit = random_circuit(2, 5, 2, "soup")
        result = compile_circuit(circuit, ISA, ocu=ocu)
        with pytest.raises(VerificationError, match="unknown equivalence"):
            result.verify_equivalence(method="telepathy")


class TestVerifyEquivalencePassBehaviour:
    def test_appended_pass_verifies_and_records_metrics(self, ocu):
        circuit = random_circuit(3, 10, 29, "diagonal")
        pipeline = CLS_AGGREGATION.pipeline() + [VerifyEquivalencePass()]
        metrics = {}

        def capture(pass_, context, elapsed):
            metrics.update(context.metrics)

        result = compile_with_pipeline(
            circuit,
            pipeline,
            strategy_key="cls+aggregation",
            callbacks=[capture],
        )
        recorded = metrics["VerifyEquivalencePass"]
        assert recorded["equivalent"] is True
        assert recorded["states_checked"] == 8
        assert "verification" in result.stage_seconds
        assert result.stage_seconds["verification"] >= 0.0

    def test_pass_raises_on_sabotage(self):
        circuit = _routed_circuit()
        pipeline = _sabotaged_pipeline(_DropFirstSwapPass())
        pipeline.append(VerifyEquivalencePass())
        with pytest.raises(VerificationError, match="diverged"):
            compile_with_pipeline(circuit, pipeline, strategy_key="sabotaged")

    def test_pass_can_record_instead_of_raise(self):
        circuit = _routed_circuit()
        pipeline = _sabotaged_pipeline(_DropFirstSwapPass())
        pipeline.append(VerifyEquivalencePass(raise_on_failure=False))
        result = compile_with_pipeline(
            circuit, pipeline, strategy_key="sabotaged"
        )
        assert result.latency_ns > 0  # compilation itself completed

    def test_pass_needs_a_schedule(self):
        from repro.errors import PassOrderingError

        circuit = random_circuit(2, 4, 3, "soup")
        with pytest.raises(PassOrderingError):
            compile_with_pipeline(
                circuit, [VerifyEquivalencePass()], strategy_key="broken"
            )


@pytest.mark.slow
class TestPropagatorMethod:
    def test_aggregated_pulses_verify_through_the_propagator(self):
        ocu = OptimalControlUnit(backend="model")
        circuit = (
            Circuit(2, name="tiny").h(0).cnot(0, 1).rz(0.7, 1).cnot(0, 1)
        )
        result = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
        report = result.verify_equivalence(method="propagator", ocu=ocu)
        assert report.equivalent, report.summary()
        assert report.propagated_instructions >= 1

    def test_propagator_needs_an_ocu(self):
        ocu = OptimalControlUnit(backend="model")
        circuit = Circuit(2, name="tiny").h(0).cnot(0, 1)
        result = compile_circuit(circuit, ISA, ocu=ocu)
        with pytest.raises(VerificationError, match="needs ocu"):
            result.verify_equivalence(method="propagator")
