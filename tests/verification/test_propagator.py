"""Tests for the independent propagator."""

import numpy as np
import pytest

from repro.control.hamiltonian import xy_hamiltonian
from repro.control.pulse import Pulse
from repro.errors import VerificationError
from repro.verification.propagator import propagate_pulse


class TestPropagatePulse:
    def test_zero_pulse_is_identity(self):
        ham = xy_hamiltonian(2)
        pulse = Pulse(ham.control_names(), np.zeros((4, ham.num_controls)), 0.5)
        total = propagate_pulse(pulse, ham)
        assert np.allclose(total, np.eye(4), atol=1e-12)

    def test_constant_x_drive_rotates(self):
        # u_x = rate for time T rotates by theta = rate * T about X.
        ham = xy_hamiltonian(1)
        rate = 0.4
        steps, dt = 10, 0.5
        amplitudes = np.zeros((steps, ham.num_controls))
        amplitudes[:, 0] = rate
        pulse = Pulse(ham.control_names(), amplitudes, dt)
        total = propagate_pulse(pulse, ham)
        theta = rate * steps * dt
        expected = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        )
        assert np.allclose(total, expected, atol=1e-9)

    def test_constant_coupling_produces_iswap(self):
        # exp(-i H T) with u = -g and g * T = pi/2 under (XX+YY)/2
        # yields iSWAP (positive sign would give its inverse).
        ham = xy_hamiltonian(2)
        g = ham.terms[-1].limit
        duration = np.pi / (2 * g)
        steps = 20
        amplitudes = np.zeros((steps, ham.num_controls))
        amplitudes[:, -1] = -g
        pulse = Pulse(ham.control_names(), amplitudes, duration / steps)
        total = propagate_pulse(pulse, ham)
        iswap = np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
        )
        assert np.allclose(total, iswap, atol=1e-7)

    def test_agrees_with_grape_internal_propagator(self):
        from repro.control.grape import _propagate

        ham = xy_hamiltonian(2)
        rng = np.random.default_rng(4)
        amplitudes = 0.05 * rng.standard_normal((8, ham.num_controls))
        pulse = Pulse(ham.control_names(), amplitudes, 0.5)
        independent = propagate_pulse(pulse, ham, substeps=8)
        operators = np.stack([t.operator for t in ham.terms])
        internal = _propagate(amplitudes, operators, 0.5)
        assert np.allclose(independent, internal, atol=1e-9)

    def test_channel_count_mismatch(self):
        ham = xy_hamiltonian(2)
        pulse = Pulse(["a"], np.zeros((2, 1)), 0.5)
        with pytest.raises(VerificationError):
            propagate_pulse(pulse, ham)

    def test_substeps_validation(self):
        ham = xy_hamiltonian(1)
        pulse = Pulse(ham.control_names(), np.zeros((2, 2)), 0.5)
        with pytest.raises(VerificationError):
            propagate_pulse(pulse, ham, substeps=0)
