"""Tests for the verification procedure (paper Sec. 3.6)."""

import pytest

from repro.aggregation.instruction import AggregatedInstruction
from repro.control.unit import OptimalControlUnit
from repro.errors import VerificationError
from repro.gates import library as lib
from repro.verification.verify import (
    verify_instruction,
    verify_sampled_instructions,
)


@pytest.fixture(scope="module")
def grape_ocu():
    return OptimalControlUnit(backend="grape", seed=5)


@pytest.mark.slow
class TestVerifyInstruction:
    def test_cnot_pulse_verifies(self, grape_ocu):
        result = verify_instruction(lib.CNOT(0, 1), grape_ocu, threshold=0.99)
        assert result.passed
        assert result.fidelity >= 0.99

    def test_diagonal_block_pulse_verifies(self, grape_ocu):
        block = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.RZ(0.8, 1), lib.CNOT(0, 1)], name="ZZblock"
        )
        result = verify_instruction(block, grape_ocu, threshold=0.99)
        assert result.passed
        assert result.label == "ZZblock"

    def test_single_qubit_pulse_verifies(self, grape_ocu):
        result = verify_instruction(lib.H(0), grape_ocu, threshold=0.99)
        assert result.passed


@pytest.mark.slow
class TestVerifySample:
    def test_sample_respects_size(self, grape_ocu):
        nodes = [lib.RZ(0.1 * i, 0) for i in range(1, 6)]
        results = verify_sampled_instructions(
            nodes, grape_ocu, sample_size=3
        )
        assert len(results) == 3
        assert all(r.passed for r in results)

    def test_wide_instructions_skipped(self, grape_ocu):
        wide = AggregatedInstruction(
            [lib.CNOT(i, i + 1) for i in range(5)], name="wide"
        )
        narrow = lib.RX(0.5, 0)
        results = verify_sampled_instructions([wide, narrow], grape_ocu)
        assert len(results) == 1

    def test_no_eligible_instruction_raises(self, grape_ocu):
        wide = AggregatedInstruction(
            [lib.CNOT(i, i + 1) for i in range(5)], name="wide"
        )
        with pytest.raises(VerificationError):
            verify_sampled_instructions([wide], grape_ocu)

    def test_deterministic_sampling(self, grape_ocu):
        nodes = [lib.RZ(0.1 * i, 0) for i in range(1, 8)]
        first = verify_sampled_instructions(nodes, grape_ocu, sample_size=2)
        second = verify_sampled_instructions(nodes, grape_ocu, sample_size=2)
        assert [r.label for r in first] == [r.label for r in second]
