"""Property tests over all five topology families.

Every family must satisfy the same graph invariants — neighbour
symmetry, BFS-distance symmetry, shortest-path validity/adjacency, and
the family's degree bound — because placement and routing assume them
for *any* device.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
    grid_for,
)
from repro.errors import MappingError

# (constructor, max-degree bound as a function of the instance)
_FAMILIES = {
    "grid": (lambda n: grid_for(n), lambda t: 4),
    "line": (lambda n: LineTopology(n), lambda t: 2),
    "ring": (lambda n: RingTopology(max(n, 3)), lambda t: 2),
    "heavy-hex": (
        lambda n: HeavyHexTopology(1 + n % 3),
        lambda t: 3,
    ),
    "all-to-all": (
        lambda n: FullyConnectedTopology(n),
        lambda t: t.num_qubits - 1,
    ),
}


def _instances():
    params = []
    for family, (build, degree_bound) in _FAMILIES.items():
        for n in (1, 2, 3, 5, 8, 12):
            try:
                topology = build(n)
            except MappingError:
                continue
            params.append(
                pytest.param(topology, degree_bound, id=f"{family}-{n}")
            )
    return params


@pytest.mark.parametrize("topology,degree_bound", _instances())
class TestTopologyInvariants:
    def test_neighbor_symmetry(self, topology, degree_bound):
        for q in topology.all_qubits():
            for neighbor in topology.neighbors(q):
                assert q in topology.neighbors(neighbor)
                assert topology.are_adjacent(q, neighbor)
                assert topology.are_adjacent(neighbor, q)

    def test_distance_symmetry_and_metric(self, topology, degree_bound):
        qubits = topology.all_qubits()
        for a in qubits:
            assert topology.distance(a, a) == 0
            for b in qubits:
                d = topology.distance(a, b)
                assert d == topology.distance(b, a)
                assert (d == 1) == topology.are_adjacent(a, b) or a == b
                assert d >= 0

    def test_shortest_paths_are_valid_and_shortest(self, topology, degree_bound):
        qubits = topology.all_qubits()
        for a in qubits:
            for b in qubits:
                path = topology.shortest_path(a, b)
                assert path[0] == a and path[-1] == b
                assert len(path) == topology.distance(a, b) + 1
                for u, v in zip(path, path[1:]):
                    assert topology.are_adjacent(u, v)

    def test_degree_bound(self, topology, degree_bound):
        bound = degree_bound(topology)
        for q in topology.all_qubits():
            degree = topology.degree(q)
            assert len(topology.neighbors(q)) == degree
            assert degree <= bound
            if topology.num_qubits > 1:
                assert degree >= 1  # connected: no isolated qubits

    def test_edges_canonical_and_consistent(self, topology, degree_bound):
        edges = topology.edges()
        assert edges == tuple(sorted(set(edges)))
        assert all(a < b for a, b in edges)
        assert sum(topology.degree(q) for q in topology.all_qubits()) == (
            2 * len(edges)
        )

    def test_placement_order_is_a_permutation(self, topology, degree_bound):
        order = topology.placement_order()
        assert sorted(order) == topology.all_qubits()

    def test_placement_order_prefixes_connected(self, topology, degree_bound):
        # Each prefix of the order must induce a connected region —
        # that is what recursive bisection slices rely on.
        order = topology.placement_order()
        region: set[int] = set()
        for qubit in order:
            if region:
                assert any(
                    neighbor in region
                    for neighbor in topology.neighbors(qubit)
                )
            region.add(qubit)

    def test_signature_identifies_the_graph(self, topology, degree_bound):
        kind, num_qubits, edges = topology.signature()
        assert kind == type(topology).kind
        assert num_qubits == topology.num_qubits
        assert edges == topology.edges()


@settings(max_examples=50, deadline=None)
@given(
    num_qubits=st.integers(min_value=2, max_value=30),
    edge_seed=st.data(),
)
def test_random_connected_graphs_satisfy_invariants(num_qubits, edge_seed):
    """The generic Topology over random connected graphs keeps the same
    invariants the named families do."""
    # Spanning tree ensures connectivity; extra random edges densify.
    edges = [
        (edge_seed.draw(st.integers(0, q - 1), label=f"parent{q}"), q)
        for q in range(1, num_qubits)
    ]
    extra = edge_seed.draw(
        st.lists(
            st.tuples(
                st.integers(0, num_qubits - 1),
                st.integers(0, num_qubits - 1),
            ),
            max_size=10,
        ),
        label="extra",
    )
    edges.extend((a, b) for a, b in extra if a != b)
    topology = Topology(num_qubits, edges)
    for a, b in topology.edges():
        assert topology.are_adjacent(a, b)
        assert topology.distance(a, b) == 1
    source = edge_seed.draw(st.integers(0, num_qubits - 1), label="src")
    target = edge_seed.draw(st.integers(0, num_qubits - 1), label="dst")
    path = topology.shortest_path(source, target)
    assert path[0] == source and path[-1] == target
    assert len(path) == topology.distance(source, target) + 1
    assert topology.distance(source, target) == topology.distance(target, source)
    assert sorted(topology.placement_order()) == topology.all_qubits()


class TestConstruction:
    def test_disconnected_rejected(self):
        with pytest.raises(MappingError, match="disconnected"):
            Topology(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(MappingError):
            Topology(3, [(0, 0), (0, 1), (1, 2)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(MappingError):
            Topology(3, [(0, 1), (1, 3)])

    def test_duplicate_and_reversed_edges_deduped(self):
        topology = Topology(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert topology.edges() == ((0, 1), (1, 2))

    def test_ring_minimum_size(self):
        with pytest.raises(MappingError):
            RingTopology(2)

    def test_heavy_hex_minimum_distance(self):
        with pytest.raises(MappingError):
            HeavyHexTopology(0)

    def test_heavy_hex_deterministic(self):
        assert HeavyHexTopology(2).signature() == HeavyHexTopology(2).signature()

    def test_single_qubit_topology(self):
        topology = Topology(1, [])
        assert topology.num_qubits == 1
        assert topology.placement_order() == [0]


class TestGridCompatibility:
    """The grid keeps its pre-refactor geometry exactly (bit-identical
    compilation on the default device depends on it)."""

    def test_neighbor_order_is_up_down_left_right(self):
        grid = GridTopology(3, 3)
        assert grid.neighbors(4) == [1, 7, 3, 5]

    def test_distance_is_manhattan(self):
        grid = GridTopology(3, 4)
        assert grid.distance(0, 11) == 5

    def test_placement_order_is_boustrophedon(self):
        grid = GridTopology(2, 3)  # wider than tall: scan columns
        assert grid.placement_order() == [0, 3, 4, 1, 2, 5]
        tall = GridTopology(3, 2)  # taller than wide: scan rows
        assert tall.placement_order() == [0, 1, 3, 2, 4, 5]

    def test_grid_for_near_square_and_sufficient(self):
        for n in (1, 2, 5, 16, 17, 20, 30, 47, 60):
            grid = grid_for(n)
            assert grid.num_qubits >= n
            assert grid.rows <= grid.cols
            # cols exceeds n/rows by less than one full row's worth.
            assert (grid.cols - 1) * grid.rows < n
