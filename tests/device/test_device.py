"""Tests for the Device dataclass: overrides, validation, signatures."""

import dataclasses

import pytest

from repro.config import DeviceConfig, TWO_PI
from repro.device.device import Device, coerce_device
from repro.device.topology import GridTopology, LineTopology, RingTopology
from repro.errors import ConfigError


class TestConstruction:
    def test_defaults_are_paper_physics(self):
        device = Device(topology=GridTopology(2, 2))
        assert device.config == DeviceConfig()
        assert device.num_qubits == 4
        assert not device.is_heterogeneous

    def test_frozen(self):
        device = Device(topology=GridTopology(2, 2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            device.name = "mutated"

    def test_override_maps_are_read_only(self):
        # Attribute freezing alone would still allow in-place dict
        # mutation, silently desynchronizing cache fingerprints.
        device = Device(
            topology=LineTopology(3),
            t1_us={0: 40.0},
            coupling_limits_ghz={(0, 1): 0.01},
        )
        with pytest.raises(TypeError):
            device.coupling_limits_ghz[(1, 2)] = 0.005
        with pytest.raises(TypeError):
            device.t1_us[1] = 1.0

    def test_rejects_non_topology(self):
        with pytest.raises(ConfigError):
            Device(topology="not-a-topology")

    def test_rejects_non_config(self):
        with pytest.raises(ConfigError):
            Device(topology=GridTopology(2, 2), config=object())

    def test_override_for_missing_qubit_rejected(self):
        with pytest.raises(ConfigError, match="not on the"):
            Device(topology=LineTopology(3), t1_us={5: 40.0})

    def test_nonpositive_override_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            Device(topology=LineTopology(3), t2_us={1: 0.0})

    def test_coupling_override_for_non_edge_rejected(self):
        with pytest.raises(ConfigError, match="not an edge"):
            Device(
                topology=LineTopology(3),
                coupling_limits_ghz={(0, 2): 0.01},
            )

    def test_coupling_override_keys_canonicalized(self):
        device = Device(
            topology=LineTopology(3),
            coupling_limits_ghz={(1, 0): 0.01},
        )
        assert device.coupling_limits_ghz == {(0, 1): 0.01}


class TestOverrideResolution:
    def test_per_edge_limit_and_rate(self):
        device = Device(
            topology=LineTopology(3),
            coupling_limits_ghz={(0, 1): 0.01},
        )
        assert device.coupling_limit_ghz_of(1, 0) == 0.01
        assert device.coupling_limit_ghz_of(1, 2) == pytest.approx(0.02)
        assert device.coupling_rate_of(0, 1) == pytest.approx(TWO_PI * 0.01)

    def test_non_edge_falls_back_to_baseline(self):
        # Latency queries on logical circuits probe non-edges; they
        # price at nominal strength rather than erroring.
        device = Device(
            topology=LineTopology(3),
            coupling_limits_ghz={(0, 1): 0.01},
        )
        assert device.coupling_limit_ghz_of(0, 2) == pytest.approx(0.02)

    def test_per_qubit_decoherence(self):
        device = Device(
            topology=LineTopology(3), t1_us={0: 20.0}, t2_us={2: 10.0}
        )
        assert device.t1_of(0) == 20.0
        assert device.t1_of(1) == device.config.t1_us
        assert device.t2_of(2) == 10.0
        assert device.is_heterogeneous
        assert not device.has_heterogeneous_couplings


class TestSignature:
    def test_same_device_same_signature(self):
        a = Device(topology=RingTopology(5))
        b = Device(topology=RingTopology(5))
        assert a.signature() == b.signature()

    def test_topology_changes_signature(self):
        a = Device(topology=RingTopology(5))
        b = Device(topology=LineTopology(5))
        assert a.signature() != b.signature()

    def test_overrides_change_signature(self):
        base = Device(topology=LineTopology(3))
        overridden = Device(
            topology=LineTopology(3), coupling_limits_ghz={(0, 1): 0.01}
        )
        assert base.signature() != overridden.signature()

    def test_signature_is_a_pure_literal(self):
        import ast

        device = Device(
            topology=RingTopology(4),
            t1_us={1: 12.5},
            coupling_limits_ghz={(0, 1): 0.015},
        )
        assert ast.literal_eval(repr(device.signature())) == device.signature()


class TestCoerceDevice:
    def test_none_yields_default_config_and_no_device(self):
        device, config, topology = coerce_device(None)
        assert device is None and topology is None
        assert config == DeviceConfig()

    def test_bare_topology_wraps_into_default_device(self):
        line = LineTopology(3)
        device, config, topology = coerce_device(None, line)
        assert topology is line
        assert device.topology is line
        assert device.config == config == DeviceConfig()

    def test_config_plus_topology(self):
        custom = DeviceConfig(coupling_limit_ghz=0.04)
        device, config, _ = coerce_device(custom, LineTopology(2))
        assert device.config is custom and config is custom

    def test_full_device_passthrough(self):
        original = Device(topology=RingTopology(4), name="ring-4")
        device, config, topology = coerce_device(original)
        assert device is original
        assert topology is original.topology
        assert config is original.config

    def test_device_plus_foreign_topology_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            coerce_device(Device(topology=RingTopology(4)), LineTopology(4))

    def test_preset_key_resolves(self):
        device, _, _ = coerce_device("ring-6")
        assert device.name == "ring-6"
        assert device.num_qubits == 6

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            coerce_device(42)
