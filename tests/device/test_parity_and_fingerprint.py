"""The refactor's two acceptance gates.

1. **Frozen parity** — compiling the seed benchmark set on explicit
   ``paper-grid`` devices is bit-identical to the pre-refactor compiler.
   The legacy no-device path is itself pinned bit-for-bit to the seed
   monolith (``tests/compiler/test_pass_manager.py``), so equality with
   it *is* equality with the seed.
2. **Fingerprinting** — pulse/latency cache entries written under
   different devices never collide: heterogeneous devices get their own
   fingerprints and position-dependent keys, while homogeneous devices
   deliberately share entries (their physics is identical).
"""

import pytest

from repro.benchmarks.grover import grover_sqrt_circuit
from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.circuit.circuit import Circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import CLS_AGGREGATION, all_strategies
from repro.config import DeviceConfig
from repro.control.cache import PulseCache
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device
from repro.device.presets import device_by_key, paper_device_for
from repro.device.topology import LineTopology
from repro.errors import ConfigError
from repro.gates import library as lib
from repro.noise.decoherence import schedule_survival_probability


def _seed_benchmarks():
    serial = Circuit(3, name="serial-chain")
    serial.h(0).cnot(0, 1).t(1).cnot(1, 2).h(2).cnot(0, 1)
    return [
        maxcut_qaoa_circuit(line_graph(6), name="line6"),
        ising_model_circuit(5),
        grover_sqrt_circuit(2),
        serial,
    ]


def _assert_bit_identical(a, b):
    assert a.latency_ns == b.latency_ns
    assert a.swap_count == b.swap_count
    assert a.aggregation_merges == b.aggregation_merges
    assert a.lowered_gate_count == b.lowered_gate_count
    assert a.node_count == b.node_count
    assert a.physical_qubits == b.physical_qubits
    assert a.final_mapping == b.final_mapping
    assert a.initial_mapping == b.initial_mapping
    assert a.instruction_width_histogram() == b.instruction_width_histogram()


class TestPaperGridParity:
    """ISSUE acceptance: the default paper device stays bit-identical."""

    @pytest.mark.parametrize(
        "strategy", all_strategies(), ids=lambda s: s.key
    )
    def test_explicit_paper_device_matches_legacy_path(self, strategy):
        ocu = OptimalControlUnit(backend="model")
        for circuit in _seed_benchmarks():
            legacy = compile_circuit(circuit, strategy, ocu=ocu)
            device = paper_device_for(circuit.num_qubits)
            explicit = compile_circuit(
                circuit, strategy, ocu=ocu, device=device
            )
            by_key = compile_circuit(
                circuit, strategy, ocu=ocu, device=device.name
            )
            _assert_bit_identical(explicit, legacy)
            _assert_bit_identical(by_key, legacy)
            assert explicit.device_name == device.name
            assert legacy.device_name is None

    def test_batch_engine_parity_on_paper_devices(self):
        circuits = _seed_benchmarks()
        jobs = [
            BatchJob(
                circuit=circuit,
                strategy=CLS_AGGREGATION,
                device=paper_device_for(circuit.num_qubits),
            )
            for circuit in circuits
        ]
        report = BatchCompiler(max_workers=2).compile_batch(jobs)
        ocu = OptimalControlUnit(backend="model")
        for circuit, result in zip(circuits, report.results):
            _assert_bit_identical(
                result, compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
            )

    def test_homogeneous_device_shares_the_legacy_fingerprint(self):
        # Homogeneous physics depends only on instruction structure, so
        # a full Device must not cold-start caches the bare-config path
        # already warmed (and vice versa).
        bare = OptimalControlUnit()
        wrapped = OptimalControlUnit(device=paper_device_for(6))
        other = OptimalControlUnit(device=device_by_key("ring-6"))
        assert bare.fingerprint == wrapped.fingerprint == other.fingerprint


class TestHeterogeneousFingerprints:
    """ISSUE acceptance: different devices never collide in the cache."""

    def _weak_edge_device(self, limit=0.01):
        return Device(
            topology=LineTopology(3),
            coupling_limits_ghz={(0, 1): limit},
        )

    def test_override_changes_fingerprint(self):
        plain = OptimalControlUnit(device=Device(topology=LineTopology(3)))
        weak = OptimalControlUnit(device=self._weak_edge_device())
        weaker = OptimalControlUnit(device=self._weak_edge_device(0.005))
        assert plain.fingerprint != weak.fingerprint
        assert weak.fingerprint != weaker.fingerprint

    def test_t1_override_keeps_fingerprint(self):
        # t1/t2 overrides feed the decoherence model, never a cached
        # latency or pulse — forking the fingerprint for them would
        # cold-start warm caches for entries that are in fact identical.
        plain = OptimalControlUnit(device=Device(topology=LineTopology(3)))
        short_lived = OptimalControlUnit(
            device=Device(topology=LineTopology(3), t1_us={0: 10.0})
        )
        assert plain.fingerprint == short_lived.fingerprint

    def test_logical_stage_queries_price_homogeneously(self):
        # Before placement, qubit indices are logical and name no device
        # edge: positional=False must ignore per-edge overrides (and
        # cache separately from the positional entries).
        cache = PulseCache()
        ocu = OptimalControlUnit(
            device=self._weak_edge_device(), cache=cache
        )
        logical = ocu.latency(lib.CNOT(0, 1), positional=False)
        physical = ocu.latency(lib.CNOT(0, 1))
        reference = OptimalControlUnit().latency(lib.CNOT(0, 1))
        assert logical == reference
        assert physical > logical
        assert cache.latency_count == 2  # distinct keys, no collision

    def test_context_prices_logical_then_physical(self):
        from repro.compiler.context import CompilationContext
        from repro.mapping.placement import initial_placement
        from repro.mapping.router import route

        device = self._weak_edge_device()
        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        context = CompilationContext.create(circuit, device=device)
        gate = lib.CNOT(0, 1)
        before = context.latency(gate)
        context.routing = route(
            [gate], initial_placement(circuit, device.topology)
        )
        after_routing = context.latency(gate)
        assert before == OptimalControlUnit().latency(gate)
        assert after_routing > before  # weak edge now applies

    def test_same_structure_on_different_edges_gets_distinct_entries(self):
        # On a heterogeneous device, a CNOT on the weak edge and a CNOT
        # on a nominal edge have identical *structure* but different
        # physics — the cache must keep (and price) them separately.
        cache = PulseCache()
        ocu = OptimalControlUnit(
            device=self._weak_edge_device(), cache=cache
        )
        weak = ocu.latency(lib.CNOT(0, 1))
        nominal = ocu.latency(lib.CNOT(1, 2))
        assert weak > nominal
        assert cache.latency_count == 2

    def test_shared_store_never_leaks_across_devices(self):
        # One store, two machines: entries written under the weak-edge
        # device must not answer queries from the homogeneous one.
        cache = PulseCache()
        weak_ocu = OptimalControlUnit(
            device=self._weak_edge_device(), cache=cache
        )
        weak = weak_ocu.latency(lib.CNOT(0, 1))
        plain_ocu = OptimalControlUnit(
            device=Device(topology=LineTopology(3)), cache=cache
        )
        plain = plain_ocu.latency(lib.CNOT(0, 1))
        assert plain < weak
        reference = OptimalControlUnit().latency(lib.CNOT(0, 1))
        assert plain == reference

    def test_weak_edges_slow_the_whole_compilation(self):
        # Under ISA pricing (one pulse per gate, schedule structure
        # unchanged) a weaker edge slows the makespan monotonically;
        # aggregating strategies may legitimately re-merge around it.
        from repro.compiler.strategies import ISA

        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        nominal = compile_circuit(
            circuit, ISA, device=Device(topology=LineTopology(3))
        )
        weak = compile_circuit(
            circuit,
            ISA,
            device=Device(
                topology=LineTopology(3),
                coupling_limits_ghz={(0, 1): 0.01, (1, 2): 0.01},
            ),
        )
        assert weak.latency_ns > nominal.latency_ns

    def test_mismatched_ocu_for_heterogeneous_device_rejected(self):
        # A shared homogeneous oracle would silently misprice a
        # heterogeneous device's edges.
        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        with pytest.raises(ConfigError, match="per-edge"):
            compile_circuit(
                circuit,
                CLS_AGGREGATION,
                ocu=OptimalControlUnit(),
                device=self._weak_edge_device(),
            )

    def test_heterogeneous_ocu_for_other_device_rejected(self):
        # ...and the reverse direction: an oracle carrying per-edge
        # overrides would misprice any other device's edges (including
        # the auto-sized default grid).
        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        hetero_ocu = OptimalControlUnit(device=self._weak_edge_device())
        with pytest.raises(ConfigError, match="misprice"):
            compile_circuit(
                circuit, CLS_AGGREGATION, ocu=hetero_ocu, device="line-3"
            )
        with pytest.raises(ConfigError, match="misprice"):
            compile_circuit(circuit, CLS_AGGREGATION, ocu=hetero_ocu)

    def test_t1_variant_devices_share_a_coupling_matched_ocu(self):
        # t1/t2 overrides never reach the oracle, so calibration
        # variants of the same chip must share one OCU without tripping
        # the matched-oracle guard.
        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        base = self._weak_edge_device()
        variant = Device(
            topology=base.topology,
            coupling_limits_ghz=dict(base.coupling_limits_ghz),
            t1_us={2: 20.0},
        )
        assert base.coupling_signature() == variant.coupling_signature()
        shared_ocu = OptimalControlUnit(device=base)
        result = compile_circuit(
            circuit, CLS_AGGREGATION, ocu=shared_ocu, device=variant
        )
        result.schedule.validate()
        assert shared_ocu.fingerprint == OptimalControlUnit(
            device=variant
        ).fingerprint

    @pytest.mark.slow
    def test_grape_nonpositional_latency_ignores_logical_labels(self):
        # Non-positional GRAPE pricing (logical stage) must not vary
        # with which logical labels happen to coincide with overridden
        # edges — the cache key carries no support, so any variation
        # would poison later queries.
        device = self._weak_edge_device()
        ocu = OptimalControlUnit(device=device, backend="grape")
        on_weak = ocu.latency(lib.CNOT(0, 1), positional=False)
        fresh = OptimalControlUnit(device=device, backend="grape")
        on_nominal = fresh.latency(lib.CNOT(1, 2), positional=False)
        assert on_weak == pytest.approx(on_nominal)

    def test_hand_optimization_prices_weak_edges(self):
        # The cls+hand backend bypasses the OCU via hand_latency_ns, so
        # it must read per-edge overrides itself; otherwise its
        # makespans on heterogeneous devices would silently underprice
        # overridden edges while every other strategy honors them.
        from repro.compiler.strategies import CLS_HAND

        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        nominal = compile_circuit(
            circuit, CLS_HAND, device=Device(topology=LineTopology(3))
        )
        weak = compile_circuit(
            circuit,
            CLS_HAND,
            device=Device(
                topology=LineTopology(3),
                coupling_limits_ghz={(0, 1): 0.01, (1, 2): 0.01},
            ),
        )
        assert weak.latency_ns > nominal.latency_ns

    def test_unnamed_device_keeps_provenance_in_figure9(self):
        from repro.experiments.figure9 import run_figure9
        from repro.device.topology import RingTopology

        rows = run_figure9(
            scale="small",
            strategies=["isa"],
            benchmark_keys=["maxcut-line-6"],
            device=Device(topology=RingTopology(6)),
        )
        assert rows[0].device == repr(Device(topology=RingTopology(6)))

    def test_preset_resolution_is_memoized(self):
        # Frozen + deterministic per key, so repeated resolutions share
        # one Device (and its warmed BFS caches).
        assert device_by_key("ring-6") is device_by_key("ring-6")
        assert device_by_key("heavy-hex-1") is device_by_key("heavy-hex-1")

    def test_matched_heterogeneous_ocu_accepted(self):
        circuit = maxcut_qaoa_circuit(line_graph(3), name="line3")
        device = self._weak_edge_device()
        result = compile_circuit(
            circuit,
            CLS_AGGREGATION,
            ocu=OptimalControlUnit(device=device),
            device=device,
        )
        result.schedule.validate()


class TestDeviceThreadedCompilation:
    """Non-grid devices compile end to end through every entry point."""

    @pytest.mark.parametrize(
        "key", ["ring-6", "heavy-hex-1", "all-to-all-6", "line-6"]
    )
    def test_compiles_and_validates_on_preset(self, key):
        circuit = maxcut_qaoa_circuit(line_graph(6), name="line6")
        result = compile_circuit(circuit, CLS_AGGREGATION, device=key)
        result.schedule.validate()
        assert result.device_name == key
        assert result.physical_qubits == device_by_key(key).num_qubits
        assert result.latency_ns > 0

    def test_all_to_all_needs_no_swaps(self):
        circuit = grover_sqrt_circuit(2)  # 9 qubits
        result = compile_circuit(circuit, CLS_AGGREGATION, device="all-to-all-9")
        assert result.swap_count == 0

    def test_job_rejects_device_and_topology_together(self):
        with pytest.raises(ConfigError, match="not both"):
            BatchJob(
                circuit=ising_model_circuit(4),
                device="ring-6",
                topology=LineTopology(6),
            )

    def test_engine_level_device_key(self):
        engine = BatchCompiler(device="ring-6", max_workers=1)
        circuit = ising_model_circuit(6)
        result = engine.compile(circuit, CLS_AGGREGATION)
        result.schedule.validate()
        assert result.device_name == "ring-6"
        assert result.physical_qubits == 6

    def test_figure9_rejects_unknown_benchmarks_and_empty_sweeps(self):
        # A typo'd --benchmarks or a too-small device must fail loudly,
        # not let a smoke job go green while compiling nothing.
        from repro.experiments.figure9 import run_figure9

        with pytest.raises(ConfigError, match="unknown benchmark"):
            run_figure9(scale="small", benchmark_keys=["maxcut-lin-6"])
        with pytest.raises(ConfigError, match="fits"):
            run_figure9(
                scale="small",
                benchmark_keys=["maxcut-line-6"],
                device="line-3",
            )

    def test_job_topology_overrides_engine_device(self):
        # A job-level bare topology replaces the engine's default
        # machine (keeping its physics) instead of crashing on a
        # device-plus-topology conflict the caller never created.
        engine = BatchCompiler(device="ring-6", max_workers=1)
        circuit = ising_model_circuit(4)
        direct = engine.compile(
            circuit, CLS_AGGREGATION, topology=LineTopology(4)
        )
        assert direct.physical_qubits == 4
        report = engine.compile_batch(
            [
                BatchJob(
                    circuit=circuit,
                    strategy=CLS_AGGREGATION,
                    topology=LineTopology(4),
                )
            ]
        )
        _assert_bit_identical(report.results[0], direct)

    def test_per_qubit_decoherence_overrides_survival(self):
        circuit = ising_model_circuit(4)
        homogeneous = Device(topology=LineTopology(4))
        lossy = Device(topology=LineTopology(4), t1_us={0: 5.0, 1: 5.0})
        result = compile_circuit(circuit, CLS_AGGREGATION, device=homogeneous)
        base = schedule_survival_probability(result.schedule, homogeneous)
        worse = schedule_survival_probability(result.schedule, lossy)
        flat = schedule_survival_probability(
            result.schedule, DeviceConfig()
        )
        assert worse < base
        assert base == pytest.approx(flat)
