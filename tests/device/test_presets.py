"""Tests for the device preset registry."""

import pytest

from repro.device.device import Device
from repro.device.presets import (
    available_device_keys,
    device_by_key,
    paper_device_for,
    register_device,
    registered_device_keys,
    unregister_device,
)
from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
)
from repro.errors import ConfigError


class TestBuiltinFamilies:
    """The acceptance matrix: all five preset families resolve."""

    @pytest.mark.parametrize(
        "key,topology_type,num_qubits",
        [
            ("paper-grid-2x3", GridTopology, 6),
            ("paper-grid-4x4", GridTopology, 16),
            ("line-5", LineTopology, 5),
            ("ring-6", RingTopology, 6),
            ("heavy-hex-1", HeavyHexTopology, 12),
            ("all-to-all-7", FullyConnectedTopology, 7),
        ],
    )
    def test_resolves(self, key, topology_type, num_qubits):
        device = device_by_key(key)
        assert isinstance(device, Device)
        assert isinstance(device.topology, topology_type)
        assert device.num_qubits == num_qubits
        assert device.name == key
        assert not device.is_heterogeneous

    def test_same_key_same_device(self):
        assert (
            device_by_key("ring-5").signature()
            == device_by_key("ring-5").signature()
        )

    @pytest.mark.parametrize(
        "key",
        [
            "paper-grid-3",      # missing NxM
            "paper-grid-0x2",    # non-positive dimension
            "line-zero",
            "ring--3",
            "heavy-hex-",
            "all-to-all-0",
        ],
    )
    def test_bad_parameters_rejected_with_usage(self, key):
        with pytest.raises(ConfigError, match="expected"):
            device_by_key(key)

    def test_unknown_key_lists_families(self):
        with pytest.raises(ConfigError) as excinfo:
            device_by_key("warp-core-9")
        message = str(excinfo.value)
        for family in (
            "paper-grid-NxM",
            "line-N",
            "ring-N",
            "heavy-hex-D",
            "all-to-all-N",
        ):
            assert family in message


class TestRegistry:
    @pytest.fixture
    def t_device(self):
        # The examples/custom_device.py shape: a 5-qubit T.
        topology = Topology(5, [(0, 1), (1, 2), (1, 3), (3, 4)])
        device = Device(topology=topology, name="t5")
        register_device("t5", device)
        yield device
        unregister_device("t5")

    def test_registered_key_resolves(self, t_device):
        assert device_by_key("t5") is t_device
        assert "t5" in registered_device_keys()
        assert "t5" in available_device_keys()

    def test_factory_registration(self):
        register_device(
            "lazy-ring", lambda: Device(topology=RingTopology(4))
        )
        try:
            assert device_by_key("lazy-ring").num_qubits == 4
        finally:
            unregister_device("lazy-ring")

    def test_factory_returning_garbage_rejected(self):
        register_device("broken", lambda: "oops")
        try:
            with pytest.raises(ConfigError, match="not a Device"):
                device_by_key("broken")
        finally:
            unregister_device("broken")

    def test_duplicate_rejected_unless_overwrite(self, t_device):
        with pytest.raises(ConfigError, match="already registered"):
            register_device("t5", t_device)
        register_device("t5", t_device, overwrite=True)

    def test_family_prefixes_protected(self):
        clash = Device(topology=RingTopology(3))
        with pytest.raises(ConfigError, match="collides"):
            register_device("ring-3", clash)
        with pytest.raises(ConfigError, match="collides"):
            register_device("heavy-hex", clash)

    def test_unregister_unknown(self):
        with pytest.raises(ConfigError):
            unregister_device("never-was")

    def test_non_device_rejected(self):
        with pytest.raises(ConfigError):
            register_device("bad", 17)
        with pytest.raises(ConfigError):
            register_device("", Device(topology=RingTopology(3)))


class TestPaperDeviceFor:
    def test_matches_auto_sized_grid(self):
        device = paper_device_for(7)
        assert isinstance(device.topology, GridTopology)
        assert device.num_qubits >= 7
        assert device.name == "paper-grid-2x4"
        # Resolvable back through the registry to the same machine.
        assert (
            device_by_key(device.name).signature() == device.signature()
        )
