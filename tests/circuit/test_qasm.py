"""Tests for the QASM dialect parser and emitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import Circuit
from repro.circuit.qasm import circuit_to_qasm, parse_qasm
from repro.errors import CircuitError, QasmError


class TestParse:
    def test_minimal_program(self):
        circuit = parse_qasm("qubits 2\nh q0\ncnot q0, q1\n")
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit] == ["H", "CNOT"]

    def test_parameterized_gate(self):
        circuit = parse_qasm("qubits 1\nrz(0.5) q0\n")
        assert circuit.gates[0].params == (0.5,)

    def test_comments_and_blank_lines(self):
        text = "# header\n\nqubits 1\n# mid comment\nh q0  # trailing\n"
        circuit = parse_qasm(text)
        assert len(circuit) == 1

    def test_bare_integer_qubits(self):
        circuit = parse_qasm("qubits 2\ncnot 0, 1\n")
        assert circuit.gates[0].qubits == (0, 1)

    def test_gate_aliases(self):
        circuit = parse_qasm("qubits 3\ncx q0, q1\nccx q0, q1, q2\n")
        assert [g.name for g in circuit] == ["CNOT", "TOFFOLI"]

    def test_missing_qubits_directive(self):
        with pytest.raises(QasmError):
            parse_qasm("h q0\n")

    def test_empty_text(self):
        with pytest.raises(QasmError):
            parse_qasm("")

    def test_duplicate_qubits_directive(self):
        with pytest.raises(QasmError):
            parse_qasm("qubits 2\nqubits 3\n")

    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            parse_qasm("qubits 1\nfrobnicate q0\n")

    def test_bad_parameter(self):
        with pytest.raises(QasmError):
            parse_qasm("qubits 1\nrz(abc) q0\n")

    def test_bad_qubit_token(self):
        with pytest.raises(QasmError):
            parse_qasm("qubits 1\nh qq\n")

    def test_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            parse_qasm("qubits 1\nh q5\n").unitary()


class TestRoundTrip:
    def test_simple_round_trip(self):
        original = Circuit(3).h(0).cnot(0, 1).rz(0.25, 2).swap(1, 2)
        parsed = parse_qasm(circuit_to_qasm(original))
        assert parsed.num_qubits == original.num_qubits
        assert [g.name for g in parsed] == [g.name for g in original]
        assert np.allclose(parsed.unitary(), original.unitary())

    @given(
        thetas=st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_parameter_precision_survives(self, thetas):
        original = Circuit(2)
        for i, theta in enumerate(thetas):
            original.rz(theta, i % 2)
        parsed = parse_qasm(circuit_to_qasm(original))
        for parsed_gate, original_gate in zip(parsed, original):
            assert parsed_gate.params == original_gate.params

    def test_round_trip_with_multi_qubit_gates(self):
        original = Circuit(4).toffoli(0, 1, 2).cphase(1.5, 2, 3).rzz(0.7, 0, 3)
        parsed = parse_qasm(circuit_to_qasm(original))
        assert np.allclose(parsed.unitary(), original.unitary())
