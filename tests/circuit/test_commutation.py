"""Tests for commutation checking — includes the paper's Table 2 relations."""

import pytest

from repro.circuit.commutation import CommutationChecker, clear_shared_verdicts
from repro.circuit.dag import GateDependenceGraph
from repro.gates import library as lib


@pytest.fixture
def checker():
    return CommutationChecker()


class TestTableTwoRelations:
    """The four commutation relations of paper Table 2."""

    def test_gates_on_different_qubits_commute(self, checker):
        assert checker.commute(lib.H(0), lib.X(1))
        assert checker.commute(lib.CNOT(0, 1), lib.CNOT(2, 3))

    def test_control_commutes_with_rz(self, checker):
        # Rz on the control line passes through the control.
        assert checker.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))

    def test_rz_on_target_does_not_commute(self, checker):
        assert not checker.commute(lib.RZ(0.7, 1), lib.CNOT(0, 1))

    def test_diagonal_gates_commute(self, checker):
        assert checker.commute(lib.RZZ(0.3, 0, 1), lib.RZZ(0.9, 1, 2))
        assert checker.commute(lib.CZ(0, 1), lib.CZ(1, 2))
        assert checker.commute(lib.RZ(0.5, 0), lib.CZ(0, 1))

    def test_cnots_with_disjoint_controls_commute(self, checker):
        # Shared target, different controls.
        assert checker.commute(lib.CNOT(0, 2), lib.CNOT(1, 2))

    def test_cnots_sharing_control_commute(self, checker):
        assert checker.commute(lib.CNOT(0, 1), lib.CNOT(0, 2))

    def test_cnots_control_target_chain_do_not_commute(self, checker):
        assert not checker.commute(lib.CNOT(0, 1), lib.CNOT(1, 2))


class TestExactChecks:
    def test_same_qubit_rotations(self, checker):
        assert checker.commute(lib.RZ(0.1, 0), lib.RZ(0.2, 0))
        assert not checker.commute(lib.RX(0.1, 0), lib.RZ(0.2, 0))

    def test_x_on_target_commutes_with_cnot(self, checker):
        assert checker.commute(lib.X(1), lib.CNOT(0, 1))

    def test_swap_and_symmetric_pair(self, checker):
        # SWAP commutes with a symmetric two-qubit gate on the same pair.
        assert checker.commute(lib.SWAP(0, 1), lib.CZ(0, 1))
        assert checker.commute(lib.SWAP(0, 1), lib.ISWAP(0, 1))

    def test_three_qubit_overlap(self, checker):
        assert checker.commute(lib.CCZ(0, 1, 2), lib.RZ(0.4, 1))
        assert not checker.commute(lib.TOFFOLI(0, 1, 2), lib.H(2))


class TestCacheBehaviour:
    def test_cache_hit_on_structural_repeat(self, checker):
        checker.commute(lib.RZ(0.7, 3), lib.CNOT(3, 4))
        before = checker.exact_checks
        # Same structure on different qubits: should hit the cache.
        verdict = checker.commute(lib.RZ(0.7, 8), lib.CNOT(8, 9))
        assert verdict
        assert checker.exact_checks == before
        assert checker.cache_hits >= 1

    def test_cache_distinguishes_qubit_pattern(self, checker):
        # Rz on control commutes; Rz on target does not — the union
        # pattern differs so both verdicts are computed and cached.
        assert checker.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))
        assert not checker.commute(lib.RZ(0.7, 1), lib.CNOT(0, 1))

    def test_cache_size_grows(self, checker):
        checker.commute(lib.H(0), lib.X(0))
        assert checker.cache_size() >= 1


def _gate_mix():
    """A three-qubit sequence exercising exact checks, diagonal pairs,
    and disjoint supports — the structural variety one GDG build sees."""
    return [
        lib.H(0),
        lib.CNOT(0, 1),
        lib.RZ(0.3, 1),
        lib.CNOT(0, 1),
        lib.RZZ(0.5, 1, 2),
        lib.CNOT(1, 2),
        lib.X(2),
        lib.CZ(0, 2),
        lib.RZ(0.7, 0),
    ]


class TestSharedVerdictMemo:
    """The process-global memo: verdicts survive across checker instances."""

    def test_fresh_checker_reuses_process_global_verdicts(self):
        clear_shared_verdicts()
        first = CommutationChecker()
        assert first.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))
        assert first.exact_checks == 1
        second = CommutationChecker()
        assert second.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))
        assert second.exact_checks == 0
        assert second.shared_hits == 1

    def test_different_tolerances_never_share_a_verdict(self):
        clear_shared_verdicts()
        strict = CommutationChecker()
        strict.commute(lib.RX(0.1, 0), lib.RZ(0.2, 0))
        loose = CommutationChecker(atol=1e-3)
        loose.commute(lib.RX(0.1, 0), lib.RZ(0.2, 0))
        assert loose.shared_hits == 0
        assert loose.exact_checks == 1

    def test_gdg_output_identical_cold_and_warm(self):
        """Regression pin: a GDG built against a primed memo groups its
        nodes exactly like one built with the memo empty."""

        def groups_of(dag, nodes):
            index = {id(node): i for i, node in enumerate(nodes)}
            return [
                [
                    [index[id(member)] for member in group]
                    for group in dag.commutation_groups(q)
                ]
                for q in range(3)
            ]

        clear_shared_verdicts()
        cold_nodes = _gate_mix()
        cold_dag = GateDependenceGraph(
            3, cold_nodes, CommutationChecker().commute
        )
        cold_groups = groups_of(cold_dag, cold_nodes)

        warm_nodes = _gate_mix()
        warm_checker = CommutationChecker()
        warm_dag = GateDependenceGraph(3, warm_nodes, warm_checker.commute)
        assert groups_of(warm_dag, warm_nodes) == cold_groups
        # Every structural question was answered from the shared memo.
        assert warm_checker.exact_checks == 0
        assert warm_checker.shared_hits > 0


class TestConservativeFallback:
    def test_wide_diagonal_operands_commute(self):
        checker = CommutationChecker(exact_qubits=2)

        class WideDiagonal:
            qubits = tuple(range(5))
            is_diagonal = True
            signature = ("WIDE_DIAG",)
            matrix = None

        class OtherDiagonal:
            qubits = tuple(range(3, 8))
            is_diagonal = True
            signature = ("OTHER_DIAG",)
            matrix = None

        assert checker.commute(WideDiagonal(), OtherDiagonal())

    def test_wide_non_diagonal_falls_back_to_false(self):
        checker = CommutationChecker(exact_qubits=2)
        # Three-qubit union exceeds the exact limit of 2 -> conservative.
        assert not checker.commute(lib.CNOT(0, 2), lib.CNOT(1, 2))

    def test_disjoint_always_commutes_even_when_wide(self):
        checker = CommutationChecker(exact_qubits=2)
        assert checker.commute(lib.TOFFOLI(0, 1, 2), lib.TOFFOLI(3, 4, 5))
