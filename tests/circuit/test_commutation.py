"""Tests for commutation checking — includes the paper's Table 2 relations."""

import pytest

from repro.circuit.commutation import CommutationChecker
from repro.gates import library as lib


@pytest.fixture
def checker():
    return CommutationChecker()


class TestTableTwoRelations:
    """The four commutation relations of paper Table 2."""

    def test_gates_on_different_qubits_commute(self, checker):
        assert checker.commute(lib.H(0), lib.X(1))
        assert checker.commute(lib.CNOT(0, 1), lib.CNOT(2, 3))

    def test_control_commutes_with_rz(self, checker):
        # Rz on the control line passes through the control.
        assert checker.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))

    def test_rz_on_target_does_not_commute(self, checker):
        assert not checker.commute(lib.RZ(0.7, 1), lib.CNOT(0, 1))

    def test_diagonal_gates_commute(self, checker):
        assert checker.commute(lib.RZZ(0.3, 0, 1), lib.RZZ(0.9, 1, 2))
        assert checker.commute(lib.CZ(0, 1), lib.CZ(1, 2))
        assert checker.commute(lib.RZ(0.5, 0), lib.CZ(0, 1))

    def test_cnots_with_disjoint_controls_commute(self, checker):
        # Shared target, different controls.
        assert checker.commute(lib.CNOT(0, 2), lib.CNOT(1, 2))

    def test_cnots_sharing_control_commute(self, checker):
        assert checker.commute(lib.CNOT(0, 1), lib.CNOT(0, 2))

    def test_cnots_control_target_chain_do_not_commute(self, checker):
        assert not checker.commute(lib.CNOT(0, 1), lib.CNOT(1, 2))


class TestExactChecks:
    def test_same_qubit_rotations(self, checker):
        assert checker.commute(lib.RZ(0.1, 0), lib.RZ(0.2, 0))
        assert not checker.commute(lib.RX(0.1, 0), lib.RZ(0.2, 0))

    def test_x_on_target_commutes_with_cnot(self, checker):
        assert checker.commute(lib.X(1), lib.CNOT(0, 1))

    def test_swap_and_symmetric_pair(self, checker):
        # SWAP commutes with a symmetric two-qubit gate on the same pair.
        assert checker.commute(lib.SWAP(0, 1), lib.CZ(0, 1))
        assert checker.commute(lib.SWAP(0, 1), lib.ISWAP(0, 1))

    def test_three_qubit_overlap(self, checker):
        assert checker.commute(lib.CCZ(0, 1, 2), lib.RZ(0.4, 1))
        assert not checker.commute(lib.TOFFOLI(0, 1, 2), lib.H(2))


class TestCacheBehaviour:
    def test_cache_hit_on_structural_repeat(self, checker):
        checker.commute(lib.RZ(0.7, 3), lib.CNOT(3, 4))
        before = checker.exact_checks
        # Same structure on different qubits: should hit the cache.
        verdict = checker.commute(lib.RZ(0.7, 8), lib.CNOT(8, 9))
        assert verdict
        assert checker.exact_checks == before
        assert checker.cache_hits >= 1

    def test_cache_distinguishes_qubit_pattern(self, checker):
        # Rz on control commutes; Rz on target does not — the union
        # pattern differs so both verdicts are computed and cached.
        assert checker.commute(lib.RZ(0.7, 0), lib.CNOT(0, 1))
        assert not checker.commute(lib.RZ(0.7, 1), lib.CNOT(0, 1))

    def test_cache_size_grows(self, checker):
        checker.commute(lib.H(0), lib.X(0))
        assert checker.cache_size() >= 1


class TestConservativeFallback:
    def test_wide_diagonal_operands_commute(self):
        checker = CommutationChecker(exact_qubits=2)

        class WideDiagonal:
            qubits = tuple(range(5))
            is_diagonal = True
            signature = ("WIDE_DIAG",)
            matrix = None

        class OtherDiagonal:
            qubits = tuple(range(3, 8))
            is_diagonal = True
            signature = ("OTHER_DIAG",)
            matrix = None

        assert checker.commute(WideDiagonal(), OtherDiagonal())

    def test_wide_non_diagonal_falls_back_to_false(self):
        checker = CommutationChecker(exact_qubits=2)
        # Three-qubit union exceeds the exact limit of 2 -> conservative.
        assert not checker.commute(lib.CNOT(0, 2), lib.CNOT(1, 2))

    def test_disjoint_always_commutes_even_when_wide(self):
        checker = CommutationChecker(exact_qubits=2)
        assert checker.commute(lib.TOFFOLI(0, 1, 2), lib.TOFFOLI(3, 4, 5))
