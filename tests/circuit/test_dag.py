"""Tests for the gate-dependence graph."""

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.errors import CircuitError, SchedulingError
from repro.gates import library as lib


def build_dag(circuit):
    return GateDependenceGraph.from_circuit(circuit, CommutationChecker())


def unit_latency(_node) -> float:
    return 1.0


class TestConstruction:
    def test_qubit_sequences(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.3, 1)
        dag = build_dag(circuit)
        assert [g.name for g in dag.qubit_sequence(0)] == ["H", "CNOT"]
        assert [g.name for g in dag.qubit_sequence(1)] == ["CNOT", "RZ"]

    def test_out_of_range_node_rejected(self):
        with pytest.raises(CircuitError):
            GateDependenceGraph(1, [lib.CNOT(0, 1)], lambda a, b: False)

    def test_len(self):
        circuit = Circuit(2).h(0).h(1)
        assert len(build_dag(circuit)) == 2


class TestCommutationGroups:
    def test_noncommuting_chain_gives_singleton_groups(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        dag = build_dag(circuit)
        groups = dag.commutation_groups(0)
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_commuting_rz_run_is_one_group(self):
        circuit = Circuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0)
        dag = build_dag(circuit)
        assert [len(g) for g in dag.commutation_groups(0)] == [3]

    def test_cnot_rz_cnot_groups_on_control_and_target(self):
        # Paper example: the two CNOTs share a commutation group on the
        # control qubit but not on the target qubit (Rz intervenes).
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 1).cnot(0, 1)
        dag = build_dag(circuit)
        cnot_a, rz, cnot_b = circuit.gates
        assert dag.same_group(cnot_a, cnot_b, 0)
        assert not dag.same_group(cnot_a, cnot_b, 1)
        assert dag.group_index(rz, 1) == 1

    def test_rz_travels_through_cnot_control(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 0)
        dag = build_dag(circuit)
        cnot, rz = circuit.gates
        assert dag.same_group(cnot, rz, 0)

    def test_group_index_for_absent_qubit(self):
        circuit = Circuit(2).h(0)
        dag = build_dag(circuit)
        with pytest.raises(SchedulingError):
            dag.group_index(circuit.gates[0], 1)

    def test_commute_nodes_requires_all_shared_groups(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 1).cnot(0, 1)
        dag = build_dag(circuit)
        cnot_a, _rz, cnot_b = circuit.gates
        # Same group on qubit 0 but not qubit 1 -> do not commute.
        assert not dag.commute_nodes(cnot_a, cnot_b)


class TestTiming:
    def test_predecessors_follow_qubit_chains(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.3, 1)
        dag = build_dag(circuit)
        h, cnot, rz = circuit.gates
        assert dag.predecessors(h) == []
        assert dag.predecessors(cnot) == [h]
        assert dag.predecessors(rz) == [cnot]
        assert dag.successors(h) == [cnot]

    def test_source_nodes(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).h(2)
        dag = build_dag(circuit)
        sources = dag.source_nodes()
        assert len(sources) == 3

    def test_topological_order_is_consistent(self):
        circuit = Circuit(3).h(0).cnot(0, 1).cnot(1, 2).h(2)
        dag = build_dag(circuit)
        order = dag.topological_order()
        position = {id(node): i for i, node in enumerate(order)}
        for node in dag.nodes:
            for successor in dag.successors(node):
                assert position[id(node)] < position[id(successor)]

    def test_makespan_serial(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        dag = build_dag(circuit)
        assert dag.makespan(unit_latency) == pytest.approx(3.0)

    def test_makespan_parallel(self):
        circuit = Circuit(3).h(0).h(1).h(2)
        dag = build_dag(circuit)
        assert dag.makespan(unit_latency) == pytest.approx(1.0)

    def test_makespan_weighted(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        dag = build_dag(circuit)
        latency = {id(circuit.gates[0]): 2.0, id(circuit.gates[1]): 5.0}
        assert dag.makespan(lambda n: latency[id(n)]) == pytest.approx(7.0)

    def test_commuting_gates_on_same_qubit_still_serialize(self):
        # Chain edges model hardware resource exclusivity.
        circuit = Circuit(1).rz(0.1, 0).rz(0.2, 0)
        dag = build_dag(circuit)
        assert dag.makespan(unit_latency) == pytest.approx(2.0)

    def test_empty_dag_makespan(self):
        dag = build_dag(Circuit(2))
        assert dag.makespan(unit_latency) == 0.0

    def test_critical_path_identifies_long_chain(self):
        circuit = Circuit(3).h(0).t(0).h(0).h(1)
        dag = build_dag(circuit)
        path = dag.critical_path(unit_latency)
        assert len(path) == 3
        assert all(node.qubits == (0,) for node in path)


class TestReorder:
    def test_reorder_within_group_allowed(self):
        circuit = Circuit(1).rz(0.1, 0).rz(0.2, 0)
        dag = build_dag(circuit)
        a, b = circuit.gates
        dag.reorder([b, a])
        assert [g for g in dag.qubit_sequence(0)] == [b, a]

    def test_reorder_across_group_rejected(self):
        circuit = Circuit(1).h(0).t(0)
        dag = build_dag(circuit)
        h, t = circuit.gates
        with pytest.raises(SchedulingError):
            dag.reorder([t, h])

    def test_reorder_wrong_nodes_rejected(self):
        circuit = Circuit(1).h(0)
        dag = build_dag(circuit)
        with pytest.raises(SchedulingError):
            dag.reorder([lib.H(0)])

    def test_reorder_preserves_makespan_semantics(self):
        circuit = Circuit(2).rzz(0.1, 0, 1).rzz(0.2, 0, 1)
        dag = build_dag(circuit)
        a, b = circuit.gates
        dag.reorder([b, a])
        assert dag.makespan(unit_latency) == pytest.approx(2.0)


class TestMerge:
    def _diagonal_instruction(self, gates, qubits):
        """Minimal stand-in for an aggregated instruction."""

        class Node:
            def __init__(self):
                self.qubits = tuple(qubits)
                self.is_diagonal = all(g.is_diagonal for g in gates)
                self.signature = ("MERGED",) + tuple(g.signature for g in gates)
                self.matrix = None

            def __repr__(self):
                return f"Merged{self.qubits}"

        return Node()

    def test_merge_adjacent_pair(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 1)
        dag = build_dag(circuit)
        cnot, rz = circuit.gates
        merged = self._diagonal_instruction([cnot, rz], [0, 1])
        dag.merge(cnot, rz, merged)
        assert len(dag) == 1
        assert dag.qubit_sequence(0) == [merged]
        assert dag.qubit_sequence(1) == [merged]

    def test_merge_disjoint_rejected(self):
        circuit = Circuit(4).cnot(0, 1).cnot(2, 3)
        dag = build_dag(circuit)
        a, b = circuit.gates
        assert not dag.can_merge(a, b)
        with pytest.raises(SchedulingError):
            dag.merge(a, b, self._diagonal_instruction([a, b], [0, 1, 2, 3]))

    def test_merge_distant_groups_rejected(self):
        circuit = Circuit(2).cnot(0, 1).h(1).x(1).cnot(0, 1)
        dag = build_dag(circuit)
        first, *_rest, last = circuit.gates
        # H then X put the CNOTs three groups apart on qubit 1 and the
        # CNOTs share a group on qubit 0, so group distance on qubit 1 > 1.
        assert not dag.can_merge(first, last)

    def test_merge_wrong_union_rejected(self):
        circuit = Circuit(3).cnot(0, 1).rz(0.5, 1)
        dag = build_dag(circuit)
        cnot, rz = circuit.gates
        with pytest.raises(SchedulingError):
            dag.merge(cnot, rz, self._diagonal_instruction([cnot, rz], [0, 1, 2]))

    def test_merge_reduces_makespan_with_unit_latency(self):
        circuit = Circuit(2).cnot(0, 1).rz(0.5, 1).cnot(0, 1)
        dag = build_dag(circuit)
        before = dag.makespan(unit_latency)
        cnot_a, rz, _ = circuit.gates
        merged = self._diagonal_instruction([cnot_a, rz], [0, 1])
        dag.merge(cnot_a, rz, merged)
        assert dag.makespan(unit_latency) < before

    def test_merge_preserves_other_dependencies(self):
        circuit = Circuit(3).cnot(0, 1).rz(0.5, 1).cnot(1, 2)
        dag = build_dag(circuit)
        cnot_a, rz, cnot_b = circuit.gates
        merged = self._diagonal_instruction([cnot_a, rz], [0, 1])
        dag.merge(cnot_a, rz, merged)
        assert dag.predecessors(cnot_b) == [merged]

    def test_cycle_inducing_merge_rejected_and_rolled_back(self):
        # A -> C on qubit 1, C -> B on qubit 2; merging A and B would
        # need the merged node both before and after C: a cycle.
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2).cnot(2, 0)
        dag = build_dag(circuit)
        a, c, b = circuit.gates
        assert dag.can_merge(a, b)  # structurally adjacent on qubit 0
        merged = self._diagonal_instruction([a, b], [0, 1, 2])
        with pytest.raises(SchedulingError):
            dag.merge(a, b, merged)
        # Original structure intact after the failure.
        assert len(dag) == 3
        assert dag.predecessors(c) == [a]
        assert set(map(id, dag.predecessors(b))) == {id(a), id(c)}
        dag.topological_order()  # still acyclic and consistent
