"""Tests for the Circuit IR."""

import math

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.errors import CircuitError
from repro.gates import library as lib
from repro.linalg.predicates import allclose_up_to_global_phase


class TestConstruction:
    def test_empty_circuit(self):
        circuit = Circuit(3)
        assert len(circuit) == 0
        assert circuit.num_qubits == 3
        assert circuit.depth == 0

    def test_invalid_width(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_append_validates_range(self):
        circuit = Circuit(2)
        with pytest.raises(CircuitError):
            circuit.append(lib.H(5))

    def test_builder_chaining(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.3, 1)
        assert [g.name for g in circuit] == ["H", "CNOT", "RZ"]

    def test_from_gates(self):
        gates = [lib.H(0), lib.CNOT(0, 1)]
        circuit = Circuit.from_gates(2, gates, name="bell")
        assert circuit.name == "bell"
        assert len(circuit) == 2

    def test_copy_is_independent(self):
        circuit = Circuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_extend(self):
        circuit = Circuit(3).extend([lib.H(0), lib.H(1), lib.H(2)])
        assert len(circuit) == 3


class TestInspection:
    def test_gate_counts(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1)
        counts = circuit.gate_counts()
        assert counts["H"] == 2
        assert counts["CNOT"] == 1

    def test_qubit_gates_order(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.1, 0)
        names = [g.name for g in circuit.qubit_gates(0)]
        assert names == ["H", "CNOT", "RZ"]

    def test_qubit_gates_range_check(self):
        with pytest.raises(CircuitError):
            Circuit(2).qubit_gates(5)

    def test_used_qubits(self):
        circuit = Circuit(4).h(0).cnot(2, 3)
        assert circuit.used_qubits() == {0, 2, 3}

    def test_depth_serial_chain(self):
        circuit = Circuit(1).h(0).x(0).z(0)
        assert circuit.depth == 3

    def test_depth_parallel_layer(self):
        circuit = Circuit(3).h(0).h(1).h(2)
        assert circuit.depth == 1

    def test_depth_with_two_qubit_gate(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1)
        assert circuit.depth == 2

    def test_interaction_pairs(self):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 0).cnot(1, 2)
        pairs = circuit.two_qubit_interaction_pairs()
        assert pairs[(0, 1)] == 2
        assert pairs[(1, 2)] == 1


class TestSemantics:
    def test_bell_unitary(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        state = circuit.unitary()[:, 0]
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_unitary_limit(self):
        with pytest.raises(CircuitError):
            Circuit(13).unitary()

    def test_cnot_rz_cnot_is_diagonal(self):
        theta = 0.77
        circuit = Circuit(2).cnot(0, 1).rz(theta, 1).cnot(0, 1)
        u = circuit.unitary()
        assert allclose_up_to_global_phase(
            u, lib.RZZ(theta, 0, 1).matrix, atol=1e-9
        )

    def test_statevector_default_initial(self):
        circuit = Circuit(2).x(0)
        state = circuit.statevector()
        assert abs(state[0b10]) == pytest.approx(1.0)

    def test_statevector_custom_initial(self):
        circuit = Circuit(1).x(0)
        state = circuit.statevector(initial=[0.0, 1.0])
        assert abs(state[0]) == pytest.approx(1.0)

    def test_statevector_bad_initial(self):
        with pytest.raises(CircuitError):
            Circuit(2).statevector(initial=[1.0, 0.0])
