"""Tests for the gate library."""

import math

import numpy as np
import pytest

from repro.errors import GateError
from repro.gates import library as lib
from repro.linalg.predicates import allclose_up_to_global_phase, is_unitary


class TestMatrices:
    def test_all_no_param_gates_are_unitary(self):
        gates = [
            lib.I(0), lib.X(0), lib.Y(0), lib.Z(0), lib.H(0), lib.S(0),
            lib.SDG(0), lib.T(0), lib.TDG(0), lib.CNOT(0, 1), lib.CZ(0, 1),
            lib.SWAP(0, 1), lib.ISWAP(0, 1), lib.SQRT_ISWAP(0, 1),
            lib.TOFFOLI(0, 1, 2), lib.CCZ(0, 1, 2), lib.FREDKIN(0, 1, 2),
        ]
        for gate in gates:
            assert is_unitary(gate.matrix), gate.name

    def test_cnot_truth_table(self):
        cnot = lib.CNOT(0, 1).matrix
        # |10> -> |11>, |11> -> |10>
        assert cnot[0b11, 0b10] == 1.0
        assert cnot[0b10, 0b11] == 1.0
        assert cnot[0b00, 0b00] == 1.0

    def test_toffoli_truth_table(self):
        toffoli = lib.TOFFOLI(0, 1, 2).matrix
        assert toffoli[0b111, 0b110] == 1.0
        assert toffoli[0b110, 0b111] == 1.0
        assert toffoli[0b101, 0b101] == 1.0

    def test_fredkin_swaps_targets(self):
        fredkin = lib.FREDKIN(0, 1, 2).matrix
        assert fredkin[0b110, 0b101] == 1.0
        assert fredkin[0b101, 0b110] == 1.0
        assert fredkin[0b010, 0b010] == 1.0

    def test_sqrt_iswap_squares_to_iswap(self):
        sqrt = lib.SQRT_ISWAP(0, 1).matrix
        assert np.allclose(sqrt @ sqrt, lib.ISWAP(0, 1).matrix, atol=1e-12)

    def test_s_squares_to_z(self):
        s = lib.S(0).matrix
        assert np.allclose(s @ s, lib.Z(0).matrix)

    def test_t_squares_to_s(self):
        t = lib.T(0).matrix
        assert np.allclose(t @ t, lib.S(0).matrix)

    def test_h_conjugates_x_to_z(self):
        h = lib.H(0).matrix
        assert np.allclose(h @ lib.X(0).matrix @ h, lib.Z(0).matrix, atol=1e-12)

    def test_rz_pi_is_z_up_to_phase(self):
        assert allclose_up_to_global_phase(
            lib.RZ(math.pi, 0).matrix, lib.Z(0).matrix
        )

    def test_rx_pi_is_x_up_to_phase(self):
        assert allclose_up_to_global_phase(
            lib.RX(math.pi, 0).matrix, lib.X(0).matrix
        )

    def test_phase_matches_rz_up_to_phase(self):
        assert allclose_up_to_global_phase(
            lib.PHASE(0.7, 0).matrix, lib.RZ(0.7, 0).matrix
        )

    def test_cphase_pi_is_cz(self):
        assert np.allclose(lib.CPHASE(math.pi, 0, 1).matrix, lib.CZ(0, 1).matrix)

    def test_rzz_diagonal_phases(self):
        theta = 0.62
        rzz = lib.RZZ(theta, 0, 1).matrix
        assert rzz[0, 0] == pytest.approx(np.exp(-1j * theta / 2))
        assert rzz[1, 1] == pytest.approx(np.exp(1j * theta / 2))


class TestGateFromName:
    def test_simple_gate(self):
        gate = lib.gate_from_name("h", [3])
        assert gate.name == "H" and gate.qubits == (3,)

    def test_aliases(self):
        assert lib.gate_from_name("cx", [0, 1]).name == "CNOT"
        assert lib.gate_from_name("ccx", [0, 1, 2]).name == "TOFFOLI"
        assert lib.gate_from_name("cswap", [0, 1, 2]).name == "FREDKIN"

    def test_parameterized_gate(self):
        gate = lib.gate_from_name("rz", [2], [0.5])
        assert gate.name == "RZ" and gate.params == (0.5,)

    def test_unknown_name_rejected(self):
        with pytest.raises(GateError):
            lib.gate_from_name("FROBNICATE", [0])

    def test_unexpected_params_rejected(self):
        with pytest.raises(GateError):
            lib.gate_from_name("H", [0], [0.5])

    def test_known_gate_names_nonempty(self):
        names = lib.known_gate_names()
        assert "CNOT" in names and "RZ" in names
