"""Tests for gate decompositions (unitary equivalence)."""

import numpy as np
import pytest

from repro.errors import GateError
from repro.gates import library as lib
from repro.gates.decompositions import (
    decompose_ccz,
    decompose_cphase,
    decompose_cz,
    decompose_fredkin,
    decompose_gate,
    decompose_iswap,
    decompose_rzz,
    decompose_swap_to_cnots,
    decompose_toffoli,
    is_standard,
    lower_to_standard_set,
    rotation_gate_time_estimate,
    standard_set,
)
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import allclose_up_to_global_phase

from tests.conftest import sequence_unitary


def _check(gate, decomposition, num_qubits):
    actual = sequence_unitary(decomposition, num_qubits)
    expected = embed_operator(gate.matrix, gate.qubits, num_qubits)
    assert allclose_up_to_global_phase(actual, expected, atol=1e-8)


class TestDecompositions:
    def test_swap_to_cnots(self):
        gate = lib.SWAP(0, 1)
        _check(gate, decompose_swap_to_cnots(gate), 2)

    def test_toffoli(self):
        gate = lib.TOFFOLI(0, 1, 2)
        _check(gate, decompose_toffoli(gate), 3)

    def test_toffoli_scrambled_qubits(self):
        gate = lib.TOFFOLI(2, 0, 1)
        _check(gate, decompose_toffoli(gate), 3)

    def test_ccz(self):
        gate = lib.CCZ(0, 1, 2)
        _check(gate, decompose_ccz(gate), 3)

    def test_fredkin(self):
        gate = lib.FREDKIN(0, 1, 2)
        _check(gate, decompose_fredkin(gate), 3)

    @pytest.mark.parametrize("theta", [0.1, 1.234, -2.2, np.pi])
    def test_cphase(self, theta):
        gate = lib.CPHASE(theta, 0, 1)
        _check(gate, decompose_cphase(gate), 2)

    @pytest.mark.parametrize("theta", [0.3, -1.5, 2 * np.pi - 0.01])
    def test_rzz(self, theta):
        gate = lib.RZZ(theta, 0, 1)
        _check(gate, decompose_rzz(gate), 2)

    def test_cz(self):
        gate = lib.CZ(0, 1)
        _check(gate, decompose_cz(gate), 2)

    def test_iswap(self):
        gate = lib.ISWAP(0, 1)
        _check(gate, decompose_iswap(gate), 2)

    def test_wrong_gate_rejected(self):
        with pytest.raises(GateError):
            decompose_toffoli(lib.CNOT(0, 1))

    def test_decompose_gate_dispatch(self):
        parts = decompose_gate(lib.CZ(0, 1))
        assert [g.name for g in parts] == ["H", "CNOT", "H"]

    def test_decompose_gate_unknown(self):
        with pytest.raises(GateError):
            decompose_gate(lib.H(0))


class TestLowering:
    def test_lower_keeps_standard_gates(self):
        gates = [lib.H(0), lib.CNOT(0, 1), lib.RZ(0.3, 1)]
        assert lower_to_standard_set(gates) == gates

    def test_lower_expands_toffoli(self):
        lowered = lower_to_standard_set([lib.TOFFOLI(0, 1, 2)])
        assert all(is_standard(gate) for gate in lowered)
        _check(lib.TOFFOLI(0, 1, 2), lowered, 3)

    def test_lower_nested(self):
        # iSWAP lowers through CZ, which lowers through CNOT.
        lowered = lower_to_standard_set([lib.ISWAP(0, 1)])
        assert all(is_standard(gate) for gate in lowered)
        _check(lib.ISWAP(0, 1), lowered, 2)

    def test_lower_preserves_semantics_of_mixed_sequence(self):
        gates = [lib.TOFFOLI(0, 1, 2), lib.RZZ(0.4, 1, 2), lib.H(0)]
        lowered = lower_to_standard_set(gates)
        actual = sequence_unitary(lowered, 3)
        expected = sequence_unitary(gates, 3)
        assert allclose_up_to_global_phase(actual, expected, atol=1e-8)

    def test_standard_set_contents(self):
        names = standard_set()
        assert "CNOT" in names and "SWAP" in names and "TOFFOLI" not in names


class TestRotationTimeEstimate:
    def test_proportional_to_angle(self):
        rate = 0.628
        assert rotation_gate_time_estimate(1.0, rate) == pytest.approx(1.0 / rate)

    def test_wraps_large_angles(self):
        rate = 1.0
        assert rotation_gate_time_estimate(2 * np.pi, rate) == pytest.approx(0.0)
        assert rotation_gate_time_estimate(1.5 * np.pi, rate) == pytest.approx(
            0.5 * np.pi
        )
