"""Tests for the Gate object."""

import numpy as np
import pytest

from repro.errors import GateError
from repro.gates import library as lib
from repro.gates.gate import Gate


class TestGateConstruction:
    def test_basic_properties(self):
        gate = lib.CNOT(2, 5)
        assert gate.name == "CNOT"
        assert gate.qubits == (2, 5)
        assert gate.num_qubits == 2
        assert gate.params == ()

    def test_matrix_is_readonly(self):
        gate = lib.H(0)
        with pytest.raises(ValueError):
            gate.matrix[0, 0] = 9.0

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(GateError):
            lib.CNOT(1, 1)

    def test_negative_qubits_rejected(self):
        with pytest.raises(GateError):
            lib.H(-1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GateError):
            Gate("BAD", (0, 1), np.eye(2))

    def test_non_unitary_rejected(self):
        with pytest.raises(GateError):
            Gate("BAD", (0,), np.array([[1.0, 1.0], [0.0, 1.0]]))


class TestGateIdentity:
    def test_instances_compare_by_identity(self):
        a = lib.H(0)
        b = lib.H(0)
        assert a is not b
        assert a != b  # eq=False: identity comparison

    def test_signatures_compare_by_value(self):
        assert lib.H(0).signature == lib.H(7).signature
        assert lib.RZ(0.5, 0).signature == lib.RZ(0.5, 3).signature
        assert lib.RZ(0.5, 0).signature != lib.RZ(0.6, 0).signature

    def test_signature_captures_qubit_order(self):
        # CNOT(0,1) and CNOT(1,0) differ even though both touch {0,1}.
        assert lib.CNOT(0, 1).signature != lib.CNOT(1, 0).signature
        # CNOT(2,5) has the same pattern as CNOT(0,1).
        assert lib.CNOT(2, 5).signature == lib.CNOT(0, 1).signature

    def test_gates_are_hashable(self):
        gates = {lib.H(0), lib.H(0), lib.X(1)}
        assert len(gates) == 3  # identity hashing: each instance distinct


class TestGateMethods:
    def test_on_retargets_qubits(self):
        moved = lib.CNOT(0, 1).on((3, 4))
        assert moved.qubits == (3, 4)
        assert np.allclose(moved.matrix, lib.CNOT(0, 1).matrix)

    def test_dagger_inverts(self):
        gate = lib.RX(0.7, 0)
        product = gate.matrix @ gate.dagger().matrix
        assert np.allclose(product, np.eye(2), atol=1e-12)

    def test_double_dagger_name(self):
        assert lib.T(0).dagger().name == "T_DG"
        assert lib.T(0).dagger().dagger().name == "T"

    def test_is_diagonal(self):
        assert lib.RZ(0.3, 0).is_diagonal
        assert lib.CZ(0, 1).is_diagonal
        assert lib.RZZ(0.3, 0, 1).is_diagonal
        assert not lib.CNOT(0, 1).is_diagonal
        assert not lib.H(0).is_diagonal

    def test_repr_contains_name_and_qubits(self):
        text = repr(lib.RZ(0.5, 3))
        assert "RZ" in text and "3" in text
