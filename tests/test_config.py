"""Tests for device and compiler configuration."""

import dataclasses
import math

import pytest

from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.errors import ConfigError


class TestDeviceConfig:
    def test_paper_defaults(self):
        assert DEFAULT_DEVICE.coupling_limit_ghz == pytest.approx(0.02)
        assert DEFAULT_DEVICE.drive_ratio == pytest.approx(5.0)

    def test_derived_drive_limit(self):
        assert DEFAULT_DEVICE.drive_limit_ghz == pytest.approx(0.1)

    def test_angular_rates(self):
        assert DEFAULT_DEVICE.coupling_rate == pytest.approx(
            2 * math.pi * 0.02
        )
        assert DEFAULT_DEVICE.drive_rate == pytest.approx(2 * math.pi * 0.1)

    def test_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_DEVICE.coupling_limit_ghz = 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coupling_limit_ghz": 0.0},
            {"drive_ratio": -1.0},
            {"setup_time_2q_ns": -0.1},
            {"t1_us": 0.0},
            {"t2_us": -5.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DeviceConfig(**kwargs)

    def test_custom_device(self):
        device = DeviceConfig(coupling_limit_ghz=0.05, drive_ratio=2.0)
        assert device.drive_limit_ghz == pytest.approx(0.1)


class TestCompilerConfig:
    def test_paper_defaults(self):
        assert DEFAULT_COMPILER.max_instruction_width == 10
        assert DEFAULT_COMPILER.diagonal_block_width == 2
        assert DEFAULT_COMPILER.fidelity_threshold == pytest.approx(0.999)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_instruction_width": 1},
            {"fidelity_threshold": 0.0},
            {"fidelity_threshold": 1.5},
            {"grape_dt_ns": 0.0},
            {"diagonal_block_width": 1},
            {"diagonal_block_depth": 0},
            {"max_aggregation_rounds": 0},
            {"exact_commutation_qubits": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CompilerConfig(**kwargs)

    def test_custom_width(self):
        config = CompilerConfig(max_instruction_width=4)
        assert config.max_instruction_width == 4
