"""Tests for grid topologies."""

import pytest

from repro.errors import MappingError
from repro.mapping.topology import GridTopology, LineTopology, grid_for


class TestGridTopology:
    def test_dimensions(self):
        grid = GridTopology(3, 4)
        assert grid.num_qubits == 12

    def test_invalid_dimensions(self):
        with pytest.raises(MappingError):
            GridTopology(0, 3)

    def test_coordinates_round_trip(self):
        grid = GridTopology(3, 4)
        for qubit in grid.all_qubits():
            row, col = grid.coordinates(qubit)
            assert grid.index(row, col) == qubit

    def test_out_of_range(self):
        grid = GridTopology(2, 2)
        with pytest.raises(MappingError):
            grid.coordinates(4)
        with pytest.raises(MappingError):
            grid.index(2, 0)

    def test_corner_neighbors(self):
        grid = GridTopology(3, 3)
        assert sorted(grid.neighbors(0)) == [1, 3]

    def test_center_neighbors(self):
        grid = GridTopology(3, 3)
        assert sorted(grid.neighbors(4)) == [1, 3, 5, 7]

    def test_adjacency(self):
        grid = GridTopology(2, 3)
        assert grid.are_adjacent(0, 1)
        assert grid.are_adjacent(0, 3)
        assert not grid.are_adjacent(0, 4)
        assert not grid.are_adjacent(2, 3)  # row wrap is not adjacency

    def test_distance_is_manhattan(self):
        grid = GridTopology(3, 3)
        assert grid.distance(0, 8) == 4
        assert grid.distance(4, 4) == 0

    def test_shortest_path_endpoints_and_length(self):
        grid = GridTopology(3, 3)
        path = grid.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == grid.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert grid.are_adjacent(a, b)

    def test_shortest_path_same_node(self):
        assert GridTopology(2, 2).shortest_path(1, 1) == [1]


class TestLineTopology:
    def test_is_single_row(self):
        line = LineTopology(5)
        assert line.rows == 1 and line.cols == 5
        assert sorted(line.neighbors(2)) == [1, 3]

    def test_end_neighbors(self):
        line = LineTopology(4)
        assert line.neighbors(0) == [1]
        assert line.neighbors(3) == [2]


class TestGridFor:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 17, 20, 30, 47, 60])
    def test_capacity_and_compactness(self, n):
        grid = grid_for(n)
        assert grid.num_qubits >= n
        # Near-square: aspect ratio at most ~2 for n > 2.
        if n > 2:
            assert max(grid.rows, grid.cols) <= 2 * min(grid.rows, grid.cols) + 2

    def test_perfect_square(self):
        grid = grid_for(16)
        assert (grid.rows, grid.cols) == (4, 4)

    def test_invalid(self):
        with pytest.raises(MappingError):
            grid_for(0)
