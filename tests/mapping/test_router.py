"""Tests for SWAP-insertion routing."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.errors import MappingError
from repro.gates import library as lib
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.mapping.placement import Placement, initial_placement
from repro.mapping.router import route
from repro.mapping.topology import GridTopology, LineTopology

from tests.conftest import sequence_unitary


def identity_placement(n, topology):
    return Placement({q: q for q in range(n)}, topology)


class TestRouting:
    def test_adjacent_gates_unchanged(self):
        topology = LineTopology(3)
        placement = identity_placement(3, topology)
        result = route([lib.CNOT(0, 1), lib.CNOT(1, 2)], placement)
        assert result.swap_count == 0
        assert [n.qubits for n in result.nodes] == [(0, 1), (1, 2)]

    def test_distant_pair_gets_swaps(self):
        topology = LineTopology(4)
        placement = identity_placement(4, topology)
        result = route([lib.CNOT(0, 3)], placement)
        assert result.swap_count == 2
        # Final gate acts on adjacent physical qubits.
        final_gate = result.nodes[-1]
        assert topology.are_adjacent(*final_gate.qubits)

    def test_all_multiqubit_nodes_adjacent_after_routing(self):
        topology = GridTopology(3, 3)
        circuit = Circuit(9)
        rng = np.random.default_rng(5)
        for _ in range(20):
            a, b = rng.choice(9, size=2, replace=False)
            circuit.cnot(int(a), int(b))
        placement = initial_placement(circuit, topology)
        result = route(circuit.gates, placement)
        for node in result.nodes:
            if len(node.qubits) == 2:
                assert topology.are_adjacent(*node.qubits)

    def test_placement_updates_persist(self):
        topology = LineTopology(4)
        placement = identity_placement(4, topology)
        result = route([lib.CNOT(0, 3), lib.CNOT(0, 3)], placement)
        # After the first routed CNOT the operands stay adjacent, so the
        # second needs no new SWAPs.
        assert result.swap_count == 2

    def test_input_placement_not_mutated(self):
        topology = LineTopology(4)
        placement = identity_placement(4, topology)
        route([lib.CNOT(0, 3)], placement)
        assert placement.physical(0) == 0

    def test_single_qubit_gates_follow_moves(self):
        topology = LineTopology(3)
        placement = identity_placement(3, topology)
        result = route([lib.CNOT(0, 2), lib.H(0)], placement)
        moved_h = result.nodes[-1]
        assert moved_h.name == "H"
        assert moved_h.qubits == (result.placement.physical(0),)

    def test_wide_node_rejected(self):
        topology = LineTopology(3)
        placement = identity_placement(3, topology)
        with pytest.raises(MappingError):
            route([lib.TOFFOLI(0, 1, 2)], placement)

    def test_routing_preserves_semantics_on_line(self):
        # Simulate: routed circuit + final permutation == original circuit.
        circuit = Circuit(4).h(0).cnot(0, 3).cnot(1, 2).cnot(0, 1).rz(0.7, 3)
        topology = LineTopology(4)
        placement = identity_placement(4, topology)
        result = route(circuit.gates, placement)
        routed_unitary = sequence_unitary(result.nodes, 4)
        # Undo the final logical->physical permutation with SWAP matrices.
        permutation = sequence_unitary(
            _unpermute_gates(result.placement), 4
        )
        expected = sequence_unitary(circuit.gates, 4)
        assert allclose_up_to_global_phase(
            permutation @ routed_unitary, expected, atol=1e-8
        )

    def test_grid_routing_preserves_semantics(self):
        circuit = Circuit(6).h(0).cnot(0, 5).cnot(2, 3).cnot(1, 4).cz(0, 2)
        topology = GridTopology(2, 3)
        placement = identity_placement(6, topology)
        result = route(circuit.gates, placement)
        routed_unitary = sequence_unitary(result.nodes, 6)
        permutation = sequence_unitary(_unpermute_gates(result.placement), 6)
        expected = sequence_unitary(circuit.gates, 6)
        assert allclose_up_to_global_phase(
            permutation @ routed_unitary, expected, atol=1e-8
        )


def _unpermute_gates(placement):
    """SWAP gates that map each logical qubit's final physical position
    back to its index (for semantics checks)."""
    gates = []
    current = {q: placement.physical(q) for q in placement.as_dict()}
    position_of = dict(current)
    occupant = {phys: log for log, phys in position_of.items()}
    for logical in sorted(position_of):
        target = logical
        source = position_of[logical]
        if source == target:
            continue
        gates.append(lib.SWAP(source, target))
        other = occupant.get(target)
        occupant[source] = other
        if other is not None:
            position_of[other] = source
        occupant[target] = logical
        position_of[logical] = target
    return gates
