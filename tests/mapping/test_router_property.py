"""Router property tests over every device preset family.

For any circuit routed onto any topology — grid, line, ring, heavy-hex,
all-to-all — the router must (a) only emit multi-qubit operations on
physical coupling-graph edges, and (b) preserve the gate content: the
routed stream is the original gates (retargeted) plus inserted SWAPs,
nothing more, nothing less.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.presets import device_by_key
from repro.gates.decompositions import lower_to_standard_set
from repro.mapping.placement import initial_placement
from repro.mapping.router import route
from repro.testing import random_circuit
from repro.testing.strategies import preset_key_for

ALL_FAMILIES = ("paper-grid", "line", "ring", "all-to-all", "heavy-hex")


@st.composite
def preset_keys(draw):
    """A preset key drawn from every family, heavy-hex included."""
    family = draw(st.sampled_from(ALL_FAMILIES))
    if family == "heavy-hex":
        return f"heavy-hex-{draw(st.integers(1, 2))}"
    return preset_key_for(family, draw(st.integers(2, 8)))


def _content_key(gate) -> tuple:
    """Gate identity that survives retargeting (name + rounded params)."""
    return (gate.name, tuple(round(p, 10) for p in gate.params))


class TestRouterOnEveryPresetFamily:
    @given(
        key=preset_keys(),
        width=st.integers(1, 6),
        gates=st.integers(1, 20),
        seed=st.integers(0, 2**32 - 1),
        family=st.sampled_from(("soup", "diagonal", "layered")),
    )
    @settings(max_examples=40, deadline=None)
    def test_routed_nodes_use_topology_edges_and_preserve_gates(
        self, key, width, gates, seed, family
    ):
        device = device_by_key(key)
        topology = device.topology
        width = min(width, topology.num_qubits)
        circuit = random_circuit(width, gates, seed, family)

        lowered = lower_to_standard_set(circuit.gates)
        placement = initial_placement(circuit, topology)
        routing = route(lowered, placement)

        # (a) Every multi-qubit routed node sits on a coupling edge.
        for node in routing.nodes:
            qubits = list(node.qubits)
            assert all(0 <= q < topology.num_qubits for q in qubits)
            if len(qubits) == 2:
                assert topology.are_adjacent(qubits[0], qubits[1]), (
                    f"{node} uses a non-edge of {key}"
                )

        # (b) Gate multiset preserved up to SWAP insertions.
        original = Counter(
            _content_key(g) for g in lowered if g.name != "SWAP"
        )
        routed = Counter(
            _content_key(g) for g in routing.nodes if g.name != "SWAP"
        )
        assert routed == original
        original_swaps = sum(1 for g in lowered if g.name == "SWAP")
        routed_swaps = sum(1 for g in routing.nodes if g.name == "SWAP")
        assert routed_swaps == original_swaps + routing.swap_count
        assert len(routing.nodes) == len(lowered) + routing.swap_count

        # Routing must leave a consistent bijection behind.
        final = routing.placement.as_dict()
        assert sorted(final) == list(range(width))
        assert len(set(final.values())) == width
