"""Tests for balanced min-cut bisection."""

import networkx as nx
import pytest

from repro.errors import MappingError
from repro.mapping.partition import balanced_min_cut_bisection, cut_weight


def _two_cliques(size=4, bridge_weight=0.5):
    graph = nx.Graph()
    for base in (0, size):
        for i in range(base, base + size):
            for j in range(i + 1, base + size):
                graph.add_edge(i, j, weight=10.0)
    graph.add_edge(0, size, weight=bridge_weight)
    return graph


class TestBisection:
    def test_separates_two_cliques(self):
        graph = _two_cliques()
        part_a, part_b = balanced_min_cut_bisection(graph, range(8), 4, 4)
        assert {frozenset(part_a), frozenset(part_b)} == {
            frozenset(range(4)),
            frozenset(range(4, 8)),
        }

    def test_cut_weight_of_clique_split(self):
        graph = _two_cliques()
        part_a, part_b = balanced_min_cut_bisection(graph, range(8), 4, 4)
        assert cut_weight(graph, part_a, part_b) == pytest.approx(0.5)

    def test_unequal_sizes(self):
        graph = _two_cliques()
        part_a, part_b = balanced_min_cut_bisection(graph, range(8), 3, 5)
        assert len(part_a) == 3 and len(part_b) == 5
        assert set(part_a) | set(part_b) == set(range(8))

    def test_size_validation(self):
        graph = nx.path_graph(4)
        with pytest.raises(MappingError):
            balanced_min_cut_bisection(graph, range(4), 1, 2)

    def test_zero_size_part(self):
        graph = nx.path_graph(3)
        part_a, part_b = balanced_min_cut_bisection(graph, range(3), 0, 3)
        assert part_a == [] and len(part_b) == 3

    def test_path_graph_contiguous_split(self):
        graph = nx.path_graph(8)
        nx.set_edge_attributes(graph, 1.0, "weight")
        part_a, part_b = balanced_min_cut_bisection(graph, range(8), 4, 4)
        assert cut_weight(graph, part_a, part_b) == pytest.approx(1.0)

    def test_isolated_vertices_handled(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(6))
        graph.add_edge(0, 1, weight=3.0)
        part_a, part_b = balanced_min_cut_bisection(graph, range(6), 3, 3)
        assert len(part_a) == 3 and len(part_b) == 3
        # The connected pair should stay together.
        same_side = (0 in part_a) == (1 in part_a)
        assert same_side

    def test_deterministic(self):
        graph = _two_cliques()
        first = balanced_min_cut_bisection(graph, range(8), 4, 4)
        second = balanced_min_cut_bisection(graph, range(8), 4, 4)
        assert first == second

    def test_random_graph_respects_sizes(self):
        graph = nx.gnm_random_graph(12, 30, seed=3)
        nx.set_edge_attributes(graph, 1.0, "weight")
        part_a, part_b = balanced_min_cut_bisection(graph, range(12), 5, 7)
        assert len(part_a) == 5 and len(part_b) == 7
