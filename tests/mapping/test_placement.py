"""Tests for initial placement."""

import networkx as nx
import pytest

from repro.circuit.circuit import Circuit
from repro.errors import MappingError
from repro.mapping.placement import (
    Placement,
    initial_placement,
    interaction_graph_of,
)
from repro.mapping.topology import GridTopology, LineTopology


class TestPlacementObject:
    def test_bijection(self):
        placement = Placement({0: 2, 1: 0}, LineTopology(3))
        assert placement.physical(0) == 2
        assert placement.logical(2) == 0
        assert placement.logical(1) is None

    def test_non_injective_rejected(self):
        with pytest.raises(MappingError):
            Placement({0: 1, 1: 1}, LineTopology(3))

    def test_unplaced_lookup(self):
        placement = Placement({0: 0}, LineTopology(2))
        with pytest.raises(MappingError):
            placement.physical(5)

    def test_swap_physical_occupied_cells(self):
        placement = Placement({0: 0, 1: 1}, LineTopology(2))
        placement.swap_physical(0, 1)
        assert placement.physical(0) == 1
        assert placement.physical(1) == 0

    def test_swap_physical_with_empty_cell(self):
        placement = Placement({0: 0}, LineTopology(3))
        placement.swap_physical(0, 1)
        assert placement.physical(0) == 1
        assert placement.logical(0) is None

    def test_copy_is_independent(self):
        placement = Placement({0: 0, 1: 1}, LineTopology(2))
        clone = placement.copy()
        clone.swap_physical(0, 1)
        assert placement.physical(0) == 0

    def test_average_distance(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        placement = Placement({0: 0, 1: 2}, LineTopology(3))
        assert placement.average_distance(graph) == pytest.approx(2.0)


class TestInteractionGraph:
    def test_weights_count_interactions(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 1).cnot(1, 2)
        graph = interaction_graph_of(circuit)
        assert graph[0][1]["weight"] == 2.0
        assert graph[1][2]["weight"] == 1.0

    def test_all_qubits_present(self):
        circuit = Circuit(5).cnot(0, 1)
        assert set(interaction_graph_of(circuit).nodes) == set(range(5))


class TestInitialPlacement:
    def test_all_logical_qubits_placed_distinctly(self):
        circuit = Circuit(6)
        for i in range(5):
            circuit.cnot(i, i + 1)
        placement = initial_placement(circuit)
        physical = [placement.physical(q) for q in range(6)]
        assert len(set(physical)) == 6

    def test_chain_neighbors_stay_close(self):
        # A 1-D interaction chain placed on a grid: adjacent logical
        # qubits should be much closer than random placement.
        circuit = Circuit(16)
        for i in range(15):
            for _ in range(3):
                circuit.cnot(i, i + 1)
        placement = initial_placement(circuit)
        graph = interaction_graph_of(circuit)
        assert placement.average_distance(graph) <= 2.0

    def test_two_cliques_land_in_separate_regions(self):
        circuit = Circuit(8)
        for base in (0, 4):
            for i in range(base, base + 4):
                for j in range(i + 1, base + 4):
                    circuit.cz(i, j)
        circuit.cnot(0, 4)
        placement = initial_placement(circuit)
        topology = placement.topology
        # Compute the spread of each clique: cliques should be compact.
        for base in (0, 4):
            cells = [placement.physical(q) for q in range(base, base + 4)]
            spread = max(
                topology.distance(a, b) for a in cells for b in cells
            )
            assert spread <= 2

    def test_custom_topology_capacity_check(self):
        circuit = Circuit(5)
        with pytest.raises(MappingError):
            initial_placement(circuit, GridTopology(2, 2))

    def test_line_topology_placement(self):
        circuit = Circuit(4).cnot(0, 1).cnot(2, 3)
        placement = initial_placement(circuit, LineTopology(4))
        assert len({placement.physical(q) for q in range(4)}) == 4

    def test_deterministic(self):
        circuit = Circuit(9)
        for i in range(8):
            circuit.cnot(i, (i + 3) % 9)
        first = initial_placement(circuit).as_dict()
        second = initial_placement(circuit).as_dict()
        assert first == second
