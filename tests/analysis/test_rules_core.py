"""Tests for the rule framework: registry, reports, severities."""

import pytest

import repro.analysis  # noqa: F401  (registers every rule pack)
from repro.analysis.core import (
    AnalysisReport,
    Rule,
    Severity,
    Violation,
    all_rules,
    register_rule,
    rule_by_id,
    rules_for,
    run_rules,
)
from repro.errors import AnalysisError


class TestRegistry:
    def test_rule_ids_unique_and_stable_format(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        assert all(i.startswith("REP") and i[3:].isdigit() for i in ids)

    def test_documented_rule_families_present(self):
        ids = {r.rule_id for r in all_rules()}
        # One representative per pack: circuit, dag, routing,
        # aggregation, transition, schedule, result, pipeline.
        for expected in (
            "REP101", "REP111", "REP121", "REP131",
            "REP133", "REP141", "REP151", "REP201",
        ):
            assert expected in ids

    def test_duplicate_id_rejected(self):
        existing = all_rules()[0]
        clone = Rule(
            rule_id=existing.rule_id,
            kind="circuit",
            severity=Severity.ERROR,
            title="duplicate",
            check=lambda subject, options: (),
        )
        with pytest.raises(AnalysisError):
            register_rule(clone)

    def test_rule_by_id_unknown(self):
        with pytest.raises(AnalysisError):
            rule_by_id("REP999")

    def test_rules_for_kind_sorted(self):
        circuit_rules = rules_for("circuit")
        assert circuit_rules
        assert all(r.kind == "circuit" for r in circuit_rules)
        assert [r.rule_id for r in circuit_rules] == sorted(
            r.rule_id for r in circuit_rules
        )


class TestReport:
    def _violation(self, severity):
        return Violation(
            rule_id="REP101", severity=severity, message="m"
        )

    def test_truthiness_ignores_warnings(self):
        report = AnalysisReport(subject="s")
        assert report.ok and bool(report)
        report.violations.append(self._violation(Severity.WARNING))
        report.violations.append(self._violation(Severity.INFO))
        assert report.ok
        report.violations.append(self._violation(Severity.ERROR))
        assert not report.ok and not bool(report)

    def test_extend_merges_checked_rules(self):
        first = AnalysisReport(subject="a", checked_rules=("REP101",))
        second = AnalysisReport(subject="b", checked_rules=("REP102",))
        second.violations.append(self._violation(Severity.ERROR))
        first.extend(second)
        assert first.checked_rules == ("REP101", "REP102")
        assert len(first.violations) == 1

    def test_summary_mentions_fired_rule(self):
        report = AnalysisReport(subject="thing")
        report.violations.append(self._violation(Severity.ERROR))
        assert "REP101" in report.summary()
        assert "thing" in report.summary()

    def test_run_rules_records_coverage(self):
        report = run_rules("circuit", [], "empty", {"num_qubits": 1})
        assert report.ok
        assert set(report.checked_rules) >= {"REP101", "REP102", "REP103"}
