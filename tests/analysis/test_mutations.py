"""Seeded-mutation suite: corrupt each IR kind, assert the right rule.

Every test builds a *clean* artifact, verifies analysis accepts it,
applies one targeted corruption (often through the same internal
surfaces a buggy pass would touch), and asserts the matching rule ID —
and only a sensible set of rules — fires.
"""

import numpy as np
import pytest

from repro.aggregation.instruction import AggregatedInstruction
from repro.analysis import (
    analyze_aggregation,
    analyze_dag,
    analyze_nodes,
    analyze_result,
    analyze_routing,
    analyze_schedule,
)
from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.compiler.result import CompilationResult
from repro.device import device_by_key
from repro.gates import library as lib
from repro.ir.timed import TimedInstruction
from repro.scheduling.schedule import Schedule


def build_dag(gates, num_qubits):
    checker = CommutationChecker()
    return GateDependenceGraph(num_qubits, gates, checker.commute)


# ----------------------------------------------------------------------
# Circuit rules (REP10x)


class TestCircuitMutations:
    def test_clean_nodes_pass(self):
        report = analyze_nodes([lib.H(0), lib.CNOT(0, 1)], 2)
        assert report.ok and not report.violations

    def test_out_of_range_qubit_fires_rep101(self):
        report = analyze_nodes([lib.H(0), lib.CNOT(0, 5)], 2)
        assert not report.ok
        assert report.fired_rule_ids() == ("REP101",)

    def test_nan_parameter_fires_rep102(self):
        gate = lib.RZ(0.5, 0)
        object.__setattr__(gate, "params", (float("nan"),))
        report = analyze_nodes([gate], 1)
        assert "REP102" in report.fired_rule_ids()

    def test_non_unitary_matrix_fires_rep103(self):
        gate = lib.H(0)
        broken = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=complex)
        object.__setattr__(gate, "matrix", broken)
        report = analyze_nodes([gate], 1)
        assert "REP103" in report.fired_rule_ids()

    def test_wrong_matrix_shape_fires_rep103(self):
        gate = lib.CNOT(0, 1)
        object.__setattr__(gate, "matrix", np.eye(2, dtype=complex))
        report = analyze_nodes([gate], 2)
        assert "REP103" in report.fired_rule_ids()


# ----------------------------------------------------------------------
# DAG rules (REP11x)


class TestDagMutations:
    def test_clean_dag_passes(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.3, 1)
        dag = build_dag(circuit.gates, 2)
        assert analyze_dag(dag).ok

    def test_inconsistent_chain_order_fires_rep111(self):
        # Two qubit chains ordering the same node pair oppositely is a
        # dependence cycle — exactly what an unsound splice produces.
        a, b = lib.CNOT(0, 1), lib.CNOT(1, 0)
        dag = build_dag([a, b], 2)
        dag._qubit_order[1] = [b, a]
        dag._relink(1)
        report = analyze_dag(dag)
        assert "REP111" in report.fired_rule_ids()

    def test_stale_commutation_groups_fire_rep112(self):
        h, rz = lib.H(0), lib.RZ(0.4, 0)
        dag = build_dag([h, rz], 1)
        dag.commutation_groups(0)  # populate the cache, clear dirty
        assert 0 not in dag._groups_dirty
        # A buggy pass merges the groups without marking the qubit
        # dirty; H and RZ do not commute, so the cache now lies.
        dag._groups[0] = [[h, rz]]
        dag._group_of[0] = {id(h): 0, id(rz): 0}
        report = analyze_dag(dag)
        assert "REP112" in report.fired_rule_ids()

    def test_dropped_chain_entry_fires_rep113(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        dag = build_dag(circuit.gates, 2)
        dag._qubit_order[0] = dag._qubit_order[0][:-1]
        dag._relink(0)
        report = analyze_dag(dag)
        assert "REP113" in report.fired_rule_ids()


# ----------------------------------------------------------------------
# Routing rules (REP12x)


class TestRoutingMutations:
    def topology(self):
        return device_by_key("line-3").topology

    def test_clean_routed_nodes_pass(self):
        nodes = [lib.CNOT(0, 1), lib.SWAP(1, 2), lib.H(2)]
        assert analyze_routing(nodes, self.topology()).ok

    def test_uncoupled_operation_fires_rep121(self):
        report = analyze_routing([lib.CNOT(0, 2)], self.topology())
        assert report.fired_rule_ids() == ("REP121",)

    def test_uncoupled_swap_fires_rep122(self):
        report = analyze_routing([lib.SWAP(0, 2)], self.topology())
        assert report.fired_rule_ids() == ("REP122",)

    def test_off_device_qubit_fires_rep123(self):
        report = analyze_routing([lib.H(7)], self.topology())
        assert report.fired_rule_ids() == ("REP123",)

    def test_disconnected_block_fires_rep121(self):
        block = AggregatedInstruction([lib.RZ(0.1, 0), lib.RZ(0.2, 2)])
        report = analyze_routing([block], self.topology())
        assert "REP121" in report.fired_rule_ids()


# ----------------------------------------------------------------------
# Aggregation rules (REP13x)


class TestAggregationMutations:
    def test_clean_block_passes(self):
        block = AggregatedInstruction([lib.CNOT(0, 1), lib.RZ(0.3, 1)])
        assert analyze_aggregation([block], width_limit=2).ok

    def test_overwide_block_fires_rep131(self):
        block = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.CNOT(1, 2), lib.CNOT(2, 3)]
        )
        report = analyze_aggregation([block], width_limit=2)
        assert "REP131" in report.fired_rule_ids()

    def test_width_limit_none_disables_rep131(self):
        block = AggregatedInstruction(
            [lib.CNOT(0, 1), lib.CNOT(1, 2), lib.CNOT(2, 3)]
        )
        assert analyze_aggregation([block], width_limit=None).ok

    def test_false_diagonality_claim_fires_rep132(self):
        block = AggregatedInstruction([lib.H(0)])
        # Poison the memoized diagonality the schedulers trust.
        block.__dict__["is_diagonal"] = True
        report = analyze_aggregation([block])
        assert "REP132" in report.fired_rule_ids()


# ----------------------------------------------------------------------
# Schedule rules (REP14x)


class TestScheduleMutations:
    def clean_schedule(self):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 10.0)
        schedule.add(lib.CNOT(0, 1), 10.0, 40.0)
        return schedule

    def test_clean_schedule_passes(self):
        assert analyze_schedule(self.clean_schedule()).ok

    def test_same_qubit_overlap_fires_rep141(self):
        schedule = Schedule(1)
        schedule.add(lib.H(0), 0.0, 10.0)
        schedule.add(lib.RZ(0.2, 0), 5.0, 10.0)
        report = analyze_schedule(schedule)
        assert "REP141" in report.fired_rule_ids()

    def test_noncommuting_dependence_break_fires_rep142(self):
        h, rz = lib.H(0), lib.RZ(0.4, 0)
        dag = build_dag([h, rz], 1)
        schedule = Schedule(1)
        schedule.add(rz, 0.0, 10.0)  # chain says H first; they don't commute
        schedule.add(h, 10.0, 10.0)
        report = analyze_schedule(schedule, dag=dag)
        assert "REP142" in report.fired_rule_ids()

    def test_commuting_reorder_is_legal_for_rep142(self):
        # CLS may flip commuting ops without touching the DAG's chains.
        rz1, rz2 = lib.RZ(0.1, 0), lib.RZ(0.2, 0)
        dag = build_dag([rz1, rz2], 1)
        schedule = Schedule(1)
        schedule.add(rz2, 0.0, 10.0)
        schedule.add(rz1, 10.0, 10.0)
        assert analyze_schedule(schedule, dag=dag).ok

    def test_duplicate_node_id_fires_rep143(self):
        schedule = self.clean_schedule()
        schedule.operations.append(
            TimedInstruction(lib.RZ(0.1, 1), 50.0, 5.0, node_id=0)
        )
        report = analyze_schedule(schedule)
        assert "REP143" in report.fired_rule_ids()

    def test_negative_start_fires_rep144(self):
        schedule = Schedule(1)
        schedule.operations.append(
            TimedInstruction(lib.H(0), -5.0, 5.0, node_id=0)
        )
        report = analyze_schedule(schedule)
        assert "REP144" in report.fired_rule_ids()

    def test_off_register_qubit_fires_rep145(self):
        schedule = Schedule(1)
        schedule.operations.append(
            TimedInstruction(lib.H(3), 0.0, 5.0, node_id=0)
        )
        report = analyze_schedule(schedule)
        assert "REP145" in report.fired_rule_ids()


# ----------------------------------------------------------------------
# Result rules (REP15x)


class TestResultMutations:
    def clean_result(self, **overrides):
        schedule = Schedule(2)
        schedule.add(lib.H(0), 0.0, 10.0)
        schedule.add(lib.CNOT(0, 1), 10.0, 40.0)
        fields = dict(
            strategy_key="isa",
            circuit_name="probe",
            logical_qubits=2,
            physical_qubits=2,
            schedule=schedule,
            latency_ns=schedule.makespan,
            swap_count=0,
            lowered_gate_count=2,
            aggregation_merges=0,
            stage_seconds={},
            initial_mapping={0: 0, 1: 1},
            final_mapping={0: 0, 1: 1},
        )
        fields.update(overrides)
        return CompilationResult(**fields)

    def test_clean_result_passes(self):
        report = analyze_result(self.clean_result())
        assert report.ok
        # No device name: the routing coverage gap is noted, not erred.
        assert report.by_rule("REP120")

    def test_latency_mismatch_fires_rep151(self):
        report = analyze_result(self.clean_result(latency_ns=1.0))
        assert "REP151" in report.fired_rule_ids()

    def test_off_device_mapping_fires_rep152(self):
        report = analyze_result(
            self.clean_result(final_mapping={0: 99, 1: 1})
        )
        assert "REP152" in report.fired_rule_ids()

    def test_colliding_mapping_fires_rep152(self):
        report = analyze_result(
            self.clean_result(final_mapping={0: 1, 1: 1})
        )
        assert "REP152" in report.fired_rule_ids()

    def test_too_narrow_device_fires_rep153(self):
        report = analyze_result(self.clean_result(physical_qubits=1))
        assert "REP153" in report.fired_rule_ids()

    def test_resolvable_device_checks_routing(self):
        result = self.clean_result(device_name="line-2")
        report = analyze_result(result)
        assert report.ok
        assert not report.by_rule("REP120")
        assert "REP121" in report.checked_rules

    def test_mutation_suite_covers_ten_distinct_rules(self):
        # The acceptance floor: this module corrupts its way through at
        # least ten distinct rule IDs.  Counted from the class-level
        # assertions above rather than re-run here.
        covered = {
            "REP101", "REP102", "REP103", "REP111", "REP112", "REP113",
            "REP121", "REP122", "REP123", "REP131", "REP132", "REP141",
            "REP142", "REP143", "REP144", "REP145", "REP151", "REP152",
            "REP153",
        }
        assert len(covered) >= 10


@pytest.mark.parametrize("key", ["line-3", "ring-4"])
def test_presets_resolve_for_routing_rules(key):
    topology = device_by_key(key).topology
    assert analyze_routing([lib.H(0)], topology).ok
