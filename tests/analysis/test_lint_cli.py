"""The ``python -m repro.analysis`` CLI: artifacts, QASM, pipelines."""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.lint import lint_path
from repro.circuit.circuit import Circuit
from repro.compiler.pipeline import compile_circuit
from repro.errors import AnalysisError


@pytest.fixture
def artifact(tmp_path):
    circuit = Circuit(2, name="lint-probe").h(0).cnot(0, 1).rz(0.4, 1)
    result = compile_circuit(circuit, "isa")
    path = tmp_path / "result.json"
    result.save(path)
    return str(path)


class TestLintPath:
    def test_result_artifact_lints_clean(self, artifact):
        report = lint_path(artifact)
        assert report.ok
        assert artifact in report.subject

    def test_qasm_file_lints_clean(self, tmp_path):
        path = tmp_path / "probe.qasm"
        path.write_text("qubits 2\nh q0\ncnot q0, q1\n")
        assert lint_path(str(path)).ok

    def test_unknown_extension_raises(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello")
        with pytest.raises(AnalysisError):
            lint_path(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            lint_path(str(tmp_path / "absent.json"))

    def test_garbage_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        with pytest.raises(AnalysisError):
            lint_path(str(path))


class TestCli:
    def test_clean_artifact_exits_zero(self, artifact, capsys):
        assert main([artifact]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_artifact_exits_one(self, artifact, capsys):
        payload = json.loads(open(artifact).read())
        payload["latency_ns"] = 1.0
        with open(artifact, "w") as handle:
            json.dump(payload, handle)
        assert main([artifact]) == 1
        assert "REP151" in capsys.readouterr().out

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        assert main([str(path)]) == 2
        assert "analysis failed" in capsys.readouterr().err

    def test_rules_table_lists_documented_ids(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP121", "REP141", "REP201"):
            assert rule_id in out

    def test_pipelines_all_registered_strategies_clean(self, capsys):
        assert main(["--pipelines"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_pipelines_single_strategy(self, capsys):
        assert main(["--pipelines", "--strategy", "isa"]) == 0

    def test_pipelines_unknown_strategy_exits_two(self, capsys):
        assert main(["--pipelines", "--strategy", "no-such"]) == 2

    def test_no_arguments_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_mixed_paths_and_pipelines(self, artifact):
        assert main([artifact, "--pipelines"]) == 0
