"""Property tests: clean compiles never trip the verifier or the rules.

The mutation suite proves the rules *can* fire; these prove they don't
fire spuriously — any seeded circuit, compiled by any strategy, yields
zero violations under both the between-pass verifier and the
post-hoc result analysis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_circuit, analyze_pipeline, analyze_result
from repro.circuit.circuit import Circuit
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import all_strategies
from repro.testing.generators import CIRCUIT_FAMILIES, random_circuit

STRATEGY_KEYS = [s.key for s in all_strategies()]

circuits = st.builds(
    random_circuit,
    num_qubits=st.integers(min_value=2, max_value=4),
    num_gates=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    family=st.sampled_from(CIRCUIT_FAMILIES),
)


@given(circuit=circuits)
@settings(max_examples=20, deadline=None)
def test_generated_circuits_lint_clean(circuit: Circuit):
    report = analyze_circuit(circuit)
    assert report.ok, report.summary()


@given(circuit=circuits, key=st.sampled_from(STRATEGY_KEYS))
@settings(max_examples=15, deadline=None)
def test_clean_compiles_produce_zero_violations(circuit: Circuit, key: str):
    # verify_ir=True checks every pass transition as it happens; the
    # post-hoc analysis re-checks the final artifact independently.
    result = compile_circuit(circuit, key, verify_ir=True)
    report = analyze_result(result)
    assert report.ok, report.summary()
    assert not report.violations or all(
        v.rule_id == "REP120" for v in report.violations
    )


@given(key=st.sampled_from(STRATEGY_KEYS))
@settings(max_examples=len(STRATEGY_KEYS), deadline=None)
def test_strategy_pipelines_always_analyze_clean(key: str):
    from repro.compiler.strategies import strategy_by_key

    strategy = strategy_by_key(key)
    report = analyze_pipeline(strategy.pipeline(), strategy_key=key)
    assert report.ok, report.summary()
