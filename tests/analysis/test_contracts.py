"""Pipeline contract analysis: static rejection, registration, runtime."""

import pytest

from repro.analysis import analyze_pipeline, check_pipeline, producers_of
from repro.analysis.contracts import INITIAL_FIELDS, missing_field_hint
from repro.circuit.circuit import Circuit
from repro.compiler.manager import PassManager
from repro.compiler.passes import (
    AggregatePass,
    DetectDiagonalsPass,
    FinalSchedulePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
)
from repro.compiler.pipeline import compile_with_pipeline
from repro.compiler.strategies import (
    Strategy,
    all_strategies,
    register_strategy,
    strategy_by_key,
    unregister_strategy,
)
from repro.errors import ConfigError, PassOrderingError


def good_pipeline():
    return [
        LowerPass(),
        LogicalSchedulePass(use_cls=False),
        PlaceAndRoutePass(),
        FinalSchedulePass(use_cls=False),
    ]


class TestStaticAnalysis:
    def test_good_pipeline_accepted(self):
        report = analyze_pipeline(good_pipeline())
        assert report.ok and not report.violations

    def test_every_builtin_strategy_pipeline_is_clean(self):
        for strategy in all_strategies():
            report = analyze_pipeline(
                strategy.pipeline(), strategy_key=strategy.key
            )
            assert report.ok, report.summary()

    def test_misordered_pipeline_rejected_without_compiling(self):
        # The ISSUE's canonical example: aggregation before routing.
        report = analyze_pipeline(
            [
                LowerPass(),
                AggregatePass(),
                PlaceAndRoutePass(),
                FinalSchedulePass(),
            ]
        )
        assert not report.ok
        assert "REP201" in report.fired_rule_ids()
        [first, *_] = report.by_rule("REP201")
        assert "AggregatePass" in first.message
        assert "physical_nodes" in first.message
        # The message teaches the fix: it names a producing pass.
        assert "PlaceAndRoutePass" in first.message
        assert "position 1" in first.location

    def test_missing_lowering_rejected(self):
        report = analyze_pipeline([DetectDiagonalsPass()], require_result=False)
        assert "REP201" in report.fired_rule_ids()

    def test_incomplete_pipeline_fires_rep202(self):
        report = analyze_pipeline([LowerPass(), PlaceAndRoutePass()])
        assert "REP202" in report.fired_rule_ids()

    def test_require_result_false_accepts_prefix(self):
        report = analyze_pipeline(
            [LowerPass(), PlaceAndRoutePass()], require_result=False
        )
        assert report.ok

    def test_non_pass_entry_fires_rep203(self):
        report = analyze_pipeline([LowerPass(), "not a pass"])
        assert "REP203" in report.fired_rule_ids()

    def test_check_pipeline_raises_pass_ordering_error(self):
        with pytest.raises(PassOrderingError) as excinfo:
            check_pipeline([FinalSchedulePass()])
        assert "physical_nodes" in str(excinfo.value)

    def test_producers_metadata(self):
        assert "FinalSchedulePass" in producers_of("schedule")
        assert producers_of("no_such_field") == ()
        assert "nodes" not in INITIAL_FIELDS
        assert "circuit" in INITIAL_FIELDS

    def test_missing_field_hint_shapes(self):
        assert "LowerPass" in missing_field_hint("nodes")
        assert "initial context field" in missing_field_hint("circuit")
        assert "no known pass" in missing_field_hint("nonexistent")


class TestRegistrationTimeChecking:
    def test_misordered_custom_strategy_rejected_loudly(self):
        strategy = Strategy(
            key="test-misordered",
            description="aggregates before routing",
            commutativity_detection=False,
            cls_scheduling=False,
            aggregation=True,
            hand_optimization=False,
        )

        def backwards(strategy):
            return [
                LowerPass(),
                AggregatePass(),
                PlaceAndRoutePass(),
                FinalSchedulePass(),
            ]

        with pytest.raises(PassOrderingError) as excinfo:
            register_strategy(strategy, pipeline_factory=backwards)
        assert "AggregatePass" in str(excinfo.value)
        # The rejected strategy must not have been registered.
        with pytest.raises(ConfigError):
            strategy_by_key("test-misordered")

    def test_well_ordered_custom_strategy_registers(self):
        strategy = Strategy(
            key="test-ordered",
            description="plain custom flow",
            commutativity_detection=False,
            cls_scheduling=False,
            aggregation=False,
            hand_optimization=False,
        )
        try:
            register_strategy(strategy)
            assert strategy_by_key("test-ordered") is strategy
        finally:
            unregister_strategy("test-ordered")


class TestRuntimeMessages:
    def test_require_error_names_position_and_producers(self):
        with pytest.raises(PassOrderingError) as excinfo:
            compile_with_pipeline(
                Circuit(2, name="probe").h(0).cnot(0, 1),
                [FinalSchedulePass(use_cls=False)],
            )
        message = str(excinfo.value)
        assert "FinalSchedulePass" in message
        assert "pipeline position 0" in message
        assert "physical_nodes" in message
        # Shares the static analyzer's metadata: names a producer.
        assert "PlaceAndRoutePass" in message
        assert "probe" in message

    def test_pass_index_cleared_after_run(self):
        class Probe(Pass):
            requires = ("nodes",)
            produces = ()

            def run(self, context):
                assert context.current_pass_index == 1

        circuit = Circuit(1).h(0)
        manager = PassManager(
            [
                LowerPass(),
                Probe(),
                LogicalSchedulePass(use_cls=False),
                PlaceAndRoutePass(),
                FinalSchedulePass(use_cls=False),
            ]
        )
        from repro.compiler.context import CompilationContext

        context = CompilationContext.create(circuit, strategy_key="probe")
        manager.run(context)
        assert context.current_pass_index is None
        assert context.schedule is not None
