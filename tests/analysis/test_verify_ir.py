"""The between-pass IR verifier: clean runs, corrupt passes, VerifierPass."""

import pytest

from repro.analysis import PipelineVerifier, VerifierPass, analyze_result
from repro.circuit.circuit import Circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.passes import (
    FinalSchedulePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
)
from repro.compiler.pipeline import compile_circuit, compile_with_pipeline
from repro.compiler.strategies import all_strategies
from repro.errors import IRVerificationError
from repro.testing.differential import differential_compile


def probe_circuit():
    return (
        Circuit(3, name="verify-probe")
        .h(0)
        .cnot(0, 1)
        .rz(0.7, 1)
        .cnot(1, 2)
        .rzz(0.3, 0, 2)
    )


class EvilReversePass(Pass):
    """Claims to preserve gates but reverses the program."""

    requires = ("nodes",)
    produces = ("nodes",)
    preserves_gates = True

    def run(self, context):
        context.nodes = list(reversed(context.nodes))


class EvilDropPass(Pass):
    """Claims to preserve gates but silently drops the last one."""

    requires = ("nodes",)
    produces = ("nodes",)
    preserves_gates = True

    def run(self, context):
        context.nodes = context.nodes[:-1]


def evil_pipeline(evil):
    return [
        LowerPass(),
        evil,
        LogicalSchedulePass(use_cls=False),
        PlaceAndRoutePass(),
        FinalSchedulePass(use_cls=False),
    ]


class TestVerifyIrMode:
    @pytest.mark.parametrize(
        "key", [s.key for s in all_strategies()]
    )
    def test_clean_compile_passes_under_verification(self, key):
        result = compile_circuit(probe_circuit(), key, verify_ir=True)
        assert result.latency_ns > 0
        assert analyze_result(result).ok

    def test_illegal_reorder_attributed_to_pass(self):
        with pytest.raises(IRVerificationError) as excinfo:
            compile_with_pipeline(
                probe_circuit(), evil_pipeline(EvilReversePass()),
                verify_ir=True,
            )
        error = excinfo.value
        assert error.pass_name == "EvilReversePass"
        assert error.pass_index == 1
        assert "REP133" in error.rule_ids
        assert "EvilReversePass" in str(error)

    def test_dropped_gate_attributed_to_pass(self):
        with pytest.raises(IRVerificationError) as excinfo:
            compile_with_pipeline(
                probe_circuit(), evil_pipeline(EvilDropPass()),
                verify_ir=True,
            )
        error = excinfo.value
        assert error.pass_name == "EvilDropPass"
        assert "REP134" in error.rule_ids
        assert "dropped" in str(error)

    def test_verification_off_by_default(self):
        # Without verify_ir the corrupt pipeline runs to completion —
        # producing a wrong result only end-to-end equivalence would
        # catch.  (That asymmetry is the point of the debug mode.)
        result = compile_with_pipeline(
            probe_circuit(), evil_pipeline(EvilDropPass())
        )
        assert not result.verify_equivalence(probe_circuit())

    def test_collecting_verifier_records_reports(self):
        verifier = PipelineVerifier(raise_on_error=False)
        passes = evil_pipeline(EvilDropPass())
        from repro.compiler.context import CompilationContext

        context = CompilationContext.create(
            probe_circuit(), strategy_key="custom"
        )
        for index, pass_ in enumerate(passes):
            context.current_pass_index = index
            verifier.before_pass(pass_, index, context)
            pass_.run(context)
            verifier.after_pass(pass_, index, context)
        assert len(verifier.reports) == len(passes)
        fired = {v.rule_id for v in verifier.violations()}
        assert "REP134" in fired


class TestVerifierPass:
    def test_explicit_verifier_pass_in_clean_pipeline(self):
        result = compile_with_pipeline(
            probe_circuit(),
            [
                LowerPass(),
                VerifierPass(),
                LogicalSchedulePass(use_cls=False),
                PlaceAndRoutePass(),
                VerifierPass(),
                FinalSchedulePass(use_cls=False),
                VerifierPass(),
            ],
        )
        assert result.latency_ns > 0

    def test_verifier_pass_contract_is_neutral(self):
        assert VerifierPass().requires == ()
        assert VerifierPass().produces == ()
        assert VerifierPass().preserves_gates

    def test_verifier_pass_catches_prior_corruption(self):
        with pytest.raises(IRVerificationError):
            compile_with_pipeline(
                probe_circuit(),
                [
                    LowerPass(),
                    LogicalSchedulePass(use_cls=False),
                    PlaceAndRoutePass(),
                    CorruptRoutingPass(),
                    VerifierPass(),
                    FinalSchedulePass(use_cls=False),
                ],
            )


class CorruptRoutingPass(Pass):
    """Teleports a two-qubit op onto uncoupled qubits."""

    requires = ("physical_nodes",)
    produces = ("physical_nodes",)

    def run(self, context):
        from repro.gates import library as lib

        width = context.topology.num_qubits
        far = lib.CNOT(0, width - 1)
        if not context.topology.are_adjacent(0, width - 1):
            context.physical_nodes = [*context.physical_nodes, far]


class TestBatchAndDifferential:
    def test_batch_compiler_verifies_every_job(self):
        engine = BatchCompiler(verify_ir=True)
        report = engine.compile_batch(
            [
                BatchJob(circuit=probe_circuit(), strategy="isa"),
                BatchJob(circuit=probe_circuit(), strategy="cls"),
            ]
        )
        assert all(r.latency_ns > 0 for r in report.results)

    def test_differential_compile_reports_verifier_failure(self):
        # differential_compile can't inject a corrupt pass, but the
        # verify_ir flag must thread through without disturbing clean
        # strategy x device cells.
        report = differential_compile(
            probe_circuit(),
            strategies=["isa", "cls+aggregation"],
            devices=["line-3"],
            verify_ir=True,
        )
        assert report.ok
