"""Shared fixtures, helpers and the test-tier option.

Tier-1 is the default ``pytest -x -q`` run: fast, every push.  Tests
tagged ``@pytest.mark.slow`` (long GRAPE optimizations, fuzz sessions)
form tier-2 and are skipped unless ``--runslow`` is given; CI runs them
in a separate job so coverage is never lost, only re-scheduled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.embed import embed_operator


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow (tier-2)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow tier-2 test; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded random generator for reproducible tests."""
    return np.random.default_rng(20190413)  # ASPLOS'19 dates


def sequence_unitary(gates, num_qubits: int) -> np.ndarray:
    """Total unitary of a gate sequence on ``num_qubits`` qubits."""
    total = np.eye(2**num_qubits, dtype=complex)
    for gate in gates:
        total = embed_operator(gate.matrix, gate.qubits, num_qubits) @ total
    return total
