"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.embed import embed_operator


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded random generator for reproducible tests."""
    return np.random.default_rng(20190413)  # ASPLOS'19 dates


def sequence_unitary(gates, num_qubits: int) -> np.ndarray:
    """Total unitary of a gate sequence on ``num_qubits`` qubits."""
    total = np.eye(2**num_qubits, dtype=complex)
    for gate in gates:
        total = embed_operator(gate.matrix, gate.qubits, num_qubits) @ total
    return total
