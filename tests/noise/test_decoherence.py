"""Tests for the decoherence model."""

import math

import pytest

from repro.config import DeviceConfig
from repro.errors import ConfigError
from repro.gates import library as lib
from repro.noise.decoherence import (
    circuit_survival_probability,
    schedule_survival_probability,
    speedup_fidelity_gain,
)
from repro.scheduling.schedule import Schedule


class TestSurvivalProbability:
    def test_zero_latency_is_perfect(self):
        assert circuit_survival_probability(0.0, 10) == pytest.approx(1.0)

    def test_decays_exponentially_with_latency(self):
        f1 = circuit_survival_probability(1000.0, 1)
        f2 = circuit_survival_probability(2000.0, 1)
        assert f2 == pytest.approx(f1**2)

    def test_decays_with_qubit_count(self):
        f1 = circuit_survival_probability(1000.0, 1)
        f4 = circuit_survival_probability(1000.0, 4)
        assert f4 == pytest.approx(f1**4)

    def test_known_value(self):
        device = DeviceConfig(t1_us=50.0, t2_us=50.0)
        # Gamma = 2/50us = 0.04 /us = 4e-5 /ns; T = 1000 ns, n = 1.
        assert circuit_survival_probability(
            1000.0, 1, device
        ) == pytest.approx(math.exp(-0.04))

    def test_validation(self):
        with pytest.raises(ConfigError):
            circuit_survival_probability(-1.0, 1)
        with pytest.raises(ConfigError):
            circuit_survival_probability(1.0, 0)


class TestScheduleSurvival:
    def test_empty_schedule(self):
        assert schedule_survival_probability(Schedule(4)) == 1.0

    def test_counts_active_qubits_only(self):
        schedule = Schedule(10)
        schedule.add(lib.CNOT(0, 1), 0.0, 100.0)
        expected = circuit_survival_probability(100.0, 2)
        assert schedule_survival_probability(schedule) == pytest.approx(expected)


class TestSpeedupGain:
    def test_five_x_speedup_improves_fidelity(self):
        gain = speedup_fidelity_gain(50_000.0, 10_000.0, 20)
        assert gain > 1.0

    def test_no_speedup_no_gain(self):
        assert speedup_fidelity_gain(1000.0, 1000.0, 5) == pytest.approx(1.0)

    def test_gain_grows_with_circuit_size(self):
        small = speedup_fidelity_gain(10_000.0, 2_000.0, 5)
        large = speedup_fidelity_gain(10_000.0, 2_000.0, 50)
        assert large > small
