"""Regenerates paper Table 1: per-instruction pulse times."""

from repro.experiments.table1 import format_table1, run_table1


def test_table1(benchmark, shared_ocu, capsys):
    rows = benchmark(run_table1, ocu=shared_ocu)
    with capsys.disabled():
        print()
        print(format_table1(rows))
    by_label = {row.label: row for row in rows}
    # Shape assertions: two-qubit times within 10% of the paper, the
    # aggregated G3 block matching, aggregates beating serial execution.
    assert abs(by_label["CNOT"].ratio - 1.0) < 0.10
    assert abs(by_label["SWAP"].ratio - 1.0) < 0.10
    assert abs(by_label["G3 (CNOT-Rz-CNOT)"].ratio - 1.0) < 0.10
    serial_g3 = 2 * by_label["CNOT"].measured_ns + by_label["Rz(2g)"].measured_ns
    assert by_label["G3 (CNOT-Rz-CNOT)"].measured_ns < 0.5 * serial_g3
