"""Ablation: monotonic-action filtering vs unrestricted greedy merging.

Paper Sec. 4.3 argues that only *monotonic* actions (those that cannot
lengthen the critical path even with unoptimized merged pulses) protect
parallelism.  This ablation disables the filter and merges purely by
reward on a highly parallel workload.
"""

from repro.aggregation.aggregator import aggregate
from repro.benchmarks.ising import ising_model_circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.gates.decompositions import lower_to_standard_set


def _parallel_dag():
    circuit = ising_model_circuit(12, trotter_steps=2)
    checker = CommutationChecker()
    return GateDependenceGraph(
        circuit.num_qubits,
        lower_to_standard_set(circuit.gates),
        checker.commute,
    )


def test_monotonic_vs_unrestricted(benchmark, shared_ocu, capsys):
    def run():
        protected_dag = _parallel_dag()
        protected = aggregate(protected_dag, shared_ocu, monotonic_only=True)
        unrestricted_dag = _parallel_dag()
        unrestricted = aggregate(
            unrestricted_dag, shared_ocu, monotonic_only=False
        )
        return protected, unrestricted

    protected, unrestricted = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation: monotonic filter on a parallel Ising workload")
        print(
            f"  monotonic:    {protected.initial_makespan:8.1f} -> "
            f"{protected.final_makespan:8.1f} ns ({protected.merges} merges)"
        )
        print(
            f"  unrestricted: {unrestricted.initial_makespan:8.1f} -> "
            f"{unrestricted.final_makespan:8.1f} ns "
            f"({unrestricted.merges} merges)"
        )
    # The monotonic filter must never regress the makespan; the
    # unrestricted variant merges more but may serialize.
    assert protected.final_makespan <= protected.initial_makespan + 1e-6
    assert unrestricted.merges >= protected.merges
    assert protected.final_makespan <= unrestricted.final_makespan + 1e-6
