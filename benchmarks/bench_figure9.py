"""Regenerates paper Figure 9: normalized latency per strategy.

The headline result.  At ``REPRO_BENCH_SCALE=paper`` this compiles the
full Table 3 suite under all five strategies (takes tens of minutes); the
default small scale preserves every structural relationship the
assertions below pin down.
"""

from repro.experiments.figure9 import (
    format_figure9,
    geometric_mean_speedups,
    max_speedup,
    run_figure9,
)


def test_figure9(benchmark, bench_scale, shared_ocu, capsys):
    rows = benchmark.pedantic(
        run_figure9,
        kwargs={"scale": bench_scale, "ocu": shared_ocu},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_figure9(rows))
    means = geometric_mean_speedups(rows)
    # Paper shape: the full flow wins on every benchmark; geomean beats
    # CLS+hand; somewhere in the suite a large speedup appears.
    for row in rows:
        assert row.normalized()["cls+aggregation"] <= 1.0 + 1e-9, row.benchmark
    assert means["cls+aggregation"] > means["cls+hand"] > 1.0
    assert means["cls+aggregation"] >= 2.0
    assert max_speedup(rows, "cls+aggregation") >= 3.0
    # CLS helps the commutative QAOA circuits far more than square root.
    by_name = {row.benchmark: row for row in rows}
    qaoa = next(k for k in by_name if k.startswith("maxcut-line"))
    sqrt = next(k for k in by_name if k.startswith("sqrt"))
    assert by_name[qaoa].speedup("cls") > by_name[sqrt].speedup("cls")
