"""Regenerates paper Figure 10: instruction width vs normalized latency."""

from repro.experiments.figure10 import format_figure10, run_figure10


def _benchmarks_for(scale: str) -> dict[str, str]:
    if scale == "paper":
        return {
            "maxcut-line-20": "parallel",
            "maxcut-reg4-30": "parallel",
            "ising-30": "parallel",
            "sqrt-17": "serial",
            "uccsd-4": "serial",
            "uccsd-6-b": "serial",
        }
    return {
        "maxcut-line-6": "parallel",
        "ising-6": "parallel",
        "sqrt-9": "serial",
        "uccsd-4": "serial",
    }


def test_figure10(benchmark, bench_scale, shared_ocu, capsys):
    widths = range(2, 11) if bench_scale == "paper" else range(2, 7)
    series = benchmark.pedantic(
        run_figure10,
        kwargs={
            "benchmarks": _benchmarks_for(bench_scale),
            "widths": widths,
            "scale": bench_scale,
            "ocu": shared_ocu,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_figure10(series))
    # Paper shape: serial applications keep improving with width, and
    # gain more from the largest widths than parallel ones do.
    for entry in series:
        first = entry.points[0].normalized_latency
        last = entry.points[-1].normalized_latency
        assert last <= first + 1e-9
    serial_gains = [
        s.points[0].normalized_latency - s.points[-1].normalized_latency
        for s in series
        if s.classification == "serial"
    ]
    parallel_saturations = [
        s.saturation_width()
        for s in series
        if s.classification == "parallel"
    ]
    assert max(serial_gains) > 0.01
    # Parallel applications saturate before the maximum width.
    assert min(parallel_saturations) < max(widths)
