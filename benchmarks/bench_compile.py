"""Warm-path pass profile: where the sweep's compile time actually goes.

Runs the standard strategy sweep twice against one engine — the first
pass warms the pulse/latency cache, the second is the *warm path* every
resident deployment (compile service, shared-cache fleet) lives on —
and aggregates :attr:`BatchReport.pass_seconds` into a per-pass table.

This is the measurement behind the hot-path optimization work: the
aggregation search (candidate enumeration, monotonicity checks, GDG
bookkeeping) dominates the warm sweep, with scheduling a distant
second.  The table prints on every run so a regression in any single
pass is visible at a glance; ``pytest benchmarks/bench_compile.py -s``
is the quickest way to re-profile after touching a pass.
"""

import time

from repro.compiler.batch import BatchCompiler
from repro.control.cache import PulseCache


def _pass_table(report, wall: float) -> str:
    totals = sorted(
        report.pass_seconds.items(), key=lambda item: item[1], reverse=True
    )
    accounted = sum(value for _, value in totals)
    width = max((len(name) for name, _ in totals), default=4)
    lines = [f"{'pass':<{width}}  seconds  share"]
    for name, value in totals:
        share = value / accounted if accounted else 0.0
        lines.append(f"{name:<{width}}  {value:7.3f}  {share:5.1%}")
    lines.append(
        f"{'(total in passes)':<{width}}  {accounted:7.3f}  "
        f"of {wall:.3f}s wall"
    )
    return "\n".join(lines)


def test_warm_path_pass_profile(sweep_jobs, capsys):
    """Per-pass timing of the warm sweep (cold run shown for contrast)."""
    engine = BatchCompiler(cache=PulseCache(), max_workers=1)

    started = time.perf_counter()
    cold = engine.compile_batch(sweep_jobs)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = engine.compile_batch(sweep_jobs)
    warm_wall = time.perf_counter() - started

    assert warm.pass_seconds, "per-pass instrumentation went missing"
    # Every job ran the pipeline (no result cache here), so each pass
    # name from the cold run shows up warm too.
    assert set(warm.pass_seconds) == set(cold.pass_seconds)
    # The warm sweep answers every optimal-control query from cache.
    assert warm.cache_info["model_evals"] == 0

    with capsys.disabled():
        print()
        print(
            f"warm-path profile ({len(sweep_jobs)} jobs): "
            f"cold {cold_wall:.2f}s, warm {warm_wall:.2f}s"
        )
        print(_pass_table(warm, warm_wall))
