"""Wire-format round-trip throughput (repro.ir, format repro-ir-v1).

Serialization sits on the batch engine's process-executor hot path —
every job ships its circuit (and optionally device) out and its whole
result plus a cache delta back — so its cost must stay a small fraction
of compile time.  This module times the two round trips that dominate:
circuit ``to_json``/``from_json`` and full-result ``to_dict``/
``from_dict``, over the shared strategy-sweep workload, and prints
per-artifact microseconds plus payload sizes.
"""

import json

from repro.ir import (
    canonical_result_dict,
    result_from_dict,
    result_to_dict,
)


def test_circuit_round_trip_throughput(benchmark, sweep_jobs, capsys):
    circuits = {job.circuit.name: job.circuit for job in sweep_jobs}

    def round_trip():
        return [
            type(circuit).from_json(circuit.to_json())
            for circuit in circuits.values()
        ]

    rebuilt = benchmark(round_trip)
    assert len(rebuilt) == len(circuits)
    for original, copy in zip(circuits.values(), rebuilt):
        assert copy.name == original.name
        assert len(copy.gates) == len(original.gates)
    payload_bytes = sum(
        len(circuit.to_json()) for circuit in circuits.values()
    )
    with capsys.disabled():
        print()
        print(
            f"circuit round trip: {len(circuits)} circuits, "
            f"{payload_bytes / 1024:.1f} KiB total JSON"
        )


def test_result_round_trip_throughput(benchmark, sweep_jobs, batch_engine, capsys):
    # Compile once (warm, outside the timed region); time the round trip.
    results = list(batch_engine.compile_batch(sweep_jobs[:6]))

    def round_trip():
        return [result_from_dict(result_to_dict(r)) for r in results]

    rebuilt = benchmark(round_trip)
    for original, copy in zip(results, rebuilt):
        assert copy.latency_ns == original.latency_ns
        assert canonical_result_dict(copy) == canonical_result_dict(original)
    payload_bytes = sum(
        len(json.dumps(result_to_dict(r))) for r in results
    )
    with capsys.disabled():
        print()
        print(
            f"result round trip: {len(results)} results, "
            f"{payload_bytes / 1024:.1f} KiB total JSON"
        )
