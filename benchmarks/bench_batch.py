"""Batch-compilation throughput: cold vs warm shared-cache runs.

Tracks the batch engine's two headline numbers: wall-clock for a
multi-benchmark strategy sweep, and how much optimal-control work a warm
cache skips.  The timed round runs against the cache the cold round
filled, so the reported time is the engine's steady-state throughput;
the assertions pin the warm/cold contract (result parity, >= 5x fewer
model evaluations) that `tests/compiler/test_batch.py` checks at unit
scale.
"""

def test_batch_throughput(benchmark, sweep_jobs, batch_engine, capsys):
    engine = batch_engine
    jobs = sweep_jobs
    assert len(jobs) >= 8
    cold = engine.compile_batch(jobs)
    warm = benchmark.pedantic(
        engine.compile_batch, args=(jobs,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"batch of {len(jobs)} jobs, {cold.workers} workers: "
            f"cold {cold.wall_seconds:.2f}s "
            f"({cold.cache_info['model_evals']} model evals), "
            f"warm {warm.wall_seconds:.2f}s "
            f"({warm.cache_info['model_evals']} model evals)"
        )
    for cold_result, warm_result in zip(cold, warm):
        assert cold_result.latency_ns == warm_result.latency_ns
    # The warm-cache contract: at least 5x less optimal-control work.
    assert warm.cache_info["grape_calls"] * 5 <= max(
        cold.cache_info["grape_calls"], 1
    )
    assert warm.cache_info["model_evals"] * 5 <= max(
        cold.cache_info["model_evals"], 1
    )
