"""Batch-compilation throughput: cold vs warm, thread vs process, GRAPE.

Tracks the batch engine's headline numbers and writes them to a
machine-readable ``BENCH_batch.json`` (path overridable via the
``BENCH_BATCH_JSON`` environment variable):

* **Model sweep** — the standard 20-job Figure 9 strategy sweep under
  the analytic backend, thread vs process executors.  This workload is
  aggregation-search-bound (GRAPE never runs); its ``model_evals``
  count is guarded against the committed baseline, so a regression in
  cache reuse fails the benchmark rather than landing silently.
* **GRAPE sweep** — a cold batch priced through GRAPE synthesis, run
  twice: once with the legacy optimal-control path (reference gradient
  kernel, cold random restarts, full iteration budgets, no pre-warm)
  and once with the optimized defaults (vectorized kernel, warm-started
  minimal-time search, plateau termination, batch pre-warm planner).
  The recorded ``speedup_over_legacy`` is the PR's headline claim and
  is asserted >= 5x.  The two paths converge to the same fidelity
  threshold but follow different optimization trajectories (which is
  why the legacy knobs are namespaced into the cache fingerprint), so
  parity is asserted *within* the optimized configuration across
  executors, and solution quality is recorded as total schedule
  latency on both sides.

* **Shared-cache fleet** — two independent client processes compiling
  the GRAPE sweep against one shared pulse store, in both sharing modes
  (sharded cache directory; cache server over TCP).  Asserts the
  fleet-wide exactly-once synthesis contract, >= 95% warm hit rate,
  >= 3x warm speedup over the cold no-sharing baseline, and canonical
  result parity, and records the full hit/miss/eviction/latency stats
  of every client under the ``shared_cache`` section.

Threads serialize the pure-Python pipeline on the GIL; the process
executor's speedup therefore scales with physical cores and is expected
to be >= 1.5x on multi-core CI runners (and necessarily ~1x or below on
a single-core machine, where only serialization overhead remains).
"""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.circuit.circuit import Circuit
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.result_cache import ResultCache
from repro.control.cache import CacheServer, PulseCache, hit_rate, resolve_cache
from repro.ir import canonical_result_dict
from repro.service import CompileService, ServiceClient

_JSON_PATH = os.environ.get("BENCH_BATCH_JSON", "BENCH_batch.json")

#: Committed baseline, read at import time (before any test overwrites
#: the file in a local run).  ``None`` when absent or unreadable.
_BASELINE = None
_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_batch.json"
)
try:
    with open(_BASELINE_PATH, encoding="utf-8") as _handle:
        _BASELINE = json.load(_handle)
except (OSError, ValueError):
    pass

#: Accumulated across this module's tests; whichever runs last writes
#: the complete payload.
_PAYLOAD: dict = {}


def _baseline_model_evals():
    """Thread-mode cold-sweep model_evals from the committed baseline
    (handles both the v1 flat layout and the v2 nested one)."""
    if not isinstance(_BASELINE, dict):
        return None
    section = _BASELINE.get("model_sweep", _BASELINE)
    try:
        return int(section["thread"]["model_evals"])
    except (KeyError, TypeError, ValueError):
        return None


def _write_payload():
    _PAYLOAD.update(
        {
            "format": "repro-bench-batch-v2",
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "cpu_count": os.cpu_count(),
        }
    )
    with open(_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(_PAYLOAD, handle, indent=2)
        handle.write("\n")


def _grape_section(report, wall: float) -> dict:
    info = report.cache_info
    section = {
        "cold_wall_seconds": wall,
        "grape_calls": info["grape_calls"],
        "grape_evals": info["grape_evals"],
        "grape_wall_seconds": info["grape_wall_seconds"],
        "model_evals": info["model_evals"],
        "total_latency_ns": report.total_latency_ns(),
    }
    if report.prewarm is not None:
        section["signatures"] = report.prewarm["signatures"]
        section["demand"] = report.prewarm["demand"]
        section["dedup_ratio"] = report.prewarm["dedup_ratio"]
        section["prewarm_synthesized"] = report.prewarm["synthesized"]
    return section


def build_grape_sweep_jobs() -> list[BatchJob]:
    """A cold GRAPE-backed workload with realistic cross-job structure.

    Three copies each of a three-qubit chain circuit and a two-qubit
    block circuit: within one job the aggregator produces several
    distinct block signatures, and across jobs every signature repeats,
    so the sweep exercises both the per-problem optimizations (kernel,
    warm start, plateau) and the batch-level dedup/pre-warm path.
    """
    jobs: list[BatchJob] = []
    for i in range(3):
        chain = Circuit(3, name=f"chain{i}")
        chain.h(0)
        chain.cnot(0, 1)
        chain.cnot(1, 2)
        chain.rz(0.3, 2)
        chain.cnot(0, 1)
        jobs.append(
            BatchJob(circuit=chain, strategy="aggregation", label=f"chain{i}")
        )
        pair = Circuit(2, name=f"pair{i}")
        pair.h(0)
        pair.cnot(0, 1)
        pair.rz(0.7, 1)
        pair.cnot(0, 1)
        jobs.append(
            BatchJob(circuit=pair, strategy="aggregation", label=f"pair{i}")
        )
    return jobs


def test_batch_throughput(benchmark, sweep_jobs, batch_engine, capsys):
    engine = batch_engine
    jobs = sweep_jobs
    assert len(jobs) >= 8
    cold = engine.compile_batch(jobs)
    warm = benchmark.pedantic(
        engine.compile_batch, args=(jobs,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"batch of {len(jobs)} jobs, {cold.workers} workers: "
            f"cold {cold.wall_seconds:.2f}s "
            f"({cold.cache_info['model_evals']} model evals), "
            f"warm {warm.wall_seconds:.2f}s "
            f"({warm.cache_info['model_evals']} model evals)"
        )
    for cold_result, warm_result in zip(cold, warm):
        assert cold_result.latency_ns == warm_result.latency_ns
    # The warm-cache contract: at least 5x less optimal-control work.
    assert warm.cache_info["grape_calls"] * 5 <= max(
        cold.cache_info["grape_calls"], 1
    )
    assert warm.cache_info["model_evals"] * 5 <= max(
        cold.cache_info["model_evals"], 1
    )


def test_thread_vs_process_executor_sweep(sweep_jobs, bench_scale, capsys):
    """Cold Figure 9 strategy sweep under both executors.

    Fresh engines (and fresh caches) on both sides so neither mode
    starts warm; parity is asserted on the canonical wire form, and the
    cold thread-mode ``model_evals`` count is guarded against the
    committed ``BENCH_batch.json`` baseline — more optimal-control work
    for the same sweep means a cache-reuse regression.
    """
    jobs = sweep_jobs
    workers = min(4, os.cpu_count() or 1)

    started = time.perf_counter()
    thread = BatchCompiler(max_workers=workers).compile_batch(jobs)
    thread_wall = time.perf_counter() - started

    started = time.perf_counter()
    process = BatchCompiler(
        max_workers=workers, executor="process"
    ).compile_batch(jobs)
    process_wall = time.perf_counter() - started

    parity = all(
        canonical_result_dict(a) == canonical_result_dict(b)
        for a, b in zip(thread, process)
    )
    assert parity, "thread and process executors diverged"

    speedup = thread_wall / process_wall if process_wall > 0 else float("inf")
    _PAYLOAD["model_sweep"] = {
        "scale": bench_scale,
        "jobs": len(jobs),
        "workers": workers,
        "thread": {
            "cold_wall_seconds": thread_wall,
            "model_evals": thread.cache_info["model_evals"],
        },
        "process": {
            "cold_wall_seconds": process_wall,
            "model_evals": process.cache_info["model_evals"],
        },
        "process_speedup_over_thread": speedup,
        "canonical_parity": parity,
    }
    _write_payload()
    with capsys.disabled():
        print()
        print(
            f"executor sweep ({len(jobs)} jobs, {workers} workers, "
            f"{os.cpu_count()} CPUs): thread {thread_wall:.2f}s, "
            f"process {process_wall:.2f}s "
            f"({speedup:.2f}x) -> {_JSON_PATH}"
        )

    baseline = _baseline_model_evals()
    if bench_scale == "small" and baseline is not None:
        assert thread.cache_info["model_evals"] <= baseline, (
            f"cold-sweep model_evals regressed: "
            f"{thread.cache_info['model_evals']} > committed baseline "
            f"{baseline} — the standard sweep is doing more "
            f"optimal-control work than it used to (cache-reuse "
            f"regression). If the increase is deliberate, regenerate "
            f"BENCH_batch.json and explain it in the changelog."
        )


def test_grape_legacy_vs_optimized_sweep(capsys):
    """Cold GRAPE-backed batch: legacy optimal-control path vs optimized.

    The headline measurement of the vectorized kernel + warm-started
    search + plateau termination + batch pre-warm, asserted >= 5x.
    """
    legacy_engine = BatchCompiler(
        backend="grape",
        grape_kernel="reference",
        grape_warm_start=False,
        grape_plateau_iterations=None,
        prewarm=False,
    )
    started = time.perf_counter()
    legacy = legacy_engine.compile_batch(build_grape_sweep_jobs())
    legacy_wall = time.perf_counter() - started

    optimized_engine = BatchCompiler(backend="grape")
    started = time.perf_counter()
    optimized = optimized_engine.compile_batch(build_grape_sweep_jobs())
    optimized_wall = time.perf_counter() - started

    process_engine = BatchCompiler(
        backend="grape", executor="process", max_workers=min(4, os.cpu_count() or 1)
    )
    started = time.perf_counter()
    optimized_process = process_engine.compile_batch(build_grape_sweep_jobs())
    process_wall = time.perf_counter() - started

    # Identical configuration => identical results across executors,
    # pre-warm included.
    parity = all(
        canonical_result_dict(a) == canonical_result_dict(b)
        for a, b in zip(optimized, optimized_process)
    )
    assert parity, "optimized thread and process GRAPE sweeps diverged"

    speedup = legacy_wall / optimized_wall
    _PAYLOAD["grape_sweep"] = {
        "jobs": len(build_grape_sweep_jobs()),
        "legacy": _grape_section(legacy, legacy_wall),
        "optimized_thread": _grape_section(optimized, optimized_wall),
        "optimized_process": _grape_section(optimized_process, process_wall),
        "speedup_over_legacy": speedup,
        "canonical_parity_across_executors": parity,
    }
    _write_payload()
    with capsys.disabled():
        stats = optimized.prewarm
        print()
        print(
            f"grape sweep ({len(build_grape_sweep_jobs())} jobs): legacy "
            f"{legacy_wall:.2f}s "
            f"({legacy.cache_info['grape_evals']:.0f} evals), optimized "
            f"{optimized_wall:.2f}s "
            f"({optimized.cache_info['grape_evals']:.0f} evals, "
            f"{stats['signatures']} signatures, dedup "
            f"{stats['dedup_ratio']:.1f}x) -> {speedup:.2f}x"
        )
    assert speedup >= 5.0, (
        f"GRAPE cold-batch speedup fell to {speedup:.2f}x (< 5x) against "
        f"the legacy path"
    )
    # Both paths met the same fidelity threshold; the optimized search
    # must not be buying speed with meaningfully longer pulses.
    assert (
        optimized.total_latency_ns() <= 1.05 * legacy.total_latency_ns()
    )


def test_result_cache_resubmission(sweep_jobs, capsys):
    """The warm-path headline: resubmitting the sweep costs ~nothing.

    Batch layer first — one engine with a :class:`ResultCache` compiles
    the standard sweep cold, then gets the identical batch again.  Every
    repeat job must be served whole from the store (hit rate 1.0, zero
    passes run) with the identical canonical wire form, and the warm
    wall clock is asserted >= 2x faster than the cold one.

    Then the service layer — a resident :class:`CompileService` takes
    the same sweep twice over the wire.  The second pass must return
    ``done`` at submission time (served from the finished jobs' result
    store) at under 50 ms per job, without bumping ``completed``.
    """
    jobs = sweep_jobs
    engine = BatchCompiler(result_cache=ResultCache())

    started = time.perf_counter()
    cold = engine.compile_batch(jobs)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = engine.compile_batch(jobs)
    warm_wall = time.perf_counter() - started

    parity = all(
        canonical_result_dict(a) == canonical_result_dict(b)
        for a, b in zip(cold, warm)
    )
    assert parity, "result-cache hits diverged from fresh compilation"
    assert warm.result_cache is not None
    batch_hit_rate = warm.result_cache["hits"] / len(jobs)
    assert batch_hit_rate == 1.0, (
        f"warm resubmission only hit {warm.result_cache['hits']}/{len(jobs)}"
    )
    assert warm.result_cache["compiled"] == 0
    speedup = cold_wall / max(warm_wall, 1e-9)
    assert speedup >= 2.0, (
        f"result-cache warm path only {speedup:.2f}x faster (< 2x)"
    )

    # Service layer: byte-identical resubmissions come back done at
    # submit time, served from the journal/result store.
    with CompileService(
        engine=BatchCompiler(result_cache=ResultCache()), workers=1
    ) as service:
        with ServiceClient(service.url) as client:
            first = [client.submit_job(job) for job in jobs]
            for job_id in first:
                client.wait(job_id, timeout=600)
            completed_before = client.stats()["completed"]

            started = time.perf_counter()
            second = [client.submit_job(job) for job in jobs]
            resubmit_wall = time.perf_counter() - started
            for job_id in second:
                assert client.status(job_id)["state"] == "done"

            stats = client.stats()

    per_job_ms = 1000.0 * resubmit_wall / len(jobs)
    assert per_job_ms < 50.0, (
        f"service resubmission cost {per_job_ms:.1f} ms/job (>= 50 ms)"
    )
    # Zero compilations on the second pass: every job was served, none
    # completed through a worker.
    assert stats["completed"] == completed_before
    assert stats["result_cache"]["hits"] == len(jobs)

    _PAYLOAD["result_cache"] = {
        "jobs": len(jobs),
        "batch": {
            "cold_wall_seconds": cold_wall,
            "warm_wall_seconds": warm_wall,
            "warm_hit_rate": batch_hit_rate,
            "warm_speedup_over_cold": speedup,
            "store": engine.result_cache_stats(),
        },
        "service": {
            "resubmit_wall_seconds": resubmit_wall,
            "resubmit_ms_per_job": per_job_ms,
            "result_cache_hits": stats["result_cache"]["hits"],
            "coalesced_submissions": stats["coalesced_submissions"],
            "completed_second_pass": stats["completed"] - completed_before,
        },
        "canonical_parity": parity,
    }
    _write_payload()
    with capsys.disabled():
        print()
        print(
            f"result cache ({len(jobs)} jobs): batch cold {cold_wall:.2f}s, "
            f"warm {warm_wall:.2f}s ({speedup:.1f}x, hit rate "
            f"{batch_hit_rate:.0%}) | service resubmit "
            f"{per_job_ms:.1f} ms/job -> {_JSON_PATH}"
        )


def _fleet_client(args) -> dict:
    """One fleet member: a full GRAPE sweep in its own process.

    ``mode`` selects the store the client compiles against — its own
    in-memory cache (``isolated``, the no-sharing baseline), a sharded
    cache directory, or a cache server URL.  Runs at module level so the
    process pool can pickle it.
    """
    mode, target = args
    if mode == "isolated":
        cache = None
    elif mode == "sharded":
        cache = resolve_cache(path=target, shards=4)
    else:
        cache = resolve_cache(url=target)
    engine = BatchCompiler(backend="grape", cache=cache)
    started = time.perf_counter()
    report = engine.compile_batch(build_grape_sweep_jobs())
    wall = time.perf_counter() - started
    engine.save_cache()
    stats = engine.cache_stats()
    close = getattr(engine.cache, "close", None)
    if close is not None:
        close()
    return {
        "wall_seconds": wall,
        "grape_calls": report.cache_info["grape_calls"],
        "model_evals": report.cache_info["model_evals"],
        "stats": stats,
        "canonical": [canonical_result_dict(result) for result in report],
    }


def _run_client(mode: str, target) -> dict:
    """Run one client in a fresh subprocess (fresh pool = fresh process)."""
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(_fleet_client, (mode, target)).result()


def _fleet_section(cold: dict, warm: dict, isolated_wall: float) -> dict:
    """Bench rows for one sharing mode, sans the per-mode hit-rate key."""
    speedup = isolated_wall / max(warm["wall_seconds"], 1e-9)
    return {
        "cold": {k: cold[k] for k in ("wall_seconds", "grape_calls", "model_evals")},
        "warm": {k: warm[k] for k in ("wall_seconds", "grape_calls", "model_evals")},
        "cold_stats": cold["stats"],
        "warm_stats": warm["stats"],
        "warm_speedup_over_cold_isolated": speedup,
    }


def test_shared_cache_fleet(tmp_path, capsys):
    """Two client processes, one shared store — both sharing modes.

    The shared-cache contract, measured end to end: a cold client pays
    for every synthesis exactly once *fleet-wide* (the warm client that
    follows does zero optimal-control work in either mode), the warm
    client's hit rate is >= 95%, its wall clock beats the no-sharing
    cold baseline by >= 3x, and every client — isolated, sharded, or
    server-backed — produces the identical canonical wire form.
    """
    isolated = _run_client("isolated", None)
    signatures = isolated["grape_calls"]
    assert signatures > 0, "baseline sweep did no synthesis; bench is vacuous"

    directory = os.path.join(tmp_path, "fleet-cache")
    sharded_cold = _run_client("sharded", directory)
    sharded_warm = _run_client("sharded", directory)

    server = CacheServer(PulseCache())
    with server:
        remote_cold = _run_client("remote", server.url)
        remote_warm = _run_client("remote", server.url)
        server_stats = server.stats()

    # Exactly-once synthesis fleet-wide: the cold shared client does the
    # same work as the isolated baseline, and the warm client does none.
    for cold, warm, mode in (
        (sharded_cold, sharded_warm, "sharded"),
        (remote_cold, remote_warm, "server"),
    ):
        assert cold["grape_calls"] == signatures, (
            f"{mode}: cold client synthesized {cold['grape_calls']} "
            f"signatures, isolated baseline {signatures}"
        )
        assert warm["grape_calls"] == 0, (
            f"{mode}: warm client re-synthesized "
            f"{warm['grape_calls']} pulses the fleet already paid for"
        )
        assert warm["model_evals"] == 0, (
            f"{mode}: warm client re-ran {warm['model_evals']} model evals"
        )

    # Canonical-result parity: sharing the store changes the bill, never
    # the compiled output.
    for client in (sharded_cold, sharded_warm, remote_cold, remote_warm):
        assert client["canonical"] == isolated["canonical"]

    # Warm hit rates: the sharded client autoloads its shards (memory
    # hits); the remote client misses its empty L1 and hits the server.
    sharded_rate = hit_rate(
        sharded_warm["stats"]["store_hits"],
        sharded_warm["stats"]["store_misses"],
    )
    remote_rate = hit_rate(
        remote_warm["stats"]["remote_hits"],
        remote_warm["stats"]["remote_misses"],
    )
    assert sharded_rate is not None and sharded_rate >= 0.95, (
        f"sharded warm hit rate {sharded_rate} < 0.95"
    )
    assert remote_rate is not None and remote_rate >= 0.95, (
        f"server warm hit rate {remote_rate} < 0.95"
    )

    isolated_wall = isolated["wall_seconds"]
    sharded_section = _fleet_section(sharded_cold, sharded_warm, isolated_wall)
    sharded_section["warm_hit_rate"] = sharded_rate
    server_section = _fleet_section(remote_cold, remote_warm, isolated_wall)
    server_section["warm_hit_rate"] = remote_rate
    server_section["server_stats"] = server_stats
    _PAYLOAD["shared_cache"] = {
        "jobs": len(build_grape_sweep_jobs()),
        "signatures_synthesized": signatures,
        "cold_isolated": {
            k: isolated[k]
            for k in ("wall_seconds", "grape_calls", "model_evals")
        },
        "sharded": sharded_section,
        "server": server_section,
        "exactly_once_fleet_wide": True,
        "canonical_parity": True,
    }
    _write_payload()
    with capsys.disabled():
        print()
        print(
            f"shared cache ({signatures} signatures): isolated cold "
            f"{isolated_wall:.2f}s | sharded warm "
            f"{sharded_warm['wall_seconds']:.2f}s "
            f"({sharded_section['warm_speedup_over_cold_isolated']:.1f}x, "
            f"hits {sharded_rate:.0%}) | server warm "
            f"{remote_warm['wall_seconds']:.2f}s "
            f"({server_section['warm_speedup_over_cold_isolated']:.1f}x, "
            f"hits {remote_rate:.0%}) -> {_JSON_PATH}"
        )

    for mode, section in (("sharded", sharded_section), ("server", server_section)):
        assert section["warm_speedup_over_cold_isolated"] >= 3.0, (
            f"{mode}: warm client only "
            f"{section['warm_speedup_over_cold_isolated']:.2f}x faster than "
            f"the cold no-sharing baseline (< 3x)"
        )
