"""Batch-compilation throughput: cold vs warm runs, thread vs process.

Tracks the batch engine's headline numbers: wall-clock for a
multi-benchmark strategy sweep, how much optimal-control work a warm
cache skips, and how the two executors compare on this machine.  The
timed round runs against the cache the cold round filled, so the
reported time is the engine's steady-state throughput; the assertions
pin the warm/cold contract (result parity, >= 5x fewer model
evaluations) that `tests/compiler/test_batch.py` checks at unit scale.

The thread-vs-process sweep additionally writes a machine-readable
``BENCH_batch.json`` (path overridable via the ``BENCH_BATCH_JSON``
environment variable) recording both executors' cold wall-clock, the
machine's CPU count and the parity verdict, so the performance
trajectory of the batch engine is recorded run over run.  Threads
serialize the pure-Python pipeline on the GIL; the process executor's
speedup therefore scales with physical cores and is expected to be
>= 1.5x on multi-core CI runners (and necessarily ~1x or below on a
single-core machine, where only serialization overhead remains).
"""

import json
import os
import time

from repro.compiler.batch import BatchCompiler
from repro.ir import canonical_result_dict


def test_batch_throughput(benchmark, sweep_jobs, batch_engine, capsys):
    engine = batch_engine
    jobs = sweep_jobs
    assert len(jobs) >= 8
    cold = engine.compile_batch(jobs)
    warm = benchmark.pedantic(
        engine.compile_batch, args=(jobs,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"batch of {len(jobs)} jobs, {cold.workers} workers: "
            f"cold {cold.wall_seconds:.2f}s "
            f"({cold.cache_info['model_evals']} model evals), "
            f"warm {warm.wall_seconds:.2f}s "
            f"({warm.cache_info['model_evals']} model evals)"
        )
    for cold_result, warm_result in zip(cold, warm):
        assert cold_result.latency_ns == warm_result.latency_ns
    # The warm-cache contract: at least 5x less optimal-control work.
    assert warm.cache_info["grape_calls"] * 5 <= max(
        cold.cache_info["grape_calls"], 1
    )
    assert warm.cache_info["model_evals"] * 5 <= max(
        cold.cache_info["model_evals"], 1
    )


def test_thread_vs_process_executor_sweep(sweep_jobs, bench_scale, capsys):
    """Cold Figure 9 strategy sweep under both executors + BENCH_batch.json.

    Fresh engines (and fresh caches) on both sides so neither mode
    starts warm; parity is asserted on the canonical wire form, and the
    measured numbers land in ``BENCH_batch.json`` for the perf record.
    """
    jobs = sweep_jobs
    workers = min(4, os.cpu_count() or 1)

    started = time.perf_counter()
    thread = BatchCompiler(max_workers=workers).compile_batch(jobs)
    thread_wall = time.perf_counter() - started

    started = time.perf_counter()
    process = BatchCompiler(
        max_workers=workers, executor="process"
    ).compile_batch(jobs)
    process_wall = time.perf_counter() - started

    parity = all(
        canonical_result_dict(a) == canonical_result_dict(b)
        for a, b in zip(thread, process)
    )
    assert parity, "thread and process executors diverged"

    speedup = thread_wall / process_wall if process_wall > 0 else float("inf")
    payload = {
        "format": "repro-bench-batch-v1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": bench_scale,
        "jobs": len(jobs),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "thread": {
            "cold_wall_seconds": thread_wall,
            "model_evals": thread.cache_info["model_evals"],
        },
        "process": {
            "cold_wall_seconds": process_wall,
            "model_evals": process.cache_info["model_evals"],
        },
        "process_speedup_over_thread": speedup,
        "canonical_parity": parity,
    }
    path = os.environ.get("BENCH_BATCH_JSON", "BENCH_batch.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    with capsys.disabled():
        print()
        print(
            f"executor sweep ({len(jobs)} jobs, {workers} workers, "
            f"{os.cpu_count()} CPUs): thread {thread_wall:.2f}s, "
            f"process {process_wall:.2f}s "
            f"({speedup:.2f}x) -> {path}"
        )
