"""Shared fixtures for the benchmark harness.

Every paper table/figure has one ``bench_*`` module here that regenerates
it and prints the rows the paper reports.  The default scale is the
reduced ("small") suite so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_BENCH_SCALE=paper`` for the full Table 3
sizes (the committed ``results/paper_scale_report.txt`` was produced at
paper scale).

All benchmarks share one pulse/latency cache through the batch engine.
Set ``REPRO_BENCH_CACHE=<stem>`` to persist it across pytest sessions
(warm runs skip every cached optimal-control query); by default the
cache lives in memory for the session only.  ``REPRO_BENCH_WORKERS=N``
sets the batch engine's worker-thread count (default: 2).
"""

from __future__ import annotations

import os

import pytest

from repro.benchmarks.registry import table3_suite
from repro.compiler.batch import BatchCompiler, BatchJob
from repro.compiler.strategies import all_strategies
from repro.control.cache import DiskPulseCache, PulseCache
from repro.control.unit import OptimalControlUnit

_SWEEP_KEYS_SMALL = ("maxcut-line-6", "ising-6", "sqrt-9", "uccsd-4")


def build_strategy_sweep_jobs(scale: str) -> list[BatchJob]:
    """The shared benchmark workload: a multi-benchmark strategy sweep.

    At small scale a four-benchmark subset keeps the sweep fast; at
    paper scale the full Table 3 suite runs.  One definition serves
    every bench module so the CI jobs measure the same suite.
    """
    jobs: list[BatchJob] = []
    for spec in table3_suite(scale):
        if scale == "small" and spec.key not in _SWEEP_KEYS_SMALL:
            continue
        circuit = spec.build()
        jobs.extend(
            BatchJob(
                circuit=circuit,
                strategy=strategy,
                label=f"{spec.key}/{strategy.key}",
            )
            for strategy in all_strategies()
        )
    return jobs


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Benchmark suite scale: "small" (default) or "paper"."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def shared_cache():
    """One pulse/latency store for the whole session.

    Disk-persistent when ``REPRO_BENCH_CACHE`` names a file stem; saved
    back at session end so the next benchmark run starts warm.
    """
    stem = os.environ.get("REPRO_BENCH_CACHE")
    if stem:
        cache = DiskPulseCache(stem)
        yield cache
        cache.save()
    else:
        yield PulseCache()


@pytest.fixture(scope="session")
def sweep_jobs(bench_scale) -> list[BatchJob]:
    """The shared strategy-sweep workload at the session's scale."""
    return build_strategy_sweep_jobs(bench_scale)


@pytest.fixture(scope="session")
def batch_engine(shared_cache) -> BatchCompiler:
    """Batch compilation engine over the session-shared cache."""
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    return BatchCompiler(
        cache=shared_cache,
        max_workers=int(workers) if workers else 2,
    )


@pytest.fixture(scope="session")
def shared_ocu(shared_cache) -> OptimalControlUnit:
    """One latency oracle for the whole session (shared pulse cache)."""
    return OptimalControlUnit(backend="model", cache=shared_cache)
