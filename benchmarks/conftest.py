"""Shared fixtures for the benchmark harness.

Every paper table/figure has one ``bench_*`` module here that regenerates
it and prints the rows the paper reports.  The default scale is the
reduced ("small") suite so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_BENCH_SCALE=paper`` for the full Table 3
sizes (the committed ``results/paper_scale_report.txt`` was produced at
paper scale).
"""

from __future__ import annotations

import os

import pytest

from repro.control.unit import OptimalControlUnit


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Benchmark suite scale: "small" (default) or "paper"."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def shared_ocu() -> OptimalControlUnit:
    """One latency oracle for the whole session (shared pulse cache)."""
    return OptimalControlUnit(backend="model")
