"""Regenerates paper Figure 11: spatial locality vs aggregation benefit."""

from repro.experiments.figure11 import format_figure11, run_figure11


def test_figure11(benchmark, bench_scale, shared_ocu, capsys):
    rows = benchmark.pedantic(
        run_figure11,
        kwargs={"scale": bench_scale, "ocu": shared_ocu},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_figure11(rows))
    by_locality = {row.locality: row for row in rows}
    # Paper shape: aggregation helps each instance, and the low-locality
    # cluster instance gains at least as much as the line instance.
    for row in rows:
        assert row.normalized <= 1.0 + 1e-9
    assert by_locality["low"].normalized <= by_locality["high"].normalized + 1e-9
    # Lower locality must show up as more routing SWAPs.
    assert by_locality["low"].swap_count >= by_locality["high"].swap_count
