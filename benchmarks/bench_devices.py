"""Device-preset sweep: compile cost and routing pressure per machine.

Compiles a fixed small workload (two 6-qubit benchmarks under ISA and
CLS+aggregation) onto one device per preset family and reports, per
device, the compile wall-clock, the routed-SWAP counts and the final
makespans.  The ``benchmark`` fixture times the whole sweep so the perf
trajectory picks the numbers up through the standard pytest-benchmark
JSON; the printed table is the human-readable view.

The assertions pin the structural expectations that make the sweep a
regression test rather than a demo: denser coupling routes fewer SWAPs
(all-to-all needs none), and every preset compiles to a valid schedule.
"""

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.batch import BatchCompiler, BatchJob

DEVICE_KEYS = (
    "paper-grid-2x3",
    "line-6",
    "ring-6",
    "heavy-hex-1",
    "all-to-all-6",
)
STRATEGY_KEYS = ("isa", "cls+aggregation")


def _device_sweep_jobs():
    circuits = [
        maxcut_qaoa_circuit(line_graph(6), name="maxcut-line-6"),
        ising_model_circuit(6),
    ]
    return [
        BatchJob(
            circuit=circuit,
            strategy=strategy,
            device=key,
            label=f"{circuit.name}/{strategy}@{key}",
        )
        for key in DEVICE_KEYS
        for circuit in circuits
        for strategy in STRATEGY_KEYS
    ]


def test_device_preset_sweep(benchmark, shared_cache, capsys):
    engine = BatchCompiler(cache=shared_cache, max_workers=2)
    jobs = _device_sweep_jobs()
    engine.compile_batch(jobs)  # warm the cache; time steady state
    report = benchmark.pedantic(
        engine.compile_batch, args=(jobs,), rounds=1, iterations=1
    )

    by_device: dict[str, list] = {key: [] for key in DEVICE_KEYS}
    for job, result, seconds in zip(jobs, report.results, report.seconds):
        result.schedule.validate()
        assert result.device_name == job.device.name
        by_device[job.device.name].append((result, seconds))

    with capsys.disabled():
        print()
        print(
            f"{'device':16s} {'qubits':>6s} {'swaps':>6s} "
            f"{'latency(ns)':>12s} {'compile(s)':>11s}"
        )
        for key, entries in by_device.items():
            swaps = sum(result.swap_count for result, _ in entries)
            latency = sum(result.latency_ns for result, _ in entries)
            seconds = sum(s for _, s in entries)
            qubits = entries[0][0].physical_qubits
            print(
                f"{key:16s} {qubits:6d} {swaps:6d} "
                f"{latency:12.1f} {seconds:11.4f}"
            )

    def swaps_on(key):
        return sum(result.swap_count for result, _ in by_device[key])

    # Full coupling removes routing entirely; the sparse line routes at
    # least as much as the paper grid (a strict subgraph of it here).
    assert swaps_on("all-to-all-6") == 0
    assert swaps_on("line-6") >= swaps_on("paper-grid-2x3")
