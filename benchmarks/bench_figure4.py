"""Regenerates paper Figure 4: the triangle-QAOA worked example."""

from repro.experiments.figure4 import format_figure4, run_figure4


def test_figure4(benchmark, shared_ocu, capsys):
    result = benchmark(run_figure4, ocu=shared_ocu)
    with capsys.disabled():
        print()
        print(format_figure4(result))
    # Paper: 381.9 ns -> 128.3 ns (2.97x).  Shape: same latency order
    # and a speedup in the same band.
    assert abs(result.isa_latency_ns - result.paper_isa_ns) / result.paper_isa_ns < 0.35
    assert 2.0 <= result.speedup <= 6.5
