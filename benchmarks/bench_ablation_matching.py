"""Ablation: matching-based CLS conflict resolution vs naive greedy.

Paper Fig. 7 motivates maximal-cardinality matching for the candidate
computational graph.  Across seeded random commutative workloads with
realistic (heterogeneous) pulse latencies, matching wins more often than
first-fit greedy and is better on average, though individual instances
can go either way — maximal cardinality is a good proxy for makespan,
not an optimum.
"""

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.scheduling.cls import cls_schedule

_TRIALS = 30


def _random_commutative_circuit(seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    circuit = Circuit(10, name=f"zz-random-{seed}")
    for _ in range(35):
        a, b = rng.choice(10, size=2, replace=False)
        circuit.rzz(float(rng.uniform(0.2, 3.0)), int(a), int(b))
    return circuit


def test_matching_vs_greedy(benchmark, shared_ocu, capsys):
    def run():
        outcomes = []
        for seed in range(_TRIALS):
            circuit = _random_commutative_circuit(seed)
            checker = CommutationChecker()
            dag = GateDependenceGraph.from_circuit(circuit, checker)
            matched = cls_schedule(
                dag, shared_ocu.latency, use_matching=True
            ).makespan
            greedy = cls_schedule(
                dag, shared_ocu.latency, use_matching=False
            ).makespan
            outcomes.append((matched, greedy))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = sum(1 for m, g in outcomes if m < g - 1e-6)
    losses = sum(1 for m, g in outcomes if m > g + 1e-6)
    mean_matched = float(np.mean([m for m, _ in outcomes]))
    mean_greedy = float(np.mean([g for _, g in outcomes]))
    with capsys.disabled():
        print()
        print("Ablation: CLS conflict resolution over random ZZ workloads")
        print(f"  trials: {_TRIALS}, matching wins {wins}, loses {losses}")
        print(f"  mean makespan: matching {mean_matched:.1f} ns, "
              f"greedy {mean_greedy:.1f} ns")
    assert wins > losses
    assert mean_matched <= mean_greedy
