"""Regenerates paper Table 3: benchmark characteristics."""

from repro.experiments.table3 import format_table3, run_table3


def test_table3(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        run_table3, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_table3(rows))
    assert len(rows) == 10
    # The QAOA family must order line > reg4 > cluster in locality.
    maxcuts = [row for row in rows if row.key.startswith("maxcut")]
    assert maxcuts[0].spatial_locality > maxcuts[2].spatial_locality
    # Square-root rows are non-commutative at any scale; the deep-serial
    # character needs the paper-size instances to fully show.
    for row in rows:
        if row.key.startswith("sqrt"):
            assert row.commutativity_label == "Low"
            if bench_scale == "paper":
                assert row.parallelism_label == "Low"
