"""Ablation: pulse-cache hit rate ("partial compilation").

The paper's future-work section proposes partial compilation to cut the
hours-long compile times.  Our OCU caches latencies and pulses by
structural signature; this benchmark measures the hit rate across a
suite compile — high rates mean most instructions are recompilations of
structures already optimized.
"""

from repro.benchmarks.registry import table3_suite
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import CLS_AGGREGATION
from repro.control.unit import OptimalControlUnit


def test_cache_hit_rate(benchmark, bench_scale, capsys):
    def run():
        ocu = OptimalControlUnit(backend="model")
        for spec in table3_suite("small")[:6]:
            compile_circuit(spec.build(), CLS_AGGREGATION, ocu=ocu)
        return ocu.cache_info()

    info = benchmark.pedantic(run, rounds=1, iterations=1)
    total_queries = info["cache_hits"] + info["latency_entries"]
    hit_rate = info["cache_hits"] / total_queries
    with capsys.disabled():
        print()
        print("Ablation: OCU cache (partial compilation)")
        print(f"  distinct structures: {info['latency_entries']}")
        print(f"  cache hits:          {info['cache_hits']}")
        print(f"  hit rate:            {hit_rate:.1%}")
    # Most latency queries must be served from the cache.
    assert hit_rate > 0.5
