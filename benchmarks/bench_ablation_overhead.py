"""Ablation: pulse-setup-overhead sensitivity of the aggregation speedup.

One of the three mechanisms behind the paper's speedup is amortizing the
fixed per-pulse overhead across aggregated instructions.  Sweeping that
overhead shows how much of the gain it accounts for: at zero overhead
only interaction folding and parallelism remain.
"""

from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import CLS_AGGREGATION, ISA
from repro.config import CompilerConfig, DeviceConfig
from repro.control.unit import OptimalControlUnit

_OVERHEADS_NS = (0.0, 10.0, 33.0, 60.0)


def test_overhead_sensitivity(benchmark, capsys):
    circuit = maxcut_qaoa_circuit(line_graph(8), name="line8")

    def run():
        speedups = {}
        for overhead in _OVERHEADS_NS:
            device = DeviceConfig(setup_time_2q_ns=overhead)
            ocu = OptimalControlUnit(
                device=device, compiler=CompilerConfig()
            )
            isa = compile_circuit(circuit, ISA, device=device, ocu=ocu)
            full = compile_circuit(
                circuit, CLS_AGGREGATION, device=device, ocu=ocu
            )
            speedups[overhead] = isa.latency_ns / full.latency_ns
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation: 2q pulse setup overhead vs aggregation speedup")
        for overhead, speedup in speedups.items():
            print(f"  t_setup = {overhead:5.1f} ns -> speedup {speedup:5.2f}x")
    # Aggregation wins even with zero overhead (folding + scheduling),
    # and the win grows monotonically with the overhead.
    assert speedups[0.0] > 1.2
    values = [speedups[o] for o in _OVERHEADS_NS]
    assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))
