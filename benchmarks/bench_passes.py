"""Pass-manager instrumentation: where a strategy sweep's time goes.

Compiles the shared strategy-sweep workload (``sweep_jobs`` from
``conftest.py``) through the pass-manager core and prints the per-pass
wall-clock breakdown the refactor added
(``CompilationResult.pass_seconds``).  The assertion pins the refactor's
contract: the manager's own bookkeeping (context setup, timing, result
packaging, cache merging) stays a small fraction of compile time — the
passes, not the plumbing, must dominate.
"""

from repro.compiler.batch import BatchCompiler


def test_per_pass_breakdown(benchmark, sweep_jobs, shared_cache, capsys):
    # One worker so per-job wall-clock is GIL-free and comparable with
    # the in-pass timers.
    engine = BatchCompiler(cache=shared_cache, max_workers=1)
    engine.compile_batch(sweep_jobs)  # warm the cache; time steady state
    report = benchmark.pedantic(
        engine.compile_batch, args=(sweep_jobs,), rounds=1, iterations=1
    )
    pass_totals = report.pass_seconds
    in_pass = sum(pass_totals.values())
    total = sum(report.seconds)
    overhead = total - in_pass
    with capsys.disabled():
        print()
        print(f"{len(sweep_jobs)} jobs, per-pass breakdown (warm cache):")
        for name, seconds in sorted(
            pass_totals.items(), key=lambda item: -item[1]
        ):
            print(f"  {name:24s} {seconds:8.4f}s ({seconds / total:6.1%})")
        print(
            f"  {'<manager overhead>':24s} {overhead:8.4f}s "
            f"({overhead / total:6.1%})"
        )
    assert in_pass <= total + 1e-6
    # The plumbing must not eat the refactor's gains: passes dominate.
    # Generous slack (ratio or absolute) so a scheduler stall on a
    # loaded CI runner cannot redden the job without a real regression.
    assert overhead <= max(0.35 * total, 0.25)
