"""A user-defined pass and a sixth strategy, without touching repro internals.

Registers ``GateCancellationPass`` — a peephole that deletes adjacent
self-inverse gate pairs (H·H, CNOT·CNOT, ...) from the lowered node
list — plus a sixth strategy ``peephole+cls+aggregation`` that runs it
in front of the paper's full flow.  The strategy then compiles through
the batch engine exactly like the built-in five, and a per-pass callback
shows where the compile time went.

The demo circuit is a QAOA layer padded with redundant gate pairs, so
the peephole has real work to do; on it the custom strategy must match
or beat plain ``cls+aggregation``.

Run:  python examples/custom_pass.py
"""

from __future__ import annotations

from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.circuit.circuit import Circuit
from repro.compiler import (
    AggregatePass,
    BatchCompiler,
    BatchJob,
    DetectDiagonalsPass,
    FinalSchedulePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
    Strategy,
    compile_circuit,
    register_strategy,
)

#: Parameter-free gates that are their own inverse: two in a row on the
#: same qubits (in the same order) multiply to the identity.
SELF_INVERSE = frozenset({"H", "X", "Y", "Z", "CNOT", "CZ", "SWAP"})


class GateCancellationPass(Pass):
    """Peephole: remove adjacent self-inverse pairs from the node list.

    Two consecutive list entries with the same self-inverse name, the
    same qubit tuple, and no parameters compose to the identity; because
    the node list is program order, list-adjacent nodes on identical
    qubit sets are also dependence-adjacent, so dropping the pair is
    always sound.  Iterates to a fixed point (H·H·H·H collapses fully).
    """

    def run(self, context) -> None:
        nodes = context.require("nodes", self.name, "run LowerPass first")
        removed = 0
        result: list = []
        for node in nodes:
            previous = result[-1] if result else None
            if (
                previous is not None
                and self._cancels(previous, node)
            ):
                result.pop()
                removed += 2
            else:
                result.append(node)
        context.nodes = result
        context.record_metrics(self.name, gates_removed=removed)

    @staticmethod
    def _cancels(a, b) -> bool:
        name_a = getattr(a, "name", None)
        return (
            name_a in SELF_INVERSE
            and name_a == getattr(b, "name", None)
            and getattr(a, "qubits", None) == getattr(b, "qubits", None)
            and not getattr(a, "params", ())
            and not getattr(b, "params", ())
        )


PEEPHOLE_FULL_FLOW = register_strategy(
    Strategy(
        key="peephole+cls+aggregation",
        description="gate-cancellation peephole + the full proposed flow",
        commutativity_detection=True,
        cls_scheduling=True,
        aggregation=True,
        hand_optimization=False,
    ),
    pipeline_factory=lambda strategy: [
        LowerPass(),
        GateCancellationPass(),
        DetectDiagonalsPass(),
        LogicalSchedulePass(use_cls=True),
        PlaceAndRoutePass(),
        AggregatePass(),
        FinalSchedulePass(use_cls=True),
    ],
)


def build_redundant_circuit() -> Circuit:
    """A QAOA layer with cancellable H·H and CNOT·CNOT padding."""
    qaoa = maxcut_qaoa_circuit(line_graph(6), name="line6-redundant")
    circuit = Circuit(qaoa.num_qubits, name=qaoa.name)
    for index, gate in enumerate(qaoa.gates):
        circuit.append(gate)
        if index % 3 == 0:
            # Inject an identity-pair after every third gate.
            qubit = gate.qubits[0]
            circuit.h(qubit).h(qubit)
    circuit.cnot(0, 1).cnot(0, 1)
    return circuit


def main() -> int:
    circuit = build_redundant_circuit()

    # Single-shot API: registered keys work like built-in ones.
    single = compile_circuit(circuit, "peephole+cls+aggregation")
    print(f"compile_circuit by key: {single.summary()}")

    # Batch engine with a per-pass instrumentation callback.
    cancelled: list[int] = []

    def watch(pass_, context, elapsed):
        if pass_.name == "GateCancellationPass":
            cancelled.append(context.metrics[pass_.name]["gates_removed"])

    engine = BatchCompiler(max_workers=2, pass_callbacks=[watch])
    report = engine.compile_batch(
        [
            BatchJob(circuit=circuit, strategy="cls+aggregation"),
            BatchJob(circuit=circuit, strategy=PEEPHOLE_FULL_FLOW),
        ]
    )
    baseline, peephole = report.results
    print(
        f"cls+aggregation          : {baseline.latency_ns:8.1f} ns, "
        f"{baseline.node_count} instructions"
    )
    print(
        f"peephole+cls+aggregation : {peephole.latency_ns:8.1f} ns, "
        f"{peephole.node_count} instructions "
        f"({cancelled[0]} redundant gates removed)"
    )
    print("per-pass seconds over the batch:")
    for name, seconds in sorted(
        report.pass_seconds.items(), key=lambda item: -item[1]
    ):
        print(f"  {name:24s} {seconds:8.4f}s")

    if cancelled[0] == 0 or peephole.latency_ns > baseline.latency_ns + 1e-6:
        print("FAIL: the peephole should remove gates and not regress latency")
        return 1
    print("OK: custom pass + sixth strategy compiled through the batch engine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
