"""Lint circuits and saved artifacts with the static analysis rules.

Walks the three entry points of :mod:`repro.analysis` without ever
invoking optimal control:

1. lint a circuit straight from the IR (``analyze_circuit``),
2. statically analyze a pass pipeline and watch a misordered one get
   rejected *before* any compilation (``analyze_pipeline``),
3. compile once under ``verify_ir=True``, save the result, and re-lint
   the artifact from disk (``lint_path``) — the workflow for checking
   results produced elsewhere.

Exits nonzero when any clean input fails to lint or the misordered
pipeline is not rejected, so CI can run it as a smoke check.

Run:  python examples/lint_circuit.py
"""

import os
import sys
import tempfile

from repro import Circuit, compile_circuit
from repro.analysis import analyze_circuit, analyze_pipeline, analyze_result
from repro.analysis.lint import lint_path
from repro.compiler.passes import (
    AggregatePass,
    FinalSchedulePass,
    LowerPass,
    PlaceAndRoutePass,
)


def main() -> int:
    circuit = (
        Circuit(3, name="lint-demo")
        .h(0)
        .cnot(0, 1)
        .rz(0.7, 1)
        .cnot(1, 2)
        .rzz(0.3, 0, 2)
    )

    # 1. Lint the circuit IR directly.
    report = analyze_circuit(circuit)
    print(f"circuit: {report.summary()}")
    if not report:
        return 1

    # 2. Static pipeline analysis: aggregation before routing requires
    #    'physical_nodes' before anything produces it — rejected with
    #    no compilation at all.
    bad = analyze_pipeline(
        [LowerPass(), AggregatePass(), PlaceAndRoutePass(), FinalSchedulePass()]
    )
    print(f"misordered pipeline: {bad.summary()}")
    if bad.ok or "REP201" not in bad.fired_rule_ids():
        return 1

    # 3. Compile under the between-pass verifier, save, re-lint the
    #    artifact from disk (exactly what `python -m repro.analysis
    #    result.json` does).
    result = compile_circuit(circuit, "cls+aggregation", verify_ir=True)
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "result.json")
        result.save(path)
        saved = lint_path(path)
        print(f"artifact: {saved.summary()}")
        if not saved:
            return 1

    # The post-hoc analysis agrees with the between-pass verifier.
    final = analyze_result(result)
    print(f"result: {final.summary()}")
    return 0 if final else 1


if __name__ == "__main__":
    sys.exit(main())
