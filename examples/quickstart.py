"""Quickstart: compile the paper's triangle-QAOA example both ways.

Builds the Figure 4 circuit (MAXCUT on a triangle, gamma = 5.67,
beta = 1.26), compiles it with standard gate-based (ISA) compilation and
with the aggregated-instruction flow, and prints the latency comparison
plus the final instruction schedule.

Run:  python examples/quickstart.py
"""

from repro.compiler import CLS_AGGREGATION, ISA, compile_circuit
from repro.control.unit import OptimalControlUnit
from repro.experiments.figure4 import triangle_circuit
from repro.mapping.topology import LineTopology


def main() -> None:
    circuit = triangle_circuit()
    print(f"circuit: {circuit}")
    print(f"gates:   {dict(circuit.gate_counts())}")
    print()

    ocu = OptimalControlUnit(backend="model")
    topology = LineTopology(3)

    isa = compile_circuit(circuit, ISA, ocu=ocu, topology=topology)
    aggregated = compile_circuit(
        circuit, CLS_AGGREGATION, ocu=ocu, topology=topology
    )

    print(f"gate-based (ISA) latency:  {isa.latency_ns:7.1f} ns "
          f"({isa.node_count} pulses)   [paper: 381.9 ns]")
    print(f"aggregated latency:        {aggregated.latency_ns:7.1f} ns "
          f"({aggregated.node_count} pulses)   [paper: 128.3 ns]")
    print(f"speedup:                   {aggregated.speedup_over(isa):7.2f} x"
          f"            [paper: 2.97x]")
    print()

    print("final aggregated schedule:")
    for operation in sorted(aggregated.schedule, key=lambda op: op.start):
        node = operation.node
        members = getattr(node, "gates", [node])
        names = ",".join(g.name for g in members)
        print(
            f"  t={operation.start:6.1f} ns  {operation.duration:5.1f} ns  "
            f"qubits {node.qubits}  [{names}]"
        )


if __name__ == "__main__":
    main()
