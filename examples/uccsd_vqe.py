"""UCCSD for VQE: a serial, machine-unaware ansatz made competitive.

Builds the UCCSD-n4 ansatz (Jordan-Wigner), compiles it under gate-based
and aggregated flows, and sweeps the allowed instruction width — serial
chemistry circuits are where the paper's approach shines (Sec. 6.2/6.4).

Run:  python examples/uccsd_vqe.py
"""

from repro.benchmarks.uccsd import uccsd_ansatz_circuit
from repro.compiler import CLS_AGGREGATION, ISA, compile_circuit
from repro.control.unit import OptimalControlUnit


def main() -> None:
    circuit = uccsd_ansatz_circuit(4, num_electrons=2)
    print(f"{circuit}: UCCSD singles+doubles on 4 spin orbitals")
    print(f"gates: {dict(circuit.gate_counts())}")
    print()

    ocu = OptimalControlUnit(backend="model")
    isa = compile_circuit(circuit, ISA, ocu=ocu)
    print(f"gate-based latency: {isa.latency_ns:8.1f} ns")
    print()
    print("allowed instruction width sweep (paper Fig. 10, serial case):")
    print(f"{'width':>6s} {'latency':>11s} {'speedup':>8s} {'widest':>7s}")
    for width in range(2, 7):
        result = compile_circuit(
            circuit, CLS_AGGREGATION, ocu=ocu, width_limit=width
        )
        print(
            f"{width:6d} {result.latency_ns:9.1f} ns "
            f"{result.speedup_over(isa):7.2f}x "
            f"{result.widest_instruction():7d}"
        )
    print()
    print("Serial applications keep improving as wider aggregates are")
    print("allowed — they do not saturate until the optimal-control limit.")


if __name__ == "__main__":
    main()
