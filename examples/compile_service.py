"""Compilation-as-a-service: submit, poll, download, survive a restart.

Starts an embedded compile service (the same :class:`CompileService`
that ``python -m repro.service`` runs standalone), submits a small batch
of circuits over the wire, polls them to completion, downloads and
verifies the artifacts — then stops the server mid-story and restarts
it over the same journal and cache to show that completed work is
re-served from disk and nothing is re-synthesized.

Run:  python examples/compile_service.py
"""

from __future__ import annotations

import tempfile

from repro.benchmarks.ising import ising_model_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit
from repro.compiler import BatchCompiler
from repro.control.cache import DiskPulseCache
from repro.service import CompileService, ServiceClient


def submit_and_verify(url: str, circuits) -> None:
    with ServiceClient(url) as client:
        job_ids = [
            client.submit(circuit, strategy=strategy, label=label)
            for circuit, strategy, label in circuits
        ]
        for (circuit, _, label), job_id in zip(circuits, job_ids):
            result = client.wait(job_id, timeout=300)
            report = result.verify_equivalence(circuit=circuit)
            status = client.status(job_id)
            print(
                f"  {label}: {result.latency_ns:.0f} ns in "
                f"{status['seconds']:.2f}s "
                f"[{'verified' if report else 'VERIFICATION FAILED'}]"
            )


def main() -> None:
    cache_stem = tempfile.mktemp(prefix="repro_service_cache_")
    journal_dir = tempfile.mkdtemp(prefix="repro_service_journal_")
    circuits = [
        (maxcut_qaoa_circuit(line_graph(5), name="line5"), "isa", "line5/isa"),
        (maxcut_qaoa_circuit(line_graph(5), name="line5"), "cls", "line5/cls"),
        (ising_model_circuit(4), "cls+aggregation", "ising4/cls-agg"),
    ]

    print("first server: cold cache, empty journal")
    engine = BatchCompiler(cache=DiskPulseCache(cache_stem))
    with CompileService(engine=engine, workers=2, journal=journal_dir) as service:
        submit_and_verify(service.url, circuits)
        first_bill = service.engine.lifetime_info["model_evals"]
    print(f"  optimal-control bill: {first_bill:.0f} model evaluations")

    print("second server: same journal + cache, after a 'crash'")
    engine = BatchCompiler(cache=DiskPulseCache(cache_stem))
    with CompileService(engine=engine, workers=2, journal=journal_dir) as service:
        with ServiceClient(service.url) as client:
            for status in client.jobs():
                print(f"  {status['label']}: {status['state']} (re-served)")
            # A fresh submission of an already-seen circuit compiles
            # entirely from the warm cache.
            job_id = client.submit(circuits[0][0], strategy="cls", label="warm")
            client.wait(job_id, timeout=300)
        second_bill = service.engine.lifetime_info["model_evals"]
    print(
        f"  optimal-control bill after restart: {second_bill:.0f} "
        f"model evaluations (warm cache)"
    )


if __name__ == "__main__":
    main()
