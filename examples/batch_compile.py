"""Batch compilation with a persistent pulse cache: a strategy sweep.

Compiles a small benchmark suite under every Figure 9 strategy through
the batch engine, twice over the same disk cache, and reports how much
optimal-control work the warm run skipped.  This is the "partial
compilation" scenario the paper's future-work section proposes: repeated
instruction structures are optimized once and reused forever.

Run:  python examples/batch_compile.py [--cache /tmp/repro_pulse_cache]
"""

from __future__ import annotations

import argparse
import tempfile
import os
import time

from repro.benchmarks.registry import table3_suite
from repro.compiler import BatchCompiler, BatchJob, all_strategies
from repro.control.cache import DiskPulseCache


def build_jobs() -> list[BatchJob]:
    """Every small-scale Table 3 benchmark under every strategy."""
    jobs: list[BatchJob] = []
    for spec in table3_suite("small"):
        circuit = spec.build()
        jobs.extend(
            BatchJob(
                circuit=circuit,
                strategy=strategy,
                label=f"{spec.key}/{strategy.key}",
            )
            for strategy in all_strategies()
        )
    return jobs


def run_once(stem: str, jobs: list[BatchJob], workers: int):
    """One engine lifetime: load cache, compile the batch, save cache."""
    engine = BatchCompiler(cache=DiskPulseCache(stem), max_workers=workers)
    started = time.perf_counter()
    report = engine.compile_batch(jobs)
    elapsed = time.perf_counter() - started
    engine.save_cache()
    return report, elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache",
        default=os.path.join(tempfile.gettempdir(), "repro_pulse_cache"),
        help="cache file stem (default: a temp-dir location)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    jobs = build_jobs()
    print(f"{len(jobs)} jobs (10 benchmarks x 5 strategies), "
          f"{args.workers} workers, cache stem {args.cache}")

    cold_report, cold_seconds = run_once(args.cache, jobs, args.workers)
    warm_report, warm_seconds = run_once(args.cache, jobs, args.workers)

    for label, report, elapsed in (
        ("cold", cold_report, cold_seconds),
        ("warm", warm_report, warm_seconds),
    ):
        info = report.cache_info
        print(f"{label}: {elapsed:6.2f}s wall, "
              f"{info['model_evals']:5d} model evals, "
              f"{info['grape_calls']:3d} GRAPE calls, "
              f"{info['cache_hits']:6d} cache hits")

    mismatch = sum(
        1
        for cold, warm in zip(cold_report, warm_report)
        if cold.latency_ns != warm.latency_ns
    )
    print(f"result parity: {len(jobs) - mismatch}/{len(jobs)} identical")

    cold_evals = cold_report.cache_info["model_evals"]
    warm_evals = warm_report.cache_info["model_evals"]
    if mismatch or warm_evals * 5 > max(cold_evals, 1):
        print("FAIL: warm run did not reuse the cache as expected")
        return 1
    saved = cold_evals - warm_evals
    print(f"OK: warm run skipped {saved} of {cold_evals} model evaluations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
