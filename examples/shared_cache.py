"""Fleet-shared pulse cache: a server and two independent clients.

Starts an in-process cache server (the same one ``python -m
repro.control.cache_server`` runs standalone), then compiles a small
GRAPE-backed batch through two *separate* client engines, each with its
own empty local cache, both pointed at the server.  The first client
pays for every pulse synthesis; its results are pushed to the server as
a delta, so the second client compiles the same batch without running
the optimal-control stack at all — the fleet synthesizes each distinct
signature exactly once.

Run:  python examples/shared_cache.py
"""

from __future__ import annotations

import time

from repro.circuit.circuit import Circuit
from repro.compiler import BatchCompiler, BatchJob
from repro.control.cache import (
    CacheServer,
    PulseCache,
    RemotePulseCache,
    cache_summary,
)


def build_jobs() -> list[BatchJob]:
    """A small batch with repeated structure across jobs."""
    jobs: list[BatchJob] = []
    for i in range(2):
        chain = Circuit(3, name=f"chain{i}")
        chain.h(0)
        chain.cnot(0, 1)
        chain.cnot(1, 2)
        chain.rz(0.3, 2)
        jobs.append(
            BatchJob(circuit=chain, strategy="aggregation", label=f"chain{i}")
        )
    return jobs


def run_client(name: str, url: str, jobs: list[BatchJob]):
    """One fleet member: fresh engine, fresh local cache, shared server."""
    cache = RemotePulseCache(url)
    engine = BatchCompiler(backend="grape", cache=cache)
    started = time.perf_counter()
    report = engine.compile_batch(jobs)
    elapsed = time.perf_counter() - started
    engine.save_cache()  # push the pending delta to the server
    info = report.cache_info
    print(f"{name}: {elapsed:5.2f}s wall, {info['grape_calls']:2d} GRAPE "
          f"calls, {info['model_evals']:3d} model evals")
    print(f"{name}: {cache_summary(engine.cache_stats())}")
    cache.close()
    return report


def main() -> int:
    jobs = build_jobs()
    with CacheServer(PulseCache()) as server:
        print(f"cache server listening on {server.url}")
        first = run_client("client 1 (cold)", server.url, jobs)
        second = run_client("client 2 (warm)", server.url, jobs)
        stats = server.stats()
        print(f"server: {stats['latency_entries']} latencies + "
              f"{stats['pulse_entries']} pulses, "
              f"{stats['server_requests']} requests")

    parity = all(
        a.latency_ns == b.latency_ns for a, b in zip(first, second)
    )
    warm_info = second.cache_info
    if not parity:
        print("FAIL: clients disagreed on compiled latencies")
        return 1
    if warm_info["grape_calls"] or warm_info["model_evals"]:
        print("FAIL: the second client re-ran optimal control the fleet "
              "already paid for")
        return 1
    print(f"OK: second client reused all "
          f"{first.cache_info['grape_calls']} pulses from the shared "
          f"server and ran zero optimal-control work")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
