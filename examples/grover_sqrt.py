"""Grover square root: a functional search plus latency compilation.

First runs the m=2 instance end to end on the statevector simulator and
verifies the search actually finds sqrt(4) = 2; then compiles the m=3
(17-qubit, the paper's smallest square-root benchmark) instance and
reports the aggregated-compilation speedup.

Run:  python examples/grover_sqrt.py
"""

import numpy as np

from repro.benchmarks.grover import (
    grover_iterations_for,
    grover_sqrt_circuit,
    sqrt_benchmark_qubits,
)
from repro.compiler import CLS_AGGREGATION, ISA, compile_circuit
from repro.control.unit import OptimalControlUnit
from repro.linalg.simulator import StatevectorSimulator


def functional_demo() -> None:
    target = 4
    circuit = grover_sqrt_circuit(
        2, target_value=target, iterations=grover_iterations_for(2)
    )
    simulator = StatevectorSimulator(circuit.num_qubits)
    simulator.run_circuit(circuit)
    probabilities = simulator.probabilities()
    n = circuit.num_qubits
    marginal: dict[int, float] = {}
    for index, probability in enumerate(probabilities):
        if probability < 1e-12:
            continue
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        x = bits[0] | (bits[1] << 1)
        marginal[x] = marginal.get(x, 0.0) + probability
    print(f"searching x with x^2 = {target} over 2 bits "
          f"({circuit.num_qubits} qubits, {len(circuit)} gates)")
    for x in sorted(marginal):
        bar = "#" * int(round(40 * marginal[x]))
        print(f"  P(x={x}) = {marginal[x]:.3f} {bar}")
    best = max(marginal, key=marginal.get)
    print(f"  -> found x = {best} (correct: {int(np.sqrt(target))})")


def latency_demo() -> None:
    m = 3
    circuit = grover_sqrt_circuit(m)
    print(f"\ncompiling sqrt-{sqrt_benchmark_qubits(m)} "
          f"({len(circuit)} gates before lowering)")
    ocu = OptimalControlUnit(backend="model")
    isa = compile_circuit(circuit, ISA, ocu=ocu)
    full = compile_circuit(circuit, CLS_AGGREGATION, ocu=ocu)
    print(f"  gate-based: {isa.latency_ns:9.1f} ns "
          f"({isa.lowered_gate_count} lowered gates)")
    print(f"  aggregated: {full.latency_ns:9.1f} ns "
          f"({full.aggregation_merges} merges, "
          f"widest instruction {full.widest_instruction()})")
    print(f"  speedup:    {full.speedup_over(isa):9.2f} x")
    print("\nSerial reversible arithmetic gains the most from aggregation")
    print("(paper Sec. 6.4: sophisticated encodings beat hand methods).")


def main() -> None:
    functional_demo()
    latency_demo()


if __name__ == "__main__":
    main()
