"""GRAPE demo: synthesize and verify real control pulses.

Runs the optimal-control unit's GRAPE backend on a CNOT and on the
CNOT-Rz-CNOT diagonal block of Figure 4 (instruction G3), verifies both
pulses with the independent propagator (the paper's Sec. 3.6 check), and
prints the amplitude summary of the optimized pulse — the data behind
the paper's Fig. 4(c)/(d) pulse plots.

Run:  python examples/pulse_grape_demo.py    (takes ~30 s)
"""

import numpy as np

from repro.aggregation.instruction import AggregatedInstruction
from repro.benchmarks.qaoa import PAPER_GAMMA
from repro.control.unit import OptimalControlUnit
from repro.gates import library as lib
from repro.verification.verify import verify_instruction


def main() -> None:
    ocu = OptimalControlUnit(backend="grape")

    print("synthesizing a CNOT pulse with GRAPE...")
    cnot = lib.CNOT(0, 1)
    cnot_result = ocu.synthesize_pulse(cnot)
    print(f"  duration {cnot_result.duration:.1f} ns, "
          f"fidelity {cnot_result.fidelity:.5f}, "
          f"{cnot_result.iterations} iterations")

    print("\nsynthesizing the G3 block (CNOT-Rz-CNOT) as one pulse...")
    block = AggregatedInstruction(
        [lib.CNOT(0, 1), lib.RZ(2 * PAPER_GAMMA, 1), lib.CNOT(0, 1)],
        name="G3",
    )
    block_result = ocu.synthesize_pulse(block)
    serial = 2 * cnot_result.duration + ocu.synthesize_pulse(
        lib.RZ(2 * PAPER_GAMMA, 0)
    ).duration
    print(f"  duration {block_result.duration:.1f} ns "
          f"(vs {serial:.1f} ns for three concatenated gate pulses)")
    print(f"  fidelity {block_result.fidelity:.5f}")

    print("\nindependent verification (scipy expm propagator):")
    for node in (cnot, block):
        result = verify_instruction(node, ocu, threshold=0.99)
        status = "PASS" if result.passed else "FAIL"
        print(f"  {result.label}: fidelity {result.fidelity:.5f}  [{status}]")

    pulse = block_result.pulse
    print("\noptimized G3 pulse (amplitudes in GHz, paper Fig. 4(d) data):")
    amplitudes = pulse.amplitudes_ghz()
    for column, name in enumerate(pulse.control_names):
        series = amplitudes[:, column]
        print(f"  {name:8s} min {series.min():+.4f}  max {series.max():+.4f}  "
              f"rms {np.sqrt(np.mean(series**2)):.4f}")
    print(f"  {pulse.num_steps} steps of {pulse.dt:.2f} ns")


if __name__ == "__main__":
    main()
