"""Register a custom device and compile onto it.

Builds a T-shaped 5-qubit device —

::

    0 - 1 - 2        (top bar)
        |
        3            (stem)
        |
        4

— with one deliberately weak coupling on the stem, registers it under
the key ``"t-shape-5"``, and compiles a 5-qubit Ising circuit onto it
under gate-based (ISA) and aggregated compilation.  Exits nonzero when
any device invariant regresses, so CI can run it as a smoke check.

Run:  python examples/custom_device.py
"""

import sys

from repro import (
    CLS_AGGREGATION,
    ISA,
    Device,
    Topology,
    compile_circuit,
    device_by_key,
    register_device,
)
from repro.benchmarks.ising import ising_model_circuit

T_SHAPE_EDGES = [(0, 1), (1, 2), (1, 3), (3, 4)]


def main() -> int:
    device = Device(
        topology=Topology(5, T_SHAPE_EDGES),
        name="t-shape-5",
        # The stem's lower coupler is half-strength: two-qubit pulses
        # crossing it take roughly twice the interaction time.
        coupling_limits_ghz={(3, 4): 0.01},
        # ...and the stem's end qubit is short-lived.
        t1_us={4: 20.0},
    )
    register_device("t-shape-5", device)
    resolved = device_by_key("t-shape-5")
    print(f"registered: {resolved!r}")
    print(f"coupling graph: {resolved.topology.edges()}")
    print()

    circuit = ising_model_circuit(5)
    isa = compile_circuit(circuit, ISA, device="t-shape-5")
    aggregated = compile_circuit(circuit, CLS_AGGREGATION, device="t-shape-5")

    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits)")
    print(
        f"gate-based (ISA):  {isa.latency_ns:7.1f} ns, "
        f"{isa.swap_count} routed SWAPs"
    )
    print(
        f"aggregated:        {aggregated.latency_ns:7.1f} ns, "
        f"{aggregated.swap_count} routed SWAPs"
    )
    print(f"speedup:           {aggregated.speedup_over(isa):7.2f} x")

    failures = []
    if resolved is not device:
        failures.append("registry did not return the registered device")
    if isa.device_name != "t-shape-5" or aggregated.device_name != "t-shape-5":
        failures.append("results did not record the device name")
    if aggregated.latency_ns >= isa.latency_ns:
        failures.append("aggregation failed to beat gate-based compilation")
    # The weak stem coupler must make this device slower than the same
    # T with nominal couplings everywhere.  Compare under ISA: per-gate
    # pricing responds monotonically to a weaker edge, whereas the
    # aggregation heuristics may land in a different (even better)
    # schedule when the price landscape shifts.
    nominal_isa = compile_circuit(
        circuit, ISA, device=Device(topology=Topology(5, T_SHAPE_EDGES))
    )
    if isa.latency_ns <= nominal_isa.latency_ns:
        failures.append("per-edge coupling override had no latency effect")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
