"""QAOA MAXCUT: compile a 12-qubit ring under all five strategies.

Shows the Figure 9 comparison on one workload and translates the latency
reduction into an output-fidelity gain with the decoherence model (the
paper's core motivation: latency is do-or-die on NISQ devices).

Run:  python examples/qaoa_maxcut.py
"""

import networkx as nx

from repro.benchmarks.qaoa import maxcut_qaoa_circuit
from repro.compiler import all_strategies, compile_circuit
from repro.control.unit import OptimalControlUnit
from repro.noise.decoherence import schedule_survival_probability


def main() -> None:
    ring = nx.cycle_graph(12)
    circuit = maxcut_qaoa_circuit(ring, gamma=0.7, beta=0.4, name="ring12")
    print(f"{circuit}: MAXCUT on a 12-vertex ring, one QAOA layer")
    print()

    ocu = OptimalControlUnit(backend="model")
    baseline = None
    print(f"{'strategy':18s} {'latency':>10s} {'speedup':>8s} "
          f"{'est. survival':>14s}")
    for strategy in all_strategies():
        result = compile_circuit(circuit, strategy, ocu=ocu)
        if baseline is None:
            baseline = result
        survival = schedule_survival_probability(result.schedule)
        print(
            f"{strategy.key:18s} {result.latency_ns:8.1f} ns "
            f"{result.speedup_over(baseline):7.2f}x {survival:13.4f}"
        )
    print()
    print("Lower latency -> exponentially better odds that the qubits")
    print("stay coherent to the end of the computation (paper Sec. 1).")


if __name__ == "__main__":
    main()
