"""Save a compilation result to disk and reload it in a fresh process.

Compiles a QAOA circuit under aggregated compilation, saves the whole
:class:`~repro.compiler.result.CompilationResult` — schedule, pulsed
instructions, routing mappings, metrics and the source circuit — as a
versioned JSON artifact (wire format ``repro-ir-v1``), then *reloads it
in a subprocess* and re-verifies the loaded schedule against its
embedded source circuit there.  That is the round trip a compile
service needs: expensive artifacts computed once, shipped anywhere,
still checkable.

Exits nonzero when any round-trip invariant regresses, so CI can run it
as a smoke check.

Run:  python examples/save_load_result.py
"""

import json
import os
import subprocess
import sys
import tempfile

from repro import CLS_AGGREGATION, CompilationResult, compile_circuit
from repro.benchmarks.qaoa import line_graph, maxcut_qaoa_circuit

_CHILD_CODE = """
import sys
from repro import CompilationResult

loaded = CompilationResult.load(sys.argv[1])
report = loaded.verify_equivalence()
print(f"child process: {loaded.summary()}")
print(f"child process: {report.summary()}")
sys.exit(0 if report else 1)
"""


def main() -> int:
    circuit = maxcut_qaoa_circuit(line_graph(6), name="maxcut-line-6")
    result = compile_circuit(circuit, CLS_AGGREGATION)
    print(f"compiled:  {result.summary()}")

    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "maxcut-line-6.json")
        result.save(path)
        size_kib = os.path.getsize(path) / 1024
        print(f"saved:     {path} ({size_kib:.1f} KiB)")

        # Same-process reload: metrics must round-trip exactly.
        loaded = CompilationResult.load(path)
        if loaded.latency_ns != result.latency_ns:
            print("FAIL: latency changed across the round trip")
            return 1
        if loaded.final_mapping != result.final_mapping:
            print("FAIL: routing mapping changed across the round trip")
            return 1
        if json.dumps(loaded.to_dict()) != json.dumps(result.to_dict()):
            print("FAIL: wire payload is not a fixed point of the round trip")
            return 1
        print(f"reloaded:  {loaded.summary()}")

        # Fresh-process reload: nothing may depend on in-memory state.
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_CODE, path],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": _pythonpath()},
        )
        sys.stdout.write(child.stdout)
        if child.returncode != 0:
            sys.stderr.write(child.stderr)
            print("FAIL: fresh-process verification failed")
            return 1

    print("ok: artifact round trip verified in a fresh process")
    return 0


def _pythonpath() -> str:
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    existing = os.environ.get("PYTHONPATH")
    return f"{src}{os.pathsep}{existing}" if existing else src


if __name__ == "__main__":
    sys.exit(main())
