"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses map one-to-one onto the
major subsystems (circuit IR, scheduling, mapping, control, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid device or compiler configuration."""


class LinalgError(ReproError):
    """A linear-algebra routine received an invalid operand."""


class GateError(ReproError):
    """Invalid gate construction or decomposition request."""


class CircuitError(ReproError):
    """Invalid circuit construction or manipulation."""


class QasmError(CircuitError):
    """Failure while parsing or emitting the QASM dialect."""


class ProgramError(ReproError):
    """Invalid program-level IR (modules, loops, calls)."""


class PassOrderingError(ReproError):
    """A compiler pass ran before the context state it needs existed.

    Raised by :meth:`~repro.compiler.context.CompilationContext.require`
    when, for example, a scheduling pass runs before lowering produced
    any nodes.  The message names the offending pass and the missing
    context attribute.
    """


class PassExecutionError(ReproError):
    """A compiler pass raised a non-library exception.

    Library errors (:class:`ReproError` subclasses) propagate unchanged —
    the pass manager only annotates them with the failing pass and
    circuit — but a foreign exception escaping a (typically user-defined)
    pass is wrapped in this type so callers still get structured context.

    Attributes:
        pass_name: Name of the pass that raised.
        pass_index: Position of that pass in its pipeline.
        circuit_name: Name of the circuit being compiled.
        strategy_key: Key of the strategy whose pipeline was running.
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: str | None = None,
        pass_index: int | None = None,
        circuit_name: str | None = None,
        strategy_key: str | None = None,
    ) -> None:
        super().__init__(message)
        self.pass_name = pass_name
        self.pass_index = pass_index
        self.circuit_name = circuit_name
        self.strategy_key = strategy_key


class SchedulingError(ReproError):
    """A scheduler produced or received an inconsistent state."""


class MappingError(ReproError):
    """Qubit placement or routing failure."""


class AggregationError(ReproError):
    """Invalid instruction-aggregation action."""


class ControlError(ReproError):
    """Quantum-optimal-control (GRAPE / latency model) failure."""


class VerificationError(ReproError):
    """A pulse sequence failed to reproduce its target unitary."""


class SerializationError(ReproError):
    """A wire-format payload could not be written or read.

    Raised by :mod:`repro.ir.serialize` on version mismatches, unknown
    artifact kinds, and structurally malformed payloads.
    """


class AnalysisError(ReproError):
    """Static analysis could not run over an artifact.

    Raised by :mod:`repro.analysis` when an analyzer receives something
    it cannot inspect (an unknown artifact kind, an unreadable file) —
    *not* when an artifact merely violates a rule; violations are data
    (:class:`~repro.analysis.Violation`), reported, never raised.
    """


class IRVerificationError(AnalysisError):
    """The IR verifier found a broken invariant between compiler passes.

    Raised in ``verify_ir`` debug mode
    (:class:`~repro.compiler.manager.PassManager`) when the pass that
    just ran left the evolving IR violating an ERROR-severity rule.  The
    message names the offending pass, its pipeline position, and every
    fired rule ID, so a wrong-output compilation is attributed to the
    *first* pass that broke an invariant instead of to the final
    equivalence check.

    Attributes:
        pass_name: Name of the pass after which the invariant broke.
        pass_index: Position of that pass in its pipeline.
        rule_ids: The fired rule IDs (e.g. ``("REP133",)``).
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: str | None = None,
        pass_index: int | None = None,
        rule_ids: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.pass_name = pass_name
        self.pass_index = pass_index
        self.rule_ids = tuple(rule_ids)


class BenchmarkError(ReproError):
    """Invalid benchmark-generator parameters."""


class ServiceError(ReproError):
    """The compile service rejected or failed a request.

    Raised by :mod:`repro.service` — the client on error responses and
    failed jobs, the server on invalid submissions.
    """


class ServiceBusyError(ServiceError):
    """A submission was rejected with backpressure, not failure.

    The service's queue was full (or the job's signature is quarantined
    by the circuit breaker); the job was *not* enqueued.  Resubmit after
    :attr:`retry_after` seconds.

    Attributes:
        retry_after: Server-suggested wait before resubmitting, seconds.
        reason: Machine-readable rejection reason (``"queue_full"`` or
            ``"quarantined"``).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class JobCancelledError(ServiceError):
    """A compile job was cancelled (or timed out) mid-compilation.

    Cancellation is cooperative: the batch engine's cancel probe runs at
    pass boundaries, so a job stops after the pass it is in finishes,
    not instantly.  Optimal-control work completed before the stop is
    already merged into the shared cache — a resubmitted job starts
    warm.
    """
