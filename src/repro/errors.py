"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses map one-to-one onto the
major subsystems (circuit IR, scheduling, mapping, control, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid device or compiler configuration."""


class LinalgError(ReproError):
    """A linear-algebra routine received an invalid operand."""


class GateError(ReproError):
    """Invalid gate construction or decomposition request."""


class CircuitError(ReproError):
    """Invalid circuit construction or manipulation."""


class QasmError(CircuitError):
    """Failure while parsing or emitting the QASM dialect."""


class ProgramError(ReproError):
    """Invalid program-level IR (modules, loops, calls)."""


class SchedulingError(ReproError):
    """A scheduler produced or received an inconsistent state."""


class MappingError(ReproError):
    """Qubit placement or routing failure."""


class AggregationError(ReproError):
    """Invalid instruction-aggregation action."""


class ControlError(ReproError):
    """Quantum-optimal-control (GRAPE / latency model) failure."""


class VerificationError(ReproError):
    """A pulse sequence failed to reproduce its target unitary."""


class BenchmarkError(ReproError):
    """Invalid benchmark-generator parameters."""
