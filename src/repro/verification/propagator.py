"""Independent Schrödinger propagator for pulse verification.

The paper verifies aggregated-instruction pulses with QuTiP (Sec. 3.6).
This module plays that role: it integrates the same piecewise-constant
Hamiltonian with an *independent* numerical method — scipy's Padé
``expm`` over sub-divided steps — rather than the eigendecomposition
shortcut GRAPE uses internally, so a bug in the optimizer's propagator
cannot silently self-verify.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.control.hamiltonian import ControlHamiltonian
from repro.control.pulse import Pulse
from repro.errors import VerificationError


def propagate_pulse(
    pulse: Pulse,
    hamiltonian: ControlHamiltonian,
    substeps: int = 4,
) -> np.ndarray:
    """Total unitary realized by a pulse, integrated independently.

    Args:
        pulse: Piecewise-constant amplitudes.
        hamiltonian: The control fields the amplitudes refer to.
        substeps: Sub-divisions per pulse step (accuracy knob; the
            Hamiltonian is constant within a step so this mainly guards
            against large ``dt * ||H||``).

    Returns:
        The ``2^n x 2^n`` propagator.
    """
    if pulse.amplitudes.shape[1] != hamiltonian.num_controls:
        raise VerificationError(
            f"pulse has {pulse.amplitudes.shape[1]} channels, Hamiltonian "
            f"has {hamiltonian.num_controls}"
        )
    if substeps < 1:
        raise VerificationError("substeps must be at least 1")
    dt = pulse.dt / substeps
    total = np.eye(hamiltonian.dim, dtype=complex)
    for step in range(pulse.num_steps):
        step_hamiltonian = hamiltonian.hamiltonian(pulse.amplitudes[step])
        step_propagator = scipy.linalg.expm(-1j * dt * step_hamiltonian)
        for _ in range(substeps):
            total = step_propagator @ total
    return total
