"""Whole-program semantic equivalence checking.

The paper's verification (Sec. 3.6) spot-checks ten sampled pulses per
benchmark.  This module checks the *whole compiled program*: a
:class:`~repro.compiler.result.CompilationResult` — after diagonal
detection, routing SWAPs, hand optimization and aggregation — must still
implement its source :class:`~repro.circuit.circuit.Circuit` up to a
global phase and the logical-to-physical permutation routing induced.

Three comparison methods share one driver:

* ``"statevector"`` — propagate a handful of seeded random input states
  through both programs and compare final states (scales to every
  circuit the dense simulator can hold).
* ``"unitary"`` — propagate *every* computational basis state, i.e.
  compare the compiled isometry column by column under one shared
  global phase (exact equivalence; exponential in the logical width).
* ``"propagator"`` — like ``"statevector"``, but aggregated
  instructions execute as their GRAPE-synthesized pulses integrated by
  the independent propagator, so the check covers the optimal-control
  backend, not just the ideal matrices.

The frame conversion works in the compiled program's *physical* register:
the logical input state is placed according to the initial placement
(unused cells hold ancilla ``|0>``), the scheduled nodes run in start-time
order, and the final placement is inverted to read the logical state back
out.  Ancilla cells must return to ``|0>`` — routing SWAPs may move them
around, but any residual amplitude outside the ancilla-zero block is
reported as ``ancilla_leakage`` and fails the check.

Entry points: :func:`verify_equivalence` (also exposed as
``CompilationResult.verify_equivalence()``) and
:class:`VerifyEquivalencePass`, which can be appended to any pass
pipeline to make every compilation self-checking.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.circuit import Circuit
from repro.compiler.passes import Pass
from repro.control.unit import OptimalControlUnit, gates_of, support_of
from repro.errors import VerificationError
from repro.linalg.simulator import apply_unitary
from repro.verification.propagator import propagate_pulse

_METHODS = ("auto", "statevector", "unitary", "propagator")

#: Widest logical register the all-basis-states ("unitary") method will
#: attempt by default; beyond it ``method="auto"`` samples random states.
_AUTO_UNITARY_QUBIT_LIMIT = 5

#: Dense statevector ceiling (mirrors the simulator's own limit).
_SIMULATION_QUBIT_LIMIT = 24

#: Default tolerances per method.  Ideal-matrix methods are limited only
#: by float accumulation; the propagator method realizes pulses that hit
#: the GRAPE fidelity threshold, not exact unitaries, so its tolerance is
#: physical rather than numerical.
_DEFAULT_ATOL = {"statevector": 1e-6, "unitary": 1e-6, "propagator": 0.1}

_DEFAULT_SEED = 20190413
_DEFAULT_STATES = 8


@dataclasses.dataclass
class EquivalenceReport:
    """Outcome of one whole-program equivalence check.

    Attributes:
        equivalent: Whether every checked state matched within ``atol``.
        method: The comparison method actually run (never ``"auto"``).
        max_deviation: Largest entry-wise state deviation after global-
            phase alignment, over all checked states.
        ancilla_leakage: Largest amplitude norm found outside the
            ancilla-zero block (routing must return ancillas to ``|0>``).
        states_checked: Number of input states propagated.
        atol: Tolerance the verdict used.
        propagated_instructions: Aggregated instructions realized by
            pulse propagation (``"propagator"`` method only).
        propagator_fallbacks: Aggregated instructions too wide for GRAPE
            that fell back to their ideal member gates.
        circuit_name / strategy_key / device_name: Provenance labels.
    """

    equivalent: bool
    method: str
    max_deviation: float
    ancilla_leakage: float
    states_checked: int
    atol: float
    propagated_instructions: int = 0
    propagator_fallbacks: int = 0
    circuit_name: str = ""
    strategy_key: str = ""
    device_name: str | None = None

    def __bool__(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "equivalent" if self.equivalent else "NOT equivalent"
        label = self.circuit_name or "circuit"
        return (
            f"{label} [{self.strategy_key or 'unknown'}"
            f"{f' @ {self.device_name}' if self.device_name else ''}]: "
            f"{verdict} ({self.method}, {self.states_checked} states, "
            f"max deviation {self.max_deviation:.3e}, "
            f"leakage {self.ancilla_leakage:.3e}, atol {self.atol:g})"
        )


def verify_equivalence(
    result,
    circuit: Circuit | None = None,
    *,
    method: str = "auto",
    states: int = _DEFAULT_STATES,
    atol: float | None = None,
    seed: int = _DEFAULT_SEED,
    ocu: OptimalControlUnit | None = None,
    raise_on_failure: bool = False,
) -> EquivalenceReport:
    """Check that a compilation result still implements its source circuit.

    Args:
        result: A :class:`~repro.compiler.result.CompilationResult` (or
            anything exposing ``schedule``, ``initial_mapping``,
            ``final_mapping``, ``physical_qubits``).
        circuit: The source circuit; defaults to the result's recorded
            ``source_circuit``.
        method: ``"statevector"``, ``"unitary"``, ``"propagator"``, or
            ``"auto"`` (unitary for narrow circuits, statevector above
            ``5`` logical qubits).
        states: Random input states for the statevector/propagator
            methods (the unitary method always checks every basis state).
        atol: Comparison tolerance; defaults per method (``1e-6`` for
            ideal matrices, ``0.1`` for propagated pulses).
        seed: Seed for the random input states.
        ocu: Optimal-control unit for the ``"propagator"`` method (used
            to synthesize each aggregated instruction's pulse); required
            for that method, ignored otherwise.
        raise_on_failure: Raise :class:`VerificationError` instead of
            returning a failing report.

    Returns:
        An :class:`EquivalenceReport` (truthy iff equivalent).
    """
    if circuit is None:
        circuit = getattr(result, "source_circuit", None)
        if circuit is None:
            raise VerificationError(
                "verify_equivalence needs the source circuit: this result "
                "does not carry one (pass circuit= explicitly)"
            )
    if method not in _METHODS:
        raise VerificationError(
            f"unknown equivalence method {method!r}; use one of {_METHODS}"
        )
    num_logical = circuit.num_qubits
    num_physical = result.physical_qubits
    if num_physical > _SIMULATION_QUBIT_LIMIT:
        raise VerificationError(
            f"cannot simulate {num_physical} physical qubits densely "
            f"(limit {_SIMULATION_QUBIT_LIMIT})"
        )
    if method == "auto":
        method = (
            "unitary"
            if num_logical <= _AUTO_UNITARY_QUBIT_LIMIT
            else "statevector"
        )
    if method == "propagator" and ocu is None:
        raise VerificationError(
            "the propagator method synthesizes pulses and needs ocu="
        )
    if atol is None:
        atol = _DEFAULT_ATOL[method]

    nodes = result.schedule.ordered_nodes()
    initial = _mapping_array(result.initial_mapping, num_logical, num_physical)
    final = _mapping_array(result.final_mapping, num_logical, num_physical)
    unitary_of = _PulseRealizer(ocu) if method == "propagator" else None

    if method == "unitary":
        inputs = (
            _basis_state(index, num_logical)
            for index in range(2**num_logical)
        )
        count = 2**num_logical
    else:
        rng = np.random.default_rng(seed)
        inputs = (
            _random_state(rng, num_logical) for _ in range(max(1, states))
        )
        count = max(1, states)

    max_deviation = 0.0
    max_leakage = 0.0
    compiled_columns = [] if method == "unitary" else None
    reference_columns = [] if method == "unitary" else None
    equivalent = True
    for state in inputs:
        reference = _run_gates(state, circuit.gates, num_logical)
        physical = _embed_state(state, num_physical, initial)
        for node in nodes:
            physical = _apply_node(physical, node, num_physical, unitary_of)
        compiled, leakage = _extract_state(physical, num_logical, final)
        max_leakage = max(max_leakage, leakage)
        if compiled_columns is not None:
            compiled_columns.append(compiled)
            reference_columns.append(reference)
        else:
            deviation = _phase_aligned_deviation(compiled, reference)
            max_deviation = max(max_deviation, deviation)
    if compiled_columns is not None:
        # One *shared* global phase across every column: per-column
        # alignment would wave through relative-phase errors between
        # basis states, which are real bugs.
        max_deviation = _phase_aligned_deviation(
            np.stack(compiled_columns, axis=1),
            np.stack(reference_columns, axis=1),
        )
    equivalent = max_deviation <= atol and max_leakage <= atol

    report = EquivalenceReport(
        equivalent=equivalent,
        method=method,
        max_deviation=float(max_deviation),
        ancilla_leakage=float(max_leakage),
        states_checked=count,
        atol=float(atol),
        propagated_instructions=(
            unitary_of.propagated if unitary_of is not None else 0
        ),
        propagator_fallbacks=(
            unitary_of.fallbacks if unitary_of is not None else 0
        ),
        circuit_name=getattr(result, "circuit_name", "") or circuit.name,
        strategy_key=getattr(result, "strategy_key", ""),
        device_name=getattr(result, "device_name", None),
    )
    if raise_on_failure and not equivalent:
        raise VerificationError(
            f"compiled program is not equivalent to its source: "
            f"{report.summary()}"
        )
    return report


class VerifyEquivalencePass(Pass):
    """A pipeline pass that fails the compilation on semantic drift.

    Append it to any pipeline that ends in a schedule::

        pipeline = strategy.pipeline() + [VerifyEquivalencePass()]
        compile_with_pipeline(circuit, pipeline)

    Raises :class:`~repro.errors.VerificationError` when the compiled
    schedule does not implement the source circuit (set
    ``raise_on_failure=False`` to only record the verdict in the pass
    metrics).  Wall-clock accrues to a dedicated ``verification`` stage
    key.
    """

    stage = "verification"
    requires = ("schedule", "routing", "topology")
    preserves_gates = True

    def __init__(
        self,
        method: str = "auto",
        states: int = _DEFAULT_STATES,
        atol: float | None = None,
        seed: int = _DEFAULT_SEED,
        raise_on_failure: bool = True,
    ) -> None:
        if method not in _METHODS:
            raise VerificationError(
                f"unknown equivalence method {method!r}; use one of {_METHODS}"
            )
        self.method = method
        self.states = states
        self.atol = atol
        self.seed = seed
        self.raise_on_failure = raise_on_failure

    def run(self, context) -> None:
        context.require(
            "schedule", self.name, "run FinalSchedulePass first"
        )
        report = verify_equivalence(
            context.result(),
            context.circuit,
            method=self.method,
            states=self.states,
            atol=self.atol,
            seed=self.seed,
            ocu=context.ocu if self.method == "propagator" else None,
            raise_on_failure=False,
        )
        context.record_metrics(
            self.name,
            equivalent=report.equivalent,
            method=report.method,
            max_deviation=report.max_deviation,
            ancilla_leakage=report.ancilla_leakage,
            states_checked=report.states_checked,
        )
        if self.raise_on_failure and not report.equivalent:
            raise VerificationError(
                f"compiled program diverged from its source: "
                f"{report.summary()}"
            )


# ----------------------------------------------------------------------
# Frame conversion: logical <-> physical registers


def _mapping_array(
    mapping: dict[int, int], num_logical: int, num_physical: int
) -> list[int]:
    """Validated ``logical -> physical`` positions as a dense list."""
    try:
        positions = [int(mapping[q]) for q in range(num_logical)]
    except KeyError as missing:
        raise VerificationError(
            f"routing mapping is missing logical qubit {missing}"
        ) from None
    if len(set(positions)) != num_logical or any(
        not 0 <= p < num_physical for p in positions
    ):
        raise VerificationError(
            f"routing mapping {mapping} is not an injection into "
            f"{num_physical} physical qubits"
        )
    return positions


def _embed_state(
    state: np.ndarray, num_physical: int, mapping: list[int]
) -> np.ndarray:
    """Place a logical state on the physical register (ancillas |0>).

    Axis ``mapping[q]`` of the physical register carries logical qubit
    ``q``; the remaining cells hold ``|0>``.
    """
    num_logical = len(mapping)
    ancillas = num_physical - num_logical
    full = np.asarray(state, dtype=complex)
    if ancillas:
        zeros = np.zeros(2**ancillas, dtype=complex)
        zeros[0] = 1.0
        full = np.kron(full, zeros)
    free = [p for p in range(num_physical) if p not in set(mapping)]
    # Source axis order: logical 0..L-1, then ancillas on the free cells
    # in index order.  axes[destination] = source.
    axes = [0] * num_physical
    for logical, physical in enumerate(mapping):
        axes[physical] = logical
    for offset, physical in enumerate(free):
        axes[physical] = num_logical + offset
    return full.reshape([2] * num_physical).transpose(axes).reshape(-1)


def _extract_state(
    state: np.ndarray, num_logical: int, mapping: list[int]
) -> tuple[np.ndarray, float]:
    """Read the logical state back out of the physical register.

    Returns the (normalized-input-sized) logical amplitude vector from
    the ancilla-zero block and the norm of everything outside it.
    """
    num_physical = int(round(np.log2(state.size)))
    free = [p for p in range(num_physical) if p not in set(mapping)]
    order = list(mapping) + free
    tensor = np.asarray(state, dtype=complex).reshape([2] * num_physical)
    block = tensor.transpose(order).reshape(2**num_logical, -1)
    logical = np.array(block[:, 0])
    leakage = float(np.linalg.norm(block[:, 1:])) if block.shape[1] > 1 else 0.0
    return logical, leakage


# ----------------------------------------------------------------------
# Node execution


def _run_gates(state: np.ndarray, gates, num_qubits: int) -> np.ndarray:
    for gate in gates:
        state = apply_unitary(state, gate.matrix, gate.qubits, num_qubits)
    return state


def _apply_node(state, node, num_qubits: int, unitary_of=None) -> np.ndarray:
    """Apply one scheduled node (gate or aggregated instruction)."""
    if unitary_of is not None:
        realized = unitary_of(node)
        if realized is not None:
            return apply_unitary(state, realized, support_of(node), num_qubits)
    return _run_gates(state, gates_of(node), num_qubits)


class _PulseRealizer:
    """Realized unitaries of aggregated instructions via their pulses.

    Synthesizes each instruction's GRAPE pulse through the optimal-
    control unit and integrates it with the independent propagator; the
    returned unitary lives in instruction-local (sorted-support) qubit
    order, matching the OCU's local problems.  Plain gates and blocks
    wider than the GRAPE limit return None (caller applies ideal gates).
    """

    def __init__(self, ocu: OptimalControlUnit) -> None:
        self.ocu = ocu
        self.propagated = 0
        self.fallbacks = 0
        # Keyed by the node itself (nodes hash by identity, and the dict
        # keeps them alive), not by reusable id() integers.
        self._memo: dict[object, np.ndarray | None] = {}

    def __call__(self, node) -> np.ndarray | None:
        from repro.aggregation.instruction import AggregatedInstruction

        if not isinstance(node, AggregatedInstruction):
            return None
        if node in self._memo:
            return self._memo[node]
        support = support_of(node)
        if len(support) > self.ocu.grape_qubit_limit:
            self.fallbacks += 1
            self._memo[node] = None
            return None
        grape = self.ocu.synthesize_pulse(node)
        _, hamiltonian = self.ocu._local_problem(support, gates_of(node))
        realized = propagate_pulse(grape.pulse, hamiltonian)
        self.propagated += 1
        self._memo[node] = realized
        return realized


# ----------------------------------------------------------------------
# State comparison


def _basis_state(index: int, num_qubits: int) -> np.ndarray:
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def _random_state(rng: np.random.Generator, num_qubits: int) -> np.ndarray:
    dim = 2**num_qubits
    state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return state / np.linalg.norm(state)


def _phase_aligned_deviation(actual: np.ndarray, expected: np.ndarray) -> float:
    """Largest entry-wise deviation after optimal global-phase alignment.

    The phase is read off the largest-magnitude expected entry, so the
    estimate stays robust when many amplitudes are near zero.
    """
    expected = np.asarray(expected, dtype=complex)
    actual = np.asarray(actual, dtype=complex)
    pivot = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    reference = expected[pivot]
    if abs(reference) < 1e-12:
        return float(np.max(np.abs(actual)))
    phase = actual[pivot] / reference
    magnitude = abs(phase)
    if magnitude < 1e-12:
        return float(np.max(np.abs(actual - expected)))
    phase /= magnitude
    return float(np.max(np.abs(actual - phase * expected)))
