"""Pulse verification procedure (paper Sec. 3.6).

For each benchmark the paper samples 10 aggregated instructions and
checks that the optimal-control pulses produce the correct unitaries.
:func:`verify_sampled_instructions` reproduces that procedure with our
GRAPE backend and the independent propagator.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.control.unit import OptimalControlUnit, gates_of, support_of
from repro.errors import VerificationError
from repro.linalg.fidelity import unitary_trace_fidelity
from repro.verification.propagator import propagate_pulse


@dataclasses.dataclass
class VerificationResult:
    """Outcome of verifying one instruction's pulse."""

    label: str
    fidelity: float
    threshold: float

    @property
    def passed(self) -> bool:
        return self.fidelity >= self.threshold


def verify_pulse(
    pulse,
    hamiltonian,
    target: np.ndarray,
    threshold: float = 0.99,
    label: str = "pulse",
) -> VerificationResult:
    """Propagate a pulse independently and compare against a target."""
    realized = propagate_pulse(pulse, hamiltonian)
    fidelity = unitary_trace_fidelity(target, realized)
    return VerificationResult(label=label, fidelity=fidelity, threshold=threshold)


def verify_instruction(
    node,
    ocu: OptimalControlUnit,
    threshold: float = 0.99,
) -> VerificationResult:
    """Synthesize a pulse for a node and verify it end to end."""
    grape_result = ocu.synthesize_pulse(node)
    support = support_of(node)
    target, hamiltonian = ocu._local_problem(support, gates_of(node))
    label = getattr(node, "name", repr(node))
    return verify_pulse(
        grape_result.pulse, hamiltonian, target, threshold, label=label
    )


def verify_sampled_instructions(
    nodes,
    ocu: OptimalControlUnit,
    sample_size: int = 10,
    threshold: float = 0.99,
    seed: int = 20190413,
) -> list[VerificationResult]:
    """Verify a random sample of instructions (the paper samples 10).

    Only instructions within the OCU's GRAPE width limit participate;
    raises VerificationError when none qualify.
    """
    rng = np.random.default_rng(seed)
    eligible = [
        node
        for node in nodes
        if len(set(node.qubits)) <= ocu.grape_qubit_limit
    ]
    if not eligible:
        raise VerificationError("no instruction fits the GRAPE width limit")
    if len(eligible) > sample_size:
        indices = rng.choice(len(eligible), size=sample_size, replace=False)
        eligible = [eligible[int(i)] for i in indices]
    return [verify_instruction(node, ocu, threshold) for node in eligible]
