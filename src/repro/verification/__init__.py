"""Verification: sampled pulse checks and whole-program equivalence."""

from repro.verification.equivalence import (
    EquivalenceReport,
    VerifyEquivalencePass,
    verify_equivalence,
)
from repro.verification.propagator import propagate_pulse
from repro.verification.verify import (
    VerificationResult,
    verify_instruction,
    verify_pulse,
    verify_sampled_instructions,
)

__all__ = [
    "EquivalenceReport",
    "VerificationResult",
    "VerifyEquivalencePass",
    "propagate_pulse",
    "verify_equivalence",
    "verify_instruction",
    "verify_pulse",
    "verify_sampled_instructions",
]
