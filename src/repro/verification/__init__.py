"""Verification of synthesized pulses against their target unitaries."""

from repro.verification.propagator import propagate_pulse
from repro.verification.verify import (
    VerificationResult,
    verify_instruction,
    verify_pulse,
    verify_sampled_instructions,
)

__all__ = [
    "VerificationResult",
    "propagate_pulse",
    "verify_instruction",
    "verify_pulse",
    "verify_sampled_instructions",
]
