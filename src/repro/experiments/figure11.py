"""Figure 11: spatial locality vs aggregation benefit.

The three MAXCUT instances share the same instruction mix after CLS
(CNOT-Rz-CNOT diagonal blocks plus 1-qubit gates); they differ in spatial
locality, hence in inserted SWAPs.  The paper normalizes each instance's
aggregated latency to its own CLS latency and finds that *lower* locality
leaves *more* room for aggregation: line ~0.8, reg4 ~0.65, cluster ~0.5.
"""

from __future__ import annotations

import dataclasses

from repro.benchmarks.registry import benchmark_by_key
from repro.compiler.batch import BatchCompiler, BatchJob, resolve_engine
from repro.compiler.strategies import CLS, CLS_AGGREGATION
from repro.control.unit import OptimalControlUnit

MAXCUT_INSTANCES = ("maxcut-line-20", "maxcut-reg4-30", "maxcut-cluster-30")
MAXCUT_INSTANCES_SMALL = ("maxcut-line-6", "maxcut-reg4-8", "maxcut-cluster-8")


@dataclasses.dataclass
class Figure11Row:
    """One MAXCUT instance: aggregated latency normalized to CLS."""

    benchmark: str
    locality: str
    cls_latency_ns: float
    aggregated_latency_ns: float
    swap_count: int

    @property
    def normalized(self) -> float:
        return self.aggregated_latency_ns / self.cls_latency_ns


def run_figure11(
    scale: str = "paper",
    ocu: OptimalControlUnit | None = None,
    engine: BatchCompiler | None = None,
    max_workers: int | None = None,
) -> list[Figure11Row]:
    """Measure the three MAXCUT instances (one batch of six jobs)."""
    engine = resolve_engine(engine, ocu, max_workers)
    keys = MAXCUT_INSTANCES if scale == "paper" else MAXCUT_INSTANCES_SMALL
    locality_labels = ("high", "medium", "low")
    jobs: list[BatchJob] = []
    for key in keys:
        circuit = benchmark_by_key(key, scale=scale).build()
        jobs.append(BatchJob(circuit=circuit, strategy=CLS, label=f"{key}/cls"))
        jobs.append(
            BatchJob(
                circuit=circuit,
                strategy=CLS_AGGREGATION,
                label=f"{key}/cls+aggregation",
            )
        )
    report = engine.compile_batch(jobs)
    rows: list[Figure11Row] = []
    for position, (key, locality) in enumerate(zip(keys, locality_labels)):
        cls_result = report.results[2 * position]
        aggregated = report.results[2 * position + 1]
        rows.append(
            Figure11Row(
                benchmark=key,
                locality=locality,
                cls_latency_ns=cls_result.latency_ns,
                aggregated_latency_ns=aggregated.latency_ns,
                swap_count=aggregated.swap_count,
            )
        )
    return rows


def format_figure11(rows: list[Figure11Row]) -> str:
    """Paper-style text table."""
    lines = [
        "Figure 11: aggregated latency normalized to each instance's CLS",
        f"{'instance':22s} {'locality':>9s} {'normalized':>11s} {'swaps':>6s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:22s} {row.locality:>9s} {row.normalized:11.3f} "
            f"{row.swap_count:6d}"
        )
    lines.append(
        "paper shape: lower locality -> lower normalized latency "
        "(line highest, cluster lowest)"
    )
    return "\n".join(lines)
