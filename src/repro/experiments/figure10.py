"""Figure 10: allowed instruction width vs normalized latency.

For three parallel applications (MAXCUT, Ising) and three serial ones
(square root, UCCSD), the paper sweeps the maximum aggregated-instruction
width from 2 to 10 and plots (a) total circuit latency normalized to the
ISA baseline (black line) and (b) the band between the least- and
most-optimized instruction on the critical path (filled area).  Parallel
applications saturate at small widths; serial ones keep improving until
the optimal-control scalability limit.
"""

from __future__ import annotations

import dataclasses

from repro.benchmarks.registry import benchmark_by_key
from repro.compiler.batch import BatchCompiler, BatchJob, resolve_engine
from repro.compiler.strategies import CLS_AGGREGATION, ISA
from repro.control.unit import OptimalControlUnit

PARALLEL_BENCHMARKS = ("maxcut-line-20", "maxcut-reg4-30", "ising-30")
SERIAL_BENCHMARKS = ("sqrt-17", "uccsd-4", "uccsd-6-b")


@dataclasses.dataclass
class Figure10Point:
    """One width setting of one benchmark."""

    width: int
    normalized_latency: float
    least_optimized: float
    most_optimized: float


@dataclasses.dataclass
class Figure10Series:
    """The width sweep of one benchmark."""

    benchmark: str
    classification: str  # "parallel" | "serial"
    points: list[Figure10Point]

    def saturation_width(self, tolerance: float = 0.02) -> int:
        """Smallest width within ``tolerance`` of the final latency."""
        final = self.points[-1].normalized_latency
        for point in self.points:
            if point.normalized_latency <= final * (1 + tolerance):
                return point.width
        return self.points[-1].width


def run_figure10(
    benchmarks: dict[str, str] | None = None,
    widths: range | None = None,
    scale: str = "paper",
    ocu: OptimalControlUnit | None = None,
    engine: BatchCompiler | None = None,
    max_workers: int | None = None,
) -> list[Figure10Series]:
    """Sweep the allowed instruction width per benchmark (batched).

    Every (benchmark, width) pair plus each benchmark's ISA baseline is
    one independent job; the whole sweep runs as a single batch over the
    engine's shared cache.

    Args:
        benchmarks: Map benchmark key -> "parallel"/"serial"; defaults to
            the paper's six applications.
        widths: Width settings to sweep; default the paper's 2..10.
        scale: Suite scale.
        ocu: Shared latency oracle (wrapped by the engine when given).
        engine: Batch engine (shared, possibly disk-persistent cache).
        max_workers: Worker threads when no engine is passed.
    """
    if widths is None:
        widths = range(2, 11)
    if benchmarks is None:
        benchmarks = {key: "parallel" for key in PARALLEL_BENCHMARKS}
        benchmarks.update({key: "serial" for key in SERIAL_BENCHMARKS})
    engine = resolve_engine(engine, ocu, max_workers)
    widths = list(widths)
    jobs: list[BatchJob] = []
    for key in benchmarks:
        spec = benchmark_by_key(key, scale=scale)
        circuit = spec.build()
        jobs.append(
            BatchJob(circuit=circuit, strategy=ISA, label=f"{key}/isa")
        )
        jobs.extend(
            BatchJob(
                circuit=circuit,
                strategy=CLS_AGGREGATION,
                width_limit=width,
                label=f"{key}/w{width}",
            )
            for width in widths
        )
    report = engine.compile_batch(jobs)
    band_ocu = engine.make_ocu()
    series: list[Figure10Series] = []
    cursor = 0
    for key, classification in benchmarks.items():
        baseline = report.results[cursor]
        cursor += 1
        points: list[Figure10Point] = []
        for width in widths:
            result = report.results[cursor]
            cursor += 1
            least, most = _critical_path_optimization_band(result, band_ocu)
            points.append(
                Figure10Point(
                    width=width,
                    normalized_latency=result.latency_ns / baseline.latency_ns,
                    least_optimized=least,
                    most_optimized=most,
                )
            )
        series.append(
            Figure10Series(
                benchmark=key, classification=classification, points=points
            )
        )
    return series


def _critical_path_optimization_band(result, ocu) -> tuple[float, float]:
    """Min/max pulse-optimization ratio among critical-path instructions.

    The ratio compares each instruction's single-pulse latency to the
    serial per-gate latency of its members: 1.0 means no optimization,
    smaller is more optimized (the paper's filled band edges).
    """
    if not len(result.schedule):
        return 1.0, 1.0
    makespan = result.schedule.makespan
    ratios = []
    for operation in result.schedule:
        if abs(operation.end - makespan) > 1e-6:
            continue  # keep only instructions finishing on the horizon
        node = operation.node
        gates = getattr(node, "gates", None)
        if not gates:
            ratios.append(1.0)
            continue
        serial = sum(ocu.latency(gate) for gate in gates)
        if serial <= 0:
            continue
        ratios.append(operation.duration / serial)
    if not ratios:
        return 1.0, 1.0
    return max(ratios), min(ratios)


def format_figure10(series: list[Figure10Series]) -> str:
    """Paper-style text series."""
    lines = ["Figure 10: allowed instruction width vs normalized latency"]
    for entry in series:
        lines.append(f"\n{entry.benchmark} ({entry.classification})")
        lines.append(
            f"{'width':>6s} {'latency':>9s} {'least-opt':>10s} {'most-opt':>9s}"
        )
        for point in entry.points:
            lines.append(
                f"{point.width:6d} {point.normalized_latency:9.3f} "
                f"{point.least_optimized:10.3f} {point.most_optimized:9.3f}"
            )
        lines.append(f"saturates at width {entry.saturation_width()}")
    return "\n".join(lines)
