"""Table 3: the benchmark suite with its program characteristics.

Reproduces the qualitative Table 3 labels from quantitative metrics
computed on the actual circuits.
"""

from __future__ import annotations

import dataclasses

from repro.benchmarks.registry import (
    circuit_characteristics,
    classify,
    table3_suite,
)

_PARALLELISM_THRESHOLDS = (0.10, 0.35)
_LOCALITY_THRESHOLDS = (0.35, 0.50)
_COMMUTATIVITY_THRESHOLDS = (0.30, 0.55)


@dataclasses.dataclass
class Table3Row:
    """One benchmark with measured and paper-reported characteristics."""

    key: str
    purpose: str
    qubits: int
    gates: int
    parallelism: float
    spatial_locality: float
    commutativity: float
    paper_parallelism: str
    paper_locality: str
    paper_commutativity: str

    @property
    def parallelism_label(self) -> str:
        return classify(self.parallelism, *_PARALLELISM_THRESHOLDS)

    @property
    def locality_label(self) -> str:
        return classify(self.spatial_locality, *_LOCALITY_THRESHOLDS)

    @property
    def commutativity_label(self) -> str:
        return classify(self.commutativity, *_COMMUTATIVITY_THRESHOLDS)


def run_table3(scale: str = "paper") -> list[Table3Row]:
    """Build every benchmark and measure its characteristics."""
    rows = []
    for spec in table3_suite(scale):
        circuit = spec.build()
        traits = circuit_characteristics(circuit)
        rows.append(
            Table3Row(
                key=spec.key,
                purpose=spec.purpose,
                qubits=circuit.num_qubits,
                gates=len(circuit),
                parallelism=traits["parallelism"],
                spatial_locality=traits["spatial_locality"],
                commutativity=traits["commutativity"],
                paper_parallelism=spec.parallelism,
                paper_locality=spec.spatial_locality,
                paper_commutativity=spec.commutativity,
            )
        )
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    """Paper-style text table with measured labels beside paper labels."""
    lines = [
        "Table 3: benchmarks (measured label / paper label)",
        f"{'benchmark':20s} {'qb':>3s} {'gates':>6s} "
        f"{'parallel':>12s} {'locality':>12s} {'commute':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row.key:20s} {row.qubits:3d} {row.gates:6d} "
            f"{row.parallelism_label + '/' + row.paper_parallelism:>12s} "
            f"{row.locality_label + '/' + row.paper_locality:>12s} "
            f"{row.commutativity_label + '/' + row.paper_commutativity:>12s}"
        )
    return "\n".join(lines)
