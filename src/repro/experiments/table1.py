"""Table 1: per-gate pulse times and the aggregated G1-G5 instructions.

The paper's Table 1 reports optimal-control pulse times for the standard
gates of the Figure 4 QAOA example (gamma = 5.67, beta = 1.26) and for
the aggregated instructions G1-G5 produced by the compiler.  The exact
gate membership of each G is read off the paper's Figure 6(d); where the
figure is ambiguous we document our reading in the row label.
"""

from __future__ import annotations

import dataclasses

from repro.benchmarks.qaoa import PAPER_BETA, PAPER_GAMMA
from repro.compiler.batch import BatchCompiler
from repro.control.unit import OptimalControlUnit
from repro.gates import library as lib
from repro.aggregation.instruction import AggregatedInstruction


@dataclasses.dataclass
class Table1Row:
    """One Table 1 entry: paper time vs measured time (ns)."""

    label: str
    paper_ns: float
    measured_ns: float

    @property
    def ratio(self) -> float:
        return self.measured_ns / self.paper_ns if self.paper_ns else 0.0


def _rows_spec():
    gamma, beta = PAPER_GAMMA, PAPER_BETA
    zz_block = [
        lib.CNOT(0, 1),
        lib.RZ(2 * gamma, 1),
        lib.CNOT(0, 1),
    ]
    return [
        ("CNOT", 47.1, [lib.CNOT(0, 1)]),
        ("SWAP", 50.1, [lib.SWAP(0, 1)]),
        ("H", 13.7, [lib.H(0)]),
        ("Rz(2g)", 9.8, [lib.RZ(2 * gamma, 0)]),
        ("Rx(2b)", 6.1, [lib.RX(2 * beta, 0)]),
        (
            "G1 (H,H + CNOT-Rz-CNOT)",
            54.9,
            [lib.H(0), lib.H(1)] + zz_block,
        ),
        ("G2 (H)", 13.7, [lib.H(0)]),
        ("G3 (CNOT-Rz-CNOT)", 42.0, list(zz_block)),
        (
            "G4 (SWAP + Rz folded)",
            31.4,
            [lib.SWAP(0, 1), lib.RZ(2 * gamma, 0), lib.RZ(2 * gamma, 1)],
        ),
        ("G5 (Rx)", 6.1, [lib.RX(2 * beta, 0)]),
    ]


def run_table1(
    ocu: OptimalControlUnit | None = None,
    engine: BatchCompiler | None = None,
) -> list[Table1Row]:
    """Measure every Table 1 entry with the optimal-control unit.

    Pass a ``backend="grape"`` unit to reproduce the table with real
    pulse optimization (slower); the default analytic model is the
    calibrated stand-in.  When ``engine`` is given (and no ``ocu``), the
    unit is bound to the engine's shared cache, so a warm persistent
    cache answers every row without recomputation.
    """
    if ocu is None:
        ocu = (
            engine.make_ocu()
            if engine is not None
            else OptimalControlUnit(backend="model")
        )
    rows = []
    for label, paper_ns, gates in _rows_spec():
        if len(gates) == 1:
            node = gates[0]
        else:
            node = AggregatedInstruction(gates, name=label)
        rows.append(
            Table1Row(
                label=label,
                paper_ns=paper_ns,
                measured_ns=ocu.latency(node),
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Paper-style text table."""
    lines = [
        "Table 1: instruction pulse times (ns)",
        f"{'instruction':28s} {'paper':>8s} {'measured':>9s} {'ratio':>6s}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:28s} {row.paper_ns:8.1f} {row.measured_ns:9.1f} "
            f"{row.ratio:6.2f}"
        )
    return "\n".join(lines)
