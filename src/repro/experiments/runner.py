"""Run every experiment and print a paper-style report.

All compilations go through the batch engine, which fans independent
(circuit, strategy) jobs across worker threads and shares one pulse/latency
cache.  Pass ``--cache PATH`` to persist that cache on disk: the first run
pays for every optimal-control query, subsequent runs answer them from the
cache and the whole sweep completes dramatically faster.  The cache can
also be *shared across processes and machines*: ``--cache DIR
--cache-shards N`` mounts a lock-protected sharded directory store many
concurrent runners warm together, and ``--cache-url HOST:PORT`` connects
to a ``python -m repro.control.cache_server`` fleet cache; either way
every distinct pulse is synthesized once fleet-wide and the exit bill
prints a one-line cache summary.

The Figure 9 sweep also regenerates on any registered device: pass
``--device`` (repeatable) with a preset key — ``paper-grid-NxM``,
``line-N``, ``ring-N``, ``heavy-hex-D``, ``all-to-all-N``, or a key
added via :func:`repro.device.register_device` — and the sweep compiles
onto that coupling graph instead of the paper's auto-sized grid.

Compiled artifacts can leave the process: ``--save-artifacts DIR``
writes every Figure 9 compilation result as a versioned JSON artifact
(:mod:`repro.ir` wire format, source circuit embedded), and
``--load-artifacts DIR`` re-reads a directory of artifacts *without
recompiling*, re-verifies each against its embedded source circuit, and
reprints the Figure 9 table from the loaded results.  ``--executor
process`` fans batch jobs across worker processes instead of threads,
which sidesteps the GIL on multi-core machines.  ``--submit-url
HOST:PORT`` skips local compilation entirely: the sweep's jobs are
submitted to a resident compile service (``python -m repro.service``),
polled to completion, downloaded, and re-verified locally.

Usage::

    python -m repro.experiments.runner --scale small
    python -m repro.experiments.runner --experiment figure9 --scale paper
    python -m repro.experiments.runner --cache results/pulse_cache --workers 4
    python -m repro.experiments.runner --experiment figure9 --scale small \\
        --device ring-6 --device heavy-hex-1 --benchmarks maxcut-line-6
    python -m repro.experiments.runner --experiment figure9 --scale small \\
        --save-artifacts results/artifacts --executor process
    python -m repro.experiments.runner --load-artifacts results/artifacts
    python -m repro.experiments.runner --scale small \\
        --submit-url 127.0.0.1:7788 --benchmarks maxcut-line-6
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import threading
import time
from collections import defaultdict

from repro.compiler.batch import BatchCompiler, resolve_engine
from repro.compiler.result import CompilationResult
from repro.control.cache import cache_summary, resolve_cache
from repro.control.unit import OptimalControlUnit
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure9 import Figure9Row, format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import format_table3, run_table3

_EXPERIMENTS = ("table1", "table3", "figure4", "figure9", "figure10", "figure11")


class PassProfiler:
    """Cumulative per-pass compile time across every batch of a run.

    Plugs into the engine's ``pass_callbacks`` hook — the same
    per-pass instrumentation that feeds ``BatchReport.pass_seconds`` —
    so one profiler sees every compilation of every experiment.
    Thread-safe: worker threads report passes concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def __call__(self, pass_, context, elapsed: float) -> None:
        with self._lock:
            name = pass_.name
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def format_table(self) -> str:
        """The profile as a printable table, most expensive pass first."""
        with self._lock:
            totals = sorted(
                self.seconds.items(), key=lambda item: item[1], reverse=True
            )
            calls = dict(self.calls)
        if not totals:
            return "pass profile: no compilations ran"
        accounted = sum(value for _, value in totals)
        width = max(len(name) for name, _ in totals)
        lines = [f"{'pass':<{width}}  seconds  share   calls"]
        for name, value in totals:
            share = value / accounted if accounted else 0.0
            lines.append(
                f"{name:<{width}}  {value:7.3f}  {share:5.1%}  "
                f"{calls[name]:6d}"
            )
        lines.append(f"{'total':<{width}}  {accounted:7.3f}")
        return "\n".join(lines)


def run_experiment(
    name: str,
    scale: str,
    ocu: OptimalControlUnit | None = None,
    engine: BatchCompiler | None = None,
    strategies: list[str] | None = None,
    devices: list[str] | None = None,
    benchmarks: list[str] | None = None,
    artifact_dir: str | None = None,
) -> str:
    """Run one experiment by name, returning its formatted report.

    ``strategies`` restricts the Figure 9 sweep to the named registered
    strategy keys (built-in or custom), ``benchmarks`` to a subset of
    the Table 3 suite, and ``devices`` reruns the sweep once per named
    device preset; ``artifact_dir`` saves every Figure 9 compilation
    result there as a JSON artifact.  Other experiments ignore all four.
    """
    engine = resolve_engine(engine, ocu)
    if name == "table1":
        return format_table1(run_table1(engine=engine))
    if name == "table3":
        return format_table3(run_table3(scale=scale))
    if name == "figure4":
        return format_figure4(run_figure4(ocu=engine.make_ocu()))
    if name == "figure9":
        reports = []
        for device in devices or [None]:
            rows = run_figure9(
                scale=scale,
                engine=engine,
                strategies=strategies,
                benchmark_keys=benchmarks,
                device=device,
            )
            if artifact_dir is not None:
                written = save_figure9_artifacts(rows, artifact_dir)
                reports.append(
                    format_figure9(rows)
                    + f"\n[{written} artifacts -> {artifact_dir}]"
                )
            else:
                reports.append(format_figure9(rows))
        return "\n\n".join(reports)
    if name == "figure10":
        if scale == "small":
            width_sweep_benchmarks = {
                "maxcut-line-6": "parallel",
                "ising-6": "parallel",
                "sqrt-9": "serial",
                "uccsd-4": "serial",
            }
            return format_figure10(
                run_figure10(
                    benchmarks=width_sweep_benchmarks,
                    widths=range(2, 7),
                    scale=scale,
                    engine=engine,
                )
            )
        return format_figure10(run_figure10(scale=scale, engine=engine))
    if name == "figure11":
        return format_figure11(run_figure11(scale=scale, engine=engine))
    raise ValueError(f"unknown experiment {name!r}")


def artifact_filename(result: CompilationResult) -> str:
    """Deterministic artifact name for one result.

    ``<circuit>__<strategy>[__<device>].json`` with path separators
    sanitized, so a sweep's artifacts land as a flat, greppable set.
    """
    parts = [result.circuit_name, result.strategy_key]
    if result.device_name:
        parts.append(result.device_name)
    stem = "__".join(part.replace("/", "-").replace(os.sep, "-") for part in parts)
    return f"{stem}.json"


def save_figure9_artifacts(rows, directory: str | os.PathLike) -> int:
    """Persist every result of a Figure 9 sweep; returns files written."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    written = 0
    for row in rows:
        for result in row.results.values():
            result.save(os.path.join(directory, artifact_filename(result)))
            written += 1
    return written


def load_artifacts_report(directory: str | os.PathLike) -> tuple[str, bool]:
    """Reload a directory of result artifacts without recompiling.

    Every ``*.json`` artifact is loaded, re-verified against its
    embedded source circuit (artifacts saved without one are reported
    as unverifiable, not failed), and regrouped into Figure 9 rows.

    Returns:
        ``(report_text, ok)`` — ``ok`` is False when any artifact fails
        verification or cannot be read.
    """
    directory = os.fspath(directory)
    names = sorted(
        name for name in os.listdir(directory) if name.endswith(".json")
    )
    if not names:
        return f"no .json artifacts in {directory}", False
    loaded: list[CompilationResult] = []
    lines = [f"loaded artifacts from {directory}:"]
    ok = True
    unverified = 0
    for name in names:
        path = os.path.join(directory, name)
        try:
            result = CompilationResult.load(path)
        except Exception as error:  # corrupt artifact: report, keep going
            lines.append(f"  {name}: UNREADABLE ({error})")
            ok = False
            continue
        if result.source_circuit is None:
            unverified += 1
            lines.append(f"  {result.summary()} [no source circuit]")
        else:
            report = result.verify_equivalence()
            if not report:
                ok = False
            lines.append(
                f"  {result.summary()} "
                f"[{'verified' if report else 'VERIFICATION FAILED'}]"
            )
        loaded.append(result)

    # Regroup into Figure 9 rows per (device, circuit) so the loaded
    # artifacts reprint as the same table the sweep produced.  Rows of
    # one table must share a strategy-key set (the formatter indexes
    # every row by the first row's keys), so each device's table is
    # restricted to the strategies present in all of its rows — a
    # directory mixing sweeps, or one with an unreadable artifact,
    # still prints instead of crashing.
    grouped: dict[tuple, dict[str, CompilationResult]] = defaultdict(dict)
    for result in loaded:
        grouped[(result.device_name, result.circuit_name)][
            result.strategy_key
        ] = result
    rows = [
        Figure9Row(
            benchmark=circuit_name,
            qubits=next(iter(cells.values())).logical_qubits,
            latencies_ns={k: r.latency_ns for k, r in cells.items()},
            seconds={},
            swap_counts={k: r.swap_count for k, r in cells.items()},
            device=device_name,
            results=dict(cells),
        )
        for (device_name, circuit_name), cells in sorted(
            grouped.items(), key=lambda item: (item[0][0] or "", item[0][1])
        )
    ]
    by_device: dict[str | None, list[Figure9Row]] = defaultdict(list)
    for row in rows:
        by_device[row.device].append(row)
    for device_rows in by_device.values():
        common = set(device_rows[0].latencies_ns)
        for row in device_rows[1:]:
            common &= set(row.latencies_ns)
        if not common:
            lines.append("")
            lines.append(
                "(rows share no common strategy; no table for device "
                f"{device_rows[0].device or 'auto-sized grid'})"
            )
            continue
        table_rows = [
            dataclasses.replace(
                row,
                latencies_ns={
                    k: v for k, v in row.latencies_ns.items() if k in common
                },
                swap_counts={
                    k: v for k, v in row.swap_counts.items() if k in common
                },
            )
            for row in device_rows
        ]
        lines.append("")
        lines.append(format_figure9(table_rows))
    verdict = "all verified" if ok else "FAILURES above"
    if unverified:
        verdict += f" ({unverified} without source circuits)"
    lines.append("")
    lines.append(f"{len(loaded)} artifacts: {verdict}")
    return "\n".join(lines), ok


def submit_report(
    url: str,
    scale: str = "small",
    strategies: list[str] | None = None,
    benchmarks: list[str] | None = None,
    timeout: float = 600.0,
) -> tuple[str, bool]:
    """Run the Figure 9 sweep through a remote compile service.

    Instead of compiling in-process, every (benchmark, strategy) job is
    submitted to a ``python -m repro.service`` server (honoring
    backpressure hints on a full queue), polled to completion, and the
    downloaded artifacts are re-verified locally against their embedded
    source circuits before the table prints — the wire round trip is
    part of what is being checked.

    Returns:
        ``(report_text, ok)`` — ``ok`` is False when any job failed or
        any downloaded artifact failed verification.
    """
    from repro.benchmarks.registry import table3_suite
    from repro.compiler.batch import BatchJob
    from repro.compiler.strategies import all_strategies, strategy_by_key
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    strategy_keys = (
        [strategy_by_key(key).key for key in strategies]
        if strategies
        else [strategy.key for strategy in all_strategies()]
    )
    suite = table3_suite(scale)
    specs = [
        spec for spec in suite if not benchmarks or spec.key in benchmarks
    ]
    lines = [f"submitting {len(specs) * len(strategy_keys)} jobs to {url}:"]
    ok = True
    with ServiceClient(url) as client:
        client.ping()
        submitted: list[tuple[str, str, str, object]] = []
        for spec in specs:
            circuit = spec.build()
            for key in strategy_keys:
                job = BatchJob(
                    circuit=circuit,
                    strategy=key,
                    label=f"{spec.key}/{key}",
                )
                job_id = client.submit_retrying(job)
                submitted.append((spec.key, key, job_id, circuit))
        by_benchmark: dict[str, dict[str, CompilationResult]] = defaultdict(dict)
        for benchmark, key, job_id, circuit in submitted:
            try:
                result = client.wait(job_id, timeout=timeout)
            except ServiceError as error:
                lines.append(f"  {benchmark}/{key}: FAILED ({error})")
                ok = False
                continue
            report = result.verify_equivalence(circuit=circuit)
            if not report:
                lines.append(f"  {benchmark}/{key}: VERIFICATION FAILED")
                ok = False
                continue
            by_benchmark[benchmark][key] = result
        stats = client.stats()
    rows = [
        Figure9Row(
            benchmark=benchmark,
            qubits=next(iter(cells.values())).logical_qubits,
            latencies_ns={k: r.latency_ns for k, r in cells.items()},
            seconds={},
            swap_counts={k: r.swap_count for k, r in cells.items()},
            results=dict(cells),
        )
        for benchmark, cells in by_benchmark.items()
        if len(cells) == len(strategy_keys)
    ]
    if rows:
        lines.append("")
        lines.append(format_figure9(rows))
    verified = sum(len(cells) for cells in by_benchmark.values())
    lines.append("")
    lines.append(
        f"{verified}/{len(submitted)} artifacts verified; server: "
        f"{stats['completed']} jobs completed, "
        f"{stats['cache'].get('store_hits', 0)} cache store hits"
    )
    return "\n".join(lines), ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        choices=_EXPERIMENTS + ("all",),
        default="all",
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="benchmark sizes: the paper's or fast reduced instances",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent pulse cache: a stem (writes PATH.json / PATH.npz) "
        "or, with --cache-shards or an existing sharded layout, a "
        "directory many processes can share; warm runs skip recomputing "
        "cached latencies and pulses",
    )
    parser.add_argument(
        "--cache-shards",
        type=int,
        default=None,
        metavar="N",
        help="shard --cache PATH into N lock-protected shard files so "
        "concurrent runner processes share one warm store (default when "
        "PATH is already a sharded directory: its pinned count)",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT",
        help="share the pulse cache fleet-wide through a cache server "
        "(python -m repro.control.cache_server); overrides --cache",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU eviction budget for the local cache store, in bytes",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="batch workers (default: one per CPU)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="batch worker pool: threads (shared cache, GIL-bound) or "
        "processes (serialized jobs, GIL-free on multi-core machines)",
    )
    parser.add_argument(
        "--backend",
        choices=("model", "grape"),
        default="model",
        help="optimal-control backend: the analytic latency model "
        "(fast) or GRAPE pulse synthesis (the paper's full pipeline)",
    )
    parser.add_argument(
        "--prewarm",
        choices=("auto", "on", "off"),
        default="auto",
        help="batch pre-warm planner: dry-run each sweep against the "
        "analytic model, synthesize every distinct control problem "
        "exactly once across workers, then compile warm (auto: only "
        "with --backend grape, where synthesis dominates)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cumulative per-pass compile-time table when the "
        "run finishes (the batch engine's per-pass instrumentation, "
        "summed over every compilation; requires --executor thread)",
    )
    parser.add_argument(
        "--verify-ir",
        action="store_true",
        help="verify compiler IR between passes on every compilation "
        "(repro.analysis rule packs); an invariant break aborts with the "
        "offending pass and rule IDs instead of a corrupt result",
    )
    parser.add_argument(
        "--save-artifacts",
        default=None,
        metavar="DIR",
        help="write every figure9 compilation result to DIR as versioned "
        "JSON artifacts (repro.ir wire format, source circuit embedded)",
    )
    parser.add_argument(
        "--load-artifacts",
        default=None,
        metavar="DIR",
        help="skip compiling: reload artifacts from DIR, re-verify each "
        "against its embedded source circuit, and reprint the figure9 "
        "table; exits nonzero on verification failure",
    )
    parser.add_argument(
        "--strategies",
        default=None,
        metavar="KEY[,KEY...]",
        help="comma-separated strategy keys for the figure9 sweep "
        "(built-in or registered via register_strategy); default: all five",
    )
    parser.add_argument(
        "--device",
        action="append",
        default=None,
        metavar="KEY",
        help="device preset for the figure9 sweep (paper-grid-NxM, line-N, "
        "ring-N, heavy-hex-D, all-to-all-N, or a registered key); "
        "repeatable — the sweep reruns once per device; default: the "
        "paper's auto-sized grid",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        metavar="KEY[,KEY...]",
        help="comma-separated benchmark keys restricting the figure9 "
        "sweep to a subset of the Table 3 suite",
    )
    parser.add_argument(
        "--submit-url",
        default=None,
        metavar="HOST:PORT",
        help="skip local compilation: submit the figure9 sweep to a "
        "compile service (python -m repro.service), honor its "
        "backpressure, download and re-verify every artifact, and print "
        "the table from the returned results; exits nonzero on any "
        "failed job or verification",
    )
    args = parser.parse_args(argv)
    if args.load_artifacts:
        report, ok = load_artifacts_report(args.load_artifacts)
        print(report)
        return 0 if ok else 1
    strategies = (
        [key.strip() for key in args.strategies.split(",") if key.strip()]
        if args.strategies
        else None
    )
    benchmarks = (
        [key.strip() for key in args.benchmarks.split(",") if key.strip()]
        if args.benchmarks
        else None
    )
    if args.submit_url:
        report, ok = submit_report(
            args.submit_url,
            scale=args.scale,
            strategies=strategies,
            benchmarks=benchmarks,
        )
        print(report)
        return 0 if ok else 1
    if args.profile and args.executor == "process":
        parser.error(
            "--profile needs --executor thread (per-pass hooks cannot "
            "cross a process boundary)"
        )
    profiler = PassProfiler() if args.profile else None
    cache = resolve_cache(
        path=args.cache,
        url=args.cache_url,
        shards=args.cache_shards,
        max_bytes=args.cache_max_bytes,
    )
    engine = BatchCompiler(
        cache=cache,
        backend=args.backend,
        max_workers=args.workers,
        executor=args.executor,
        verify_ir=args.verify_ir,
        prewarm={"auto": "auto", "on": True, "off": False}[args.prewarm],
        pass_callbacks=[profiler] if profiler is not None else (),
    )
    if cache is not None and getattr(cache, "loaded_entries", 0):
        print(f"[warm cache: {cache.loaded_entries} entries from {args.cache}]")
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    try:
        for name in names:
            started = time.perf_counter()
            report = run_experiment(
                name,
                args.scale,
                engine=engine,
                strategies=strategies,
                devices=args.device,
                benchmarks=benchmarks,
                artifact_dir=args.save_artifacts,
            )
            elapsed = time.perf_counter() - started
            print(report)
            print(f"[{name} finished in {elapsed:.1f}s]\n")
    finally:
        if profiler is not None:
            print(profiler.format_table())
        info = engine.lifetime_info
        if info["grape_calls"] or info["grape_wall_seconds"]:
            print(
                f"[grape: {info['grape_calls']:.0f} syntheses, "
                f"{info['grape_evals']:.0f} model evaluations, "
                f"{info['grape_wall_seconds']:.1f}s wall"
                + (
                    f"; prewarm solved {info['prewarm_synthesized']:.0f}"
                    if info["prewarm_synthesized"]
                    else ""
                )
                + "]"
            )
        # Persist even when a sweep dies halfway: hours of paper-scale
        # optimal-control work must survive for the next warm run.
        if cache is not None:
            written = engine.save_cache()
            destination = args.cache_url or args.cache
            print(f"[cache saved: {written} entries -> {destination}]")
            print(f"[{cache_summary(engine.cache_stats())}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
