"""Run every experiment and print a paper-style report.

All compilations go through the batch engine, which fans independent
(circuit, strategy) jobs across worker threads and shares one pulse/latency
cache.  Pass ``--cache PATH`` to persist that cache on disk: the first run
pays for every optimal-control query, subsequent runs answer them from the
cache and the whole sweep completes dramatically faster.

The Figure 9 sweep also regenerates on any registered device: pass
``--device`` (repeatable) with a preset key — ``paper-grid-NxM``,
``line-N``, ``ring-N``, ``heavy-hex-D``, ``all-to-all-N``, or a key
added via :func:`repro.device.register_device` — and the sweep compiles
onto that coupling graph instead of the paper's auto-sized grid.

Usage::

    python -m repro.experiments.runner --scale small
    python -m repro.experiments.runner --experiment figure9 --scale paper
    python -m repro.experiments.runner --cache results/pulse_cache --workers 4
    python -m repro.experiments.runner --experiment figure9 --scale small \\
        --device ring-6 --device heavy-hex-1 --benchmarks maxcut-line-6
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.compiler.batch import BatchCompiler, resolve_engine
from repro.control.cache import DiskPulseCache
from repro.control.unit import OptimalControlUnit
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import format_table3, run_table3

_EXPERIMENTS = ("table1", "table3", "figure4", "figure9", "figure10", "figure11")


def run_experiment(
    name: str,
    scale: str,
    ocu: OptimalControlUnit | None = None,
    engine: BatchCompiler | None = None,
    strategies: list[str] | None = None,
    devices: list[str] | None = None,
    benchmarks: list[str] | None = None,
) -> str:
    """Run one experiment by name, returning its formatted report.

    ``strategies`` restricts the Figure 9 sweep to the named registered
    strategy keys (built-in or custom), ``benchmarks`` to a subset of
    the Table 3 suite, and ``devices`` reruns the sweep once per named
    device preset; other experiments ignore all three.
    """
    engine = resolve_engine(engine, ocu)
    if name == "table1":
        return format_table1(run_table1(engine=engine))
    if name == "table3":
        return format_table3(run_table3(scale=scale))
    if name == "figure4":
        return format_figure4(run_figure4(ocu=engine.make_ocu()))
    if name == "figure9":
        reports = [
            format_figure9(
                run_figure9(
                    scale=scale,
                    engine=engine,
                    strategies=strategies,
                    benchmark_keys=benchmarks,
                    device=device,
                )
            )
            for device in (devices or [None])
        ]
        return "\n\n".join(reports)
    if name == "figure10":
        if scale == "small":
            width_sweep_benchmarks = {
                "maxcut-line-6": "parallel",
                "ising-6": "parallel",
                "sqrt-9": "serial",
                "uccsd-4": "serial",
            }
            return format_figure10(
                run_figure10(
                    benchmarks=width_sweep_benchmarks,
                    widths=range(2, 7),
                    scale=scale,
                    engine=engine,
                )
            )
        return format_figure10(run_figure10(scale=scale, engine=engine))
    if name == "figure11":
        return format_figure11(run_figure11(scale=scale, engine=engine))
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        choices=_EXPERIMENTS + ("all",),
        default="all",
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="benchmark sizes: the paper's or fast reduced instances",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent pulse-cache stem (writes PATH.json / PATH.npz); "
        "warm runs skip recomputing cached latencies and pulses",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="batch worker threads (default: one per CPU)",
    )
    parser.add_argument(
        "--strategies",
        default=None,
        metavar="KEY[,KEY...]",
        help="comma-separated strategy keys for the figure9 sweep "
        "(built-in or registered via register_strategy); default: all five",
    )
    parser.add_argument(
        "--device",
        action="append",
        default=None,
        metavar="KEY",
        help="device preset for the figure9 sweep (paper-grid-NxM, line-N, "
        "ring-N, heavy-hex-D, all-to-all-N, or a registered key); "
        "repeatable — the sweep reruns once per device; default: the "
        "paper's auto-sized grid",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        metavar="KEY[,KEY...]",
        help="comma-separated benchmark keys restricting the figure9 "
        "sweep to a subset of the Table 3 suite",
    )
    args = parser.parse_args(argv)
    strategies = (
        [key.strip() for key in args.strategies.split(",") if key.strip()]
        if args.strategies
        else None
    )
    benchmarks = (
        [key.strip() for key in args.benchmarks.split(",") if key.strip()]
        if args.benchmarks
        else None
    )
    cache = DiskPulseCache(args.cache) if args.cache else None
    engine = BatchCompiler(cache=cache, max_workers=args.workers)
    if cache is not None and cache.loaded_entries:
        print(f"[warm cache: {cache.loaded_entries} entries from {args.cache}]")
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    try:
        for name in names:
            started = time.perf_counter()
            report = run_experiment(
                name,
                args.scale,
                engine=engine,
                strategies=strategies,
                devices=args.device,
                benchmarks=benchmarks,
            )
            elapsed = time.perf_counter() - started
            print(report)
            print(f"[{name} finished in {elapsed:.1f}s]\n")
    finally:
        # Persist even when a sweep dies halfway: hours of paper-scale
        # optimal-control work must survive for the next warm run.
        if cache is not None:
            written = engine.save_cache()
            print(
                f"[cache saved: {written} entries -> {args.cache}.json/.npz]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
