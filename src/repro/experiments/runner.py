"""Run every experiment and print a paper-style report.

Usage::

    python -m repro.experiments.runner --scale small
    python -m repro.experiments.runner --experiment figure9 --scale paper
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.control.unit import OptimalControlUnit
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import format_table3, run_table3

_EXPERIMENTS = ("table1", "table3", "figure4", "figure9", "figure10", "figure11")


def run_experiment(name: str, scale: str, ocu: OptimalControlUnit) -> str:
    """Run one experiment by name, returning its formatted report."""
    if name == "table1":
        return format_table1(run_table1(ocu=ocu))
    if name == "table3":
        return format_table3(run_table3(scale=scale))
    if name == "figure4":
        return format_figure4(run_figure4(ocu=ocu))
    if name == "figure9":
        return format_figure9(run_figure9(scale=scale, ocu=ocu))
    if name == "figure10":
        if scale == "small":
            benchmarks = {
                "maxcut-line-6": "parallel",
                "ising-6": "parallel",
                "sqrt-9": "serial",
                "uccsd-4": "serial",
            }
            return format_figure10(
                run_figure10(
                    benchmarks=benchmarks,
                    widths=range(2, 7),
                    scale=scale,
                    ocu=ocu,
                )
            )
        return format_figure10(run_figure10(scale=scale, ocu=ocu))
    if name == "figure11":
        return format_figure11(run_figure11(scale=scale, ocu=ocu))
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        choices=_EXPERIMENTS + ("all",),
        default="all",
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="benchmark sizes: the paper's or fast reduced instances",
    )
    args = parser.parse_args(argv)
    ocu = OptimalControlUnit(backend="model")
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        started = time.perf_counter()
        report = run_experiment(name, args.scale, ocu)
        elapsed = time.perf_counter() - started
        print(report)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
