"""Figure 9: normalized circuit latency of every strategy per benchmark.

The paper's headline result: across the Table 3 suite, CLS+aggregation
reduces pulse latency by a geometric-mean 5.07x (max ~10x) relative to
gate-based (ISA) compilation, with CLS+hand at 2.34x.
"""

from __future__ import annotations

import dataclasses
import math

from repro.benchmarks.registry import table3_suite
from repro.compiler.batch import BatchCompiler, BatchJob, resolve_engine
from repro.compiler.strategies import Strategy, all_strategies, strategy_by_key
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device
from repro.device.presets import device_by_key
from repro.errors import ConfigError

PAPER_GEOMEAN_CLS_AGGREGATION = 5.07
PAPER_GEOMEAN_CLS_HAND = 2.338
PAPER_MAX_SPEEDUP = 10.0


@dataclasses.dataclass
class Figure9Row:
    """One benchmark's latency under every strategy."""

    benchmark: str
    qubits: int
    latencies_ns: dict[str, float]
    seconds: dict[str, float]
    """Per-job wall-clock.  Under a multi-worker engine each entry
    includes GIL wait while other jobs run; treat as relative cost, not
    serial compile time."""
    swap_counts: dict[str, int] = dataclasses.field(default_factory=dict)
    """Routed SWAPs per strategy (device-sensitive: sparser coupling
    graphs route more)."""
    device: str | None = None
    """Device the row compiled onto (None: auto-sized paper grid)."""
    results: dict[str, object] = dataclasses.field(
        default_factory=dict, repr=False
    )
    """Full :class:`~repro.compiler.result.CompilationResult` per
    strategy — what ``--save-artifacts`` persists as JSON artifacts."""

    @property
    def baseline_key(self) -> str:
        """Normalization baseline: ISA when present, else the first
        strategy in the sweep (custom sweeps may omit ISA)."""
        return "isa" if "isa" in self.latencies_ns else next(iter(self.latencies_ns))

    def normalized(self) -> dict[str, float]:
        """Latency over the baseline (the paper's y-axis)."""
        baseline = self.latencies_ns[self.baseline_key]
        return {
            key: value / baseline for key, value in self.latencies_ns.items()
        }

    def speedup(self, strategy_key: str) -> float:
        return (
            self.latencies_ns[self.baseline_key]
            / self.latencies_ns[strategy_key]
        )


def run_figure9(
    scale: str = "paper",
    strategies: list[Strategy | str] | None = None,
    ocu: OptimalControlUnit | None = None,
    benchmark_keys: list[str] | None = None,
    engine: BatchCompiler | None = None,
    max_workers: int | None = None,
    device: Device | str | None = None,
) -> list[Figure9Row]:
    """Compile the suite under every strategy through the batch engine.

    Args:
        scale: ``"paper"`` (Table 3 sizes) or ``"small"`` (fast).
        strategies: Defaults to all five Figure 9 strategies.  Entries
            may be :class:`Strategy` objects or registered keys, so
            custom strategies added via ``register_strategy`` sweep
            alongside (or instead of) the paper's five.
        ocu: Shared latency oracle; when given (and no ``engine``), the
            batch engine wraps its cache so warm runs stay warm.
        benchmark_keys: Restrict to a subset of the suite.
        engine: Batch engine (shared, possibly disk-persistent cache).
        max_workers: Worker threads when no engine is passed.
        device: Compilation target for every job — a
            :class:`~repro.device.device.Device` or a preset key such as
            ``"ring-6"``.  Benchmarks wider than the device are skipped
            (a fixed machine cannot hold them); None keeps the paper's
            per-circuit auto-sized grid.
    """
    strategies = [
        entry if isinstance(entry, Strategy) else strategy_by_key(entry)
        for entry in (strategies or all_strategies())
    ]
    if isinstance(device, str):
        device = device_by_key(device)
    engine = resolve_engine(engine, ocu, max_workers)
    suite = table3_suite(scale)
    if benchmark_keys:
        known = {spec.key for spec in suite}
        unknown = [key for key in benchmark_keys if key not in known]
        if unknown:
            raise ConfigError(
                f"unknown benchmark keys {unknown}; the {scale!r} suite "
                f"has: {', '.join(sorted(known))}"
            )
    specs = [
        spec for spec in suite if not benchmark_keys or spec.key in benchmark_keys
    ]
    if device is not None:
        specs = [
            spec for spec in specs if spec.qubits <= device.num_qubits
        ]
        if not specs:
            raise ConfigError(
                f"no benchmark in the sweep fits on {device.num_qubits}-qubit "
                f"device {device.name or device!r}; a silent empty sweep "
                f"would report nothing while exiting green"
            )
    jobs: list[BatchJob] = []
    for spec in specs:
        circuit = spec.build()
        jobs.extend(
            BatchJob(
                circuit=circuit,
                strategy=strategy,
                label=f"{spec.key}/{strategy.key}",
                device=device,
            )
            for strategy in strategies
        )
    report = engine.compile_batch(jobs)
    rows: list[Figure9Row] = []
    cursor = 0
    for spec in specs:
        latencies: dict[str, float] = {}
        seconds: dict[str, float] = {}
        swaps: dict[str, int] = {}
        results: dict[str, object] = {}
        for strategy in strategies:
            latencies[strategy.key] = report.results[cursor].latency_ns
            seconds[strategy.key] = report.seconds[cursor]
            swaps[strategy.key] = report.results[cursor].swap_count
            results[strategy.key] = report.results[cursor]
            cursor += 1
        rows.append(
            Figure9Row(
                benchmark=spec.key,
                qubits=spec.qubits,
                latencies_ns=latencies,
                seconds=seconds,
                swap_counts=swaps,
                results=results,
                # Unnamed custom devices keep their provenance via repr;
                # only the default auto-sized paper grid reports None.
                device=(device.name or repr(device))
                if device is not None
                else None,
            )
        )
    return rows


def geometric_mean_speedups(rows: list[Figure9Row]) -> dict[str, float]:
    """Geomean speedup per strategy over the sweep's baseline.

    The baseline is ISA when it is part of the sweep (the paper's 5.07x
    metric); a custom sweep without ISA is normalized to its first
    strategy instead (see :attr:`Figure9Row.baseline_key`).
    """
    if not rows:
        return {}
    keys = [k for k in rows[0].latencies_ns if k != rows[0].baseline_key]
    means: dict[str, float] = {}
    for key in keys:
        log_sum = sum(math.log(row.speedup(key)) for row in rows)
        means[key] = math.exp(log_sum / len(rows))
    return means


def max_speedup(rows: list[Figure9Row], strategy_key: str) -> float:
    """Best single-benchmark speedup of a strategy."""
    return max(row.speedup(strategy_key) for row in rows)


def format_figure9(rows: list[Figure9Row]) -> str:
    """Paper-style text table of normalized latencies."""
    if not rows:
        return "Figure 9: (no rows)"
    keys = list(rows[0].latencies_ns)
    baseline_key = rows[0].baseline_key
    header = f"{'benchmark':22s}" + "".join(f"{k:>16s}" for k in keys)
    device_tag = f" on {rows[0].device}" if rows[0].device else ""
    lines = [
        f"Figure 9: normalized latency ({baseline_key} = 1.0){device_tag}",
        header,
    ]
    for row in rows:
        normalized = row.normalized()
        lines.append(
            f"{row.benchmark:22s}"
            + "".join(f"{normalized[k]:16.3f}" for k in keys)
        )
    means = geometric_mean_speedups(rows)
    lines.append("")
    for key, value in means.items():
        lines.append(f"geomean speedup {key}: {value:.2f}x")
    if baseline_key == "isa":
        # The paper's numbers are speedups over ISA; comparing them to a
        # custom-baseline sweep would be misleading, so only print them
        # when the sweep is ISA-normalized.
        lines.append(
            f"paper: cls+aggregation {PAPER_GEOMEAN_CLS_AGGREGATION}x, "
            f"cls+hand {PAPER_GEOMEAN_CLS_HAND}x, max {PAPER_MAX_SPEEDUP}x"
        )
    return "\n".join(lines)
