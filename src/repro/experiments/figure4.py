"""Figure 4: the triangle-QAOA worked example.

MAXCUT on a triangle (K3) with gamma = 5.67, beta = 1.26, compiled onto a
1-D nearest-neighbour chain (one SWAP needed for the third edge).  The
paper reports 381.9 ns for gate-based compilation and 128.3 ns for
aggregated-instruction compilation (2.97x) and plots the control pulses
of instruction G3 under both schemes (Fig. 4(c)/(d)).
"""

from __future__ import annotations

import dataclasses

import networkx as nx

from repro.benchmarks.qaoa import PAPER_BETA, PAPER_GAMMA, maxcut_qaoa_circuit
from repro.compiler.pipeline import compile_circuit
from repro.compiler.strategies import CLS_AGGREGATION, ISA
from repro.control.pulse import Pulse
from repro.control.unit import OptimalControlUnit
from repro.aggregation.instruction import AggregatedInstruction
from repro.device.presets import device_by_key
from repro.gates import library as lib

PAPER_ISA_NS = 381.9
PAPER_AGGREGATED_NS = 128.3


@dataclasses.dataclass
class Figure4Result:
    """Measured latencies (and optional pulses) of the worked example."""

    isa_latency_ns: float
    aggregated_latency_ns: float
    paper_isa_ns: float
    paper_aggregated_ns: float
    g3_gate_based_duration_ns: float | None = None
    g3_optimized_duration_ns: float | None = None
    g3_optimized_pulse: Pulse | None = None

    @property
    def speedup(self) -> float:
        return self.isa_latency_ns / self.aggregated_latency_ns

    @property
    def paper_speedup(self) -> float:
        return self.paper_isa_ns / self.paper_aggregated_ns


def triangle_circuit():
    """The Figure 4(a) circuit: QAOA MAXCUT on K3."""
    triangle = nx.complete_graph(3)
    return maxcut_qaoa_circuit(
        triangle, PAPER_GAMMA, PAPER_BETA, name="qaoa-triangle"
    )


def run_figure4(
    ocu: OptimalControlUnit | None = None,
    with_pulses: bool = False,
) -> Figure4Result:
    """Compile the example both ways; optionally synthesize G3's pulses.

    ``with_pulses=True`` runs GRAPE for the G3 diagonal block (the
    Fig. 4(c)/(d) comparison): the gate-based duration is the sum of the
    three per-gate pulses, the optimized duration one pulse for the
    whole block.
    """
    ocu = ocu or OptimalControlUnit(backend="model")
    circuit = triangle_circuit()
    device = device_by_key("line-3")
    isa = compile_circuit(circuit, ISA, ocu=ocu, device=device)
    aggregated = compile_circuit(
        circuit, CLS_AGGREGATION, ocu=ocu, device=device
    )
    result = Figure4Result(
        isa_latency_ns=isa.latency_ns,
        aggregated_latency_ns=aggregated.latency_ns,
        paper_isa_ns=PAPER_ISA_NS,
        paper_aggregated_ns=PAPER_AGGREGATED_NS,
    )
    if with_pulses:
        grape_ocu = OptimalControlUnit(backend="grape")
        block = AggregatedInstruction(
            [
                lib.CNOT(0, 1),
                lib.RZ(2 * PAPER_GAMMA, 1),
                lib.CNOT(0, 1),
            ],
            name="G3",
        )
        optimized = grape_ocu.synthesize_pulse(block)
        gate_based = sum(
            grape_ocu.synthesize_pulse(gate).duration for gate in block.gates
        )
        result.g3_gate_based_duration_ns = gate_based
        result.g3_optimized_duration_ns = optimized.duration
        result.g3_optimized_pulse = optimized.pulse
    return result


def format_figure4(result: Figure4Result) -> str:
    """Paper-style text summary."""
    lines = [
        "Figure 4: triangle QAOA on a 3-qubit chain",
        f"  gate-based latency:  paper {result.paper_isa_ns:7.1f} ns   "
        f"measured {result.isa_latency_ns:7.1f} ns",
        f"  aggregated latency:  paper {result.paper_aggregated_ns:7.1f} ns   "
        f"measured {result.aggregated_latency_ns:7.1f} ns",
        f"  speedup:             paper {result.paper_speedup:7.2f} x    "
        f"measured {result.speedup:7.2f} x",
    ]
    if result.g3_optimized_duration_ns is not None:
        lines.append(
            f"  G3 pulses: gate-based {result.g3_gate_based_duration_ns:.1f} ns"
            f" -> optimized {result.g3_optimized_duration_ns:.1f} ns"
        )
    return "\n".join(lines)
