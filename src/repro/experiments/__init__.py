"""Experiment harness: one module per paper table/figure."""

from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure9 import Figure9Row, run_figure9
from repro.experiments.figure10 import Figure10Series, run_figure10
from repro.experiments.figure11 import Figure11Row, run_figure11
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.table3 import Table3Row, run_table3

__all__ = [
    "Figure4Result",
    "Figure9Row",
    "Figure10Series",
    "Figure11Row",
    "Table1Row",
    "Table3Row",
    "run_figure4",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_table1",
    "run_table3",
]
