"""Diagonal-unitary detection: the commutativity-detection stage.

Paper Sec. 3.3.1 / 4.2: near-term workloads are full of CNOT-Rz-CNOT
structures whose members do not commute but whose *blocks* do (they are
diagonal unitaries).  To preserve parallelism the paper detects diagonal
unitaries only in blocks of width 2 and bounded depth.

This pass scans the flattened gate stream, collects maximal consecutive
runs supported on a single qubit pair, and contracts the longest prefix
of each run whose product is diagonal (and genuinely entangling-capable,
i.e. contains a two-qubit gate) into an
:class:`~repro.aggregation.instruction.AggregatedInstruction`.  The
resulting node stream — diagonal blocks plus untouched gates — feeds GDG
construction, where diagonal blocks sharing qubits now commute and give
CLS its scheduling freedom (paper Fig. 6(b)).
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.instruction import AggregatedInstruction
from repro.config import CompilerConfig, DEFAULT_COMPILER
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import is_diagonal


def detect_diagonal_blocks(
    gates,
    config: CompilerConfig = DEFAULT_COMPILER,
) -> list:
    """Contract diagonal 2-qubit blocks in a gate stream.

    Args:
        gates: Flattened gate sequence (program order).
        config: Supplies block width/depth limits.

    Returns:
        A node list mixing untouched gates and diagonal instructions.
    """
    gates = list(gates)
    output: list = []
    index = 0
    while index < len(gates):
        window, support = _pair_window(
            gates, index, config.diagonal_block_depth
        )
        block_length = _longest_diagonal_prefix(window, support)
        if block_length >= 3:
            block = gates[index : index + block_length]
            output.append(AggregatedInstruction(block, name=None))
            index += block_length
        else:
            output.append(gates[index])
            index += 1
    return output


def _pair_window(gates, start: int, depth_limit: int) -> tuple[list, tuple]:
    """Maximal run from ``start`` supported on <= 2 qubits.

    The window extends while each next gate keeps the joint support
    within two qubits; it is capped at ``depth_limit`` gates (the paper
    notes blocks are "typically no longer than 10 gates").
    """
    support: set[int] = set(gates[start].qubits)
    window = [gates[start]]
    position = start + 1
    while position < len(gates) and len(window) < depth_limit:
        gate = gates[position]
        union = support | set(gate.qubits)
        if len(union) > 2:
            # Gates on other qubits end the consecutive pair run only if
            # they overlap it; disjoint gates cannot be skipped safely
            # here (program order is the dependence order), so stop.
            break
        support = union
        window.append(gate)
        position += 1
    return window, tuple(sorted(support))


def _longest_diagonal_prefix(window: list[Gate], support: tuple) -> int:
    """Length of the longest diagonal prefix containing a 2-qubit gate."""
    if len(support) > 2 or len(window) < 3:
        return 0
    width = len(support)
    index = {qubit: position for position, qubit in enumerate(support)}
    total = np.eye(2**width, dtype=complex)
    best = 0
    has_two_qubit = False
    for length, gate in enumerate(window, start=1):
        positions = [index[q] for q in gate.qubits]
        total = embed_operator(gate.matrix, positions, width) @ total
        has_two_qubit = has_two_qubit or gate.num_qubits == 2
        if length >= 3 and has_two_qubit and is_diagonal(total):
            best = length
    return best
