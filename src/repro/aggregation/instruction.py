"""Aggregated instructions: multi-gate units compiled to a single pulse.

An :class:`AggregatedInstruction` wraps an ordered run of gates whose
combined unitary will be synthesized as one continuous control pulse by
the optimal-control unit.  It exposes the same structural interface as
:class:`~repro.gates.gate.Gate` (``qubits``, ``is_diagonal``,
``signature``, optional ``matrix``, ``on``) so the GDG, the schedulers,
the router and the OCU treat gates and instructions uniformly.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Sequence

import numpy as np

from repro.errors import AggregationError
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator
from repro.linalg.predicates import is_diagonal

_MATRIX_QUBIT_LIMIT = 6


class AggregatedInstruction:
    """An ordered run of gates compiled as one pulse."""

    # itertools.count: atomic under the GIL, so concurrent batch workers
    # never mint duplicate auto-names.
    _counter = itertools.count(1)

    def __init__(self, gates: Sequence[Gate], name: str | None = None) -> None:
        gates = list(gates)
        if not gates:
            raise AggregationError("an instruction needs at least one gate")
        for gate in gates:
            if not isinstance(gate, Gate):
                raise AggregationError(
                    f"instructions aggregate plain gates, got {gate!r}"
                )
        self.gates = gates
        qubits: set[int] = set()
        for gate in gates:
            qubits.update(gate.qubits)
        self.qubits = tuple(sorted(qubits))
        if name is None:
            name = f"G{next(AggregatedInstruction._counter)}"
        self.name = name

    @classmethod
    def from_nodes(cls, first, second, name: str | None = None) -> AggregatedInstruction:
        """Merge two nodes (gates or instructions), ``first`` running first."""
        return cls(_gates_of(first) + _gates_of(second), name=name)

    @property
    def width(self) -> int:
        """Number of distinct qubits."""
        return len(self.qubits)

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def __len__(self) -> int:
        return len(self.gates)

    @functools.cached_property
    def matrix(self) -> np.ndarray | None:
        """Combined unitary in instruction-local qubit order.

        ``None`` for instructions wider than the dense-matrix limit; the
        conservative commutation rules take over in that regime.
        """
        if self.width > _MATRIX_QUBIT_LIMIT:
            return None
        index = {qubit: position for position, qubit in enumerate(self.qubits)}
        total = np.eye(2**self.width, dtype=complex)
        for gate in self.gates:
            positions = [index[q] for q in gate.qubits]
            total = embed_operator(gate.matrix, positions, self.width) @ total
        total.setflags(write=False)
        return total

    @functools.cached_property
    def is_diagonal(self) -> bool:
        """Diagonality of the combined unitary.

        Exact when the dense matrix is available (a CNOT-Rz-CNOT block is
        diagonal even though its members are not); otherwise the sound
        approximation "all members diagonal".
        """
        matrix = self.matrix
        if matrix is not None:
            return is_diagonal(matrix)
        return all(gate.is_diagonal for gate in self.gates)

    @functools.cached_property
    def signature(self) -> tuple:
        """Structural identity: member signatures + local qubit layout."""
        index = {qubit: position for position, qubit in enumerate(self.qubits)}
        parts = tuple(
            (
                gate.name,
                tuple(round(p, 10) for p in gate.params),
                tuple(index[q] for q in gate.qubits),
            )
            for gate in self.gates
        )
        return ("AGG", self.width, parts)

    def on(self, new_qubits: Sequence[int]) -> AggregatedInstruction:
        """Retarget the instruction onto other qubits (order corresponds
        to the sorted current support)."""
        new_qubits = tuple(int(q) for q in new_qubits)
        if len(new_qubits) != self.width:
            raise AggregationError(
                f"{self.name} needs {self.width} qubits, got {len(new_qubits)}"
            )
        mapping = dict(zip(self.qubits, new_qubits))
        moved = [
            gate.on(tuple(mapping[q] for q in gate.qubits))
            for gate in self.gates
        ]
        return AggregatedInstruction(moved, name=self.name)

    def to_dict(self) -> dict:
        """Versioned wire form (see :mod:`repro.ir.serialize`)."""
        from repro.ir.serialize import instruction_to_dict

        return instruction_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> AggregatedInstruction:
        """Rebuild an instruction (or hand-optimized subtype) from its
        wire form."""
        from repro.ir.serialize import instruction_from_dict

        return instruction_from_dict(payload)

    def gate_counts(self) -> dict[str, int]:
        """Histogram of member gate names."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def __repr__(self) -> str:
        members = ",".join(gate.name for gate in self.gates[:4])
        if len(self.gates) > 4:
            members += f",+{len(self.gates) - 4}"
        return f"{self.name}[{members}]@{self.qubits}"


def _gates_of(node) -> list[Gate]:
    if isinstance(node, AggregatedInstruction):
        return list(node.gates)
    if isinstance(node, Gate):
        return [node]
    raise AggregationError(f"cannot merge {node!r}")
