"""Instruction aggregation: diagonal detection and monotonic merging."""

from repro.aggregation.action_space import candidate_actions
from repro.aggregation.aggregator import AggregationReport, aggregate
from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction

__all__ = [
    "AggregatedInstruction",
    "AggregationReport",
    "aggregate",
    "candidate_actions",
    "detect_diagonal_blocks",
]
