"""The action space for instruction aggregation (paper Sec. 4.1).

Two nodes may aggregate when they (1) overlap on at least one qubit,
(2) sit in the same or consecutive commutation groups on *every* shared
qubit (parent/child or siblings — either way a legal reorder makes them
adjacent, keeping the merged pulse continuous), and (3) the merged width
stays within the optimal-control unit's limit.  Acyclicity after the
merge is checked transactionally by the GDG itself.
"""

from __future__ import annotations

import itertools


def candidate_actions(dag, width_limit: int) -> list[tuple]:
    """Enumerate mergeable node pairs ``(earlier, later)``.

    Pairs are found per qubit: all pairs within one commutation group
    (siblings) plus all pairs across consecutive groups (parent/child),
    then filtered through the same-or-consecutive-groups rule
    (:meth:`GateDependenceGraph.can_merge`, inlined against prefetched
    group lookups) and the width limit.  Each unordered pair is
    reported once, oriented so the first node runs no later than the
    second on their first shared qubit.
    """
    # No merge happens during enumeration, so one prefetch of the
    # per-qubit group-index and position tables serves every pair.
    lookups = [dag.group_lookup(q) for q in range(dag.num_qubits)]
    positions = [
        {id(node): index for index, node in enumerate(dag.qubit_sequence(q))}
        for q in range(dag.num_qubits)
    ]
    seen: set[frozenset[int]] = set()
    actions: list[tuple] = []
    for qubit in range(dag.num_qubits):
        groups = dag.group_view(qubit)
        for group_index, group in enumerate(groups):
            pair_iter = itertools.chain(
                itertools.combinations(group, 2),
                (
                    (a, b)
                    for a in group
                    for b in groups[group_index + 1]
                )
                if group_index + 1 < len(groups)
                else (),
            )
            for a, b in pair_iter:
                a_id, b_id = id(a), id(b)
                key = frozenset((a_id, b_id))
                if key in seen:
                    continue
                seen.add(key)
                a_qubits = set(a.qubits)
                if len(a_qubits | set(b.qubits)) > width_limit:
                    continue
                shared = a_qubits.intersection(b.qubits)
                mergeable = True
                for q in shared:
                    lookup = lookups[q]
                    if abs(lookup[a_id] - lookup[b_id]) > 1:
                        mergeable = False
                        break
                if not mergeable:
                    continue
                # Orientation: current execution order on the pair's
                # first shared qubit (same qubit choice as the historical
                # _oriented helper — set iteration order is stable for
                # equal contents).
                pos = positions[next(iter(shared))]
                if pos[a_id] < pos[b_id]:
                    actions.append((a, b))
                else:
                    actions.append((b, a))
    return actions
