"""The action space for instruction aggregation (paper Sec. 4.1).

Two nodes may aggregate when they (1) overlap on at least one qubit,
(2) sit in the same or consecutive commutation groups on *every* shared
qubit (parent/child or siblings — either way a legal reorder makes them
adjacent, keeping the merged pulse continuous), and (3) the merged width
stays within the optimal-control unit's limit.  Acyclicity after the
merge is checked transactionally by the GDG itself.
"""

from __future__ import annotations

import itertools


def candidate_actions(dag, width_limit: int) -> list[tuple]:
    """Enumerate mergeable node pairs ``(earlier, later)``.

    Pairs are found per qubit: all pairs within one commutation group
    (siblings) plus all pairs across consecutive groups (parent/child),
    then filtered through :meth:`GateDependenceGraph.can_merge` and the
    width limit.  Each unordered pair is reported once.
    """
    seen: set[frozenset[int]] = set()
    actions: list[tuple] = []
    for qubit in range(dag.num_qubits):
        groups = dag.commutation_groups(qubit)
        for group_index, group in enumerate(groups):
            pair_iter = itertools.chain(
                itertools.combinations(group, 2),
                (
                    (a, b)
                    for a in group
                    for b in groups[group_index + 1]
                )
                if group_index + 1 < len(groups)
                else (),
            )
            for a, b in pair_iter:
                key = frozenset((id(a), id(b)))
                if key in seen:
                    continue
                seen.add(key)
                merged_width = len(set(a.qubits) | set(b.qubits))
                if merged_width > width_limit:
                    continue
                if not dag.can_merge(a, b):
                    continue
                actions.append(_oriented(dag, a, b))
    return actions


def _oriented(dag, a, b) -> tuple:
    """Order the pair so the first node runs no later than the second."""
    shared = set(a.qubits) & set(b.qubits)
    qubit = next(iter(shared))
    sequence = dag.qubit_sequence(qubit)
    for node in sequence:
        if node is a:
            return (a, b)
        if node is b:
            return (b, a)
    return (a, b)
