"""Iterative monotonic instruction aggregation (paper Sec. 4.3).

Each round scores every legal action (pair merge) in the current GDG:

* **Monotonic filter** — an action must not lengthen the critical path
  even under the pessimistic assumption that the merged pulse takes as
  long as its two parts in sequence.  This is evaluated incrementally
  from the round's ASAP times and critical tails, so candidates cost
  O(neighbourhood) instead of a full re-schedule.
* **Reward** — the latency the optimal-control unit is expected to save,
  ``lat(a) + lat(b) - model_latency(merged)`` (setup amortization plus
  interaction folding).

The best-rewarded monotonic actions execute (greedily, skipping actions
that touch qubits already modified this round, so the incremental timing
data stays valid); merged instructions get their real latency from the
OCU, and rounds repeat until no profitable monotonic action remains —
the "iterate until the GDG converges" loop of the paper.
"""

from __future__ import annotations

import dataclasses

from repro.aggregation.action_space import candidate_actions
from repro.aggregation.instruction import AggregatedInstruction
from repro.errors import SchedulingError

_EPSILON = 1e-6


@dataclasses.dataclass
class AggregationReport:
    """Statistics of one aggregation run."""

    merges: int
    rounds: int
    initial_makespan: float
    final_makespan: float

    @property
    def improvement(self) -> float:
        """Makespan reduction factor (>= 1 means no regression).

        ``inf`` when a positive makespan collapsed to zero; ``1.0`` only
        when both makespans are already zero (empty circuit).
        """
        if self.final_makespan <= 0:
            return float("inf") if self.initial_makespan > 0 else 1.0
        return self.initial_makespan / self.final_makespan


def aggregate(
    dag,
    ocu,
    width_limit: int = 10,
    max_rounds: int = 10_000,
    batch: bool = True,
    monotonic_only: bool = True,
) -> AggregationReport:
    """Run the aggregation loop on a GDG in place.

    Args:
        dag: The (routed, physical) gate-dependence graph; mutated.
        ocu: Latency oracle (:class:`~repro.control.unit.OptimalControlUnit`).
        width_limit: Maximum qubits per aggregated instruction.
        max_rounds: Safety cap on aggregate/re-latency rounds.
        batch: Execute all qubit-disjoint profitable actions per round
            (False reproduces the paper's strict one-global-best loop).
        monotonic_only: Keep the paper's parallelism-protecting filter;
            False greedily merges by reward alone (the Sec. 4.3
            ablation — expect serialized circuits on parallel workloads).

    Returns:
        An :class:`AggregationReport`.
    """
    latency = _NodeLatencyMemo(ocu)

    initial_makespan = dag.makespan(latency)
    merges = 0
    if batch:
        # Strict paper mode (batch=False) skips the linear-time shortcut
        # so every merge goes through the global-best loop.
        merges = _series_prepass(dag, ocu, latency, width_limit)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        if batch and rounds > 1:
            # Earlier merges expose new pure series pairs; fold them in
            # linear time before paying for another scored round.
            merges += _series_prepass(dag, ocu, latency, width_limit)
        timing = _RoundTiming(dag, latency)
        scored = []
        for earlier, later in candidate_actions(dag, width_limit):
            if monotonic_only and not timing.is_monotonic(earlier, later):
                continue
            merged_estimate = ocu.model_latency(
                AggregatedInstruction.from_nodes(earlier, later, name="probe")
            )
            reward = latency(earlier) + latency(later) - merged_estimate
            if reward > _EPSILON:
                scored.append((reward, earlier, later))
        scored.sort(key=lambda item: item[0], reverse=True)

        executed = 0
        touched_qubits: set[int] = set()
        merged_ids: set[int] = set()
        for _reward, earlier, later in scored:
            if id(earlier) in merged_ids or id(later) in merged_ids:
                continue
            qubits = set(earlier.qubits) | set(later.qubits)
            if touched_qubits & qubits:
                continue
            if timing.has_indirect_path(earlier, later):
                # Merging would need the merged node both before and
                # after the intermediate path: a cycle.
                continue
            # The pre-filter uses round-start times, which earlier merges
            # in this round may have shifted, so the merge itself stays
            # transactional (check_cycles=True rolls back on a cycle).
            merged = AggregatedInstruction.from_nodes(earlier, later)
            try:
                dag.merge(earlier, later, merged, check_cycles=True)
            except SchedulingError:
                continue
            merged_ids.update((id(earlier), id(later)))
            latency.forget(earlier)
            latency.forget(later)
            touched_qubits.update(qubits)
            executed += 1
            merges += 1
            if not batch:
                break
        if executed == 0:
            break
    return AggregationReport(
        merges=merges,
        rounds=rounds,
        initial_makespan=initial_makespan,
        final_makespan=dag.makespan(latency),
    )


class _NodeLatencyMemo:
    """Aggregation-local latency memo keyed by node identity.

    Keying a plain dict by ``id(node)`` is unsound here: once a
    merged-away node is garbage collected, CPython can hand its id to a
    newly allocated :class:`AggregatedInstruction`, which would silently
    inherit the dead node's latency.  The memo therefore pins a strong
    reference to every node it caches (ids of *live* objects are unique)
    and re-checks identity on lookup; :meth:`forget` releases merged-away
    nodes so the pins do not accumulate over long runs.
    """

    def __init__(self, ocu) -> None:
        self._ocu = ocu
        self._entries: dict[int, tuple[object, float]] = {}

    def __call__(self, node) -> float:
        entry = self._entries.get(id(node))
        if entry is None or entry[0] is not node:
            entry = (node, self._ocu.latency(node))
            self._entries[id(node)] = entry
        return entry[1]

    def forget(self, node) -> None:
        self._entries.pop(id(node), None)


def _series_prepass(dag, ocu, latency, width_limit: int) -> int:
    """Chain-merge pure series pairs in amortized linear time.

    When node ``B`` is ``A``'s only timing successor and ``A`` is ``B``'s
    only predecessor, merging them cannot lengthen any path even with the
    pessimistic summed latency, so the monotonic check is satisfied by
    construction.  Serial regions (the square-root benchmarks' Toffoli
    chains) collapse here in one pass instead of one aggregation round
    per gate.
    """
    merges = 0
    worklist = list(dag.nodes)
    alive = {id(node) for node in dag.nodes}
    # The outer _prev/_next dicts are stable across merges (relinking
    # swaps the per-qubit inner maps in place), so one fetch serves the
    # whole pass while staying live.
    prev_maps = dag._prev
    next_maps = dag._next
    while worklist:
        node = worklist.pop()
        if id(node) not in alive:
            continue
        while True:
            follower = None
            branched = False
            for q in node.qubits:
                successor = next_maps[q].get(id(node))
                if successor is None:
                    continue
                if follower is None:
                    follower = successor
                elif successor is not follower:
                    branched = True
                    break
            if follower is None or branched:
                break
            # Sole-predecessor test: every chain into the follower must
            # come from ``node`` (the node->follower edge exists, so at
            # least one does).
            sole = True
            for q in follower.qubits:
                predecessor = prev_maps[q].get(id(follower))
                if predecessor is not None and predecessor is not node:
                    sole = False
                    break
            if not sole:
                break
            merged_width = len(set(node.qubits) | set(follower.qubits))
            if merged_width > width_limit:
                break
            probe = AggregatedInstruction.from_nodes(node, follower, name="probe")
            estimate = ocu.model_latency(probe)
            if estimate >= latency(node) + latency(follower) - _EPSILON:
                break
            # A pure series pair cannot create a cycle (the follower has
            # no other predecessor to route a path around), so both the
            # structural and the acyclicity checks are skipped.
            merged = AggregatedInstruction.from_nodes(node, follower)
            try:
                dag.merge(
                    node, follower, merged, validated=True, check_cycles=False
                )
            except SchedulingError:
                break
            alive.discard(id(node))
            alive.discard(id(follower))
            alive.add(id(merged))
            latency.forget(node)
            latency.forget(follower)
            merges += 1
            node = merged
    return merges


class _RoundTiming:
    """Per-round ASAP times and critical tails for monotonic checks."""

    def __init__(self, dag, latency) -> None:
        self.dag = dag
        self.latency = latency
        self.est = dag.asap_times(latency)
        self.finish = {
            id(node): self.est[id(node)] + latency(node) for node in dag.nodes
        }
        self.makespan = max(self.finish.values(), default=0.0)
        self.tails = self._compute_tails()
        # One qubit_sequence copy per qubit serves both the round-start
        # sequence snapshot and its position index.
        self.positions = {}
        self.sequences = {}
        for q in range(dag.num_qubits):
            sequence = dag.qubit_sequence(q)
            self.sequences[q] = sequence
            self.positions[q] = {
                id(node): index for index, node in enumerate(sequence)
            }

    def _compute_tails(self) -> dict[int, float]:
        tails: dict[int, float] = {}
        next_maps = self.dag._next
        for node in reversed(self.dag.topological_order()):
            nid = id(node)
            best = 0.0
            for q in node.qubits:
                successor = next_maps[q].get(nid)
                if successor is not None:
                    tail = tails[id(successor)]
                    if tail > best:
                        best = tail
            tails[nid] = self.latency(node) + best
        return tails

    def is_monotonic(self, earlier, later) -> bool:
        """Conservative check: merged critical path within the old one.

        Uses the pessimistic merged latency ``lat(a) + lat(b)``; paper
        Sec. 4.3 calls actions passing this test *monotonic* because the
        real optimized pulse can only be faster.

        Called only during scoring — before this round's first merge —
        so the chain links it walks are identical to the round-start
        snapshot the times were computed from.
        """
        finish = self.finish
        earlier_id = id(earlier)
        later_id = id(later)
        pessimistic = self.latency(earlier) + self.latency(later)
        start = self.est[earlier_id]
        for q in earlier.qubits:
            pos = self.positions[q]
            ib = pos.get(later_id)
            if ib is None:
                continue  # not a shared qubit
            ia = pos[earlier_id]
            low, high = (ia, ib) if ia < ib else (ib, ia)
            sequence = self.sequences[q]
            for index in range(low + 1, high):
                member_finish = finish[id(sequence[index])]
                if member_finish > start:
                    start = member_finish
        prev_maps = self.dag._prev
        for q in later.qubits:
            predecessor = prev_maps[q].get(later_id)
            if predecessor is not None and predecessor is not earlier:
                predecessor_finish = finish[id(predecessor)]
                if predecessor_finish > start:
                    start = predecessor_finish
        merged_finish = start + pessimistic
        worst = merged_finish
        tails = self.tails
        next_maps = self.dag._next
        for node in (earlier, later):
            nid = id(node)
            for q in node.qubits:
                successor = next_maps[q].get(nid)
                if (
                    successor is None
                    or successor is earlier
                    or successor is later
                ):
                    continue
                candidate = merged_finish + tails[id(successor)]
                if candidate > worst:
                    worst = candidate
        return worst <= self.makespan + _EPSILON

    def has_indirect_path(self, earlier, later) -> bool:
        """Merge-cycle pre-check via est-pruned reachability.

        A post-merge cycle needs a pre-merge path ``earlier -> X -> ...
        -> later`` that leaves the shared commutation-group region.  Any
        node on such a path is an ancestor of ``later``, so nodes with
        ``est + latency > est(later)`` can be pruned; the search cone is
        tiny in tightly-scheduled circuits.

        The check is a fast filter, not the final word: in-between chain
        members are excluded wholesale, but ones in ``later``'s
        commutation group slide *after* the merged node (the splice's
        group-boundary placement), so a side path from such a member back
        to ``later`` still cycles.  ``merge(check_cycles=True)`` is the
        exact, transactional backstop.
        """
        earlier_id = id(earlier)
        later_id = id(later)
        skip: set[int] = {earlier_id, later_id}
        # In-between group members are not themselves obstacles (the
        # chain hop through them is rewired by the splice); exclude the
        # direct hop.
        for q in earlier.qubits:
            pos = self.positions[q]
            ib = pos.get(later_id)
            if ib is None:
                continue  # not a shared qubit
            ia = pos[earlier_id]
            low, high = (ia, ib) if ia < ib else (ib, ia)
            sequence = self.sequences[q]
            for index in range(low + 1, high):
                skip.add(id(sequence[index]))
        limit = self.est.get(later_id, float("inf")) + _EPSILON

        def prunable(candidate) -> bool:
            # Nodes merged earlier this round are unknown to the
            # round-start times: never prune them (the transactional
            # cycle check in merge() is the backstop anyway).
            start = self.est.get(id(candidate))
            if start is None:
                return False
            return start + self.latency(candidate) > limit

        # This runs in the execution loop — after merges — so chain
        # links are fetched live through the dag's outer map.
        next_maps = self.dag._next
        frontier: list = []
        visited: set[int] = set()
        for q in earlier.qubits:
            successor = next_maps[q].get(earlier_id)
            if successor is None:
                continue
            key = id(successor)
            if key in skip or key in visited or prunable(successor):
                continue
            visited.add(key)
            frontier.append(successor)
        while frontier:
            node = frontier.pop()
            nid = id(node)
            for q in node.qubits:
                successor = next_maps[q].get(nid)
                if successor is None:
                    continue
                if successor is later:
                    return True
                key = id(successor)
                if key in visited or key in skip:
                    continue
                if prunable(successor):
                    continue
                visited.add(key)
                frontier.append(successor)
        return False
