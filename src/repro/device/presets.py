"""Named device presets: ``device_by_key`` and the user registry.

Five built-in preset *families* cover the topology classes, each
parameterized in its key:

========================  =============================================
Key                       Device
========================  =============================================
``paper-grid-NxM``        The paper's rectangular grid (e.g.
                          ``paper-grid-2x3``).
``line-N``                1-D nearest-neighbour chain.
``ring-N``                Chain with periodic boundary.
``heavy-hex-D``           Heavy-hexagon lattice of distance ``D``.
``all-to-all-N``          Fully connected (trapped-ion style).
========================  =============================================

All presets carry the paper's homogeneous :class:`DeviceConfig`.  Exact
keys registered via :func:`register_device` (a frozen :class:`Device` or
a zero-argument factory) take precedence over family parsing, so a
project can pin ``"lab-chip-7"`` to a hand-calibrated heterogeneous
device and resolve it anywhere a preset key is accepted — per
batch job, through ``compile_circuit(device=...)``, or from the
experiment runner's ``--device`` flag.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError
from repro.device.device import Device
from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    grid_for,
)

_REGISTRY: dict[str, Device | Callable[[], Device]] = {}

#: Family keys resolve to frozen, deterministic devices, so each key is
#: built once and shared — repeated resolutions (every BatchJob in a
#: sweep names its preset) reuse one Device, and its topology's BFS
#: distance/path caches warm across jobs instead of restarting cold.
_FAMILY_CACHE: dict[str, Device] = {}


def _positive_int(text: str, key: str, usage: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ConfigError(f"bad device key {key!r}; expected {usage}") from None
    if value < 1:
        raise ConfigError(f"bad device key {key!r}; expected {usage}")
    return value


def _paper_grid(param: str, key: str) -> Device:
    usage = "paper-grid-NxM (e.g. paper-grid-2x3)"
    rows, sep, cols = param.partition("x")
    if not sep:
        raise ConfigError(f"bad device key {key!r}; expected {usage}")
    return Device(
        topology=GridTopology(
            _positive_int(rows, key, usage), _positive_int(cols, key, usage)
        ),
        name=key,
    )


_FAMILIES: dict[str, Callable[[str, str], Device]] = {
    "paper-grid": _paper_grid,
    "line": lambda param, key: Device(
        topology=LineTopology(_positive_int(param, key, "line-N")), name=key
    ),
    "ring": lambda param, key: Device(
        topology=RingTopology(_positive_int(param, key, "ring-N")), name=key
    ),
    "heavy-hex": lambda param, key: Device(
        topology=HeavyHexTopology(_positive_int(param, key, "heavy-hex-D")),
        name=key,
    ),
    "all-to-all": lambda param, key: Device(
        topology=FullyConnectedTopology(
            _positive_int(param, key, "all-to-all-N")
        ),
        name=key,
    ),
}

#: Placeholder spellings shown in listings and unknown-key errors.
_FAMILY_TEMPLATES = (
    "paper-grid-NxM",
    "line-N",
    "ring-N",
    "heavy-hex-D",
    "all-to-all-N",
)


def device_by_key(key: str) -> Device:
    """Resolve a device preset key (built-in family or registration).

    Raises:
        ConfigError: Unknown key; the message lists the built-in
            families and every registered key.
    """
    registered = _REGISTRY.get(key)
    if registered is not None:
        device = registered() if callable(registered) else registered
        if not isinstance(device, Device):
            raise ConfigError(
                f"registered factory for {key!r} returned {device!r}, "
                f"not a Device"
            )
        return device
    # Longest family prefix wins ("heavy-hex-1" must not parse as a
    # hypothetical "heavy" family).
    for family in sorted(_FAMILIES, key=len, reverse=True):
        prefix = family + "-"
        if key.startswith(prefix):
            device = _FAMILY_CACHE.get(key)
            if device is None:
                device = _FAMILIES[family](key[len(prefix):], key)
                _FAMILY_CACHE[key] = device
            return device
    raise ConfigError(
        f"unknown device key {key!r}; built-in families: "
        f"{', '.join(_FAMILY_TEMPLATES)}"
        + (
            f"; registered: {', '.join(sorted(_REGISTRY))}"
            if _REGISTRY
            else ""
        )
    )


def register_device(
    key: str,
    device: Device | Callable[[], Device],
    overwrite: bool = False,
) -> None:
    """Register an exact device key (a :class:`Device` or a factory).

    Exact keys shadow family parsing, but the built-in family prefixes
    themselves are protected so ``paper-grid-2x3`` always means the
    paper device.
    """
    if not isinstance(key, str) or not key:
        raise ConfigError(f"device key must be a non-empty string, got {key!r}")
    for family in _FAMILIES:
        if key == family or key.startswith(family + "-"):
            raise ConfigError(
                f"key {key!r} collides with the built-in {family!r} family"
            )
    if not isinstance(device, Device) and not callable(device):
        raise ConfigError(
            f"register a Device or a zero-argument factory, got {device!r}"
        )
    if key in _REGISTRY and not overwrite:
        raise ConfigError(
            f"device key {key!r} already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[key] = device


def unregister_device(key: str) -> None:
    """Remove a registered key (built-in families cannot be removed)."""
    if key not in _REGISTRY:
        raise ConfigError(f"device key {key!r} is not registered")
    del _REGISTRY[key]


def registered_device_keys() -> list[str]:
    """Keys added via :func:`register_device`, sorted."""
    return sorted(_REGISTRY)


def available_device_keys() -> list[str]:
    """Built-in family templates followed by registered exact keys."""
    return list(_FAMILY_TEMPLATES) + registered_device_keys()


def paper_device_for(num_qubits: int) -> Device:
    """The paper's default target for a circuit: a near-square grid.

    This is exactly the device the compiler auto-sizes when no device or
    topology is given, packaged with its preset name.
    """
    topology = grid_for(num_qubits)
    return Device(
        topology=topology, name=f"paper-grid-{topology.rows}x{topology.cols}"
    )
