"""Device/target subsystem: coupling graphs, devices, and presets.

"Which machine" is data, not code: a
:class:`~repro.device.topology.Topology` describes the coupling graph, a
:class:`~repro.device.device.Device` bundles it with physics (baseline
:class:`~repro.config.DeviceConfig` plus per-qubit/per-edge overrides),
and the preset registry resolves names like ``"ring-6"`` or
``"heavy-hex-2"`` anywhere the compiler accepts a device.
"""

from repro.device.device import Device, coerce_device
from repro.device.presets import (
    available_device_keys,
    device_by_key,
    paper_device_for,
    register_device,
    registered_device_keys,
    unregister_device,
)
from repro.device.topology import (
    FullyConnectedTopology,
    GridTopology,
    HeavyHexTopology,
    LineTopology,
    RingTopology,
    Topology,
    grid_for,
)

__all__ = [
    "Device",
    "FullyConnectedTopology",
    "GridTopology",
    "HeavyHexTopology",
    "LineTopology",
    "RingTopology",
    "Topology",
    "available_device_keys",
    "coerce_device",
    "device_by_key",
    "grid_for",
    "paper_device_for",
    "register_device",
    "registered_device_keys",
    "unregister_device",
]
