"""The compilation target: a coupling graph plus its physics.

A :class:`Device` bundles *which machine* a circuit compiles onto — the
coupling :class:`~repro.device.topology.Topology`, the homogeneous
:class:`~repro.config.DeviceConfig` baseline (field limits, pulse setup
times, decoherence times) and optional per-qubit / per-edge overrides
for heterogeneous hardware:

* ``t1_us`` / ``t2_us`` — per-qubit decoherence overrides, consumed by
  the decoherence model.
* ``coupling_limits_ghz`` — per-edge XY control-field limits, consumed
  by the optimal-control unit (both the analytic latency model and the
  GRAPE Hamiltonian) in place of the global
  ``DeviceConfig.coupling_limit_ghz`` on the overridden edges.

Devices are frozen: compiler passes, the batch engine and the pulse
cache all hold references, and an in-flight mutation would desynchronize
cached latencies from the physics that produced them.  The
:meth:`Device.signature` feeds the pulse-cache fingerprint so entries
computed for differently-wired or differently-calibrated devices can
never be confused.
"""

from __future__ import annotations

import dataclasses
import types
from collections.abc import Mapping

from repro.config import DEFAULT_DEVICE, TWO_PI, DeviceConfig
from repro.errors import ConfigError
from repro.device.topology import Topology


@dataclasses.dataclass(frozen=True)
class Device:
    """A compilation target: coupling graph + physics + overrides.

    Attributes:
        topology: The coupling graph.
        config: Homogeneous baseline physics (paper values by default).
        name: Optional display name (preset keys set it).
        t1_us: Per-qubit relaxation-time overrides (microseconds).
        t2_us: Per-qubit dephasing-time overrides (microseconds).
        coupling_limits_ghz: Per-edge control-field-limit overrides,
            keyed by ``(min, max)`` qubit pairs that must be topology
            edges.
    """

    topology: Topology
    config: DeviceConfig = DEFAULT_DEVICE
    name: str | None = None
    t1_us: Mapping[int, float] = dataclasses.field(default_factory=dict)
    t2_us: Mapping[int, float] = dataclasses.field(default_factory=dict)
    coupling_limits_ghz: Mapping[tuple[int, int], float] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not isinstance(self.topology, Topology):
            raise ConfigError(
                f"Device.topology must be a Topology, got {self.topology!r}"
            )
        if not isinstance(self.config, DeviceConfig):
            raise ConfigError(
                f"Device.config must be a DeviceConfig, got {self.config!r}"
            )
        for label, overrides in (("t1_us", self.t1_us), ("t2_us", self.t2_us)):
            clean: dict[int, float] = {}
            for qubit, value in overrides.items():
                qubit = int(qubit)
                if not 0 <= qubit < self.topology.num_qubits:
                    raise ConfigError(
                        f"{label} override for qubit {qubit}, which is not on "
                        f"the {self.topology.num_qubits}-qubit topology"
                    )
                if value <= 0:
                    raise ConfigError(
                        f"{label} override for qubit {qubit} must be positive"
                    )
                clean[qubit] = float(value)
            # Read-only views: dataclass freezing only stops attribute
            # rebinding, and a mutated override map would desynchronize
            # cache fingerprints from the physics that produced them.
            object.__setattr__(self, label, types.MappingProxyType(clean))
        edges = set(self.topology.edges())
        clean_limits: dict[tuple[int, int], float] = {}
        for pair, value in self.coupling_limits_ghz.items():
            a, b = int(pair[0]), int(pair[1])
            key = (min(a, b), max(a, b))
            if key not in edges:
                raise ConfigError(
                    f"coupling-limit override for {key}, which is not an "
                    f"edge of {self.topology!r}"
                )
            if value <= 0:
                raise ConfigError(
                    f"coupling-limit override for edge {key} must be positive"
                )
            clean_limits[key] = float(value)
        object.__setattr__(
            self, "coupling_limits_ghz", types.MappingProxyType(clean_limits)
        )

    # -- convenience -------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.topology.num_qubits

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any per-qubit or per-edge override is present."""
        return bool(self.t1_us or self.t2_us or self.coupling_limits_ghz)

    @property
    def has_heterogeneous_couplings(self) -> bool:
        """Whether per-edge coupling overrides are present.

        Only these overrides change pulse latencies (t1/t2 only feed the
        decoherence model), so only these force position-dependent
        optimal-control cache keys.
        """
        return bool(self.coupling_limits_ghz)

    def coupling_limit_ghz_of(self, qubit_a: int, qubit_b: int) -> float:
        """Control-field limit of the edge ``(a, b)`` in GHz.

        Non-edges fall back to the homogeneous baseline rather than
        erroring, so an off-graph query prices at nominal strength.
        (Pre-placement *logical* queries never reach this method at all:
        the optimal-control unit prices them homogeneously via its
        ``positional=False`` path.)
        """
        key = (min(qubit_a, qubit_b), max(qubit_a, qubit_b))
        return self.coupling_limits_ghz.get(key, self.config.coupling_limit_ghz)

    def coupling_rate_of(self, qubit_a: int, qubit_b: int) -> float:
        """Angular rate ``2*pi*mu`` of an edge's coupling field (rad/ns)."""
        return TWO_PI * self.coupling_limit_ghz_of(qubit_a, qubit_b)

    def t1_of(self, qubit: int) -> float:
        """Relaxation time of one qubit (override or baseline), in us."""
        return self.t1_us.get(qubit, self.config.t1_us)

    def t2_of(self, qubit: int) -> float:
        """Dephasing time of one qubit (override or baseline), in us."""
        return self.t2_us.get(qubit, self.config.t2_us)

    def signature(self) -> tuple:
        """Identity of everything device-specific (pure literals).

        Topology wiring plus every override, canonically ordered; the
        baseline :class:`DeviceConfig` is hashed separately by the cache
        fingerprint, so it is deliberately absent here.
        """
        return (
            self.topology.signature(),
            tuple(sorted(self.t1_us.items())),
            tuple(sorted(self.t2_us.items())),
            tuple(sorted(self.coupling_limits_ghz.items())),
        )

    def coupling_signature(self) -> tuple:
        """Identity of everything that affects instruction *pricing*.

        Topology wiring plus the per-edge coupling overrides — t1/t2
        overrides feed only the decoherence model, so two devices with
        equal coupling signatures produce identical latencies and
        pulses.  This is what the pulse-cache fingerprint and the
        matched-oracle check compare.
        """
        return (
            self.topology.signature(),
            tuple(sorted(self.coupling_limits_ghz.items())),
        )

    def to_dict(self) -> dict:
        """Versioned wire form (see :mod:`repro.ir.serialize`)."""
        from repro.ir.serialize import device_to_dict

        return device_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> Device:
        """Rebuild a device from its wire form."""
        from repro.ir.serialize import device_from_dict

        return device_from_dict(payload)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        tags = []
        if self.coupling_limits_ghz:
            tags.append(f"{len(self.coupling_limits_ghz)} edge overrides")
        if self.t1_us or self.t2_us:
            tags.append(f"{len(set(self.t1_us) | set(self.t2_us))} qubit overrides")
        suffix = f", {', '.join(tags)}" if tags else ""
        return f"Device({self.topology!r}{label}{suffix})"


def coerce_device(
    device: Device | DeviceConfig | str | None,
    topology: Topology | None = None,
) -> tuple[Device | None, DeviceConfig, Topology | None]:
    """Normalize the ``(device, topology)`` argument pair of an API entry.

    Accepts the full matrix of spellings the compiler entry points kept
    working through the refactor:

    * a :class:`Device` — the topology argument must then be omitted (or
      be the device's own topology);
    * a preset key string — resolved through the registry;
    * a bare :class:`DeviceConfig` plus an optional topology — wrapped
      into a default-override :class:`Device` when the topology is
      known, else left for the mapping pass to size a paper grid;
    * ``None`` — the paper-default :class:`DeviceConfig`.

    Returns:
        ``(device, config, topology)`` where ``device`` is None only
        when the topology is not yet known (auto-sized at mapping time).
    """
    if isinstance(device, str):
        from repro.device.presets import device_by_key

        device = device_by_key(device)
    if isinstance(device, Device):
        if topology is not None and topology is not device.topology:
            raise ConfigError(
                "pass either a Device or a bare topology, not both "
                f"(got device {device!r} and topology {topology!r})"
            )
        return device, device.config, device.topology
    config = device if device is not None else DEFAULT_DEVICE
    if not isinstance(config, DeviceConfig):
        raise ConfigError(
            f"device must be a Device, DeviceConfig or preset key, got {device!r}"
        )
    if topology is not None:
        return Device(topology=topology, config=config), config, topology
    return None, config, None
