"""Coupling-graph topologies: which physical qubit pairs can interact.

The paper (Sec. 3.4.1) assumes one device — a rectangular nearest-
neighbour grid with homogeneous XY couplings.  This module generalizes
that assumption to arbitrary coupling graphs: :class:`Topology` is a
plain undirected graph over physical qubits ``0..n-1`` with cached BFS
distances and shortest paths, and the concrete classes cover the device
families realistic hardware ships:

* :class:`GridTopology` / :class:`LineTopology` — the paper's devices,
  refactored onto the graph base (bit-identical behaviour, see below).
* :class:`RingTopology` — a 1-D chain with periodic boundary.
* :class:`HeavyHexTopology` — a hexagonal lattice with an extra qubit on
  every edge (IBM's heavy-hex family; max degree 3).
* :class:`FullyConnectedTopology` — all-to-all coupling (trapped ions).

Placement consumes :meth:`Topology.placement_order`: an ordering of the
physical qubits in which contiguous slices form compact connected
regions, so recursive bisection can split the region alongside the
interaction graph.  The generic order is a BFS from the highest-degree
qubit; ``GridTopology`` overrides it with the boustrophedon scan the
paper's pipeline used, which keeps the default device's output
bit-identical to the pre-refactor compiler.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

from repro.errors import MappingError


class Topology:
    """An undirected coupling graph over physical qubits ``0..n-1``.

    Args:
        num_qubits: Number of physical qubits.
        edges: Coupled pairs (order and duplicates are ignored; an edge
            ``(a, b)`` is stored canonically as ``(min, max)``).

    The graph must be connected — routing walks qubits along shortest
    paths, and a disconnected device would only fail later with a much
    less helpful error.
    """

    #: Short family tag used in reprs and device signatures.
    kind = "graph"

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_qubits < 1:
            raise MappingError("a topology needs at least one qubit")
        self._num_qubits = int(num_qubits)
        canonical: set[tuple[int, int]] = set()
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise MappingError(f"self-loop edge ({a}, {b}) is not a coupling")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise MappingError(
                    f"edge ({a}, {b}) outside qubits 0..{num_qubits - 1}"
                )
            canonical.add((min(a, b), max(a, b)))
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(canonical))
        adjacency: dict[int, list[int]] = {q: [] for q in range(num_qubits)}
        for a, b in self._edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        self._adjacency = {q: sorted(nbrs) for q, nbrs in adjacency.items()}
        self._adjacent_sets = {q: set(nbrs) for q, nbrs in adjacency.items()}
        self._distance_cache: dict[int, list[int]] = {}
        self._path_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._require_connected()

    # -- basic structure -------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def edges(self) -> tuple[tuple[int, int], ...]:
        """Canonical sorted edge list (each edge once, as ``(min, max)``)."""
        return self._edges

    def neighbors(self, qubit: int) -> list[int]:
        """Directly coupled physical qubits (ascending)."""
        self._check(qubit)
        return list(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        self._check(qubit)
        return len(self._adjacency[qubit])

    def are_adjacent(self, qubit_a: int, qubit_b: int) -> bool:
        """True when a two-qubit operation is directly possible."""
        self._check(qubit_a)
        self._check(qubit_b)
        return qubit_b in self._adjacent_sets[qubit_a]

    def all_qubits(self) -> list[int]:
        """All physical indices, ascending."""
        return list(range(self._num_qubits))

    # -- distances and paths ---------------------------------------------

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Hop count of a shortest coupling path (BFS, cached per source)."""
        self._check(qubit_a)
        self._check(qubit_b)
        distances = self._distance_cache.get(qubit_a)
        if distances is None:
            distances = self._bfs_distances(qubit_a)
            self._distance_cache[qubit_a] = distances
        return distances[qubit_b]

    def shortest_path(self, source: int, target: int) -> list[int]:
        """A shortest path (inclusive of endpoints) via BFS, cached.

        Deterministic: neighbours are explored in :meth:`neighbors`
        order, so repeated queries (and re-runs) pick the same path.
        """
        self._check(source)
        self._check(target)
        if source == target:
            return [source]
        cached = self._path_cache.get((source, target))
        if cached is not None:
            return list(cached)
        parents: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in parents:
                    parents[neighbor] = current
                    if neighbor == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        self._path_cache[(source, target)] = tuple(path)
                        return path
                    queue.append(neighbor)
        raise MappingError(f"no path from {source} to {target}")

    # -- placement support ------------------------------------------------

    def placement_order(self) -> list[int]:
        """Physical qubits ordered so contiguous slices form compact,
        connected regions (what recursive-bisection placement slices).

        Generic rule: BFS from the highest-degree qubit (smallest index
        on ties), exploring neighbours in ascending order.  Subclasses
        with geometric structure override this (the grid's boustrophedon
        scan).
        """
        seed = max(range(self._num_qubits), key=lambda q: (self.degree(q), -q))
        order = [seed]
        seen = {seed}
        queue = deque([seed])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    queue.append(neighbor)
        return order

    # -- identity ----------------------------------------------------------

    def signature(self) -> tuple:
        """Structural identity of the coupling graph (pure literals).

        Two topologies with the same signature have identical qubit
        count and edge set; device fingerprints build on this, so cache
        entries from differently-wired devices can never be confused.
        """
        return (self.kind, self._num_qubits, self._edges)

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self._num_qubits:
            raise MappingError(
                f"physical qubit {qubit} outside the {self._num_qubits}-qubit device"
            )

    def _bfs_distances(self, source: int) -> list[int]:
        distances = [-1] * self._num_qubits
        distances[source] = 0
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if distances[neighbor] < 0:
                    distances[neighbor] = distances[current] + 1
                    queue.append(neighbor)
        return distances

    def _require_connected(self) -> None:
        if self._num_qubits == 1:
            return
        reached = sum(d >= 0 for d in self._bfs_distances(0))
        if reached != self._num_qubits:
            raise MappingError(
                f"coupling graph is disconnected ({reached} of "
                f"{self._num_qubits} qubits reachable from qubit 0)"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self._num_qubits} qubits, "
            f"{len(self._edges)} edges)"
        )


class GridTopology(Topology):
    """A ``rows x cols`` nearest-neighbour grid (the paper's device).

    Physical qubits are indexed row-major.  Neighbour order, distances
    and shortest paths reproduce the pre-refactor grid code exactly, so
    compiling on the default device stays bit-identical.
    """

    kind = "grid"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise MappingError("grid dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        edges = []
        for row in range(self.rows):
            for col in range(self.cols):
                q = row * self.cols + col
                if col + 1 < self.cols:
                    edges.append((q, q + 1))
                if row + 1 < self.rows:
                    edges.append((q, q + self.cols))
        super().__init__(self.rows * self.cols, edges)

    def coordinates(self, qubit: int) -> tuple[int, int]:
        """(row, col) of a physical qubit."""
        self._check(qubit)
        return divmod(qubit, self.cols)

    def index(self, row: int, col: int) -> int:
        """Physical index of a grid cell."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise MappingError(f"cell ({row}, {col}) outside the grid")
        return row * self.cols + col

    def neighbors(self, qubit: int) -> list[int]:
        """Directly coupled physical qubits, in up/down/left/right order.

        The order is load-bearing: BFS tie-breaks (and therefore routed
        SWAP paths) follow it, and the seed compiler explored grid
        neighbours in exactly this order.
        """
        row, col = self.coordinates(qubit)
        adjacent = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                adjacent.append(self.index(r, c))
        return adjacent

    def are_adjacent(self, qubit_a: int, qubit_b: int) -> bool:
        row_a, col_a = self.coordinates(qubit_a)
        row_b, col_b = self.coordinates(qubit_b)
        return abs(row_a - row_b) + abs(col_a - col_b) == 1

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Manhattan distance (closed form; equals the BFS hop count)."""
        row_a, col_a = self.coordinates(qubit_a)
        row_b, col_b = self.coordinates(qubit_b)
        return abs(row_a - row_b) + abs(col_a - col_b)

    def placement_order(self) -> list[int]:
        """Boustrophedon scan along the longer dimension.

        Contiguous slices of this order are compact rectangles, which is
        what recursive-bisection placement wants; it is the exact order
        the pre-refactor placement used.
        """
        cells = []
        if self.rows >= self.cols:
            for row in range(self.rows):
                columns = range(self.cols)
                if row % 2:
                    columns = reversed(columns)
                for col in columns:
                    cells.append(self.index(row, col))
        else:
            for col in range(self.cols):
                rows = range(self.rows)
                if col % 2:
                    rows = reversed(rows)
                for row in rows:
                    cells.append(self.index(row, col))
        return cells

    def __repr__(self) -> str:
        return f"GridTopology({self.rows}x{self.cols})"


class LineTopology(GridTopology):
    """1-D nearest-neighbour chain (used in the paper's Fig. 4 example)."""

    kind = "line"

    def __init__(self, num_qubits: int) -> None:
        super().__init__(1, num_qubits)

    def __repr__(self) -> str:
        return f"LineTopology({self.cols})"


class RingTopology(Topology):
    """A 1-D chain with periodic boundary (qubit ``n-1`` couples to 0)."""

    kind = "ring"

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 3:
            raise MappingError("a ring needs at least three qubits")
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
        super().__init__(num_qubits, edges)

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Closed form: the shorter way around the ring."""
        self._check(qubit_a)
        self._check(qubit_b)
        around = abs(qubit_a - qubit_b)
        return min(around, self._num_qubits - around)

    def __repr__(self) -> str:
        return f"RingTopology({self._num_qubits})"


class FullyConnectedTopology(Topology):
    """All-to-all coupling (trapped-ion style): every pair is an edge."""

    kind = "all-to-all"

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise MappingError("a topology needs at least one qubit")
        edges = [
            (a, b)
            for a in range(num_qubits)
            for b in range(a + 1, num_qubits)
        ]
        super().__init__(num_qubits, edges)

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        self._check(qubit_a)
        self._check(qubit_b)
        return 0 if qubit_a == qubit_b else 1

    def __repr__(self) -> str:
        return f"FullyConnectedTopology({self._num_qubits})"


class HeavyHexTopology(Topology):
    """A heavy-hexagon lattice: hexagonal cells with a qubit on every edge.

    IBM's heavy-hex family places qubits on both the vertices and the
    edges of a hexagonal lattice, which caps the coupling degree at 3
    (vertex qubits) while edge qubits have degree 2.  ``distance`` here
    is the number of hexagon rows *and* columns of the underlying
    lattice: ``HeavyHexTopology(1)`` is a single (subdivided) hexagon,
    ``HeavyHexTopology(2)`` a 2x2 block of cells, and so on.

    Qubit numbering is deterministic: lattice vertices first (sorted by
    their lattice coordinates), then one edge qubit per lattice edge
    (sorted canonically), so the same ``distance`` always yields the
    same device.
    """

    kind = "heavy-hex"

    def __init__(self, distance: int) -> None:
        if distance < 1:
            raise MappingError("heavy-hex distance must be at least 1")
        self.distance_param = int(distance)
        import networkx as nx

        lattice = nx.hexagonal_lattice_graph(distance, distance)
        vertices = sorted(lattice.nodes())
        index = {node: position for position, node in enumerate(vertices)}
        lattice_edges = sorted(
            (min(index[a], index[b]), max(index[a], index[b]))
            for a, b in lattice.edges()
        )
        edges: list[tuple[int, int]] = []
        bridge = len(vertices)
        # Subdivide: each lattice edge gains one "heavy" qubit.
        for a, b in lattice_edges:
            edges.append((a, bridge))
            edges.append((bridge, b))
            bridge += 1
        super().__init__(bridge, edges)

    def __repr__(self) -> str:
        return (
            f"HeavyHexTopology(distance={self.distance_param}, "
            f"{self._num_qubits} qubits)"
        )


def grid_for(num_qubits: int) -> GridTopology:
    """Smallest near-square grid with at least ``num_qubits`` cells.

    With ``rows = floor(sqrt(n))``, ``cols = ceil(n / rows)`` makes
    ``rows * cols >= n`` by construction, and the grid stays near-square:
    ``rows <= sqrt(n)`` and ``cols < sqrt(n) + 2`` (cols exceeds
    ``n / rows <= sqrt(n) + 1`` by less than one).
    """
    if num_qubits < 1:
        raise MappingError("need at least one qubit")
    rows = math.isqrt(num_qubits)
    return GridTopology(rows, math.ceil(num_qubits / rows))
