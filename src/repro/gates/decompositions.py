"""Decomposition of multi-qubit gates into the standard logical set.

The gate-based baseline and all benchmark generators express circuits over
{1-qubit rotations, H, CNOT, SWAP}; SWAP is kept as a first-class gate
because the paper optimizes its pulse individually instead of expanding it
into three CNOTs (Table 1).  Toffoli and friends are lowered here with the
standard Clifford+T constructions.
"""

from __future__ import annotations

import math

from repro.errors import GateError
from repro.gates.gate import Gate
from repro.gates import library


def decompose_swap_to_cnots(gate: Gate) -> list[Gate]:
    """SWAP as three alternating CNOTs (the classical-XOR analogy)."""
    if gate.name != "SWAP":
        raise GateError(f"expected a SWAP gate, got {gate.name}")
    a, b = gate.qubits
    return [library.CNOT(a, b), library.CNOT(b, a), library.CNOT(a, b)]


def decompose_toffoli(gate: Gate) -> list[Gate]:
    """Standard 15-gate Clifford+T Toffoli decomposition."""
    if gate.name != "TOFFOLI":
        raise GateError(f"expected a TOFFOLI gate, got {gate.name}")
    a, b, c = gate.qubits
    return [
        library.H(c),
        library.CNOT(b, c),
        library.TDG(c),
        library.CNOT(a, c),
        library.T(c),
        library.CNOT(b, c),
        library.TDG(c),
        library.CNOT(a, c),
        library.T(b),
        library.T(c),
        library.CNOT(a, b),
        library.H(c),
        library.T(a),
        library.TDG(b),
        library.CNOT(a, b),
    ]


def decompose_ccz(gate: Gate) -> list[Gate]:
    """CCZ as H-conjugated Toffoli."""
    if gate.name != "CCZ":
        raise GateError(f"expected a CCZ gate, got {gate.name}")
    a, b, c = gate.qubits
    return [
        library.H(c),
        *decompose_toffoli(library.TOFFOLI(a, b, c)),
        library.H(c),
    ]


def decompose_fredkin(gate: Gate) -> list[Gate]:
    """Controlled SWAP via CNOT-conjugated Toffoli."""
    if gate.name != "FREDKIN":
        raise GateError(f"expected a FREDKIN gate, got {gate.name}")
    control, target_a, target_b = gate.qubits
    return [
        library.CNOT(target_b, target_a),
        *decompose_toffoli(library.TOFFOLI(control, target_a, target_b)),
        library.CNOT(target_b, target_a),
    ]


def decompose_cphase(gate: Gate) -> list[Gate]:
    """CPhase(theta) via two CNOTs and Rz rotations (up to global phase)."""
    if gate.name != "CPHASE":
        raise GateError(f"expected a CPHASE gate, got {gate.name}")
    (theta,) = gate.params
    control, target = gate.qubits
    return [
        library.RZ(theta / 2.0, control),
        library.RZ(theta / 2.0, target),
        library.CNOT(control, target),
        library.RZ(-theta / 2.0, target),
        library.CNOT(control, target),
    ]


def decompose_rzz(gate: Gate) -> list[Gate]:
    """``exp(-i theta/2 ZZ)`` as the CNOT-Rz-CNOT chain."""
    if gate.name != "RZZ":
        raise GateError(f"expected an RZZ gate, got {gate.name}")
    (theta,) = gate.params
    a, b = gate.qubits
    return [
        library.CNOT(a, b),
        library.RZ(theta, b),
        library.CNOT(a, b),
    ]


def decompose_cz(gate: Gate) -> list[Gate]:
    """CZ as H-conjugated CNOT."""
    if gate.name != "CZ":
        raise GateError(f"expected a CZ gate, got {gate.name}")
    control, target = gate.qubits
    return [library.H(target), library.CNOT(control, target), library.H(target)]


def decompose_iswap(gate: Gate) -> list[Gate]:
    """iSWAP over the logical set: SWAP then S on both then CZ.

    ``iSWAP = CZ . (S (x) S) . SWAP`` (all factors commute appropriately).
    """
    if gate.name != "ISWAP":
        raise GateError(f"expected an ISWAP gate, got {gate.name}")
    a, b = gate.qubits
    return [
        library.SWAP(a, b),
        library.S(a),
        library.S(b),
        *decompose_cz(library.CZ(a, b)),
    ]


_STANDARD_SET = frozenset(
    {"I", "X", "Y", "Z", "H", "S", "SDG", "T", "TDG", "RX", "RY", "RZ",
     "PHASE", "CNOT", "SWAP"}
)

_DECOMPOSERS = {
    "TOFFOLI": decompose_toffoli,
    "CCZ": decompose_ccz,
    "FREDKIN": decompose_fredkin,
    "CPHASE": decompose_cphase,
    "RZZ": decompose_rzz,
    "CZ": decompose_cz,
    "ISWAP": decompose_iswap,
}


def decompose_gate(gate: Gate) -> list[Gate]:
    """One decomposition step for ``gate`` (non-recursive)."""
    if gate.name in _DECOMPOSERS:
        return _DECOMPOSERS[gate.name](gate)
    raise GateError(f"no decomposition registered for {gate.name}")


def lower_to_standard_set(gates, max_passes: int = 4) -> list[Gate]:
    """Rewrite a gate sequence over the standard logical set.

    Repeatedly expands every gate with a registered decomposer until all
    remaining gates are in the standard set.
    """
    current = list(gates)
    for _ in range(max_passes):
        if all(gate.name in _STANDARD_SET for gate in current):
            return current
        lowered: list[Gate] = []
        for gate in current:
            if gate.name in _STANDARD_SET:
                lowered.append(gate)
            elif gate.name in _DECOMPOSERS:
                lowered.extend(_DECOMPOSERS[gate.name](gate))
            else:
                raise GateError(
                    f"cannot lower {gate.name}: not standard, no decomposer"
                )
        current = lowered
    raise GateError(f"lowering did not converge in {max_passes} passes")


def is_standard(gate: Gate) -> bool:
    """True when the gate is in the standard logical set."""
    return gate.name in _STANDARD_SET


def standard_set() -> frozenset[str]:
    """The standard logical gate names."""
    return _STANDARD_SET


def rotation_gate_time_estimate(theta: float, drive_rate: float) -> float:
    """Busy time of a bare rotation pulse at the drive limit (ns)."""
    wrapped = abs(math.remainder(theta, 2.0 * math.pi))
    return wrapped / drive_rate
