"""The :class:`Gate` object: a named unitary applied to specific qubits.

Gates compare by *identity*, not value: a circuit containing the same
operation twice holds two distinct :class:`Gate` instances, which is what
the gate-dependence graph needs to track each occurrence separately.
Value-level comparisons go through :attr:`Gate.signature`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.errors import GateError
from repro.linalg.predicates import is_diagonal, is_unitary

_PARAM_DECIMALS = 10


@dataclasses.dataclass(frozen=True, eq=False)
class Gate:
    """A unitary operation on an ordered tuple of qubits.

    Attributes:
        name: Upper-case mnemonic, e.g. ``"CNOT"`` or ``"RZ"``.
        qubits: Register positions the gate acts on (order matters: for
            ``CNOT`` the first entry is the control).
        params: Continuous parameters (rotation angles), possibly empty.
        matrix: ``2^k x 2^k`` unitary in the big-endian convention.
    """

    name: str
    qubits: tuple[int, ...]
    matrix: np.ndarray
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        matrix = np.asarray(self.matrix, dtype=complex)
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)
        k = len(self.qubits)
        if len(set(self.qubits)) != k:
            raise GateError(f"duplicate qubits in {self.name}: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise GateError(f"negative qubit index in {self.name}: {self.qubits}")
        if matrix.shape != (2**k, 2**k):
            raise GateError(
                f"{self.name} on {k} qubits needs a {2**k}x{2**k} matrix, "
                f"got {matrix.shape}"
            )
        if not is_unitary(matrix, atol=1e-7):
            raise GateError(f"{self.name} matrix is not unitary")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_diagonal(self) -> bool:
        """True when the matrix is diagonal in the computational basis.

        Memoized: the schedulers and commutation checker query this on
        every group-membership test.
        """
        cached = self.__dict__.get("_is_diagonal")
        if cached is None:
            cached = is_diagonal(self.matrix)
            object.__setattr__(self, "_is_diagonal", cached)
        return cached

    @property
    def signature(self) -> tuple:
        """Value-level identity: name, rounded params, qubit-order pattern.

        Two gates with equal signatures have equal matrices and act on
        qubit tuples with the same internal ordering pattern, so cached
        commutation verdicts transfer between them.  Computed once and
        memoized (gates are immutable).
        """
        cached = self.__dict__.get("_signature")
        if cached is None:
            order = sorted(range(len(self.qubits)), key=self.qubits.__getitem__)
            ranks = [0] * len(self.qubits)
            for rank, position in enumerate(order):
                ranks[position] = rank
            cached = (
                self.name,
                tuple(round(p, _PARAM_DECIMALS) for p in self.params),
                tuple(ranks),
            )
            object.__setattr__(self, "_signature", cached)
        return cached

    def on(self, qubits: Sequence[int]) -> Gate:
        """The same operation applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.matrix, self.params)

    def dagger(self) -> Gate:
        """The inverse gate (conjugate-transposed matrix)."""
        return Gate(
            f"{self.name}_DG" if not self.name.endswith("_DG") else self.name[:-3],
            self.qubits,
            self.matrix.conj().T,
            tuple(-p for p in self.params),
        )

    def __repr__(self) -> str:
        params = ""
        if self.params:
            params = "(" + ", ".join(f"{p:.4g}" for p in self.params) + ")"
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.name}{params}[{qubits}]"
