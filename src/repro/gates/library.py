"""Constructors for the logical and physical gate sets.

The logical ISA matches the paper's standard set (Sec. 2.2): rotations
``Rx/Ry/Rz``, Hadamard, CNOT, plus the common Cliffords and Toffoli for
benchmark synthesis.  The physical set for the superconducting XY
architecture (Appendix A) is ``iSWAP`` (and its square root); ``CPhase``
and ``RZZ`` appear as physical gates of other platforms and as convenient
intermediate instructions.

Conventions: big-endian qubit order (qubit 0 = most significant index bit);
controls come first in multi-qubit gate signatures;
``Rz(t) = diag(e^{-it/2}, e^{it/2})``.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.errors import GateError
from repro.gates.gate import Gate
from repro.linalg.su2 import rx_matrix, ry_matrix, rz_matrix

_SQRT2 = math.sqrt(2.0)

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1.0, -1.0]).astype(complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
_S = np.diag([1.0, 1.0j]).astype(complex)
_SDG = np.diag([1.0, -1.0j]).astype(complex)
_T = np.diag([1.0, cmath.exp(1j * math.pi / 4)]).astype(complex)
_TDG = np.diag([1.0, cmath.exp(-1j * math.pi / 4)]).astype(complex)

_CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_SQRT_ISWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 1 / _SQRT2, 1j / _SQRT2, 0],
        [0, 1j / _SQRT2, 1 / _SQRT2, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_TOFFOLI = np.eye(8, dtype=complex)
_TOFFOLI[[6, 7], :] = _TOFFOLI[[7, 6], :]
_CCZ = np.diag([1.0] * 7 + [-1.0]).astype(complex)
_FREDKIN = np.eye(8, dtype=complex)
_FREDKIN[[5, 6], :] = _FREDKIN[[6, 5], :]


def I(qubit: int) -> Gate:  # noqa: E743 - conventional gate name
    """Identity gate (used as the virtual GDG root)."""
    return Gate("I", (qubit,), _I)


def X(qubit: int) -> Gate:
    """Pauli X (NOT)."""
    return Gate("X", (qubit,), _X)


def Y(qubit: int) -> Gate:
    """Pauli Y."""
    return Gate("Y", (qubit,), _Y)


def Z(qubit: int) -> Gate:
    """Pauli Z."""
    return Gate("Z", (qubit,), _Z)


def H(qubit: int) -> Gate:
    """Hadamard."""
    return Gate("H", (qubit,), _H)


def S(qubit: int) -> Gate:
    """Phase gate ``diag(1, i)``."""
    return Gate("S", (qubit,), _S)


def SDG(qubit: int) -> Gate:
    """Inverse phase gate ``diag(1, -i)``."""
    return Gate("SDG", (qubit,), _SDG)


def T(qubit: int) -> Gate:
    """T gate ``diag(1, e^{i pi/4})``."""
    return Gate("T", (qubit,), _T)


def TDG(qubit: int) -> Gate:
    """Inverse T gate."""
    return Gate("TDG", (qubit,), _TDG)


def RX(theta: float, qubit: int) -> Gate:
    """Rotation about x by ``theta``."""
    return Gate("RX", (qubit,), rx_matrix(theta), (theta,))


def RY(theta: float, qubit: int) -> Gate:
    """Rotation about y by ``theta``."""
    return Gate("RY", (qubit,), ry_matrix(theta), (theta,))


def RZ(theta: float, qubit: int) -> Gate:
    """Rotation about z by ``theta``."""
    return Gate("RZ", (qubit,), rz_matrix(theta), (theta,))


def PHASE(theta: float, qubit: int) -> Gate:
    """``diag(1, e^{i theta})`` (Rz up to global phase)."""
    return Gate("PHASE", (qubit,), np.diag([1.0, cmath.exp(1j * theta)]), (theta,))


def CNOT(control: int, target: int) -> Gate:
    """Controlled NOT."""
    return Gate("CNOT", (control, target), _CNOT)


def CZ(control: int, target: int) -> Gate:
    """Controlled Z (symmetric)."""
    return Gate("CZ", (control, target), _CZ)


def CPHASE(theta: float, control: int, target: int) -> Gate:
    """Controlled phase ``diag(1, 1, 1, e^{i theta})``."""
    matrix = np.diag([1.0, 1.0, 1.0, cmath.exp(1j * theta)]).astype(complex)
    return Gate("CPHASE", (control, target), matrix, (theta,))


def SWAP(qubit_a: int, qubit_b: int) -> Gate:
    """SWAP (kept as a first-class gate with its own optimized pulse)."""
    return Gate("SWAP", (qubit_a, qubit_b), _SWAP)


def ISWAP(qubit_a: int, qubit_b: int) -> Gate:
    """iSWAP: the natural physical gate of the XY architecture."""
    return Gate("ISWAP", (qubit_a, qubit_b), _ISWAP)


def SQRT_ISWAP(qubit_a: int, qubit_b: int) -> Gate:
    """Square root of iSWAP."""
    return Gate("SQRT_ISWAP", (qubit_a, qubit_b), _SQRT_ISWAP)


def RZZ(theta: float, qubit_a: int, qubit_b: int) -> Gate:
    """``exp(-i theta/2 Z(x)Z)``: the diagonal instruction produced by
    contracting CNOT-Rz-CNOT chains."""
    phase = np.exp(-1j * theta / 2.0 * np.array([1.0, -1.0, -1.0, 1.0]))
    return Gate("RZZ", (qubit_a, qubit_b), np.diag(phase), (theta,))


def TOFFOLI(control_a: int, control_b: int, target: int) -> Gate:
    """Doubly-controlled NOT."""
    return Gate("TOFFOLI", (control_a, control_b, target), _TOFFOLI)


def CCZ(qubit_a: int, qubit_b: int, qubit_c: int) -> Gate:
    """Doubly-controlled Z (symmetric)."""
    return Gate("CCZ", (qubit_a, qubit_b, qubit_c), _CCZ)


def FREDKIN(control: int, target_a: int, target_b: int) -> Gate:
    """Controlled SWAP."""
    return Gate("FREDKIN", (control, target_a, target_b), _FREDKIN)


_NO_PARAM_FACTORIES = {
    "I": I,
    "X": X,
    "Y": Y,
    "Z": Z,
    "H": H,
    "S": S,
    "SDG": SDG,
    "T": T,
    "TDG": TDG,
    "CNOT": CNOT,
    "CX": CNOT,
    "CZ": CZ,
    "SWAP": SWAP,
    "ISWAP": ISWAP,
    "SQRT_ISWAP": SQRT_ISWAP,
    "TOFFOLI": TOFFOLI,
    "CCX": TOFFOLI,
    "CCZ": CCZ,
    "FREDKIN": FREDKIN,
    "CSWAP": FREDKIN,
}

_PARAM_FACTORIES = {
    "RX": RX,
    "RY": RY,
    "RZ": RZ,
    "PHASE": PHASE,
    "CPHASE": CPHASE,
    "RZZ": RZZ,
}


def gate_from_name(name: str, qubits, params=()) -> Gate:
    """Generic constructor used by the QASM parser.

    Args:
        name: Case-insensitive gate mnemonic.
        qubits: Qubit positions, controls first.
        params: Rotation angles for parameterized gates.
    """
    key = name.upper()
    params = tuple(float(p) for p in params)
    qubits = tuple(int(q) for q in qubits)
    if key in _NO_PARAM_FACTORIES:
        if params:
            raise GateError(f"{key} takes no parameters, got {params}")
        return _NO_PARAM_FACTORIES[key](*qubits)
    if key in _PARAM_FACTORIES:
        return _PARAM_FACTORIES[key](*params, *qubits)
    raise GateError(f"unknown gate name {name!r}")


def known_gate_names() -> frozenset[str]:
    """All mnemonics accepted by :func:`gate_from_name`."""
    return frozenset(_NO_PARAM_FACTORIES) | frozenset(_PARAM_FACTORIES)
