"""Haar-random unitaries and states for tests and property checks."""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError


def random_unitary(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-random unitary via the QR decomposition of a Ginibre matrix."""
    if dim < 1:
        raise LinalgError("dimension must be at least 1")
    rng = rng or np.random.default_rng()
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Normalize the phases so the distribution is exactly Haar.
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def random_statevector(
    num_qubits: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Haar-random pure state on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise LinalgError("num_qubits must be at least 1")
    rng = rng or np.random.default_rng()
    dim = 2**num_qubits
    state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return state / np.linalg.norm(state)
