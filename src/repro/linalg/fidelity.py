"""Fidelity measures between unitaries and between states.

The optimal-control unit maximizes the unitary trace fidelity
``F = |Tr(U_target^dagger U)|^2 / d^2`` (paper Sec. 2.5); the verification
module re-checks synthesized pulses against the same measure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError


def unitary_trace_fidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """Phase-insensitive unitary fidelity ``|Tr(target^dag actual)|^2/d^2``."""
    target = np.asarray(target, dtype=complex)
    actual = np.asarray(actual, dtype=complex)
    if target.shape != actual.shape or target.ndim != 2:
        raise LinalgError(
            f"shape mismatch: {target.shape} vs {actual.shape}"
        )
    d = target.shape[0]
    overlap = np.trace(target.conj().T @ actual)
    return float(np.abs(overlap) ** 2 / d**2)


def unitary_infidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """``1 - unitary_trace_fidelity`` (the GRAPE loss function)."""
    return 1.0 - unitary_trace_fidelity(target, actual)


def average_gate_fidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """Average gate fidelity ``(d*F_pro + 1)/(d + 1)`` for unitary channels."""
    target = np.asarray(target, dtype=complex)
    d = target.shape[0]
    process_fidelity = unitary_trace_fidelity(target, actual)
    return float((d * process_fidelity + 1.0) / (d + 1.0))


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """``|<a|b>|^2`` for pure states given as 1-D complex vectors."""
    state_a = np.asarray(state_a, dtype=complex).ravel()
    state_b = np.asarray(state_b, dtype=complex).ravel()
    if state_a.shape != state_b.shape:
        raise LinalgError(
            f"state dimension mismatch: {state_a.shape} vs {state_b.shape}"
        )
    return float(np.abs(np.vdot(state_a, state_b)) ** 2)
