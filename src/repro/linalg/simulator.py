"""Statevector simulation of circuits on up to ~20 qubits.

Used by tests to check that circuit generators and compiler passes preserve
semantics (e.g. the Grover square-root oracle marks exactly the right
states), and by the quickstart example.  Gates are applied with
``tensordot`` on the reshaped state so memory stays at one state vector.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import LinalgError


def apply_unitary(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a k-qubit unitary to ``state`` on the given qubit positions."""
    qubits = list(qubits)
    k = len(qubits)
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2**k, 2**k):
        raise LinalgError(
            f"matrix shape {matrix.shape} does not match {k} qubits"
        )
    if len(set(qubits)) != k:
        raise LinalgError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise LinalgError(f"qubits {qubits} out of range for {num_qubits}")
    tensor = np.asarray(state, dtype=complex).reshape([2] * num_qubits)
    operator = matrix.reshape([2] * (2 * k))
    # Contract the operator's input axes with the state's qubit axes.
    moved = np.tensordot(operator, tensor, axes=(range(k, 2 * k), qubits))
    # tensordot puts the contracted axes first; move them back into place.
    moved = np.moveaxis(moved, range(k), qubits)
    return moved.reshape(-1)


class StatevectorSimulator:
    """Simple dense statevector simulator.

    Example:
        >>> sim = StatevectorSimulator(2)
        >>> sim.apply(H, [0]); sim.apply(CNOT_MATRIX, [0, 1])
        >>> sim.probabilities()  # Bell state
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise LinalgError("num_qubits must be at least 1")
        if num_qubits > 24:
            raise LinalgError(
                f"{num_qubits} qubits exceeds the dense-simulation limit (24)"
            )
        self.num_qubits = num_qubits
        self.state = np.zeros(2**num_qubits, dtype=complex)
        self.state[0] = 1.0

    def reset(self, basis_state: int = 0) -> None:
        """Reset to a computational basis state."""
        if not 0 <= basis_state < 2**self.num_qubits:
            raise LinalgError(f"basis state {basis_state} out of range")
        self.state[:] = 0.0
        self.state[basis_state] = 1.0

    def apply(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a unitary in place."""
        self.state = apply_unitary(self.state, matrix, qubits, self.num_qubits)

    def run_circuit(self, circuit) -> None:
        """Apply every gate of a :class:`~repro.circuit.Circuit` in order."""
        for gate in circuit.gates:
            self.apply(gate.matrix, gate.qubits)

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities in the computational basis."""
        return np.abs(self.state) ** 2

    def probability_of(self, basis_state: int) -> float:
        """Probability of a single basis state."""
        return float(np.abs(self.state[basis_state]) ** 2)

    def expectation(self, operator: np.ndarray) -> complex:
        """Expectation value ``<psi|O|psi>`` of a full-register operator."""
        operator = np.asarray(operator, dtype=complex)
        dim = 2**self.num_qubits
        if operator.shape != (dim, dim):
            raise LinalgError(
                f"operator shape {operator.shape} does not match register"
            )
        return complex(np.vdot(self.state, operator @ self.state))
