"""Cartan (KAK) decomposition of two-qubit unitaries and Weyl coordinates.

Any two-qubit unitary factors as::

    U = exp(i alpha) * (k1a (x) k1b) * CAN(c1, c2, c3) * (k2a (x) k2b)

with single-qubit ``k`` factors and the canonical interaction part
``CAN(c) = exp(i * (c1 XX + c2 YY + c3 ZZ))``.  The coordinates ``c`` (the
*Weyl coordinates*, defined up to a discrete symmetry group) capture the
entangling content of the gate; under this convention CNOT/CZ sit at
``(pi/4, 0, 0)``, iSWAP at ``(pi/4, pi/4, 0)`` and SWAP at
``(pi/4, pi/4, pi/4)``.

The analytic latency model uses :func:`interaction_time`: the provably
minimal time to realize a canonical class with an XY (iSWAP-type) coupling
of angular rate ``g`` and fast local rotations.  Piecewise-constant XY
evolution segments, conjugated by free local Cliffords, add contributions
``(g*t/2) * d`` with direction ``d`` any signed pair ``(+-e_i +- e_j)``;
because XX, YY and ZZ commute, contributions are additive in ``c`` space,
so the minimal total time is a tiny linear program whose closed form is::

    T(c) = (2/g) * max(c_max, (c1 + c2 + c3) / 2)

minimized over the discrete symmetry orbit of ``c``.  This reproduces the
known constructions: iSWAP and CNOT both need ``pi/(2g)`` and SWAP needs
``3*pi/(4g)`` (Schuch & Siewert 2003).
"""

from __future__ import annotations

import cmath
import dataclasses
import itertools
import math

import numpy as np

from repro.errors import LinalgError
from repro.linalg.paulis import pauli_string
from repro.linalg.predicates import is_unitary

HALF_PI = math.pi / 2.0
QUARTER_PI = math.pi / 4.0

# Magic (Bell) basis: SU(2) x SU(2) becomes SO(4) in this basis.
MAGIC = np.array(
    [
        [1.0, 0.0, 0.0, 1.0j],
        [0.0, 1.0j, 1.0, 0.0],
        [0.0, 1.0j, -1.0, 0.0],
        [1.0, 0.0, 0.0, -1.0j],
    ],
    dtype=complex,
) / math.sqrt(2.0)
MAGIC_DAG = MAGIC.conj().T


def _diagonal_signs(label: str) -> np.ndarray:
    transformed = MAGIC_DAG @ pauli_string(label) @ MAGIC
    diagonal = np.real(np.diag(transformed))
    if not np.allclose(transformed, np.diag(diagonal), atol=1e-12):
        raise LinalgError(f"{label} is not diagonal in the magic basis")
    return diagonal


# Rows of the 4x3 sign matrix: theta_k = (SIGNS @ c)_k for CAN(c) in the
# magic basis.  Columns are orthogonal with squared norm 4, and each sums
# to zero, so SIGNS.T @ theta / 4 inverts exactly on zero-sum vectors.
SIGNS = np.column_stack(
    [_diagonal_signs("XX"), _diagonal_signs("YY"), _diagonal_signs("ZZ")]
)


def canonical_gate(coordinates) -> np.ndarray:
    """``CAN(c) = exp(i (c1 XX + c2 YY + c3 ZZ))`` as a 4x4 matrix."""
    c = np.asarray(coordinates, dtype=float)
    if c.shape != (3,):
        raise LinalgError(f"expected 3 Weyl coordinates, got shape {c.shape}")
    phases = np.exp(1j * (SIGNS @ c))
    return MAGIC @ np.diag(phases) @ MAGIC_DAG


def makhlin_invariants(matrix: np.ndarray) -> tuple[complex, float]:
    """Local invariants ``(g1 + i g2, g3)`` of a two-qubit unitary.

    Two unitaries are locally equivalent (same Weyl chamber point) if and
    only if their Makhlin invariants agree.
    """
    u = _require_two_qubit_unitary(matrix)
    u = u / np.linalg.det(u) ** 0.25
    m = MAGIC_DAG @ u @ MAGIC
    gram = m.T @ m
    trace = np.trace(gram)
    g12 = trace**2 / 16.0
    g3 = (trace**2 - np.trace(gram @ gram)) / 4.0
    return complex(g12), float(np.real(g3))


@dataclasses.dataclass(frozen=True)
class WeylDecomposition:
    """Full KAK factorization ``U = phase * (k1a x k1b) CAN(c) (k2a x k2b)``.

    ``coordinates`` are the *raw* (non-canonicalized) Weyl coordinates of
    the middle factor; use :attr:`canonical_coordinates` for the chamber
    representative.
    """

    phase: complex
    k1a: np.ndarray
    k1b: np.ndarray
    coordinates: np.ndarray
    k2a: np.ndarray
    k2b: np.ndarray

    @property
    def canonical_coordinates(self) -> np.ndarray:
        return canonicalize_coordinates(self.coordinates)

    def reconstruct(self) -> np.ndarray:
        """Multiply the factors back together."""
        left = np.kron(self.k1a, self.k1b)
        right = np.kron(self.k2a, self.k2b)
        return self.phase * (left @ canonical_gate(self.coordinates) @ right)

    @property
    def local_rotation_content(self) -> tuple[float, float]:
        """Total local rotation angle on each qubit (pre + post factors).

        Measured modulo Pauli corrections.  Diagnostic only: for canonical
        classes with degenerate Weyl spectra (CNOT, SWAP, ...) the KAK
        factorization is not unique and this value depends on the
        eigenbasis chosen, so the latency model does not consume it; it
        charges local cost from explicit single-qubit circuit structure
        instead.
        """
        from repro.linalg.su2 import pauli_reduced_rotation_content

        qubit_a = pauli_reduced_rotation_content(
            self.k1a
        ) + pauli_reduced_rotation_content(self.k2a)
        qubit_b = pauli_reduced_rotation_content(
            self.k1b
        ) + pauli_reduced_rotation_content(self.k2b)
        return qubit_a, qubit_b


def weyl_decomposition(matrix: np.ndarray, atol: float = 1e-7) -> WeylDecomposition:
    """Compute the full KAK decomposition of a two-qubit unitary."""
    u = _require_two_qubit_unitary(matrix)
    det = np.linalg.det(u)
    gamma = det ** 0.25
    u4 = u / gamma

    m = MAGIC_DAG @ u4 @ MAGIC
    gram = m.T @ m
    q = _orthogonal_diagonalizer(gram)

    # Per-column phase extraction: v_k = m q_k satisfies v^T v = exp(2i t_k)
    # and exp(-i t_k) v_k is a real unit vector.
    v = m @ q
    thetas = np.zeros(4)
    p = np.zeros((4, 4))
    for k in range(4):
        column = v[:, k]
        bilinear = column @ column
        theta = cmath.phase(bilinear) / 2.0
        real_column = column * cmath.exp(-1j * theta)
        if np.linalg.norm(np.imag(real_column)) > np.linalg.norm(
            np.real(real_column)
        ):
            # Wrong half-branch: rotate by pi to land on the real axis.
            theta += math.pi
            real_column = column * cmath.exp(-1j * theta)
        if np.linalg.norm(np.imag(real_column)) > 1e-5:
            raise LinalgError("KAK column did not become real; ill-conditioned input")
        thetas[k] = theta
        p[:, k] = np.real(real_column)

    # Fix determinants so both orthogonal factors are rotations.
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
        p[:, 0] = -p[:, 0]
    if np.linalg.det(p) < 0:
        p[:, 0] = -p[:, 0]
        thetas[0] += math.pi

    # det(D) must be +1 so the phases lie in the span of SIGNS exactly.
    total = float(np.sum(thetas))
    shift = round(total / (2.0 * math.pi))
    if shift:
        thetas[int(np.argmax(thetas))] -= 2.0 * math.pi * shift
    coordinates = SIGNS.T @ thetas / 4.0
    residual = SIGNS @ coordinates - thetas
    if np.max(np.abs(residual)) > 1e-6:
        raise LinalgError("KAK phase vector is not representable; numerical failure")

    k1 = MAGIC @ p @ MAGIC_DAG
    k2 = MAGIC @ q.T @ MAGIC_DAG
    k1a, k1b = _factor_tensor_product(k1)
    k2a, k2b = _factor_tensor_product(k2)

    decomposition = WeylDecomposition(
        phase=complex(gamma),
        k1a=k1a,
        k1b=k1b,
        coordinates=coordinates,
        k2a=k2a,
        k2b=k2b,
    )
    if np.max(np.abs(decomposition.reconstruct() - u)) > max(atol, 1e-6):
        raise LinalgError("KAK reconstruction mismatch; numerical failure")
    return decomposition


def weyl_coordinates(matrix: np.ndarray) -> np.ndarray:
    """Canonical (Weyl-chamber) coordinates of a two-qubit unitary.

    Cheaper than the full decomposition: only the eigenphases of the
    magic-basis Gram matrix are needed.
    """
    u = _require_two_qubit_unitary(matrix)
    u4 = u / np.linalg.det(u) ** 0.25
    m = MAGIC_DAG @ u4 @ MAGIC
    gram = m.T @ m
    eigenvalues = np.linalg.eigvals(gram)
    thetas = np.angle(eigenvalues) / 2.0
    # The eigenphase vector must sum to zero (mod pi branch adjustments) to
    # lie in the span of SIGNS; repair the branch cuts.
    total = float(np.sum(thetas))
    shift = round(total / math.pi)
    if shift:
        order = np.argsort(thetas)[::-1] if shift > 0 else np.argsort(thetas)
        step = math.pi if shift < 0 else -math.pi
        for index in order[: abs(shift)]:
            thetas[index] += step
    coordinates = SIGNS.T @ thetas / 4.0
    return canonicalize_coordinates(coordinates)


# Each transform is a signed permutation matrix with an even number of
# negative signs — the Weyl-chamber symmetry group modulo pi/2 shifts.
_ORBIT_TRANSFORMS = np.array(
    [
        [
            [sign[row] if permutation[row] == col else 0.0 for col in range(3)]
            for row in range(3)
        ]
        for permutation in itertools.permutations(range(3))
        for sign in (
            (1.0, 1.0, 1.0),
            (-1.0, -1.0, 1.0),
            (-1.0, 1.0, -1.0),
            (1.0, -1.0, -1.0),
        )
    ]
)


def weyl_orbit(coordinates) -> list[np.ndarray]:
    """Distinct sorted representatives of the discrete symmetry orbit.

    The class-preserving moves are coordinate permutations, sign flips on
    pairs of coordinates, and shifts by pi/2; every representative returned
    has components wrapped into ``[0, pi/2)`` and sorted descending.
    """
    c = np.asarray(coordinates, dtype=float)
    if c.shape != (3,):
        raise LinalgError(f"expected 3 Weyl coordinates, got shape {c.shape}")
    candidates = np.mod(_ORBIT_TRANSFORMS @ c, HALF_PI)
    candidates[candidates > HALF_PI - 1e-9] = 0.0
    candidates = -np.sort(-candidates, axis=1)
    keys = np.round(candidates, 9)
    _, unique_indices = np.unique(keys, axis=0, return_index=True)
    ordered = sorted(unique_indices, key=lambda i: tuple(keys[i]))
    return [candidates[i] for i in ordered]


def canonicalize_coordinates(coordinates) -> np.ndarray:
    """Deterministic chamber representative: the lexicographically smallest
    sorted orbit element."""
    return weyl_orbit(coordinates)[0]


def interaction_time(target, coupling_rate: float) -> float:
    """Minimal XY-coupling busy time (ns) to realize a two-qubit unitary.

    ``target`` is either a 4x4 unitary or a 3-vector of Weyl coordinates;
    ``coupling_rate`` is the angular rate ``2*pi*mu_max`` in rad/ns.
    """
    if coupling_rate <= 0:
        raise LinalgError("coupling_rate must be positive")
    target = np.asarray(target)
    if target.shape == (4, 4):
        coordinates = weyl_coordinates(target)
    elif target.shape == (3,):
        coordinates = target.astype(float)
    else:
        raise LinalgError(
            "interaction_time expects a 4x4 unitary or 3 Weyl coordinates"
        )
    best = math.inf
    for representative in weyl_orbit(coordinates):
        c1 = float(representative[0])
        total = float(np.sum(representative))
        best = min(best, max(c1, total / 2.0))
    return 2.0 * best / coupling_rate


def _require_two_qubit_unitary(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise LinalgError(f"expected a 4x4 matrix, got shape {matrix.shape}")
    if not is_unitary(matrix, atol=1e-6):
        raise LinalgError("expected a unitary 4x4 matrix")
    return matrix


def _orthogonal_diagonalizer(gram: np.ndarray) -> np.ndarray:
    """Real orthogonal Q with Q^T gram Q diagonal, for symmetric unitary gram.

    ``Re(gram)`` and ``Im(gram)`` are commuting real symmetric matrices, so
    they can be diagonalized simultaneously: diagonalize the real part,
    then diagonalize the imaginary part restricted to each degenerate
    eigenspace.
    """
    real_part = np.real(gram)
    imag_part = np.imag(gram)
    real_part = (real_part + real_part.T) / 2.0
    imag_part = (imag_part + imag_part.T) / 2.0
    eigenvalues, q = np.linalg.eigh(real_part)
    # Refine within degenerate blocks of the real spectrum.
    tolerance = 1e-7
    start = 0
    n = len(eigenvalues)
    while start < n:
        stop = start + 1
        while stop < n and abs(eigenvalues[stop] - eigenvalues[start]) < tolerance:
            stop += 1
        if stop - start > 1:
            block = q[:, start:stop]
            projected = block.T @ imag_part @ block
            projected = (projected + projected.T) / 2.0
            _, rotation = np.linalg.eigh(projected)
            q[:, start:stop] = block @ rotation
        start = stop
    check = q.T @ gram @ q
    off_diagonal = check - np.diag(np.diag(check))
    if np.max(np.abs(off_diagonal)) > 1e-5:
        raise LinalgError("failed to diagonalize magic-basis Gram matrix")
    return q


def _factor_tensor_product(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a unitary known to be ``A (x) B`` into its 2x2 factors."""
    tensor = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(tensor)
    if s[1] > 1e-5:
        raise LinalgError("matrix is not a tensor product of single-qubit gates")
    scale = math.sqrt(s[0])
    a = (u[:, 0] * scale).reshape(2, 2)
    b = (vh[0, :] * scale).reshape(2, 2)
    return a, b
