"""Embedding operators that act on a subset of qubits into a full register.

Conventions: qubit 0 is the most-significant bit of the computational-basis
index (big-endian), matching the matrix forms used in most textbooks, e.g.
``CNOT = |0><0| (x) I + |1><1| (x) X`` with qubit 0 as control.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import LinalgError


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    if not matrices:
        raise LinalgError("kron_all requires at least one matrix")
    result = np.asarray(matrices[0], dtype=complex)
    for matrix in matrices[1:]:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def permute_qubits(matrix: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Reorder the qubits an operator acts on.

    ``permutation[i] = j`` means input qubit ``i`` of the original operator
    becomes qubit ``j`` of the returned operator.
    """
    matrix = np.asarray(matrix, dtype=complex)
    n = _qubit_count(matrix)
    permutation = list(permutation)
    if sorted(permutation) != list(range(n)):
        raise LinalgError(
            f"permutation {permutation} is not a permutation of 0..{n - 1}"
        )
    # View the matrix as a rank-2n tensor and transpose both row and column
    # qubit axes according to the permutation.
    tensor = matrix.reshape([2] * (2 * n))
    inverse = [0] * n
    for source, destination in enumerate(permutation):
        inverse[destination] = source
    axes = inverse + [n + axis for axis in inverse]
    return tensor.transpose(axes).reshape(matrix.shape)


def embed_operator(
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Embed an operator on ``qubits`` into a ``num_qubits`` register.

    ``qubits[i]`` is the register position of the operator's ``i``-th qubit.
    The returned matrix has shape ``(2**num_qubits, 2**num_qubits)``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    k = _qubit_count(matrix)
    qubits = list(qubits)
    if len(qubits) != k:
        raise LinalgError(
            f"operator acts on {k} qubits but {len(qubits)} positions given"
        )
    if len(set(qubits)) != k:
        raise LinalgError(f"duplicate qubit positions in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise LinalgError(
            f"qubit positions {qubits} out of range for {num_qubits} qubits"
        )
    if k > num_qubits:
        raise LinalgError(
            f"cannot embed a {k}-qubit operator into {num_qubits} qubits"
        )
    # Tensor the operator with identity on the remaining qubits, then
    # permute so each operator qubit lands on its register position.
    identity_count = num_qubits - k
    full = matrix
    if identity_count:
        full = np.kron(matrix, np.eye(2**identity_count, dtype=complex))
    remaining = [q for q in range(num_qubits) if q not in qubits]
    permutation = list(qubits) + remaining
    return permute_qubits(full, permutation)


def _qubit_count(matrix: np.ndarray) -> int:
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {matrix.shape}")
    dim = matrix.shape[0]
    n = int(round(np.log2(dim)))
    if 2**n != dim:
        raise LinalgError(f"matrix dimension {dim} is not a power of two")
    return n
