"""Linear-algebra substrate: Paulis, embeddings, fidelities, KAK, simulator."""

from repro.linalg.embed import embed_operator, kron_all, permute_qubits
from repro.linalg.fidelity import (
    average_gate_fidelity,
    state_fidelity,
    unitary_infidelity,
    unitary_trace_fidelity,
)
from repro.linalg.kak import (
    WeylDecomposition,
    canonical_gate,
    interaction_time,
    makhlin_invariants,
    weyl_coordinates,
)
from repro.linalg.paulis import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z, pauli_string
from repro.linalg.predicates import (
    allclose_up_to_global_phase,
    commutes,
    is_diagonal,
    is_hermitian,
    is_identity,
    is_unitary,
)
from repro.linalg.random import random_statevector, random_unitary
from repro.linalg.simulator import StatevectorSimulator, apply_unitary
from repro.linalg.su2 import rotation_axis_angle, rotation_content, zyz_angles

__all__ = [
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "StatevectorSimulator",
    "WeylDecomposition",
    "allclose_up_to_global_phase",
    "apply_unitary",
    "average_gate_fidelity",
    "canonical_gate",
    "commutes",
    "embed_operator",
    "interaction_time",
    "is_diagonal",
    "is_hermitian",
    "is_identity",
    "is_unitary",
    "kron_all",
    "makhlin_invariants",
    "pauli_string",
    "permute_qubits",
    "random_statevector",
    "random_unitary",
    "rotation_axis_angle",
    "rotation_content",
    "state_fidelity",
    "unitary_infidelity",
    "unitary_trace_fidelity",
    "weyl_coordinates",
    "zyz_angles",
]
