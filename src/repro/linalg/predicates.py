"""Numerical predicates on operators (unitarity, diagonality, commutation)."""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError

DEFAULT_ATOL = 1e-8


def _require_square(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """True when ``matrix @ matrix.conj().T`` is the identity."""
    matrix = _require_square(matrix)
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """True when the matrix equals its own conjugate transpose."""
    matrix = _require_square(matrix)
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def is_diagonal(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """True when all off-diagonal entries are (numerically) zero."""
    matrix = _require_square(matrix)
    off_diagonal = matrix - np.diag(np.diag(matrix))
    return bool(np.all(np.abs(off_diagonal) <= atol))


def is_identity(
    matrix: np.ndarray,
    atol: float = DEFAULT_ATOL,
    up_to_global_phase: bool = True,
) -> bool:
    """True when the matrix is the identity, optionally up to a phase."""
    matrix = _require_square(matrix)
    if up_to_global_phase:
        return allclose_up_to_global_phase(matrix, np.eye(matrix.shape[0]), atol=atol)
    return bool(np.allclose(matrix, np.eye(matrix.shape[0]), atol=atol))


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = DEFAULT_ATOL
) -> bool:
    """True when ``a == exp(i*phi) * b`` for some real ``phi``.

    The phase is estimated from the largest-magnitude entry of ``b`` so the
    comparison is robust when many entries are near zero.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    pivot = b[index]
    if abs(pivot) <= atol:
        # b is (numerically) zero; a must be too.
        return bool(np.all(np.abs(a) <= atol))
    phase = a[index] / pivot
    if abs(abs(phase) - 1.0) > max(atol, 1e-6):
        return False
    phase = phase / abs(phase)
    return bool(np.allclose(a, phase * b, atol=atol))


def commutes(a: np.ndarray, b: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """True when ``a @ b == b @ a`` numerically.

    This is the explicit operator-equality check the paper's frontend uses
    to resolve commutation relations (Sec. 3.3).
    """
    a = _require_square(a)
    b = _require_square(b)
    if a.shape != b.shape:
        raise LinalgError(
            f"operands must share a shape, got {a.shape} and {b.shape}"
        )
    return bool(np.allclose(a @ b, b @ a, atol=atol))
