"""Pauli matrices and Pauli-string operators."""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import LinalgError

IDENTITY = np.eye(2, dtype=complex)
PAULI_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
PAULI_Y = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex)
PAULI_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)

_PAULI_BY_LABEL = {
    "I": IDENTITY,
    "X": PAULI_X,
    "Y": PAULI_Y,
    "Z": PAULI_Z,
}


def pauli_matrix(label: str) -> np.ndarray:
    """Return a copy of the single-qubit Pauli matrix named by ``label``."""
    try:
        return _PAULI_BY_LABEL[label.upper()].copy()
    except KeyError:
        raise LinalgError(f"unknown Pauli label {label!r}") from None


@functools.lru_cache(maxsize=4096)
def _pauli_string_cached(labels: str) -> np.ndarray:
    matrix = _PAULI_BY_LABEL[labels[0]]
    for label in labels[1:]:
        matrix = np.kron(matrix, _PAULI_BY_LABEL[label])
    matrix.setflags(write=False)
    return matrix


def pauli_string(labels: str) -> np.ndarray:
    """Tensor product of Paulis, e.g. ``pauli_string("XZY")``.

    The leftmost label acts on the most-significant qubit (qubit 0 in the
    big-endian convention used throughout this package).
    """
    labels = labels.upper()
    if not labels:
        raise LinalgError("pauli_string requires at least one label")
    for label in labels:
        if label not in _PAULI_BY_LABEL:
            raise LinalgError(f"unknown Pauli label {label!r}")
    return _pauli_string_cached(labels)
