"""Single-qubit (SU(2)) decompositions and rotation-content measures.

The analytic latency model costs the single-qubit part of an instruction by
its *rotation content*: the total Bloch-sphere angle that the drive fields
must sweep.  For a single unitary this is the rotation angle ``theta`` of
its axis-angle form; for a product of gates the gates are collapsed first,
so e.g. ``Rz(pi) Rz(-pi)`` costs nothing.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.errors import LinalgError
from repro.linalg.predicates import is_unitary


def _require_su2_input(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise LinalgError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    if not is_unitary(matrix, atol=1e-6):
        raise LinalgError("expected a unitary 2x2 matrix")
    return matrix


def to_su2(matrix: np.ndarray) -> np.ndarray:
    """Rescale a 2x2 unitary to determinant one (special unitary)."""
    matrix = _require_su2_input(matrix)
    det = np.linalg.det(matrix)
    return matrix / cmath.sqrt(det)


def rotation_content(matrix: np.ndarray) -> float:
    """Rotation angle ``theta`` in ``[0, pi]`` of a 2x2 unitary.

    For ``U = exp(-i theta/2 n.sigma)`` (up to global phase) this returns
    the wrapped ``theta``, i.e. the minimal Bloch-sphere rotation angle that
    realizes the gate.
    """
    su2 = to_su2(matrix)
    # For SU(2), tr U = 2 cos(theta/2); the +/- det branch gives the minimal
    # angle when we take the absolute value of the half-trace.
    half_trace = abs(np.trace(su2)) / 2.0
    half_trace = min(1.0, max(-1.0, float(half_trace)))
    return 2.0 * math.acos(half_trace)


def pauli_reduced_rotation_content(matrix: np.ndarray) -> float:
    """Rotation content modulo Pauli-frame corrections.

    Returns ``min_P rotation_content(U P)`` over the four Paulis ``P``.
    KAK local factors are only defined up to Pauli corrections (the Weyl
    chamber symmetries are implemented by conjugating with Paulis), and
    Pauli frame changes are free in software, so this is the well-defined
    local cost of a two-qubit unitary's single-qubit factors.
    """
    from repro.linalg.paulis import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z

    matrix = _require_su2_input(matrix)
    return min(
        rotation_content(matrix @ pauli)
        for pauli in (IDENTITY, PAULI_X, PAULI_Y, PAULI_Z)
    )


def rotation_axis_angle(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Axis (unit 3-vector) and angle of a 2x2 unitary rotation.

    Returns an arbitrary axis for the identity (angle 0).
    """
    su2 = to_su2(matrix)
    angle = rotation_content(matrix)
    if angle < 1e-12:
        return np.array([0.0, 0.0, 1.0]), 0.0
    # U = cos(t/2) I - i sin(t/2) (n . sigma)
    sin_half = math.sin(angle / 2.0)
    # Fix the global sign so that the real part of the trace is positive,
    # matching the branch chosen by rotation_content.
    if np.real(np.trace(su2)) < 0:
        su2 = -su2
    nx = float(np.imag(su2[0, 1] + su2[1, 0]) / (-2.0 * sin_half))
    ny = float(np.real(su2[1, 0] - su2[0, 1]) / (-2.0 * sin_half))
    nz = float(np.imag(su2[0, 0] - su2[1, 1]) / (-2.0 * sin_half))
    axis = np.array([nx, ny, nz])
    norm = np.linalg.norm(axis)
    if norm < 1e-9:
        return np.array([0.0, 0.0, 1.0]), angle
    return axis / norm, angle


def zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i a) Rz(b) Ry(c) Rz(d)``.

    Returns ``(a, b, c, d)`` with the convention
    ``Rz(t) = diag(exp(-it/2), exp(it/2))`` and
    ``Ry(t) = [[cos t/2, -sin t/2], [sin t/2, cos t/2]]``.
    """
    matrix = _require_su2_input(matrix)
    det = np.linalg.det(matrix)
    phase = cmath.phase(det) / 2.0
    su2 = matrix / cmath.exp(1j * phase)
    # su2 = [[cos(c/2) e^{-i(b+d)/2}, -sin(c/2) e^{-i(b-d)/2}],
    #        [sin(c/2) e^{ i(b-d)/2},  cos(c/2) e^{ i(b+d)/2}]]
    c = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > 1e-12 and abs(su2[1, 0]) > 1e-12:
        b_plus_d = 2.0 * cmath.phase(su2[1, 1])
        b_minus_d = 2.0 * cmath.phase(su2[1, 0])
        b = (b_plus_d + b_minus_d) / 2.0
        d = (b_plus_d - b_minus_d) / 2.0
    elif abs(su2[0, 0]) > 1e-12:
        # Diagonal: c == 0, only b + d matters.
        b = 2.0 * cmath.phase(su2[1, 1])
        d = 0.0
    else:
        # Anti-diagonal: c == pi, only b - d matters.
        b = 2.0 * cmath.phase(su2[1, 0])
        d = 0.0
    return float(phase), float(b), float(c), float(d)


def rz_matrix(theta: float) -> np.ndarray:
    """``Rz(theta) = diag(exp(-i theta/2), exp(i theta/2))``."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0.0], [0.0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about the y-axis by ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about the x-axis by ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
