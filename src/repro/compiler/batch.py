"""Batch compilation: many (circuit, strategy) jobs over one shared cache.

The single-shot :func:`~repro.compiler.pipeline.compile_circuit` API
compiles one circuit under one strategy.  Every real workload — the
Figure 9 strategy sweep, the Figure 10 width sweep, a VQE driver
recompiling parameterized ansatz variants — compiles *many* circuits, and
most of the optimal-control work repeats across them: the same CNOT,
SWAP and diagonal-block structures appear in every job.

:class:`BatchCompiler` exploits that.  It owns one shared
:class:`~repro.control.cache.PulseCache` (optionally a disk-persistent
one) and fans jobs across ``concurrent.futures`` workers.  Each worker
compiles through a :class:`~repro.control.cache.CacheSession` — a private
read-through view of the shared store — so workers never contend on the
store lock for writes; when a job finishes, its delta of newly computed
latencies/pulses is merged back into the store, and later jobs see it.

Two executors share that contract:

* ``executor="thread"`` (default) — worker threads over the shared
  in-memory store.  Cheap to start, full cache sharing, but the pure-
  Python pass pipeline serializes on the GIL.
* ``executor="process"`` — worker *processes*.  Each job ships to a
  worker as a :mod:`repro.ir` wire payload (circuit, device, configs —
  nothing process-local crosses the boundary), compiles there against a
  worker-resident cache, and returns a serialized result plus the
  :class:`~repro.control.cache.CacheDelta` of newly computed entries,
  which the parent merges into the shared store.  This sidesteps the
  GIL entirely — the speedup on many-core machines is what
  ``benchmarks/bench_batch.py`` records — at the cost of per-job
  serialization and no *cross-worker* cache sharing during one batch
  (each worker is seeded with a snapshot of the shared store at pool
  start and then warms up over its own job stream; the merged store
  carries everything forward to the next batch).  Jobs carrying
  in-memory pass objects (``BatchJob.passes``) or engines with
  ``pass_callbacks`` cannot cross a process boundary and are rejected
  with a :class:`~repro.errors.ConfigError`; strategies ship by
  registered key.

Results are returned in job order and are bit-identical to serial
:func:`compile_circuit` calls: the latency model and GRAPE are
deterministic functions of instruction structure, so neither sharing
cached values across jobs nor the choice of executor can change any
result (``tests/compiler/test_batch_process.py`` pins thread/process
parity on the canonical wire form).
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.circuit.circuit import Circuit
from repro.compiler.manager import PassCallback
from repro.compiler.passes import Pass, strategy_pulse_backend
from repro.compiler.pipeline import compile_with_pipeline
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import ISA, Strategy, strategy_by_key
from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.control.cache import (
    CacheSession,
    DiskPulseCache,
    PulseCache,
    resolve_cache,
)
from repro.compiler.result_cache import (
    DiskResultCache,
    ResultCache,
    engine_component,
    result_key,
)
from repro.control.unit import OptimalControlUnit, support_of
from repro.device.device import Device
from repro.device.presets import device_by_key
from repro.device.topology import Topology
from repro.errors import ConfigError, JobCancelledError, SerializationError

_COUNTER_KEYS = (
    "cache_hits",
    "grape_calls",
    "grape_fallbacks",
    "model_evals",
    "grape_evals",
    "grape_wall_seconds",
)

_EXECUTORS = ("thread", "process")

_PREWARM_MODES = (True, False, "auto")


@dataclasses.dataclass(frozen=True)
class BatchJob:
    """One unit of batch work: a circuit compiled under one strategy.

    ``strategy`` also accepts the key of a registered strategy (built-in
    or added via :func:`~repro.compiler.strategies.register_strategy`).
    ``device`` pins this job to its own compilation target — a
    :class:`~repro.device.device.Device` or a preset key like
    ``"heavy-hex-2"`` — overriding the engine's default; one batch can
    therefore sweep the same circuit across machines (the pulse-cache
    fingerprint keeps per-device entries apart).  ``passes`` overrides
    the strategy's pipeline with an explicit pass list for this job
    only; the strategy still labels the result, and block pricing is
    derived from the pass list (whether it contains an
    ``AggregatePass``) unless ``pulse_backend`` overrides it — set it
    for a custom backend pass the auto-detection cannot see.
    """

    circuit: Circuit
    strategy: Strategy | str = ISA
    width_limit: int | None = None
    topology: Topology | None = None
    label: str | None = None
    passes: tuple[Pass, ...] | None = None
    pulse_backend: bool | None = None
    device: Device | str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):
            object.__setattr__(
                self, "strategy", strategy_by_key(self.strategy)
            )
        if self.passes is not None:
            object.__setattr__(self, "passes", tuple(self.passes))
        if isinstance(self.device, str):
            object.__setattr__(self, "device", device_by_key(self.device))
        if self.device is not None and self.topology is not None:
            raise ConfigError(
                "a job takes either device= or topology=, not both"
            )

    @property
    def key(self) -> str:
        """Display label (circuit/strategy unless overridden)."""
        if self.label is not None:
            return self.label
        return f"{self.circuit.name}/{self.strategy.key}"

    def pipeline(self) -> list[Pass]:
        """The pass list this job compiles with."""
        if self.passes is not None:
            return list(self.passes)
        return self.strategy.pipeline()


@dataclasses.dataclass
class BatchReport:
    """Everything one batch run produced, results in job order."""

    results: list[CompilationResult]
    seconds: list[float]
    """Wall-clock seconds per job.  Measured inside the worker, so with
    several threads each span includes time spent waiting on the GIL —
    comparable between jobs of one run, but not to serial compile times."""
    wall_seconds: float
    """Wall-clock of the whole batch (less than ``sum(seconds)`` when
    workers overlap)."""
    workers: int
    cache_info: dict[str, int]
    """OCU counters summed across all jobs, plus final store entry counts."""
    executor: str = "thread"
    """Which worker pool ran the batch (``"thread"`` or ``"process"``)."""
    prewarm: dict | None = None
    """Pre-warm planner statistics when the planner ran, else None:
    ``signatures`` (distinct GRAPE-eligible control problems across the
    batch), ``demand`` (the same problems counted once per job that
    needs them), ``dedup_ratio`` (``demand / signatures`` — how much
    duplicate optimal-control work the planner eliminated),
    ``synthesized`` (problems actually solved; the rest were already
    cached), ``plan_seconds`` and ``synthesis_seconds``."""
    result_cache: dict | None = None
    """Result-cache statistics when the engine has one attached, else
    None: ``hits`` (jobs served whole from the store, zero passes run),
    ``deduped`` (in-batch repeats fanned out from one compilation),
    ``stores`` (fresh results written back), ``uncacheable`` (jobs whose
    envelope cannot serialize — explicit pass lists, unregistered
    strategies — always compiled), ``compiled`` (jobs that actually ran
    the pipeline)."""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def total_latency_ns(self) -> float:
        """Sum of all result makespans (batch-level throughput metric)."""
        return sum(result.latency_ns for result in self.results)

    @property
    def pass_seconds(self) -> dict[str, float]:
        """Wall-clock per compiler pass summed over all jobs.

        The batch-level view of the per-pass instrumentation: where the
        whole sweep's compile time went, keyed by pass name.  A property
        so it reads like ``CompilationResult.pass_seconds``.
        """
        totals: dict[str, float] = {}
        for result in self.results:
            for name, value in result.pass_seconds.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals


class BatchCompiler:
    """Compiles batches of jobs against one shared pulse/latency cache.

    Args:
        device: The default compilation target, shared by every job that
            does not pin its own ``BatchJob.device``: a full
            :class:`~repro.device.device.Device`, a preset key, or a
            bare :class:`DeviceConfig` (paper physics, auto-sized grid).
        compiler_config: Width limits, detection depth, etc.
        cache: Shared store; a fresh in-memory one when omitted.  Pass a
            :class:`~repro.control.cache.DiskPulseCache` (or use
            :meth:`with_disk_cache`) for persistence across processes,
            any other :class:`~repro.control.cache.PulseCache` backend
            (sharded directory, remote client), or a string spec —
            ``"tcp://host:port"`` mounts a cache server, any other
            string is a disk path (a directory mounts the sharded
            store, a file stem the single-pair cache).
        backend: OCU backend, ``"model"`` or ``"grape"``.
        max_workers: Worker-thread count; ``None`` picks
            ``min(cpu_count, job count)``.
        grape_qubit_limit / grape_dt / seed: Forwarded to every OCU, and
            part of the cache fingerprint.
        pass_callbacks: Per-pass instrumentation hooks forwarded to every
            job's :class:`~repro.compiler.manager.PassManager`; invoked
            as ``(pass_, context, elapsed_seconds)``.  With several
            workers, hooks run concurrently — keep them thread-safe.
            Incompatible with ``executor="process"`` (hooks cannot cross
            a process boundary).
        executor: ``"thread"`` (default) or ``"process"``.  Process
            workers receive each job as a serialized :mod:`repro.ir`
            payload and return serialized results plus a cache delta,
            so the pure-Python pipeline runs GIL-free in parallel; see
            the module docstring for the trade-offs.
        verify_ir: Debug mode — every job compiles with between-pass IR
            verification (:mod:`repro.analysis`), raising
            :class:`~repro.errors.IRVerificationError` on the first pass
            that breaks an invariant.  Travels to process workers as part
            of the engine configuration payload.
        result_cache: Content-addressed store of whole compiled results
            (:class:`~repro.compiler.result_cache.ResultCache`, or a
            string path mounting a
            :class:`~repro.compiler.result_cache.DiskResultCache`
            directory).  Batches dedupe byte-identical jobs within a
            run (compile once, fan the result out) and serve repeats —
            across batches, engines, even processes when disk-backed —
            without running a single pass; ``run_job`` hits report zero
            optimal-control counters.
    """

    def __init__(
        self,
        device: Device | DeviceConfig | str = DEFAULT_DEVICE,
        compiler_config: CompilerConfig = DEFAULT_COMPILER,
        cache: PulseCache | None = None,
        backend: str = "model",
        max_workers: int | None = None,
        grape_qubit_limit: int = 3,
        grape_dt: float | None = None,
        seed: int = 20190413,
        pass_callbacks: Sequence[PassCallback] = (),
        executor: str = "thread",
        verify_ir: bool = False,
        prewarm: bool | str = "auto",
        grape_kernel: str = "vectorized",
        grape_warm_start: bool = True,
        grape_plateau_iterations: int | None = 60,
        result_cache: ResultCache | str | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError("max_workers must be at least 1")
        if executor not in _EXECUTORS:
            raise ConfigError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if prewarm not in _PREWARM_MODES:
            raise ConfigError(
                f"prewarm must be one of {_PREWARM_MODES}, got {prewarm!r}"
            )
        if executor == "process" and pass_callbacks:
            raise ConfigError(
                "pass_callbacks cannot cross a process boundary; use "
                "executor='thread' for per-pass instrumentation hooks"
            )
        if isinstance(device, str):
            device = device_by_key(device)
        self.device = device
        self.compiler_config = compiler_config
        if isinstance(cache, str):
            # A string selects a shared backend: "tcp://host:port" mounts
            # the cache server, anything else is a disk path (a directory
            # or sharded layout mounts the sharded store, a stem the
            # single-pair cache).
            if cache.startswith("tcp://"):
                cache = resolve_cache(url=cache)
            else:
                cache = resolve_cache(path=cache)
        self.cache = cache if cache is not None else PulseCache()
        self.backend = backend
        self.max_workers = max_workers
        self.grape_qubit_limit = grape_qubit_limit
        self.grape_dt = grape_dt
        self.seed = seed
        self.pass_callbacks = list(pass_callbacks)
        self.executor = executor
        self.verify_ir = bool(verify_ir)
        self.prewarm = prewarm
        self.grape_kernel = grape_kernel
        self.grape_warm_start = grape_warm_start
        self.grape_plateau_iterations = grape_plateau_iterations
        if isinstance(result_cache, str):
            result_cache = DiskResultCache(result_cache)
        #: Optional content-addressed store of whole compiled results;
        #: when set, byte-identical jobs (same canonical envelope, same
        #: engine settings) are served from it instead of recompiling,
        #: both within one batch and across batches/engines sharing the
        #: store.  A string mounts a :class:`DiskResultCache` directory.
        self.result_cache = result_cache
        # Memoized engine-component strings keyed by id of the target
        # device object (the target itself is kept alive alongside so a
        # recycled id can never alias a dead object's component).
        self._result_components: dict[int, tuple[object, str]] = {}
        #: Counters summed over every batch this engine has compiled
        #: (the per-batch view is ``BatchReport.cache_info``), plus the
        #: planner's total ``prewarm_synthesized``.  Drivers running
        #: several sweeps over one engine read their optimal-control
        #: bill here.
        self.lifetime_info: dict[str, float] = dict.fromkeys(
            _COUNTER_KEYS + ("prewarm_synthesized",), 0
        )

    @classmethod
    def from_ocu(
        cls,
        ocu: OptimalControlUnit,
        max_workers: int | None = None,
    ) -> BatchCompiler:
        """An engine sharing an existing unit's cache and configuration."""
        cache = ocu.cache
        if isinstance(cache, CacheSession):
            cache = cache.store
        return cls(
            device=ocu.target if ocu.target is not None else ocu.device,
            compiler_config=ocu.compiler,
            cache=cache,
            backend=ocu.backend,
            max_workers=max_workers,
            grape_qubit_limit=ocu.grape_qubit_limit,
            grape_dt=ocu.grape_dt,
            seed=ocu.seed,
            grape_kernel=ocu.grape_kernel,
            grape_warm_start=ocu.grape_warm_start,
            grape_plateau_iterations=ocu.grape_plateau_iterations,
        )

    @classmethod
    def with_disk_cache(
        cls, path: str | os.PathLike, **kwargs
    ) -> BatchCompiler:
        """An engine over a persistent cache at ``path`` (stem)."""
        return cls(cache=DiskPulseCache(path), **kwargs)

    # ------------------------------------------------------------------

    def make_ocu(
        self,
        cache: PulseCache | CacheSession | None = None,
        device: Device | DeviceConfig | None = None,
        backend: str | None = None,
    ) -> OptimalControlUnit:
        """A fresh OCU bound to the shared store (or a session view).

        ``device`` overrides the engine's default target — the batch
        loop builds each job's OCU against the job's own device so
        per-edge limits and cache fingerprints match that machine.
        ``backend`` overrides the engine's pulse backend (the pre-warm
        planner dry-runs jobs against the analytic model).
        """
        return OptimalControlUnit(
            device=device if device is not None else self.device,
            compiler=self.compiler_config,
            backend=backend if backend is not None else self.backend,
            grape_qubit_limit=self.grape_qubit_limit,
            grape_dt=self.grape_dt,
            seed=self.seed,
            cache=cache if cache is not None else self.cache,
            grape_kernel=self.grape_kernel,
            grape_warm_start=self.grape_warm_start,
            grape_plateau_iterations=self.grape_plateau_iterations,
        )

    def compile(
        self,
        circuit: Circuit,
        strategy: Strategy | str = ISA,
        width_limit: int | None = None,
        topology: Topology | None = None,
        device: Device | str | None = None,
    ) -> CompilationResult:
        """Compile one circuit through the shared cache (no workers)."""
        job = BatchJob(
            circuit=circuit,
            strategy=strategy,
            width_limit=width_limit,
            topology=topology,
            device=device,
        )
        key = self._result_key(job)
        if key is not None:
            cached = self.result_cache.get(key)
            if cached is not None:
                return cached
        result = self._compile_job(
            job, self.make_ocu(device=self._job_target(job))
        )
        if key is not None:
            self.result_cache.put(key, result)
        return result

    def _result_engine(self, job: BatchJob) -> str:
        """The engine-component string for one job's compilation target.

        Memoized per target object: the component folds the OCU cache
        fingerprint in, and probing it costs one throwaway unit.
        """
        target = self._job_target(job)
        cached = self._result_components.get(id(target))
        if cached is not None:
            return cached[1]
        probe = self.make_ocu(cache=PulseCache(), device=target)
        component = engine_component(
            target, self.compiler_config, self.backend, probe.fingerprint
        )
        self._result_components[id(target)] = (target, component)
        return component

    def _result_key(self, job: BatchJob) -> str | None:
        """This job's result-cache key, or None when it cannot cache.

        None either because no cache is attached or because the job's
        envelope cannot serialize (explicit ``passes=`` lists,
        unregistered strategies) — those jobs always compile.
        """
        if self.result_cache is None:
            return None
        from repro.ir.serialize import batch_job_to_dict

        try:
            envelope = batch_job_to_dict(job)
        except SerializationError:
            return None
        return result_key(envelope, self._result_engine(job))

    def compile_batch(self, jobs: Iterable) -> BatchReport:
        """Compile every job, fanning across workers; results in order.

        Args:
            jobs: :class:`BatchJob` instances, bare circuits, or
                ``(circuit, strategy)`` / ``(circuit, strategy,
                width_limit)`` tuples.
        """
        jobs = [_as_job(job) for job in jobs]
        if not jobs:
            return BatchReport(
                results=[],
                seconds=[],
                wall_seconds=0.0,
                workers=0,
                cache_info=self._store_info(dict.fromkeys(_COUNTER_KEYS, 0)),
                executor=self.executor,
                result_cache=self._fresh_result_stats(),
            )
        workers = self.max_workers
        if workers is None:
            workers = min(len(jobs), os.cpu_count() or 1)
        workers = max(1, min(workers, len(jobs)))

        started = time.perf_counter()
        counters = {key: 0 for key in _COUNTER_KEYS}
        results: list[CompilationResult | None] = [None] * len(jobs)
        seconds = [0.0] * len(jobs)
        # Triage against the result cache: serve repeats, collapse
        # in-batch duplicates onto one primary, compile the rest.
        result_stats = self._fresh_result_stats()
        dedup_of: dict[int, int] = {}
        result_keys: dict[int, str] = {}
        if self.result_cache is None:
            pending = list(enumerate(jobs))
        else:
            pending = []
            primary_by_key: dict[str, int] = {}
            for index, job in enumerate(jobs):
                key = self._result_key(job)
                if key is None:
                    result_stats["uncacheable"] += 1
                    pending.append((index, job))
                    continue
                cached = self.result_cache.get(key)
                if cached is not None:
                    results[index] = cached
                    result_stats["hits"] += 1
                    continue
                primary = primary_by_key.get(key)
                if primary is not None:
                    dedup_of[index] = primary
                    result_stats["deduped"] += 1
                    continue
                primary_by_key[key] = index
                result_keys[index] = key
                pending.append((index, job))
            result_stats["compiled"] = len(pending)
        prewarm_stats = None
        if pending and self.prewarm_active():
            prewarm_stats = self._prewarm_batch(
                [job for _, job in pending], workers, counters
            )
        if not pending:
            pass
        elif self.executor == "process":
            # Even a single worker goes through the pool: the point of
            # the mode is the serialized-job path, and silently running
            # inline would hide wire-format regressions.
            self._run_parallel_processes(
                pending, workers, counters, results, seconds
            )
        elif workers == 1:
            for index, job in pending:
                results[index], seconds[index], used = self._run_job(job)
                for key in _COUNTER_KEYS:
                    counters[key] += used[key]
        else:
            self._run_parallel(pending, workers, counters, results, seconds)
        if self.result_cache is not None:
            for index, key in result_keys.items():
                if results[index] is not None:
                    self.result_cache.put(key, results[index])
                    result_stats["stores"] += 1
            if dedup_of:
                from repro.ir.serialize import (
                    result_from_dict,
                    result_to_dict,
                )

                for index, primary in dedup_of.items():
                    # Fan out a fresh deserialized copy — identical to a
                    # cache serve, never a shared mutable schedule.
                    results[index] = result_from_dict(
                        result_to_dict(results[primary], include_source=True)
                    )
                    seconds[index] = 0.0
        for key in _COUNTER_KEYS:
            self.lifetime_info[key] += counters[key]
        if prewarm_stats is not None:
            self.lifetime_info["prewarm_synthesized"] += prewarm_stats[
                "synthesized"
            ]
        return BatchReport(
            results=results,
            seconds=seconds,
            wall_seconds=time.perf_counter() - started,
            workers=workers,
            cache_info=self._store_info(counters),
            executor=self.executor,
            prewarm=prewarm_stats,
            result_cache=result_stats,
        )

    def _fresh_result_stats(self) -> dict | None:
        """Zeroed per-batch result-cache stats, or None without a cache."""
        if self.result_cache is None:
            return None
        return {
            "hits": 0,
            "deduped": 0,
            "stores": 0,
            "uncacheable": 0,
            "compiled": 0,
        }

    # ------------------------------------------------------------------

    def _job_target(self, job: BatchJob) -> Device | DeviceConfig:
        """The device argument a job's compilation (and OCU) should see.

        A job-level ``device`` wins outright.  A job-level bare
        ``topology`` overrides the engine's default *machine* while
        keeping its physics baseline — forwarding a full default Device
        alongside it would be rejected downstream as contradictory.
        """
        if job.device is not None:
            return job.device
        if job.topology is not None and isinstance(self.device, Device):
            return self.device.config
        return self.device

    def _compile_job(
        self,
        job: BatchJob,
        ocu: OptimalControlUnit,
        verify_ir: bool | None = None,
        extra_callbacks: Sequence[PassCallback] = (),
    ) -> CompilationResult:
        """Run one job's pipeline through the pass-manager core.

        ``extra_callbacks`` are per-job hooks appended after the
        engine-level ``pass_callbacks`` for this compilation only — the
        compile service threads its cancellation probe and per-job
        instrumentation through here without touching engine state.
        """
        pipeline = job.pipeline()
        if job.pulse_backend is not None:
            pulse_backend = job.pulse_backend
        elif job.passes is not None:
            # Explicit per-job pipeline: the pass list alone is the
            # source of truth; None lets compile_with_pipeline apply its
            # own auto-detection (one rule, one place).
            pulse_backend = None
        else:
            # Strategy-resolved pipeline: one shared pricing policy with
            # compile_circuit.
            pulse_backend = strategy_pulse_backend(job.strategy, pipeline)
        return compile_with_pipeline(
            job.circuit,
            pipeline,
            strategy_key=job.strategy.key,
            pulse_backend=pulse_backend,
            device=self._job_target(job),
            compiler_config=self.compiler_config,
            ocu=ocu,
            topology=job.topology,
            width_limit=job.width_limit,
            callbacks=list(self.pass_callbacks) + list(extra_callbacks),
            verify_ir=self.verify_ir if verify_ir is None else verify_ir,
        )

    def _run_job(
        self,
        job: BatchJob,
        cancel: Callable[[], str | None] | None = None,
        extra_callbacks: Sequence[PassCallback] = (),
    ) -> tuple[CompilationResult, float, dict[str, int]]:
        """Compile one job through a session view and merge its delta.

        ``cancel`` is an optional cooperative probe polled at every pass
        boundary; returning a non-empty string aborts the job with a
        :class:`~repro.errors.JobCancelledError` carrying that reason.
        The session delta is merged into the shared store even when the
        job fails or is cancelled mid-pipeline — optimal-control work
        already finished stays warm, so a retry (or the next job sharing
        blocks with this one) never re-synthesizes it.
        """
        callbacks = list(extra_callbacks)
        if cancel is not None:

            def _abort_if_cancelled(pass_, context, elapsed) -> None:
                reason = cancel()
                if reason:
                    raise JobCancelledError(
                        f"job {job.key!r} cancelled: {reason}"
                    )

            callbacks.append(_abort_if_cancelled)
        job_started = time.perf_counter()
        session = CacheSession(self.cache)
        ocu = self.make_ocu(cache=session, device=self._job_target(job))
        try:
            result = self._compile_job(job, ocu, extra_callbacks=callbacks)
        finally:
            self.cache.merge_delta(session.delta)
        used = {key: getattr(ocu, key) for key in _COUNTER_KEYS}
        return result, time.perf_counter() - job_started, used

    def run_job(
        self,
        job,
        cancel: Callable[[], str | None] | None = None,
        extra_callbacks: Sequence[PassCallback] = (),
    ) -> tuple[CompilationResult, float, dict[str, int]]:
        """Compile one job now, on the calling thread; the service entry.

        Accepts anything :meth:`compile_batch` accepts as a job.  Unlike
        the internal batch path this also folds the job's counters into
        :attr:`lifetime_info`, so a long-running front door (the compile
        service) reads its cumulative optimal-control bill the same way
        sweep drivers do.

        Returns:
            ``(result, seconds, counters)`` — the compiled result, its
            wall-clock, and the per-job OCU counter dict.  A result-cache
            hit returns the lookup wall-clock and all-zero counters (no
            pass ran, no model was evaluated).
        """
        job = _as_job(job)
        cache_key = self._result_key(job)
        if cache_key is not None:
            lookup_started = time.perf_counter()
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                return (
                    cached,
                    time.perf_counter() - lookup_started,
                    dict.fromkeys(_COUNTER_KEYS, 0),
                )
        result, seconds, used = self._run_job(
            job, cancel=cancel, extra_callbacks=extra_callbacks
        )
        if cache_key is not None:
            self.result_cache.put(cache_key, result)
        for key in _COUNTER_KEYS:
            self.lifetime_info[key] += used[key]
        return result, seconds, used

    def _run_parallel(
        self, pending, workers, counters, results, seconds
    ) -> None:
        """Submit at most ``workers`` jobs at a time.

        ``pending`` is the batch's to-compile worklist as ``(index,
        job)`` pairs — indexes into the full results array, so cache
        triage can skip served jobs without renumbering.  A bounded
        submission window (rather than submitting everything up front)
        means a job launched late in the batch sees every earlier job's
        merged cache delta, maximizing reuse.
        """
        pending_jobs = iter(pending)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            active = {}
            for index, job in pending_jobs:
                active[pool.submit(self._run_job, job)] = index
                if len(active) >= workers:
                    break
            while active:
                done, _ = wait(active, return_when=FIRST_COMPLETED)
                for future in done:
                    index = active.pop(future)
                    results[index], seconds[index], used = future.result()
                    for key in _COUNTER_KEYS:
                        counters[key] += used[key]
                for index, job in pending_jobs:
                    active[pool.submit(self._run_job, job)] = index
                    if len(active) >= workers:
                        break

    # -- pre-warm planner ----------------------------------------------

    def prewarm_active(self) -> bool:
        """Whether :meth:`compile_batch` will run the pre-warm planner.

        ``prewarm="auto"`` (the default) enables it exactly when the
        engine prices through GRAPE — the planner's dry-run phase is
        pure overhead when the analytic model answers every query.
        """
        if self.prewarm == "auto":
            return self.backend == "grape"
        return bool(self.prewarm)

    def plan_prewarm(self, jobs: Sequence[BatchJob]) -> tuple[dict, int]:
        """Extract the batch's distinct GRAPE worklist without GRAPE.

        Every job is dry-run against the analytic model through a
        :class:`_PlanningUnit` that records each GRAPE-eligible latency
        query under the unit's cache-signature convention
        (:meth:`~repro.control.unit.OptimalControlUnit.node_signature`).
        The dry-runs also warm every ``"model"``-keyed latency entry in
        the shared store, so the real jobs' aggregation searches answer
        their candidate probes from cache.

        Returns:
            ``(worklist, demand)`` — ``worklist`` maps
            ``(fingerprint, signature)`` to ``(node, positional,
            job_index)`` for every distinct control problem in the
            batch; ``demand`` counts the same problems once per job
            that needs them, so ``demand / len(worklist)`` is the
            batch's dedup ratio.
        """
        worklist: dict[tuple, tuple] = {}
        demand = 0

        def dry_run(indexed) -> dict:
            index, job = indexed
            recorded: dict[tuple, tuple] = {}
            session = CacheSession(self.cache)
            unit = _PlanningUnit(
                recorded,
                device=self._job_target(job),
                compiler=self.compiler_config,
                grape_qubit_limit=self.grape_qubit_limit,
                grape_dt=self.grape_dt,
                seed=self.seed,
                cache=session,
                grape_kernel=self.grape_kernel,
                grape_warm_start=self.grape_warm_start,
                grape_plateau_iterations=self.grape_plateau_iterations,
            )
            # Result discarded: only the recorded worklist and the
            # model-latency cache entries matter.  IR verification (if
            # configured) runs on the real compilation, not twice.
            self._compile_job(job, unit, verify_ir=False)
            self.cache.merge_delta(session.delta)
            return {
                key: (node, positional, index)
                for key, (node, positional) in recorded.items()
            }

        indexed_jobs = list(enumerate(jobs))
        pool_size = min(len(indexed_jobs), self._worker_count(len(indexed_jobs)))
        if pool_size <= 1:
            per_job = [dry_run(item) for item in indexed_jobs]
        else:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                per_job = list(pool.map(dry_run, indexed_jobs))
        for recorded in per_job:
            demand += len(recorded)
            for key, value in recorded.items():
                worklist.setdefault(key, value)
        return worklist, demand

    def _worker_count(self, jobs: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = min(jobs, os.cpu_count() or 1)
        return max(1, min(workers, jobs))

    def _prewarm_batch(self, jobs, workers, counters) -> dict:
        """Run the planner, then solve each distinct problem exactly once.

        The synthesis stage fans the worklist across workers (threads,
        or a dedicated process pool in process mode) and merges every
        delta into the shared store *before* any job is dispatched, so
        no two workers — and in process mode, no two worker-resident
        caches — ever solve the same control problem.
        """
        plan_started = time.perf_counter()
        worklist, demand = self.plan_prewarm(jobs)
        plan_seconds = time.perf_counter() - plan_started
        synthesis_started = time.perf_counter()
        if self.executor == "process":
            synthesized = self._prewarm_synthesize_processes(
                jobs, worklist, workers, counters
            )
        else:
            synthesized = self._prewarm_synthesize_threads(
                jobs, worklist, workers, counters
            )
        return {
            "signatures": len(worklist),
            "demand": demand,
            "dedup_ratio": demand / len(worklist) if worklist else 1.0,
            "synthesized": synthesized,
            "plan_seconds": plan_seconds,
            "synthesis_seconds": time.perf_counter() - synthesis_started,
        }

    def _prewarm_synthesize_threads(self, jobs, worklist, workers, counters):
        def synthesize(entry) -> dict:
            node, positional, job_index = entry
            session = CacheSession(self.cache)
            unit = self.make_ocu(
                cache=session, device=self._job_target(jobs[job_index])
            )
            unit.latency(node, positional)
            self.cache.merge_delta(session.delta)
            return {key: getattr(unit, key) for key in _COUNTER_KEYS}

        entries = list(worklist.values())
        if not entries:
            return 0
        pool_size = min(workers, len(entries))
        if pool_size <= 1:
            infos = [synthesize(entry) for entry in entries]
        else:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                infos = list(pool.map(synthesize, entries))
        synthesized = 0
        for used in infos:
            synthesized += self._synthesized_of(used)
            for key in _COUNTER_KEYS:
                counters[key] += used[key]
        return synthesized

    def _synthesized_of(self, used: dict) -> int:
        """How many problems one synthesis call actually solved (0 when
        the entry was already cached).  Grape-backed syntheses also burn
        one model eval for the search estimate, so count by backend."""
        if self.backend == "grape":
            return used["grape_calls"]
        return used["model_evals"]

    def _prewarm_synthesize_processes(self, jobs, worklist, workers, counters):
        from repro.ir.serialize import (
            cache_delta_from_dict,
            cache_delta_to_dict,
            device_config_to_dict,
            device_to_dict,
            node_to_dict,
        )

        entries = []
        for node, positional, job_index in worklist.values():
            payload = {"node": node_to_dict(node), "positional": positional}
            target = self._job_target(jobs[job_index])
            if target is not self.device:
                payload["device"] = (
                    device_to_dict(target)
                    if isinstance(target, Device)
                    else device_config_to_dict(target)
                )
            entries.append(payload)
        if not entries:
            return 0
        config = self._config_payload()
        snapshot = cache_delta_to_dict(self.cache.snapshot_delta())
        synthesized = 0
        with ProcessPoolExecutor(
            max_workers=min(workers, len(entries)),
            initializer=_seed_worker_store,
            initargs=(snapshot,),
        ) as pool:
            futures = [
                pool.submit(_prewarm_item_payload, config, entry)
                for entry in entries
            ]
            for future in futures:
                delta_payload, used = future.result()
                self.cache.merge_delta(cache_delta_from_dict(delta_payload))
                synthesized += self._synthesized_of(used)
                for key in _COUNTER_KEYS:
                    counters[key] += used[key]
        return synthesized

    # -- process executor ----------------------------------------------

    def _config_payload(self) -> dict:
        """Engine-level settings as one :mod:`repro.ir` wire payload."""
        from repro.ir.serialize import (
            compiler_config_to_dict,
            device_config_to_dict,
            device_to_dict,
        )

        if isinstance(self.device, Device):
            device_payload = device_to_dict(self.device)
        else:
            device_payload = device_config_to_dict(self.device)
        return {
            "device": device_payload,
            "compiler": compiler_config_to_dict(self.compiler_config),
            "backend": self.backend,
            "grape_qubit_limit": self.grape_qubit_limit,
            "grape_dt": self.grape_dt,
            "seed": self.seed,
            "verify_ir": self.verify_ir,
            "grape_kernel": self.grape_kernel,
            "grape_warm_start": self.grape_warm_start,
            "grape_plateau_iterations": self.grape_plateau_iterations,
        }

    def _job_payload(self, job: BatchJob) -> dict:
        """One job as a wire payload, or a clear error when it cannot ship.

        Strategies travel by registered key (the worker re-resolves it;
        under a ``fork`` start method custom registrations are inherited,
        under ``spawn`` only importable registrations survive).  In-memory
        pass objects cannot travel at all.
        """
        from repro.ir.serialize import (
            circuit_to_dict,
            device_to_dict,
            topology_to_dict,
        )

        if job.passes is not None:
            raise ConfigError(
                f"job {job.key!r} carries an explicit passes= list, which "
                f"cannot cross a process boundary; use executor='thread' "
                f"for custom pipelines"
            )
        try:
            strategy_by_key(job.strategy.key)
        except ConfigError:
            raise ConfigError(
                f"job {job.key!r} uses unregistered strategy "
                f"{job.strategy.key!r}: process workers rebuild strategies "
                f"from their registered keys, so register it "
                f"(register_strategy) or use executor='thread'"
            ) from None
        payload = {
            "circuit": circuit_to_dict(job.circuit),
            "strategy_key": job.strategy.key,
            "width_limit": job.width_limit,
            "label": job.label,
            "pulse_backend": job.pulse_backend,
        }
        if job.device is not None:
            payload["device"] = device_to_dict(job.device)
        if job.topology is not None:
            payload["topology"] = topology_to_dict(job.topology)
        return payload

    def _run_parallel_processes(
        self, pending, workers, counters, results, seconds
    ) -> None:
        """Fan serialized jobs across worker processes.

        ``pending`` carries ``(index, job)`` pairs exactly like
        :meth:`_run_parallel`.  All jobs are submitted up front (unlike
        the thread path's bounded
        window: workers hold process-local caches, so delaying submission
        would not improve reuse).  Each worker is seeded once, at pool
        start, with a serialized snapshot of the shared store — a warm
        (e.g. disk-loaded) cache therefore skips optimal-control work in
        process mode too.  Each completed future contributes its
        serialized result and its cache delta; the delta merges into the
        shared store so subsequent batches — process or thread — start
        warm.  (Within one batch, workers do not see each other's
        deltas; each warms up over its own job stream.)
        """
        from repro.ir.serialize import (
            cache_delta_from_dict,
            cache_delta_to_dict,
            result_from_dict,
        )

        config = self._config_payload()
        payloads = [
            (index, self._job_payload(job)) for index, job in pending
        ]
        snapshot = cache_delta_to_dict(self.cache.snapshot_delta())
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_seed_worker_store,
            initargs=(snapshot,),
        ) as pool:
            active = {
                pool.submit(_compile_job_payload, config, payload): index
                for index, payload in payloads
            }
            while active:
                done, _ = wait(active, return_when=FIRST_COMPLETED)
                for future in done:
                    index = active.pop(future)
                    result_payload, delta_payload, elapsed, used = (
                        future.result()
                    )
                    results[index] = result_from_dict(result_payload)
                    seconds[index] = elapsed
                    self.cache.merge_delta(
                        cache_delta_from_dict(delta_payload)
                    )
                    for key in _COUNTER_KEYS:
                        counters[key] += used[key]

    def _store_info(self, counters) -> dict:
        info = dict(counters)
        info["latency_entries"] = self.cache.latency_count
        info["pulse_entries"] = self.cache.pulse_count
        # The store's own counters (hits/misses/evictions, plus backend
        # extras like shard flushes or remote round trips) ride along so
        # BatchReport.cache_info is the one-stop cache bill; the OCU
        # counter sums above win on collision.
        for key, value in self.cache.stats().items():
            info.setdefault(key, value)
        return info

    def cache_stats(self) -> dict:
        """The shared store's backend-level counters (see ``stats()``)."""
        return self.cache.stats()

    def result_cache_stats(self) -> dict | None:
        """The attached result cache's lifetime counters, or None."""
        if self.result_cache is None:
            return None
        return self.result_cache.stats()

    def save_cache(self) -> int:
        """Persist/flush the store; returns entries written upstream.

        Every backend implements ``save()`` (a no-op returning 0 for the
        plain in-memory store), so drivers call this unconditionally:
        disk caches write their pair, sharded caches flush dirty shards
        under their locks, remote caches upload the pending delta.
        """
        return self.cache.save()


#: Process-local cache each worker accumulates across its job stream.
#: One store per worker process is safe for mixed configurations because
#: every cache key carries its configuration fingerprint.
_WORKER_STORE: PulseCache | None = None


def _worker_store() -> PulseCache:
    global _WORKER_STORE
    if _WORKER_STORE is None:
        _WORKER_STORE = PulseCache()
    return _WORKER_STORE


def _seed_worker_store(snapshot_payload: dict) -> None:
    """Pool initializer: warm this worker's store from the parent's.

    Runs once per worker process.  The snapshot is the parent's shared
    store serialized as one cache delta, so a warm (disk-loaded) cache
    reaches process workers instead of every worker starting cold.
    """
    from repro.ir.serialize import cache_delta_from_dict

    _worker_store().merge_delta(cache_delta_from_dict(snapshot_payload))


def _compile_job_payload(config: dict, job_payload: dict) -> tuple:
    """Worker-process entry: compile one serialized job.

    Runs in a ``ProcessPoolExecutor`` worker.  Rebuilds the job and the
    engine configuration from their wire payloads, compiles through a
    session over the worker-local store, and returns
    ``(result_payload, delta_payload, seconds, counters)`` — all wire
    payloads again, so nothing process-local leaks back to the parent.
    """
    from repro.ir.serialize import (
        cache_delta_to_dict,
        circuit_from_dict,
        compiler_config_from_dict,
        device_config_from_dict,
        device_from_dict,
        result_to_dict,
        topology_from_dict,
    )

    started = time.perf_counter()
    device_payload = config["device"]
    if device_payload.get("kind") == "device":
        device = device_from_dict(device_payload)
    else:
        device = device_config_from_dict(device_payload)
    engine = BatchCompiler(
        device=device,
        compiler_config=compiler_config_from_dict(config["compiler"]),
        cache=_worker_store(),
        backend=config["backend"],
        max_workers=1,
        grape_qubit_limit=config["grape_qubit_limit"],
        grape_dt=config["grape_dt"],
        seed=config["seed"],
        # .get(): payloads written by older parents predate these flags.
        verify_ir=config.get("verify_ir", False),
        grape_kernel=config.get("grape_kernel", "vectorized"),
        grape_warm_start=config.get("grape_warm_start", True),
        grape_plateau_iterations=config.get("grape_plateau_iterations", 60),
        # Pre-warming happened (if at all) in the parent before this
        # worker's seed snapshot was taken; never re-plan per job.
        prewarm=False,
    )
    job = BatchJob(
        circuit=circuit_from_dict(job_payload["circuit"]),
        strategy=job_payload["strategy_key"],
        width_limit=job_payload["width_limit"],
        topology=(
            topology_from_dict(job_payload["topology"])
            if "topology" in job_payload
            else None
        ),
        label=job_payload["label"],
        pulse_backend=job_payload["pulse_backend"],
        device=(
            device_from_dict(job_payload["device"])
            if "device" in job_payload
            else None
        ),
    )
    session = CacheSession(engine.cache)
    ocu = engine.make_ocu(cache=session, device=engine._job_target(job))
    result = engine._compile_job(job, ocu)
    engine.cache.merge_delta(session.delta)
    used = {key: getattr(ocu, key) for key in _COUNTER_KEYS}
    return (
        result_to_dict(result),
        cache_delta_to_dict(session.delta),
        time.perf_counter() - started,
        used,
    )


class _PlanningUnit(OptimalControlUnit):
    """Dry-run OCU the pre-warm planner compiles jobs through.

    Prices every query with the analytic model (cheap, deterministic)
    while recording each query a ``backend="grape"`` engine would answer
    with optimal control, keyed by the unit's cache-signature convention
    (:meth:`OptimalControlUnit.node_signature`).  The planner unions
    these records across jobs into the batch's distinct worklist.  The
    configuration fingerprint deliberately excludes the backend, so the
    recorded keys are exactly the pulse-cache keys the real jobs probe.
    """

    def __init__(self, recorded: dict, **kwargs) -> None:
        kwargs["backend"] = "model"
        super().__init__(**kwargs)
        self._recorded = recorded

    def latency(self, node, positional: bool = True) -> float:
        if len(support_of(node)) <= self.grape_qubit_limit:
            key = (self.fingerprint, self._node_signature(node, positional))
            self._recorded.setdefault(key, (node, positional))
        return super().latency(node, positional)


def _prewarm_item_payload(config: dict, entry: dict) -> tuple:
    """Worker-process entry: solve one serialized control problem.

    The pre-warm analogue of :func:`_compile_job_payload`: rebuilds the
    node and target from wire payloads, prices it through the engine's
    real backend against a session over the worker-local store, and
    returns ``(delta_payload, counters)`` so the parent can merge the
    synthesized pulse/latency entries into the shared store *before*
    the job pool (whose seed snapshot must include them) starts.
    """
    from repro.ir.serialize import (
        cache_delta_to_dict,
        compiler_config_from_dict,
        device_config_from_dict,
        device_from_dict,
        node_from_dict,
    )

    device_payload = entry.get("device", config["device"])
    if device_payload.get("kind") == "device":
        device = device_from_dict(device_payload)
    else:
        device = device_config_from_dict(device_payload)
    store = _worker_store()
    session = CacheSession(store)
    unit = OptimalControlUnit(
        device=device,
        compiler=compiler_config_from_dict(config["compiler"]),
        backend=config["backend"],
        grape_qubit_limit=config["grape_qubit_limit"],
        grape_dt=config["grape_dt"],
        seed=config["seed"],
        cache=session,
        grape_kernel=config.get("grape_kernel", "vectorized"),
        grape_warm_start=config.get("grape_warm_start", True),
        grape_plateau_iterations=config.get("grape_plateau_iterations", 60),
    )
    unit.latency(node_from_dict(entry["node"]), entry["positional"])
    store.merge_delta(session.delta)
    used = {key: getattr(unit, key) for key in _COUNTER_KEYS}
    return cache_delta_to_dict(session.delta), used


def _as_job(job) -> BatchJob:
    """Coerce circuits and tuples into :class:`BatchJob`."""
    if isinstance(job, BatchJob):
        return job
    if isinstance(job, Circuit):
        return BatchJob(circuit=job)
    if isinstance(job, Sequence) and not isinstance(job, (str, bytes)):
        if not 1 <= len(job) <= 3:
            raise ConfigError(
                f"a job tuple needs 1-3 entries (circuit, strategy, "
                f"width_limit), got {len(job)}"
            )
        circuit = job[0]
        strategy = job[1] if len(job) > 1 else ISA
        width_limit = job[2] if len(job) > 2 else None
        if not isinstance(circuit, Circuit):
            raise ConfigError(f"job circuit must be a Circuit, got {circuit!r}")
        if not isinstance(strategy, Strategy):
            raise ConfigError(
                f"job strategy must be a Strategy, got {strategy!r}"
            )
        return BatchJob(
            circuit=circuit, strategy=strategy, width_limit=width_limit
        )
    raise ConfigError(f"cannot interpret batch job {job!r}")


def resolve_engine(
    engine: BatchCompiler | None = None,
    ocu: OptimalControlUnit | None = None,
    max_workers: int | None = None,
) -> BatchCompiler:
    """The engine a driver should use.

    An explicit ``engine`` wins; otherwise one is wrapped around ``ocu``
    (sharing its cache, so pre-batch-era call sites keep their warm
    caches); otherwise a fresh default engine.
    """
    if engine is not None:
        return engine
    if ocu is not None:
        return BatchCompiler.from_ocu(ocu, max_workers=max_workers)
    return BatchCompiler(max_workers=max_workers)


def compile_batch(
    jobs: Iterable,
    device: Device | DeviceConfig | str = DEFAULT_DEVICE,
    compiler_config: CompilerConfig = DEFAULT_COMPILER,
    cache: PulseCache | None = None,
    backend: str = "model",
    max_workers: int | None = None,
    executor: str = "thread",
) -> BatchReport:
    """Compile a batch of (circuit, strategy) jobs; results in job order.

    Convenience wrapper constructing a throwaway :class:`BatchCompiler`;
    keep an engine instance (or at least pass ``cache=``) to reuse the
    pulse cache across batches.
    """
    engine = BatchCompiler(
        device=device,
        compiler_config=compiler_config,
        cache=cache,
        backend=backend,
        max_workers=max_workers,
        executor=executor,
    )
    return engine.compile_batch(jobs)
