"""The end-to-end compilation pipeline (paper Fig. 5, right side).

Stages, mirroring the paper's flow:

1. **Lowering** — decompose everything to the standard logical set
   (1-qubit rotations, CNOT, SWAP).
2. **Commutativity detection** — contract diagonal 2-qubit blocks
   (strategies with detection enabled).
3. **Logical scheduling** — CLS or plain program order.
4. **Mapping** — recursive-bisection placement on a grid and
   SWAP-insertion routing.
5. **Backend** — instruction aggregation with the optimal-control unit,
   or hand-optimization rewrite rules, or nothing (ISA).
6. **Final scheduling** — CLS (or list scheduling) with per-instruction
   pulse latencies; the makespan is the circuit latency Figure 9 plots.
"""

from __future__ import annotations

import time

from repro.aggregation.aggregator import aggregate
from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.compiler.hand_opt import hand_optimize
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import ISA, Strategy
from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.control.unit import OptimalControlUnit
from repro.errors import ConfigError
from repro.gates.decompositions import lower_to_standard_set
from repro.mapping.placement import initial_placement
from repro.mapping.router import route
from repro.mapping.topology import GridTopology, grid_for
from repro.scheduling.cls import cls_schedule
from repro.scheduling.list_scheduler import list_schedule


def compile_circuit(
    circuit: Circuit,
    strategy: Strategy = ISA,
    device: DeviceConfig = DEFAULT_DEVICE,
    compiler_config: CompilerConfig = DEFAULT_COMPILER,
    ocu: OptimalControlUnit | None = None,
    topology: GridTopology | None = None,
    width_limit: int | None = None,
) -> CompilationResult:
    """Compile a circuit under one strategy and report its pulse latency.

    Args:
        circuit: Logical circuit (any registered gates; lowered here).
        strategy: One of the Figure 9 strategies.
        device: Field limits and pulse overheads.
        compiler_config: Width limits, detection depth, etc.
        ocu: Latency oracle; a fresh model-backend unit when omitted
            (pass a shared one to exploit the pulse cache across runs).
        topology: Device grid; a near-square grid sized to the circuit
            when omitted.
        width_limit: Override of ``compiler_config.max_instruction_width``;
            must be at least 1 (a limit of 1 disables merging entirely).

    Returns:
        A :class:`CompilationResult`.
    """
    ocu = ocu or OptimalControlUnit(device=device, compiler=compiler_config)
    if width_limit is None:
        width_limit = compiler_config.max_instruction_width
    elif width_limit < 1:
        raise ConfigError(
            f"width_limit must be at least 1, got {width_limit}"
        )
    checker = CommutationChecker(
        exact_qubits=compiler_config.exact_commutation_qubits
    )
    stage_seconds: dict[str, float] = {}

    def latency_fn(node) -> float:
        hand_latency = getattr(node, "hand_latency_ns", None)
        if hand_latency is not None:
            return hand_latency
        if isinstance(node, AggregatedInstruction) and not strategy.aggregation:
            # Detection-only block: it exists for scheduling freedom, but
            # without an optimal-control backend it still executes as its
            # member gates, one pulse each.
            return sum(ocu.latency(gate) for gate in node.gates)
        return ocu.latency(node)

    # Stage 1: lowering.
    started = time.perf_counter()
    lowered = lower_to_standard_set(circuit.gates)
    stage_seconds["lowering"] = time.perf_counter() - started

    # Stage 2: commutativity detection.
    started = time.perf_counter()
    if strategy.commutativity_detection:
        nodes = detect_diagonal_blocks(lowered, compiler_config)
    else:
        nodes = list(lowered)
    stage_seconds["detection"] = time.perf_counter() - started

    # Stage 3: logical scheduling.
    started = time.perf_counter()
    logical_dag = GateDependenceGraph(
        circuit.num_qubits, nodes, checker.commute
    )
    if strategy.cls_scheduling:
        logical_order = cls_schedule(logical_dag, latency_fn).ordered_nodes()
        logical_dag.reorder(logical_order)
    ordered_nodes = logical_dag.stable_topological_order()
    stage_seconds["logical_scheduling"] = time.perf_counter() - started

    # Stage 4: mapping and routing.
    started = time.perf_counter()
    topology = topology or grid_for(circuit.num_qubits)
    placement = initial_placement(circuit, topology)
    routing = route(ordered_nodes, placement)
    physical_nodes = routing.nodes
    stage_seconds["mapping"] = time.perf_counter() - started

    # Stage 5: backend (aggregation / hand rules / nothing).
    started = time.perf_counter()
    aggregation_merges = 0
    if strategy.hand_optimization:
        physical_nodes = hand_optimize(physical_nodes, device)
    physical_dag = GateDependenceGraph(
        topology.num_qubits, physical_nodes, checker.commute
    )
    if strategy.aggregation:
        report = aggregate(
            physical_dag,
            ocu,
            width_limit=width_limit,
            max_rounds=10_000,
        )
        aggregation_merges = report.merges
    stage_seconds["backend"] = time.perf_counter() - started

    # Stage 6: final physical schedule.
    started = time.perf_counter()
    if strategy.cls_scheduling:
        schedule = cls_schedule(physical_dag, latency_fn)
    else:
        schedule = list_schedule(physical_dag, latency_fn)
    stage_seconds["final_scheduling"] = time.perf_counter() - started

    return CompilationResult(
        strategy_key=strategy.key,
        circuit_name=circuit.name,
        logical_qubits=circuit.num_qubits,
        physical_qubits=topology.num_qubits,
        schedule=schedule,
        latency_ns=schedule.makespan,
        swap_count=routing.swap_count,
        lowered_gate_count=len(lowered),
        aggregation_merges=aggregation_merges,
        stage_seconds=stage_seconds,
        final_mapping=routing.placement.as_dict(),
        initial_mapping=routing.initial_placement.as_dict(),
    )
