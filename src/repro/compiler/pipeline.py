"""The end-to-end compilation entry points (paper Fig. 5, right side).

Since the pass-manager refactor, the pipeline is literally a list of
passes (see :mod:`repro.compiler.passes`) run by a
:class:`~repro.compiler.manager.PassManager` over a
:class:`~repro.compiler.context.CompilationContext`:

1. **Lowering** (``LowerPass``) — decompose everything to the standard
   logical set (1-qubit rotations, CNOT, SWAP).
2. **Commutativity detection** (``DetectDiagonalsPass``) — contract
   diagonal 2-qubit blocks (strategies with detection enabled).
3. **Logical scheduling** (``LogicalSchedulePass``) — CLS or plain
   program order.
4. **Mapping** (``PlaceAndRoutePass``) — recursive-bisection placement
   on the target device's coupling graph and SWAP-insertion routing
   (the paper's near-square grid unless a device or topology is given).
5. **Backend** (``AggregatePass`` / ``HandOptimizePass`` / nothing) —
   instruction aggregation with the optimal-control unit, or
   hand-optimization rewrite rules, or nothing (ISA).
6. **Final scheduling** (``FinalSchedulePass``) — CLS (or list
   scheduling) with per-instruction pulse latencies; the makespan is the
   circuit latency Figure 9 plots.

:func:`compile_circuit` is the stable single-shot API: it resolves a
strategy (object or registered key) to its pipeline and returns a
:class:`~repro.compiler.result.CompilationResult` identical to the
pre-refactor monolith's.  :func:`compile_with_pipeline` runs an explicit
pass list — the hook for ad-hoc custom pipelines.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.circuit import Circuit
from repro.compiler.context import CompilationContext
from repro.compiler.manager import PassCallback, PassManager
from repro.compiler.passes import (
    Pass,
    pipeline_prices_pulses,
    strategy_pulse_backend,
)
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import ISA, Strategy, strategy_by_key
from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device
from repro.device.topology import Topology


def compile_circuit(
    circuit: Circuit,
    strategy: Strategy | str = ISA,
    device: Device | DeviceConfig | str = DEFAULT_DEVICE,
    compiler_config: CompilerConfig = DEFAULT_COMPILER,
    ocu: OptimalControlUnit | None = None,
    topology: Topology | None = None,
    width_limit: int | None = None,
    callbacks: Sequence[PassCallback] = (),
    verify_ir: bool = False,
    result_cache=None,
) -> CompilationResult:
    """Compile a circuit under one strategy and report its pulse latency.

    Args:
        circuit: Logical circuit (any registered gates; lowered here).
        strategy: A :class:`Strategy` or the key of a registered one
            (built-in Figure 9 keys or custom registrations).
        device: The compilation target: a full
            :class:`~repro.device.device.Device`, a preset key such as
            ``"ring-6"`` or ``"heavy-hex-2"``, or a bare
            :class:`DeviceConfig` (field limits and pulse overheads only;
            the topology then comes from ``topology`` or defaults to the
            paper's near-square grid sized to the circuit).
        compiler_config: Width limits, detection depth, etc.
        ocu: Latency oracle; a fresh model-backend unit when omitted
            (pass a shared one to exploit the pulse cache across runs).
        topology: Bare coupling graph (wrapped into a default-config
            device); mutually exclusive with a full ``device``.
        width_limit: Override of ``compiler_config.max_instruction_width``;
            must be at least 1 (a limit of 1 disables merging entirely).
        callbacks: Per-pass hooks, invoked after each pass with
            ``(pass_, context, elapsed_seconds)``.
        verify_ir: Debug mode — check IR invariants after every pass
            and raise :class:`~repro.errors.IRVerificationError` naming
            the first pass that broke one (see :mod:`repro.analysis`).
        result_cache: Optional
            :class:`~repro.compiler.result_cache.ResultCache` consulted
            before compiling and fed after: a prior compilation of the
            same job under the same engine settings returns its cached
            result (a fresh deserialized copy) without running any pass.

    Returns:
        A :class:`CompilationResult`.
    """
    if isinstance(strategy, str):
        strategy = strategy_by_key(strategy)
    pipeline = strategy.pipeline()
    cache_key = None
    if result_cache is not None:
        ocu, cache_key = _result_cache_key(
            circuit, strategy, device, compiler_config, ocu, topology,
            width_limit,
        )
        if cache_key is not None:
            cached = result_cache.get(cache_key)
            if cached is not None:
                return cached
    result = compile_with_pipeline(
        circuit,
        pipeline,
        strategy_key=strategy.key,
        pulse_backend=strategy_pulse_backend(strategy, pipeline),
        device=device,
        compiler_config=compiler_config,
        ocu=ocu,
        topology=topology,
        width_limit=width_limit,
        callbacks=callbacks,
        verify_ir=verify_ir,
    )
    if result_cache is not None and cache_key is not None:
        result_cache.put(cache_key, result)
    return result


def _result_cache_key(
    circuit, strategy, device, compiler_config, ocu, topology, width_limit
):
    """(resolved OCU, content key) for one ``compile_circuit`` call.

    Mirrors :meth:`CompilationContext.create`'s target/oracle resolution
    so the key is computed against exactly the configuration the
    compilation will run under; the OCU is created here (when the caller
    gave none) and passed down so the two can never diverge.  Jobs that
    cannot serialize — an unregistered ad-hoc strategy — return a None
    key and bypass the cache.
    """
    from repro.compiler.batch import BatchJob
    from repro.compiler.result_cache import engine_component, result_key
    from repro.device.device import coerce_device
    from repro.errors import SerializationError
    from repro.ir.serialize import batch_job_to_dict

    resolved_device, device_config, resolved_topology = coerce_device(
        device, topology
    )
    target = resolved_device if resolved_device is not None else device_config
    if ocu is None:
        ocu = OptimalControlUnit(device=target, compiler=compiler_config)
    try:
        envelope = batch_job_to_dict(
            BatchJob(
                circuit=circuit,
                strategy=strategy,
                width_limit=width_limit,
                topology=(
                    resolved_topology if resolved_device is None else None
                ),
                device=resolved_device,
            )
        )
    except SerializationError:
        return ocu, None
    return ocu, result_key(
        envelope,
        engine_component(target, compiler_config, ocu.backend, ocu.fingerprint),
    )


def compile_with_pipeline(
    circuit: Circuit,
    passes: Sequence[Pass],
    *,
    strategy_key: str = "custom",
    pulse_backend: bool | None = None,
    device: Device | DeviceConfig | str = DEFAULT_DEVICE,
    compiler_config: CompilerConfig = DEFAULT_COMPILER,
    ocu: OptimalControlUnit | None = None,
    topology: Topology | None = None,
    width_limit: int | None = None,
    callbacks: Sequence[PassCallback] = (),
    verify_ir: bool = False,
) -> CompilationResult:
    """Compile through an explicit pass list (no strategy registration).

    Args:
        circuit: Logical circuit.
        passes: The pipeline to run, in order.
        strategy_key: Label recorded on the result.
        pulse_backend: Whether detected/aggregated blocks are priced as
            single optimized pulses.  Defaults to whether ``passes``
            contains an ``AggregatePass`` — only override it for a
            custom backend pass the auto-detection cannot see.

    The remaining arguments match :func:`compile_circuit`.
    """
    passes = list(passes)
    if pulse_backend is None:
        pulse_backend = pipeline_prices_pulses(passes)
    context = CompilationContext.create(
        circuit,
        strategy_key=strategy_key,
        pulse_backend=pulse_backend,
        device=device,
        compiler_config=compiler_config,
        ocu=ocu,
        topology=topology,
        width_limit=width_limit,
    )
    PassManager(passes, callbacks=callbacks, verify_ir=verify_ir).run(context)
    return context.result()
