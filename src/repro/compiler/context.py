"""The shared state a pass pipeline rewrites (paper Fig. 5's data flow).

A :class:`CompilationContext` carries one circuit's evolving intermediate
representation from lowering to the final physical schedule: the current
node list, the logical and physical dependence graphs, the placement and
routing outcome, the schedule, and per-pass instrumentation.  Passes
(:mod:`repro.compiler.passes`) read and write the context; the
:class:`~repro.compiler.manager.PassManager` threads it through a
pipeline and records timings.

The context also owns the latency oracle used everywhere a pass needs an
instruction cost: :meth:`CompilationContext.latency` reproduces the
pipeline's pricing rule — hand-optimized blocks carry their own latency,
detection-only aggregates (no pulse backend) price as their member gates,
everything else asks the optimal-control unit.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.compiler.result import CompilationResult
from repro.config import (
    CompilerConfig,
    DEFAULT_COMPILER,
    DEFAULT_DEVICE,
    DeviceConfig,
)
from repro.control.unit import OptimalControlUnit
from repro.device.device import Device, coerce_device
from repro.device.topology import Topology
from repro.errors import ConfigError, PassOrderingError
from repro.mapping.router import RoutingResult
from repro.scheduling.schedule import Schedule

STAGES = (
    "lowering",
    "detection",
    "logical_scheduling",
    "mapping",
    "backend",
    "final_scheduling",
)
"""Canonical stage keys of ``CompilationResult.stage_seconds``.

Every context starts with all six at 0.0 so results keep the same key
set regardless of which passes a pipeline actually runs.  The built-in
passes accrue into these six; a custom pass may declare any other
``stage`` name, which *extends* the key set for that result (stage
names are not validated — a misspelled stage lands under the misspelled
key rather than raising).
"""


def _zero_stages() -> dict[str, float]:
    return dict.fromkeys(STAGES, 0.0)


@dataclasses.dataclass
class CompilationContext:
    """Everything one compilation carries between passes.

    The first block is fixed input (circuit, physics, configuration,
    oracle); the second is the evolving IR each pass rewrites; the third
    is instrumentation the pass manager and the passes fill in.
    """

    circuit: Circuit
    device_config: DeviceConfig
    compiler_config: CompilerConfig
    ocu: OptimalControlUnit
    checker: CommutationChecker
    width_limit: int
    strategy_key: str = "custom"
    pulse_backend: bool = False
    """Whether aggregated blocks execute as single optimized pulses.

    When False (no aggregation backend), a detected diagonal block still
    exists for scheduling freedom but prices as its member gates, one
    pulse each — the pricing rule of the pre-pass-manager pipeline.
    """
    device: Device | None = None
    """The full compilation target (coupling graph + physics + overrides).

    None until resolved: callers who give only a :class:`DeviceConfig`
    leave the topology to ``PlaceAndRoutePass``, which sizes the paper's
    near-square grid to the circuit and records the resulting default
    :class:`Device` here.
    """
    topology: Topology | None = None
    """The device's coupling graph (mirrors ``device.topology``)."""

    # Evolving IR --------------------------------------------------------
    nodes: list | None = None
    """Current logical node list (gates and detected blocks)."""
    lowered_gate_count: int | None = None
    logical_dag: GateDependenceGraph | None = None
    routing: RoutingResult | None = None
    physical_nodes: list | None = None
    """Routed nodes over physical qubits (SWAPs inserted)."""
    physical_dag: GateDependenceGraph | None = None
    schedule: Schedule | None = None
    aggregation_merges: int = 0

    # Instrumentation ----------------------------------------------------
    stage_seconds: dict[str, float] = dataclasses.field(
        default_factory=_zero_stages
    )
    pass_seconds: dict[str, float] = dataclasses.field(default_factory=dict)
    """Wall-clock per pass name (accumulated when a name repeats)."""
    metrics: dict[str, dict[str, Any]] = dataclasses.field(
        default_factory=dict
    )
    """Per-pass structured metrics, keyed by pass name."""
    current_pass_index: int | None = None
    """Pipeline position of the pass currently running (set by the
    :class:`~repro.compiler.manager.PassManager`), so ordering errors
    can cite where in the pipeline they happened."""

    @classmethod
    def create(
        cls,
        circuit: Circuit,
        *,
        strategy_key: str = "custom",
        pulse_backend: bool = False,
        device: Device | DeviceConfig | str = DEFAULT_DEVICE,
        compiler_config: CompilerConfig = DEFAULT_COMPILER,
        ocu: OptimalControlUnit | None = None,
        topology: Topology | None = None,
        width_limit: int | None = None,
    ) -> CompilationContext:
        """A ready-to-run context with validated width limit and oracle.

        ``device`` accepts a full :class:`Device`, a registered preset
        key (``"ring-6"``), or a bare :class:`DeviceConfig`; a bare
        ``topology`` wraps into a default-config device.  When neither
        names a topology, the mapping pass sizes the paper grid later.
        """
        device, device_config, topology = coerce_device(device, topology)
        ocu = ocu or OptimalControlUnit(
            device=device if device is not None else device_config,
            compiler=compiler_config,
        )
        # Positional pricing must agree in both directions: an OCU built
        # for heterogeneous couplings would misprice any other device's
        # edges, and a heterogeneous device needs an OCU that knows its
        # overrides.  (t1/t2 overrides never reach the oracle, so they
        # impose no pairing.)
        ocu_target = getattr(ocu, "target", None)
        ocu_positional = (
            ocu_target is not None and ocu_target.has_heterogeneous_couplings
        )
        device_positional = (
            device is not None and device.has_heterogeneous_couplings
        )
        if ocu_positional or device_positional:
            if (
                device is None
                or ocu_target is None
                or ocu_target.coupling_signature()
                != device.coupling_signature()
            ):
                raise ConfigError(
                    f"per-edge coupling overrides require a matched "
                    f"oracle: compiling onto {device!r} with an OCU built "
                    f"for {ocu_target!r} would misprice edges; construct "
                    f"the OCU with the same device (or omit ocu=)"
                )
        if width_limit is None:
            width_limit = compiler_config.max_instruction_width
        elif width_limit < 1:
            raise ConfigError(
                f"width_limit must be at least 1, got {width_limit}"
            )
        checker = CommutationChecker(
            exact_qubits=compiler_config.exact_commutation_qubits
        )
        return cls(
            circuit=circuit,
            device_config=device_config,
            compiler_config=compiler_config,
            ocu=ocu,
            checker=checker,
            width_limit=width_limit,
            strategy_key=strategy_key,
            pulse_backend=pulse_backend,
            device=device,
            topology=topology,
        )

    # ------------------------------------------------------------------
    # Latency oracle

    def latency(self, node) -> float:
        """Instruction cost in nanoseconds (the schedulers' weight fn).

        Until routing has produced physical nodes, node indices are
        *logical* — they name no device edge — so heterogeneous targets
        price them at the homogeneous baseline (``positional=False``);
        after routing, per-edge overrides apply.
        """
        hand_latency = getattr(node, "hand_latency_ns", None)
        if hand_latency is not None:
            return hand_latency
        positional = self.routing is not None
        if isinstance(node, AggregatedInstruction) and not self.pulse_backend:
            # Detection-only block: it exists for scheduling freedom, but
            # without an optimal-control backend it still executes as its
            # member gates, one pulse each.
            return sum(
                self.ocu.latency(gate, positional) for gate in node.gates
            )
        return self.ocu.latency(node, positional)

    # ------------------------------------------------------------------
    # Validation helpers for passes

    def require(self, attribute: str, needed_by: str, hint: str) -> Any:
        """The named context attribute, or a clear ordering error.

        Args:
            attribute: Context field a pass is about to read.
            needed_by: Name of the requiring pass (for the message).
            hint: What the pipeline is missing (e.g. "run LowerPass
                first").
        """
        value = getattr(self, attribute)
        if value is None:
            # The producer hint comes from the same requires/produces
            # contract metadata the static analyzer checks, so runtime
            # and registration-time diagnostics never disagree.
            from repro.analysis.contracts import missing_field_hint

            position = (
                f" at pipeline position {self.current_pass_index}"
                if self.current_pass_index is not None
                else ""
            )
            raise PassOrderingError(
                f"{needed_by}{position} requires context.{attribute}, "
                f"which no earlier pass produced "
                f"({missing_field_hint(attribute)}; {hint}); circuit "
                f"{self.circuit.name!r}, strategy {self.strategy_key!r}"
            )
        return value

    def ensure_physical_dag(self, needed_by: str) -> GateDependenceGraph:
        """The physical-qubit dependence graph, built on first use.

        Hand optimization invalidates it (it rewrites the node list);
        aggregation and final scheduling share one instance so merges
        executed by the aggregator are what the scheduler sees.  Build
        time accrues to whichever pass triggers construction — the
        ``backend`` stage for aggregating pipelines, ``final_scheduling``
        otherwise (the pre-refactor monolith always charged it to
        ``backend``; only the attribution moved, never the work).
        """
        if self.physical_dag is None:
            nodes = self.require(
                "physical_nodes", needed_by, "run PlaceAndRoutePass first"
            )
            topology = self.require(
                "topology", needed_by, "run PlaceAndRoutePass first"
            )
            self.physical_dag = GateDependenceGraph(
                topology.num_qubits, nodes, self.checker.commute
            )
        return self.physical_dag

    def invalidate_physical_dag(self) -> None:
        """Drop the cached physical DAG after rewriting physical_nodes."""
        self.physical_dag = None

    def record_metrics(self, pass_name: str, **values: Any) -> None:
        """Merge structured metrics under a pass's name.

        Repeated keys overwrite (last write wins): unlike wall-clock,
        metrics are heterogeneous — summing would corrupt ratios like
        ``improvement`` — so a pipeline running the same pass class
        twice should give each instance a distinct ``name`` (override
        the :attr:`Pass.name` property) to keep both readings.
        """
        self.metrics.setdefault(pass_name, {}).update(values)

    # ------------------------------------------------------------------

    def result(self) -> CompilationResult:
        """Package the finished context as a :class:`CompilationResult`."""
        schedule = self.require(
            "schedule", "CompilationContext.result", "run FinalSchedulePass"
        )
        routing = self.require(
            "routing", "CompilationContext.result", "run PlaceAndRoutePass"
        )
        topology = self.require(
            "topology", "CompilationContext.result", "run PlaceAndRoutePass"
        )
        return CompilationResult(
            strategy_key=self.strategy_key,
            circuit_name=self.circuit.name,
            logical_qubits=self.circuit.num_qubits,
            physical_qubits=topology.num_qubits,
            schedule=schedule,
            latency_ns=schedule.makespan,
            swap_count=routing.swap_count,
            lowered_gate_count=self.lowered_gate_count or 0,
            aggregation_merges=self.aggregation_merges,
            stage_seconds=dict(self.stage_seconds),
            final_mapping=routing.placement.as_dict(),
            initial_mapping=routing.initial_placement.as_dict(),
            pass_seconds=dict(self.pass_seconds),
            device_name=self.device.name if self.device is not None else None,
            source_circuit=self.circuit,
        )
