"""Compilation results and derived metrics."""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.aggregation.instruction import AggregatedInstruction
from repro.scheduling.schedule import Schedule


@dataclasses.dataclass
class CompilationResult:
    """Everything a compilation run produced.

    Attributes:
        strategy_key: Which Figure 9 strategy ran.
        circuit_name: Source circuit.
        logical_qubits: Register width before mapping.
        physical_qubits: Grid size after mapping.
        schedule: The final physical schedule (nodes carry physical
            qubit indices).
        latency_ns: Schedule makespan — the number Figure 9 plots.
        swap_count: SWAPs inserted by routing.
        lowered_gate_count: Gates after decomposition to the standard set.
        aggregation_merges: Merges executed (0 when aggregation is off).
        stage_seconds: Wall-clock per pipeline stage.
    """

    strategy_key: str
    circuit_name: str
    logical_qubits: int
    physical_qubits: int
    schedule: Schedule
    latency_ns: float
    swap_count: int
    lowered_gate_count: int
    aggregation_merges: int
    stage_seconds: dict[str, float]
    final_mapping: dict[int, int] = dataclasses.field(default_factory=dict)
    """Where routing left each logical qubit (logical -> physical)."""
    initial_mapping: dict[int, int] = dataclasses.field(default_factory=dict)
    """Where placement put each logical qubit before routing."""
    pass_seconds: dict[str, float] = dataclasses.field(default_factory=dict)
    """Wall-clock per compiler pass (finer-grained than stage_seconds)."""
    device_name: str | None = None
    """Name of the compilation target (preset key or custom Device name;
    None for anonymous devices, including the auto-sized paper grid)."""
    source_circuit: object | None = None
    """The circuit this result compiled (a
    :class:`~repro.circuit.circuit.Circuit`), kept so
    :meth:`verify_equivalence` can check the compiled schedule against
    it; None for results deserialized without their source."""

    @property
    def node_count(self) -> int:
        """Final instruction count."""
        return len(self.schedule)

    def instruction_width_histogram(self) -> Counter[int]:
        """Distribution of final instruction widths."""
        histogram: Counter[int] = Counter()
        for operation in self.schedule:
            histogram[len(set(operation.node.qubits))] += 1
        return histogram

    def aggregated_instructions(self) -> list[AggregatedInstruction]:
        """The aggregated instructions in the final schedule."""
        return [
            operation.node
            for operation in self.schedule
            if isinstance(operation.node, AggregatedInstruction)
        ]

    def widest_instruction(self) -> int:
        """Largest final instruction width."""
        return max(
            (len(set(op.node.qubits)) for op in self.schedule), default=0
        )

    def verify_equivalence(self, circuit=None, **options):
        """Check that this result still implements its source circuit.

        Compares the compiled schedule against ``circuit`` (default: the
        recorded ``source_circuit``) up to global phase and the routing
        permutation; see
        :func:`repro.verification.equivalence.verify_equivalence` for
        the ``method``/``states``/``atol``/``seed``/``ocu``/
        ``raise_on_failure`` options.

        Returns:
            An :class:`~repro.verification.equivalence.EquivalenceReport`
            (truthy iff equivalent).
        """
        from repro.verification.equivalence import verify_equivalence

        return verify_equivalence(self, circuit, **options)

    # ------------------------------------------------------------------
    # Serialization (wire format: repro.ir.serialize)

    def to_dict(self, include_source: bool = True) -> dict:
        """Versioned wire form of the whole result.

        ``include_source=False`` drops the source circuit for a smaller
        payload; the loaded result then needs an explicit circuit to
        :meth:`verify_equivalence`.
        """
        from repro.ir.serialize import result_to_dict

        return result_to_dict(self, include_source=include_source)

    @classmethod
    def from_dict(cls, payload: dict) -> CompilationResult:
        """Rebuild a result from its wire form."""
        from repro.ir.serialize import result_from_dict

        return result_from_dict(payload)

    def save(self, path, include_source: bool = True) -> str:
        """Write the result as a JSON artifact; returns the path written.

        The artifact is self-contained: :meth:`load` in another process
        (or on another machine) rebuilds a result whose fingerprints and
        signatures match this one's and which still passes
        :meth:`verify_equivalence` against its embedded source circuit.
        """
        import json
        import os

        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = self.to_dict(include_source=include_source)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path) -> CompilationResult:
        """Read a result previously written by :meth:`save`."""
        import json

        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def speedup_over(self, baseline: CompilationResult) -> float:
        """Latency ratio ``baseline / self`` (the Figure 9 metric)."""
        if self.latency_ns <= 0:
            return float("inf")
        return baseline.latency_ns / self.latency_ns

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name} [{self.strategy_key}]: "
            f"{self.latency_ns:.1f} ns, {self.node_count} instructions, "
            f"{self.swap_count} swaps, widest {self.widest_instruction()}"
        )
