"""Compilation strategies: declarative pass-pipeline factories + registry.

The five built-in strategies are the flows compared in the paper's
Figure 9:

* ``ISA`` — standard gate-based compilation: per-gate optimized pulses,
  plain list scheduling (the normalization baseline).
* ``CLS`` — commutativity detection + commutativity-aware scheduling.
* ``Aggregation`` — instruction aggregation without CLS.
* ``CLS + aggregation`` — the paper's full proposed flow.
* ``CLS + hand optimization`` — CLS plus mechanically-applied known
  iSWAP-architecture pulse identities (the strongest prior-art
  comparator the paper constructs).

A :class:`Strategy` is declarative: its feature flags determine a
default pass pipeline (:func:`default_pipeline`), and
:func:`register_strategy` lets users add new strategies — optionally
with a custom pipeline factory mixing built-in and user-defined passes —
that then work everywhere a built-in does: ``compile_circuit``, the
batch engine, and the experiment drivers (all of which accept strategy
keys and resolve them here).  See ``examples/custom_pass.py``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.compiler.passes import (
    AggregatePass,
    DetectDiagonalsPass,
    FinalSchedulePass,
    HandOptimizePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
)
from repro.errors import ConfigError

PipelineFactory = Callable[["Strategy"], list[Pass]]


@dataclasses.dataclass(frozen=True)
class Strategy:
    """Feature switches of one compilation flow."""

    key: str
    description: str
    commutativity_detection: bool
    cls_scheduling: bool
    aggregation: bool
    hand_optimization: bool

    def __post_init__(self) -> None:
        if self.aggregation and self.hand_optimization:
            raise ConfigError(
                "aggregation and hand optimization are alternative backends"
            )

    def pipeline(self) -> list[Pass]:
        """The pass pipeline this strategy compiles with.

        A custom factory registered via :func:`register_strategy` wins;
        for unregistered strategies the flags imply the default Fig. 5
        pipeline.  A strategy whose key is registered to a *different*
        Strategy object is ambiguous — guessing either pipeline could
        silently compile with the wrong one — so it is rejected.
        """
        entry = _REGISTRY.get(self.key)
        if entry is None:
            return default_pipeline(self)
        if entry.strategy != self:
            raise ConfigError(
                f"strategy key {self.key!r} is registered to a different "
                f"Strategy object; use strategy_by_key({self.key!r}) or "
                f"register this variant under its own key"
            )
        return list(entry.pipeline_factory(self))


def default_pipeline(strategy: Strategy) -> list[Pass]:
    """The Fig. 5 pass pipeline implied by a strategy's feature flags."""
    passes: list[Pass] = [LowerPass()]
    if strategy.commutativity_detection:
        passes.append(DetectDiagonalsPass())
    passes.append(LogicalSchedulePass(use_cls=strategy.cls_scheduling))
    passes.append(PlaceAndRoutePass())
    if strategy.hand_optimization:
        passes.append(HandOptimizePass())
    if strategy.aggregation:
        passes.append(AggregatePass())
    passes.append(FinalSchedulePass(use_cls=strategy.cls_scheduling))
    return passes


# ----------------------------------------------------------------------
# The built-in Figure 9 strategies

ISA = Strategy(
    key="isa",
    description="gate-based compilation (baseline)",
    commutativity_detection=False,
    cls_scheduling=False,
    aggregation=False,
    hand_optimization=False,
)

CLS = Strategy(
    key="cls",
    description="commutativity-aware logical scheduling",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=False,
    hand_optimization=False,
)

AGGREGATION = Strategy(
    key="aggregation",
    description="instruction aggregation without CLS",
    commutativity_detection=False,
    cls_scheduling=False,
    aggregation=True,
    hand_optimization=False,
)

CLS_AGGREGATION = Strategy(
    key="cls+aggregation",
    description="the full proposed compilation flow",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=True,
    hand_optimization=False,
)

CLS_HAND = Strategy(
    key="cls+hand",
    description="CLS plus mechanical iSWAP pulse identities",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=False,
    hand_optimization=True,
)


# ----------------------------------------------------------------------
# Registry

@dataclasses.dataclass(frozen=True)
class _RegistryEntry:
    strategy: Strategy
    pipeline_factory: PipelineFactory


_REGISTRY: dict[str, _RegistryEntry] = {}
_BUILTINS = (ISA, CLS, AGGREGATION, CLS_AGGREGATION, CLS_HAND)
_BUILTIN_KEYS = tuple(strategy.key for strategy in _BUILTINS)


def register_strategy(
    strategy: Strategy,
    pipeline_factory: PipelineFactory | None = None,
    overwrite: bool = False,
) -> Strategy:
    """Make a strategy resolvable by key throughout the compiler.

    Args:
        strategy: The strategy to register (its ``key`` must be unique).
        pipeline_factory: Callable mapping the strategy to its pass
            list; defaults to the flag-driven :func:`default_pipeline`.
        overwrite: Allow replacing an existing non-built-in entry.

    Returns:
        The registered strategy (so registration can be an assignment).

    Raises:
        PassOrderingError: When the strategy's resolved pipeline fails
            static contract analysis (a pass requires a context field no
            earlier pass produces, or the pipeline cannot produce a
            complete result).  Checked here — before anything compiles —
            so a misordered custom pipeline is rejected at registration,
            not at the first compile.
    """
    if not isinstance(strategy, Strategy):
        raise ConfigError(
            f"register_strategy needs a Strategy, got {strategy!r}"
        )
    if strategy.key in _BUILTIN_KEYS:
        raise ConfigError(
            f"cannot replace built-in strategy {strategy.key!r}"
        )
    if strategy.key in _REGISTRY and not overwrite:
        raise ConfigError(
            f"strategy {strategy.key!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    factory = pipeline_factory or default_pipeline
    _check_contracts(strategy, factory)
    _REGISTRY[strategy.key] = _RegistryEntry(
        strategy=strategy,
        pipeline_factory=factory,
    )
    return strategy


def _check_contracts(strategy: Strategy, factory: PipelineFactory) -> None:
    """Statically analyze the strategy's resolved pipeline (no compile)."""
    # Imported on use: repro.analysis pulls in the rule packs, and this
    # module is on the hot import path of the whole compiler package.
    from repro.analysis.contracts import check_pipeline

    check_pipeline(list(factory(strategy)), strategy_key=strategy.key)


def unregister_strategy(key: str) -> None:
    """Remove a previously registered custom strategy (no-op if absent)."""
    if key in _BUILTIN_KEYS:
        raise ConfigError(f"cannot unregister built-in strategy {key!r}")
    _REGISTRY.pop(key, None)


def all_strategies() -> list[Strategy]:
    """The five strategies of Figure 9, baseline first."""
    return list(_BUILTINS)


def registered_strategies() -> list[Strategy]:
    """Every resolvable strategy: built-ins first, then custom ones."""
    return [entry.strategy for entry in _REGISTRY.values()]


def available_strategy_keys() -> list[str]:
    """Keys :func:`strategy_by_key` accepts, built-ins first."""
    return list(_REGISTRY)


def strategy_by_key(key: str) -> Strategy:
    """Look up a strategy (built-in or registered custom) by its key."""
    entry = _REGISTRY.get(key)
    if entry is not None:
        return entry.strategy
    known = ", ".join(repr(k) for k in available_strategy_keys())
    raise ConfigError(f"unknown strategy {key!r}; available: {known}")


for _builtin in _BUILTINS:
    # Built-ins pass the same static contract analysis user strategies
    # do — at import time, so a contract regression in the default
    # pipelines can never ship silently.
    _check_contracts(_builtin, default_pipeline)
    _REGISTRY[_builtin.key] = _RegistryEntry(
        strategy=_builtin, pipeline_factory=default_pipeline
    )
