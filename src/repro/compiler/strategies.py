"""The compilation strategies compared in the paper's Figure 9.

* ``ISA`` — standard gate-based compilation: per-gate optimized pulses,
  plain list scheduling (the normalization baseline).
* ``CLS`` — commutativity detection + commutativity-aware scheduling.
* ``Aggregation`` — instruction aggregation without CLS.
* ``CLS + aggregation`` — the paper's full proposed flow.
* ``CLS + hand optimization`` — CLS plus mechanically-applied known
  iSWAP-architecture pulse identities (the strongest prior-art
  comparator the paper constructs).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class Strategy:
    """Feature switches of one compilation flow."""

    key: str
    description: str
    commutativity_detection: bool
    cls_scheduling: bool
    aggregation: bool
    hand_optimization: bool

    def __post_init__(self) -> None:
        if self.aggregation and self.hand_optimization:
            raise ConfigError(
                "aggregation and hand optimization are alternative backends"
            )


ISA = Strategy(
    key="isa",
    description="gate-based compilation (baseline)",
    commutativity_detection=False,
    cls_scheduling=False,
    aggregation=False,
    hand_optimization=False,
)

CLS = Strategy(
    key="cls",
    description="commutativity-aware logical scheduling",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=False,
    hand_optimization=False,
)

AGGREGATION = Strategy(
    key="aggregation",
    description="instruction aggregation without CLS",
    commutativity_detection=False,
    cls_scheduling=False,
    aggregation=True,
    hand_optimization=False,
)

CLS_AGGREGATION = Strategy(
    key="cls+aggregation",
    description="the full proposed compilation flow",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=True,
    hand_optimization=False,
)

CLS_HAND = Strategy(
    key="cls+hand",
    description="CLS plus mechanical iSWAP pulse identities",
    commutativity_detection=True,
    cls_scheduling=True,
    aggregation=False,
    hand_optimization=True,
)


def all_strategies() -> list[Strategy]:
    """The five strategies of Figure 9, baseline first."""
    return [ISA, CLS, AGGREGATION, CLS_AGGREGATION, CLS_HAND]


def strategy_by_key(key: str) -> Strategy:
    """Look up a strategy by its key."""
    for strategy in all_strategies():
        if strategy.key == key:
            return strategy
    raise ConfigError(f"unknown strategy {key!r}")
