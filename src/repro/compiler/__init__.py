"""Pass-manager compilation core, batch engine and the strategy set."""

from repro.compiler.batch import (
    BatchCompiler,
    BatchJob,
    BatchReport,
    compile_batch,
)
from repro.compiler.context import CompilationContext
from repro.compiler.manager import PassManager
from repro.compiler.passes import (
    AggregatePass,
    DetectDiagonalsPass,
    FinalSchedulePass,
    HandOptimizePass,
    LogicalSchedulePass,
    LowerPass,
    Pass,
    PlaceAndRoutePass,
)
from repro.compiler.pipeline import compile_circuit, compile_with_pipeline
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Strategy,
    all_strategies,
    available_strategy_keys,
    default_pipeline,
    register_strategy,
    registered_strategies,
    strategy_by_key,
    unregister_strategy,
)

__all__ = [
    "AGGREGATION",
    "AggregatePass",
    "BatchCompiler",
    "BatchJob",
    "BatchReport",
    "CLS",
    "CLS_AGGREGATION",
    "CLS_HAND",
    "CompilationContext",
    "CompilationResult",
    "DetectDiagonalsPass",
    "FinalSchedulePass",
    "HandOptimizePass",
    "ISA",
    "LogicalSchedulePass",
    "LowerPass",
    "Pass",
    "PassManager",
    "PlaceAndRoutePass",
    "Strategy",
    "all_strategies",
    "available_strategy_keys",
    "compile_batch",
    "compile_circuit",
    "compile_with_pipeline",
    "default_pipeline",
    "register_strategy",
    "registered_strategies",
    "strategy_by_key",
    "unregister_strategy",
]
