"""End-to-end compilation pipeline and the Figure 9 strategy set."""

from repro.compiler.pipeline import compile_circuit
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Strategy,
    all_strategies,
    strategy_by_key,
)

__all__ = [
    "AGGREGATION",
    "CLS",
    "CLS_AGGREGATION",
    "CLS_HAND",
    "CompilationResult",
    "ISA",
    "Strategy",
    "all_strategies",
    "compile_circuit",
    "strategy_by_key",
]
