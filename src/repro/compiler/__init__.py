"""End-to-end compilation pipeline, batch engine and the strategy set."""

from repro.compiler.batch import (
    BatchCompiler,
    BatchJob,
    BatchReport,
    compile_batch,
)
from repro.compiler.pipeline import compile_circuit
from repro.compiler.result import CompilationResult
from repro.compiler.strategies import (
    AGGREGATION,
    CLS,
    CLS_AGGREGATION,
    CLS_HAND,
    ISA,
    Strategy,
    all_strategies,
    strategy_by_key,
)

__all__ = [
    "AGGREGATION",
    "BatchCompiler",
    "BatchJob",
    "BatchReport",
    "CLS",
    "CLS_AGGREGATION",
    "CLS_HAND",
    "CompilationResult",
    "ISA",
    "Strategy",
    "all_strategies",
    "compile_batch",
    "compile_circuit",
    "strategy_by_key",
]
