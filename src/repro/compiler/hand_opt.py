"""Hand optimization: mechanical application of known iSWAP identities.

The paper's strongest comparator short of optimal control applies the
documented pulse identities for XY architectures (Schuch & Siewert 2003;
Neeley et al. 2010) "with our best effort".  The rules implemented here:

1. **ZZ blocks from two XY segments** — a CNOT-Rz-CNOT (or longer
   diagonal) run on one pair is replaced by the two-segment XY
   construction: two pre-programmed coupling pulses (each paying its own
   setup overhead — hand pulses are concatenated, not co-optimized) that
   realize the block's interaction content, plus the residual local
   rotations at the drive rate.
2. **Single-qubit run fusion** — consecutive one-qubit gates on a qubit
   collapse into one rotation pulse.

A :class:`HandOptimizedInstruction` carries its explicit
``hand_latency_ns`` so the pipeline's latency oracle bypasses the
optimal-control unit for these nodes.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.instruction import AggregatedInstruction
from repro.config import DeviceConfig, DEFAULT_DEVICE
from repro.gates.gate import Gate
from repro.linalg.embed import embed_operator
from repro.linalg.kak import interaction_time, weyl_decomposition
from repro.linalg.predicates import is_diagonal
from repro.linalg.su2 import rotation_content


class HandOptimizedInstruction(AggregatedInstruction):
    """An aggregated block whose latency comes from a hand rule."""

    def __init__(self, gates, hand_latency_ns: float, name=None) -> None:
        super().__init__(gates, name=name)
        self.hand_latency_ns = float(hand_latency_ns)

    def on(self, new_qubits):
        moved = super().on(new_qubits)
        return HandOptimizedInstruction(
            moved.gates, self.hand_latency_ns, name=self.name
        )


def hand_optimize(
    nodes, device: DeviceConfig = DEFAULT_DEVICE, target=None
) -> list:
    """Apply the hand rules to a routed node stream.

    ``target`` is the optional full
    :class:`~repro.device.device.Device`: the nodes here carry physical
    qubit indices, so a diagonal pair block on an edge with a per-edge
    coupling-limit override is priced at that edge's rate — the same
    policy the optimal-control oracle applies.  Without a target every
    pair prices at ``device.coupling_rate`` (identical arithmetic, so
    homogeneous devices stay bit-identical).
    """
    with_zz = _replace_diagonal_pair_blocks(list(nodes), device, target)
    return _fuse_single_qubit_runs(with_zz, device)


def hand_zz_latency(
    block_unitary: np.ndarray,
    device: DeviceConfig,
    coupling_rate: float | None = None,
) -> float:
    """Latency of the two-segment XY realization of a diagonal block.

    ``coupling_rate`` (rad/ns) overrides the homogeneous
    ``device.coupling_rate`` for blocks sitting on a heterogeneous edge.
    """
    if coupling_rate is None:
        coupling_rate = device.coupling_rate
    busy = interaction_time(block_unitary, coupling_rate)
    local = _residual_local(block_unitary, device)
    return 2.0 * device.setup_time_2q_ns + busy + local


def _pair_coupling_rate(target, support) -> float | None:
    """The edge rate of a 2-qubit physical support (None: homogeneous)."""
    if target is None or len(support) != 2:
        return None
    return target.coupling_rate_of(support[0], support[1])


def _residual_local(block_unitary: np.ndarray, device: DeviceConfig) -> float:
    try:
        decomposition = weyl_decomposition(block_unitary)
    except Exception:
        return 0.0
    qubit_a, qubit_b = decomposition.local_rotation_content
    return max(qubit_a, qubit_b) / device.drive_rate


def _replace_diagonal_pair_blocks(
    nodes: list, device: DeviceConfig, target=None
) -> list:
    """Rule 1: contract diagonal pair runs into two-segment hand pulses."""
    output: list = []
    index = 0
    while index < len(nodes):
        node = nodes[index]
        if isinstance(node, AggregatedInstruction):
            # A diagonal block contracted by the frontend detector: give
            # it the two-segment hand realization.
            if node.width == 2 and node.matrix is not None:
                support = tuple(sorted(set(node.qubits)))
                latency = hand_zz_latency(
                    node.matrix, device, _pair_coupling_rate(target, support)
                )
                output.append(
                    HandOptimizedInstruction(node.gates, latency, name=node.name)
                )
            else:
                output.append(node)
            index += 1
            continue
        if not isinstance(node, Gate):
            output.append(node)
            index += 1
            continue
        window, support = _pair_window(nodes, index)
        best = _longest_diagonal_prefix(window, support)
        if best >= 3:
            block = nodes[index : index + best]
            unitary = AggregatedInstruction(block, name="probe").matrix
            latency = hand_zz_latency(
                unitary, device, _pair_coupling_rate(target, support)
            )
            output.append(
                HandOptimizedInstruction(block, latency, name=None)
            )
            index += best
        else:
            output.append(node)
            index += 1
    return output


def _fuse_single_qubit_runs(nodes: list, device: DeviceConfig) -> list:
    """Rule 2: collapse consecutive 1-qubit gates per qubit."""
    output: list = []
    index = 0
    while index < len(nodes):
        node = nodes[index]
        if not (isinstance(node, Gate) and node.num_qubits == 1):
            output.append(node)
            index += 1
            continue
        qubit = node.qubits[0]
        run = [node]
        probe = index + 1
        while probe < len(nodes):
            candidate = nodes[probe]
            if (
                isinstance(candidate, Gate)
                and candidate.num_qubits == 1
                and candidate.qubits[0] == qubit
            ):
                run.append(candidate)
                probe += 1
            elif qubit in candidate.qubits:
                break
            else:
                # Disjoint gate: cannot be reordered past safely in a flat
                # list scan (it may share qubits with later run members'
                # context), stop the run here.
                break
        if len(run) > 1:
            total = np.eye(2, dtype=complex)
            for gate in run:
                total = gate.matrix @ total
            latency = (
                device.setup_time_1q_ns
                + rotation_content(total) / device.drive_rate
            )
            output.append(HandOptimizedInstruction(run, latency, name=None))
            index += len(run)
        else:
            output.append(node)
            index += 1
    return output


def _pair_window(nodes: list, start: int, depth_limit: int = 10):
    support: set[int] = set(nodes[start].qubits)
    window = [nodes[start]]
    position = start + 1
    while position < len(nodes) and len(window) < depth_limit:
        node = nodes[position]
        if not isinstance(node, Gate):
            break
        union = support | set(node.qubits)
        if len(union) > 2:
            break
        support = union
        window.append(node)
        position += 1
    return window, tuple(sorted(support))


def _longest_diagonal_prefix(window: list, support: tuple) -> int:
    if len(support) > 2 or len(window) < 3:
        return 0
    width = len(support)
    index = {qubit: position for position, qubit in enumerate(support)}
    total = np.eye(2**width, dtype=complex)
    best = 0
    has_pair_gate = False
    for length, gate in enumerate(window, start=1):
        positions = [index[q] for q in gate.qubits]
        total = embed_operator(gate.matrix, positions, width) @ total
        has_pair_gate = has_pair_gate or gate.num_qubits == 2
        if length >= 3 and has_pair_gate and is_diagonal(total):
            best = length
    return best
