"""Content-addressed compiled-result cache (the warm-path front door).

PR 7/8 made optimal-control work shareable; this module does the same
one level up, at whole-:class:`~repro.compiler.result.CompilationResult`
granularity.  A :class:`ResultCache` maps the canonical *job signature*
— the label-stripped ``repro-ir-v1`` batch-job envelope, the same sha256
the compile service's circuit breaker quarantines on — to the serialized
result envelope, so byte-identical resubmissions skip the whole pass
pipeline.

Keying rules
------------
The envelope alone does not pin a compilation: jobs without an explicit
``device`` inherit the engine's default target, and the engine's
compiler config, pricing backend and GRAPE knobs all shape the result.
:func:`result_key` therefore folds an *engine component* — a canonical
JSON string of those settings (see :func:`engine_component`) — into the
digest.  Two engines with different configurations sharing one store can
never serve each other's entries (a false miss recompiles; a false hit
would be a miscompilation, so the key errs toward missing).

Entries are stored as serialized bytes and deserialized fresh on every
:meth:`ResultCache.get`, so callers can never corrupt the store (or each
other) through a shared mutable schedule.  Results are stored with their
source circuit embedded (``include_source=True``), so a loaded artifact
can still be re-verified against the program it claims to implement —
:meth:`get` takes ``verify=True`` for callers who want that on the load
path, and the test suite pins it.

The memory store keeps an LRU byte budget exactly like the pulse cache
(:class:`~repro.control.cache.store.PulseCache`); the
:class:`DiskResultCache` backend persists one crash-safe JSON file per
entry (unique temp + fsync + atomic replace, the pulse store's
``replace_into`` discipline) and trims the directory to the same budget
under an advisory file lock, so many processes can share one directory.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import threading
import time

from repro.control.cache.disk import replace_into
from repro.control.cache.locking import FileLock

RESULT_CACHE_FORMAT = "repro-result-cache-v1"

__all__ = [
    "RESULT_CACHE_FORMAT",
    "DiskResultCache",
    "ResultCache",
    "engine_component",
    "result_key",
]


def engine_component(
    device,
    compiler_config,
    backend: str,
    fingerprint: str,
) -> str:
    """Canonical string of the engine settings a job envelope omits.

    Args:
        device: The default compilation target jobs without a pinned
            device inherit (a :class:`~repro.device.device.Device` or a
            bare :class:`~repro.config.DeviceConfig`).
        compiler_config: The engine's :class:`~repro.config.CompilerConfig`
            (serialized whole — unlike the pulse-cache fingerprint it
            must include aggregation-round limits, which change results
            without changing any pulse).
        backend: Pricing backend (``"model"`` / ``"grape"``).
        fingerprint: The OCU's :func:`~repro.control.cache.store.
            config_fingerprint` (covers GRAPE knobs, seed, and
            heterogeneous-coupling targets).
    """
    from repro.device.device import Device
    from repro.ir.serialize import (
        compiler_config_to_dict,
        device_config_to_dict,
        device_to_dict,
    )

    if isinstance(device, Device):
        device_payload = device_to_dict(device)
    else:
        device_payload = device_config_to_dict(device)
    return json.dumps(
        {
            "device": device_payload,
            "compiler": compiler_config_to_dict(compiler_config),
            "backend": backend,
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def result_key(envelope: dict, engine: str = "") -> str:
    """Content digest of one job envelope under one engine configuration.

    The envelope part is byte-identical to the service's
    :func:`~repro.service.server.job_signature` (label stripped,
    canonical JSON); ``engine`` is an :func:`engine_component` string
    folded in behind a separator so envelope bytes can never collide
    with engine bytes.
    """
    payload = {k: v for k, v in envelope.items() if k != "label"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8"))
    if engine:
        digest.update(b"\x00engine\x00")
        digest.update(engine.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """In-memory LRU store of serialized compilation results.

    Args:
        max_bytes: Optional byte budget over the serialized entries;
            least-recently-used entries are evicted when a store pushes
            the total over it.  The entry being written is never evicted
            (same protect rule as the pulse cache), so one oversized
            result still caches — and is the next eviction candidate.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: collections.OrderedDict[str, bytes] = (
            collections.OrderedDict()
        )
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.verified_loads = 0
        self.lookup_seconds = 0.0

    # -- encoding ------------------------------------------------------

    @staticmethod
    def _encode(key: str, result) -> bytes:
        from repro.ir.serialize import result_to_dict

        return json.dumps(
            {
                "format": RESULT_CACHE_FORMAT,
                "key": key,
                "result": result_to_dict(result, include_source=True),
            },
            sort_keys=True,
        ).encode("utf-8")

    @staticmethod
    def _decode(payload: bytes, key: str, source: str):
        from repro.errors import SerializationError
        from repro.ir.serialize import result_from_dict

        try:
            envelope = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SerializationError(
                f"{source}: result-cache entry is not valid JSON: {error}"
            ) from error
        if envelope.get("format") != RESULT_CACHE_FORMAT:
            raise SerializationError(
                f"{source}: unknown result-cache format "
                f"{envelope.get('format')!r} (expected "
                f"{RESULT_CACHE_FORMAT!r})"
            )
        if envelope.get("key") != key:
            raise SerializationError(
                f"{source}: entry claims key {envelope.get('key')!r}, "
                f"looked up as {key!r}"
            )
        return result_from_dict(envelope["result"])

    # -- store API -----------------------------------------------------

    def get(self, key: str, verify: bool = False):
        """A fresh :class:`CompilationResult` for ``key``, or None.

        Every hit deserializes a new result object, so callers own what
        they get.  ``verify=True`` additionally re-checks the loaded
        result against its embedded source circuit
        (:meth:`CompilationResult.verify_equivalence`) before returning
        it — a corrupt or forged entry raises instead of serving.
        """
        started = time.perf_counter()
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
        if payload is None:
            payload = self._read_backend(key)
            if payload is not None:
                self._insert(key, payload, count_store=False)
        if payload is None:
            with self._lock:
                self.misses += 1
                self.lookup_seconds += time.perf_counter() - started
            return None
        result = self._decode(payload, key, source=type(self).__name__)
        if verify:
            result.verify_equivalence(raise_on_failure=True)
            with self._lock:
                self.verified_loads += 1
        with self._lock:
            self.hits += 1
            self.lookup_seconds += time.perf_counter() - started
        return result

    def put(self, key: str, result) -> None:
        """Serialize and store one result under ``key``."""
        payload = self._encode(key, result)
        self._insert(key, payload, count_store=True)
        self._write_backend(key, payload)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every resident entry (backend files are untouched)."""
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def stats(self) -> dict:
        """Hit/miss/eviction/latency counters plus current occupancy."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "total_bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "verified_loads": self.verified_loads,
                "lookup_seconds": self.lookup_seconds,
            }

    # -- internals -----------------------------------------------------

    def _insert(self, key: str, payload: bytes, count_store: bool) -> None:
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.total_bytes -= len(previous)
            self._entries[key] = payload
            self.total_bytes += len(payload)
            if count_store:
                self.stores += 1
            if self.max_bytes is not None:
                while (
                    self.total_bytes > self.max_bytes
                    and len(self._entries) > 1
                ):
                    victim, evicted = next(iter(self._entries.items()))
                    if victim == key:
                        break  # protect the entry being written
                    del self._entries[victim]
                    self.total_bytes -= len(evicted)
                    self.evictions += 1
                    self.evicted_bytes += len(evicted)
                    self._evict_backend(victim)

    # Backend hooks (no-ops for the pure in-memory store) --------------

    def _read_backend(self, key: str) -> bytes | None:
        return None

    def _write_backend(self, key: str, payload: bytes) -> None:
        return None

    def _evict_backend(self, key: str) -> None:
        return None


class DiskResultCache(ResultCache):
    """A :class:`ResultCache` persisted as one JSON file per entry.

    Args:
        directory: Entry directory (created on first write).  Each entry
            lives at ``<key>.json``, written crash-safely, so a killed
            writer can never corrupt the store and concurrent writers of
            the same key both leave a complete file.
        max_bytes: LRU byte budget over the resident set *and* the
            directory: memory evictions fall through to memory only,
            while :meth:`put` additionally trims the directory (oldest
            modification time first) under an advisory file lock.
        autoload: Warm the resident set from existing entry files
            immediately (default True; entries also load lazily on
            demand, so False only changes when the read happens).
    """

    _LOCK_NAME = ".result-cache.lock"

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        autoload: bool = True,
    ) -> None:
        super().__init__(max_bytes=max_bytes)
        self.directory = os.fspath(directory)
        self.disk_hits = 0
        self.loaded_entries = 0
        if autoload:
            self.loaded_entries = self.load()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self) -> int:
        """Warm the resident set from disk; returns entries read.

        Unreadable or foreign files are skipped — a miss recompiles,
        which is always safe.
        """
        if not os.path.isdir(self.directory):
            return 0
        read = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json") or name.startswith("."):
                continue
            key = name[: -len(".json")]
            with self._lock:
                if key in self._entries:
                    continue
            payload = self._read_file(key)
            if payload is None:
                continue
            self._insert(key, payload, count_store=False)
            read += 1
        return read

    def _read_file(self, key: str) -> bytes | None:
        try:
            with open(self._entry_path(key), "rb") as handle:
                payload = handle.read()
        except OSError:
            return None
        try:
            self._decode(payload, key, source=self._entry_path(key))
        except Exception:
            return None  # torn/foreign file: treat as a miss
        return payload

    # -- backend hooks --------------------------------------------------

    def _read_backend(self, key: str) -> bytes | None:
        payload = self._read_file(key)
        if payload is not None:
            with self._lock:
                self.disk_hits += 1
            # Freshen the mtime so the disk trim's LRU tracks real use.
            try:
                os.utime(self._entry_path(key))
            except OSError:
                pass
        return payload

    def _write_backend(self, key: str, payload: bytes) -> None:
        os.makedirs(self.directory, exist_ok=True)
        replace_into(
            lambda handle: handle.write(payload),
            self._entry_path(key),
            ".tmp",
        )
        if self.max_bytes is not None:
            self._trim_disk(protect=key)

    def _trim_disk(self, protect: str) -> None:
        """Delete oldest entry files until the directory fits the budget.

        Cross-process safe: the advisory lock serializes concurrent
        trimmers, and a file another process deleted first is simply
        skipped.
        """
        with FileLock(os.path.join(self.directory, self._LOCK_NAME)):
            entries = []
            total = 0
            for name in os.listdir(self.directory):
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(self.directory, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                entries.append((info.st_mtime, info.st_size, name))
                total += info.st_size
            entries.sort()
            for _mtime, size, name in entries:
                if total <= self.max_bytes:
                    break
                if name[: -len(".json")] == protect:
                    continue
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    continue
                total -= size

    def stats(self) -> dict:
        stats = super().stats()
        with self._lock:
            stats["disk_hits"] = self.disk_hits
            stats["loaded_entries"] = self.loaded_entries
        return stats
