"""The pass manager: run a pipeline with timing, hooks, and error context.

A :class:`PassManager` holds an ordered pass list and threads one
:class:`~repro.compiler.context.CompilationContext` through it.  For
every pass it records wall-clock twice — under the pass's name in
``context.pass_seconds`` and under the pass's ``stage`` key in
``context.stage_seconds`` (the keys `compile_circuit` has always
reported) — and invokes any registered callbacks, qiskit-style, with
``(pass_, context, elapsed_seconds)``.

Failures keep their type when they are library errors
(:class:`~repro.errors.ReproError` subclasses) and gain a note naming
the failing pass and circuit; foreign exceptions escaping a pass are
wrapped in :class:`~repro.errors.PassExecutionError` carrying the same
structured context.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence

from repro.compiler.context import CompilationContext
from repro.compiler.passes import Pass
from repro.errors import ConfigError, PassExecutionError, ReproError

PassCallback = Callable[[Pass, CompilationContext, float], None]


class PassManager:
    """Runs an ordered pass pipeline over a compilation context.

    Args:
        passes: Initial pipeline (any iterable of :class:`Pass`).
        callbacks: Hooks invoked after every successful pass with
            ``(pass_, context, elapsed_seconds)``.
        verify_ir: Debug mode — snapshot and check IR invariants around
            every pass (:mod:`repro.analysis`), raising
            :class:`~repro.errors.IRVerificationError` naming the first
            pass that broke one.  Costs extra analysis time per pass;
            off by default.
    """

    def __init__(
        self,
        passes: Iterable[Pass] = (),
        callbacks: Sequence[PassCallback] = (),
        verify_ir: bool = False,
    ) -> None:
        self.passes: list[Pass] = []
        self._callbacks: list[PassCallback] = list(callbacks)
        self.verify_ir = bool(verify_ir)
        for pass_ in passes:
            self.append(pass_)

    def append(self, pass_: Pass) -> PassManager:
        """Add a pass to the end of the pipeline (chainable)."""
        if not isinstance(pass_, Pass):
            raise ConfigError(
                f"a pipeline entry must be a Pass instance, got {pass_!r}"
            )
        self.passes.append(pass_)
        return self

    def extend(self, passes: Iterable[Pass]) -> PassManager:
        """Add several passes (chainable)."""
        for pass_ in passes:
            self.append(pass_)
        return self

    def add_callback(self, callback: PassCallback) -> PassManager:
        """Register a per-pass hook (chainable)."""
        self._callbacks.append(callback)
        return self

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def run(self, context: CompilationContext) -> CompilationContext:
        """Execute every pass in order; returns the same context."""
        verifier = None
        if self.verify_ir:
            # Imported on use: the analysis package pulls in every rule
            # pack, which the common (non-debug) path never needs.
            from repro.analysis.verifier import PipelineVerifier

            verifier = PipelineVerifier()
        for index, pass_ in enumerate(self.passes):
            context.current_pass_index = index
            if verifier is not None:
                verifier.before_pass(pass_, index, context)
            started = time.perf_counter()
            try:
                pass_.run(context)
            except ReproError as error:
                error.add_note(
                    f"[pass {index}: {pass_.name}] while compiling "
                    f"{context.circuit.name!r} under strategy "
                    f"{context.strategy_key!r}"
                )
                raise
            except Exception as error:
                raise PassExecutionError(
                    f"pass {pass_.name} (index {index}) failed on circuit "
                    f"{context.circuit.name!r} under strategy "
                    f"{context.strategy_key!r}: {error}",
                    pass_name=pass_.name,
                    pass_index=index,
                    circuit_name=context.circuit.name,
                    strategy_key=context.strategy_key,
                ) from error
            elapsed = time.perf_counter() - started
            context.pass_seconds[pass_.name] = (
                context.pass_seconds.get(pass_.name, 0.0) + elapsed
            )
            if pass_.stage is not None:
                context.stage_seconds[pass_.stage] = (
                    context.stage_seconds.get(pass_.stage, 0.0) + elapsed
                )
            for callback in self._callbacks:
                try:
                    callback(pass_, context, elapsed)
                except ReproError as error:
                    # Same contract as pass bodies: library errors keep
                    # their type and gain a locating note.
                    error.add_note(
                        f"[callback after pass {index}: {pass_.name}] while "
                        f"compiling {context.circuit.name!r} under strategy "
                        f"{context.strategy_key!r}"
                    )
                    raise
                except Exception as error:
                    # Callbacks are instrumentation; a buggy one must not
                    # escape as a bare exception with no compile context.
                    raise PassExecutionError(
                        f"callback {getattr(callback, '__name__', callback)!r} "
                        f"failed after pass {pass_.name} (index {index}) on "
                        f"circuit {context.circuit.name!r} under strategy "
                        f"{context.strategy_key!r}: {error}",
                        pass_name=pass_.name,
                        pass_index=index,
                        circuit_name=context.circuit.name,
                        strategy_key=context.strategy_key,
                    ) from error
            if verifier is not None:
                # After the callbacks: the next pass sees the context
                # exactly as verified, even if a callback mutated it.
                verifier.after_pass(pass_, index, context)
        context.current_pass_index = None
        return context
