"""The compiler's rewriting passes (paper Fig. 5, one stage per pass).

Each pass is a small object with a ``run(context)`` method that rewrites
one facet of the :class:`~repro.compiler.context.CompilationContext`:

* :class:`LowerPass` — decompose to the standard logical set
  (1-qubit rotations, CNOT, SWAP).
* :class:`DetectDiagonalsPass` — contract diagonal 2-qubit blocks
  (commutativity detection, Sec. 4.2).
* :class:`LogicalSchedulePass` — CLS or plain program order over the
  logical dependence graph.
* :class:`PlaceAndRoutePass` — recursive-bisection placement on the
  target device's coupling graph and SWAP-insertion routing.
* :class:`HandOptimizePass` — mechanical iSWAP pulse identities (the
  paper's strongest prior-art backend).
* :class:`AggregatePass` — monotonic instruction aggregation against the
  optimal-control unit (Sec. 4.3).
* :class:`FinalSchedulePass` — CLS or list scheduling with per-
  instruction pulse latencies; the makespan is Figure 9's y-axis.

Custom passes subclass :class:`Pass`, read context fields through
``context.require`` (so mis-ordered pipelines fail with a clear
:class:`~repro.errors.PassOrderingError`), and can record structured
metrics via ``context.record_metrics``.  See ``examples/custom_pass.py``.
"""

from __future__ import annotations

import abc

from repro.aggregation.aggregator import aggregate
from repro.aggregation.diagonal import detect_diagonal_blocks
from repro.aggregation.instruction import AggregatedInstruction
from repro.circuit.dag import GateDependenceGraph
from repro.compiler.context import CompilationContext
from repro.compiler.hand_opt import hand_optimize
from repro.device.device import Device
from repro.device.topology import grid_for
from repro.gates.decompositions import lower_to_standard_set
from repro.mapping.placement import initial_placement
from repro.mapping.router import route
from repro.scheduling.cls import cls_schedule
from repro.scheduling.list_scheduler import list_schedule


class Pass(abc.ABC):
    """One rewriting step over a :class:`CompilationContext`.

    Attributes:
        stage: ``CompilationResult.stage_seconds`` key this pass's
            wall-clock accrues to, or None to record only under the pass
            name in ``pass_seconds``.
        requires: Context fields this pass reads; an earlier pass (or
            context creation) must have produced them.  The static
            contract analyzer (:mod:`repro.analysis.contracts`) checks
            this at strategy-registration time, and runtime
            ``context.require`` errors cite the same metadata.
        produces: Context fields this pass fills in for later passes.
        preserves_gates: Declares that the pass rewrites *structure*
            only — it may reorder or regroup the underlying gate
            objects but never create, drop or alter them.  The
            ``verify_ir`` transition rules (REP133/REP134) only run
            across passes that declare this.
    """

    stage: str | None = None
    requires: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()
    preserves_gates: bool = False

    @property
    def name(self) -> str:
        """Display name (the class name unless overridden)."""
        return type(self).__name__

    @abc.abstractmethod
    def run(self, context: CompilationContext) -> None:
        """Rewrite the context in place."""

    def __repr__(self) -> str:
        return f"{self.name}()"


class LowerPass(Pass):
    """Decompose every gate to the standard logical set."""

    stage = "lowering"
    produces = ("nodes", "lowered_gate_count")

    def run(self, context: CompilationContext) -> None:
        lowered = lower_to_standard_set(context.circuit.gates)
        context.nodes = list(lowered)
        context.lowered_gate_count = len(lowered)
        context.record_metrics(self.name, lowered_gates=len(lowered))


class DetectDiagonalsPass(Pass):
    """Contract runs of gates forming diagonal 2-qubit blocks."""

    stage = "detection"
    requires = ("nodes",)
    produces = ("nodes",)
    preserves_gates = True

    def run(self, context: CompilationContext) -> None:
        nodes = context.require("nodes", self.name, "run LowerPass first")
        detected = detect_diagonal_blocks(nodes, context.compiler_config)
        context.nodes = detected
        context.record_metrics(
            self.name,
            blocks=sum(
                isinstance(node, AggregatedInstruction) for node in detected
            ),
        )


class LogicalSchedulePass(Pass):
    """Order the logical nodes: CLS reordering or stable program order."""

    stage = "logical_scheduling"
    requires = ("nodes",)
    produces = ("nodes", "logical_dag")
    preserves_gates = True

    def __init__(self, use_cls: bool = True) -> None:
        self.use_cls = use_cls

    def run(self, context: CompilationContext) -> None:
        nodes = context.require("nodes", self.name, "run LowerPass first")
        dag = GateDependenceGraph(
            context.circuit.num_qubits, nodes, context.checker.commute
        )
        if self.use_cls:
            order = cls_schedule(dag, context.latency).ordered_nodes()
            dag.reorder(order)
        context.logical_dag = dag
        context.nodes = dag.stable_topological_order()


class PlaceAndRoutePass(Pass):
    """Place on the target device (recursive bisection) and insert
    routing SWAPs along its coupling graph.

    Resolves the compilation target when the caller left it open: with
    no device and no topology on the context, the paper's near-square
    grid is sized to the circuit and recorded as a default-config
    :class:`~repro.device.device.Device`.
    """

    stage = "mapping"
    requires = ("nodes",)
    produces = ("device", "topology", "routing", "physical_nodes")

    def run(self, context: CompilationContext) -> None:
        nodes = context.require("nodes", self.name, "run LowerPass first")
        if context.device is None:
            topology = context.topology or grid_for(context.circuit.num_qubits)
            context.device = Device(
                topology=topology, config=context.device_config
            )
        context.topology = context.device.topology
        placement = initial_placement(context.circuit, context.topology)
        routing = route(nodes, placement)
        context.routing = routing
        context.physical_nodes = routing.nodes
        context.invalidate_physical_dag()
        context.record_metrics(self.name, swaps=routing.swap_count)


class HandOptimizePass(Pass):
    """Rewrite routed nodes with the documented iSWAP pulse identities."""

    stage = "backend"
    requires = ("physical_nodes",)
    produces = ("physical_nodes",)

    def run(self, context: CompilationContext) -> None:
        nodes = context.require(
            "physical_nodes", self.name, "run PlaceAndRoutePass first"
        )
        before = len(nodes)
        context.physical_nodes = hand_optimize(
            nodes, context.device_config, target=context.device
        )
        context.invalidate_physical_dag()
        context.record_metrics(
            self.name, nodes_before=before, nodes_after=len(context.physical_nodes)
        )


class AggregatePass(Pass):
    """Monotonic instruction aggregation over the physical DAG.

    Args:
        width_limit: Override of the context's width limit.
        max_rounds: Override of ``CompilerConfig.max_aggregation_rounds``.
    """

    stage = "backend"
    requires = ("physical_nodes", "topology")
    preserves_gates = True

    def __init__(
        self,
        width_limit: int | None = None,
        max_rounds: int | None = None,
    ) -> None:
        self.width_limit = width_limit
        self.max_rounds = max_rounds

    def run(self, context: CompilationContext) -> None:
        dag = context.ensure_physical_dag(self.name)
        width_limit = (
            self.width_limit
            if self.width_limit is not None
            else context.width_limit
        )
        max_rounds = (
            self.max_rounds
            if self.max_rounds is not None
            else context.compiler_config.max_aggregation_rounds
        )
        report = aggregate(
            dag,
            context.ocu,
            width_limit=width_limit,
            max_rounds=max_rounds,
        )
        context.aggregation_merges += report.merges
        context.record_metrics(
            self.name,
            merges=report.merges,
            rounds=report.rounds,
            improvement=report.improvement,
        )


def pipeline_prices_pulses(passes) -> bool:
    """Whether a pass list gives aggregated blocks single-pulse pricing.

    True when an :class:`AggregatePass` is present: the optimal-control
    backend then compiles each block into one optimized pulse, so the
    context's latency oracle must not price blocks as their member
    gates.  Used to derive ``pulse_backend`` for explicit pipelines.
    """
    return any(isinstance(pass_, AggregatePass) for pass_ in passes)


def strategy_pulse_backend(strategy, pipeline) -> bool:
    """Block-pricing policy for a strategy-resolved pipeline.

    A strategy declares flags and pipeline jointly, so either signal
    enables single-pulse pricing: an :class:`AggregatePass` in the
    resolved pipeline (covers registered factories diverging from the
    flags), or the strategy's ``aggregation`` flag (covers factories
    using a custom backend pass the auto-detection cannot see).
    Identical to the flag alone for every flag-driven default pipeline.
    The single definition keeps ``compile_circuit`` and the batch
    engine from diverging on the same strategy.
    """
    return pipeline_prices_pulses(pipeline) or strategy.aggregation


class FinalSchedulePass(Pass):
    """Produce the final physical schedule (CLS or list scheduling)."""

    stage = "final_scheduling"
    requires = ("physical_nodes", "topology")
    produces = ("schedule",)
    preserves_gates = True

    def __init__(self, use_cls: bool = True) -> None:
        self.use_cls = use_cls

    def run(self, context: CompilationContext) -> None:
        dag = context.ensure_physical_dag(self.name)
        if self.use_cls:
            schedule = cls_schedule(dag, context.latency)
        else:
            schedule = list_schedule(dag, context.latency)
        context.schedule = schedule
        context.record_metrics(self.name, makespan_ns=schedule.makespan)
