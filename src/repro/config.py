"""Device and compiler configuration.

The paper (Sec. 5.1) models a superconducting architecture with an XY
(iSWAP-type) coupling whose control-field limit is ``mu_max = 0.02 GHz`` and
single-qubit drive limits five times larger.  All latency numbers in the
paper are reported in nanoseconds; we keep that unit throughout.

Control fields enter the Hamiltonian as ``2*pi * mu(t) * O / 2`` for a Pauli
term ``O``, so a field held at its limit ``mu`` rotates at an angular rate of
``pi * mu`` rad/ns about ``O``.  The convenience properties
:attr:`DeviceConfig.drive_rate` and :attr:`DeviceConfig.coupling_rate`
expose ``2*pi*mu`` (rad/ns) which is the natural scale used by the analytic
latency model (see ``repro/control/latency_model.py``).

The two pulse *setup* times model the fixed per-pulse overhead (ramp-up,
ring-down, finite bandwidth) that a GRAPE-optimized pulse pays once per
instruction; they are the calibration constants that reproduce Table 1 of
the paper (CNOT 47.1 ns, SWAP 50.1 ns).  Aggregating instructions amortizes
this overhead, which is one of the three latency-reduction mechanisms the
paper attributes to optimal control.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError

TWO_PI = 2.0 * math.pi


@dataclasses.dataclass(frozen=True)
class DeviceConfig:
    """Physical parameters of the simulated superconducting device.

    Attributes:
        coupling_limit_ghz: Two-qubit XY control-field limit (paper: 0.02).
        drive_ratio: Single-qubit limit as a multiple of the coupling limit
            (paper: 5).
        setup_time_2q_ns: Fixed pulse overhead of an instruction that uses
            at least one coupling field.
        setup_time_1q_ns: Fixed pulse overhead of a single-qubit-only pulse.
        t1_us: Relaxation time used by the decoherence model (microseconds).
        t2_us: Dephasing time used by the decoherence model (microseconds).
    """

    coupling_limit_ghz: float = 0.02
    drive_ratio: float = 5.0
    setup_time_2q_ns: float = 33.0
    setup_time_1q_ns: float = 2.1
    t1_us: float = 50.0
    t2_us: float = 30.0

    def __post_init__(self) -> None:
        if self.coupling_limit_ghz <= 0:
            raise ConfigError("coupling_limit_ghz must be positive")
        if self.drive_ratio <= 0:
            raise ConfigError("drive_ratio must be positive")
        if self.setup_time_2q_ns < 0 or self.setup_time_1q_ns < 0:
            raise ConfigError("setup times must be non-negative")
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ConfigError("decoherence times must be positive")

    @property
    def drive_limit_ghz(self) -> float:
        """Single-qubit control-field limit in GHz."""
        return self.coupling_limit_ghz * self.drive_ratio

    @property
    def coupling_rate(self) -> float:
        """Angular rate ``2*pi*mu_max`` of the coupling field (rad/ns)."""
        return TWO_PI * self.coupling_limit_ghz

    @property
    def drive_rate(self) -> float:
        """Angular rate ``2*pi*mu_1q`` of the drive fields (rad/ns)."""
        return TWO_PI * self.drive_limit_ghz


@dataclasses.dataclass(frozen=True)
class CompilerConfig:
    """Knobs of the aggregated-instruction compiler.

    Attributes:
        max_instruction_width: Largest number of qubits the optimal-control
            unit accepts (paper: 10).
        fidelity_threshold: GRAPE convergence target for pulse synthesis.
        grape_dt_ns: Time-step of the piecewise-constant GRAPE controls.
        diagonal_block_width: Width (in qubits) of the blocks searched by
            the diagonal-unitary commutativity detector (paper Sec. 4.2: 2).
        diagonal_block_depth: Longest run of gates considered when searching
            a diagonal block (paper: "typically no longer than 10 gates").
        max_aggregation_rounds: Safety cap on the aggregate/re-latency
            loop, honored by ``AggregatePass``.  The default is far above
            any observed round count, so the loop effectively runs until
            the GDG converges (the paper's behavior); lower it to ablate
            partial aggregation.
        exact_commutation_qubits: Largest joint support (in qubits) for
            which commutation is decided by explicitly comparing ``AB`` and
            ``BA``; larger pairs fall back to the conservative
            disjoint-or-both-diagonal rule.
    """

    max_instruction_width: int = 10
    fidelity_threshold: float = 0.999
    grape_dt_ns: float = 0.5
    diagonal_block_width: int = 2
    diagonal_block_depth: int = 10
    max_aggregation_rounds: int = 10_000
    exact_commutation_qubits: int = 4

    def __post_init__(self) -> None:
        if self.max_instruction_width < 2:
            raise ConfigError("max_instruction_width must be at least 2")
        if not 0.0 < self.fidelity_threshold <= 1.0:
            raise ConfigError("fidelity_threshold must be in (0, 1]")
        if self.grape_dt_ns <= 0:
            raise ConfigError("grape_dt_ns must be positive")
        if self.diagonal_block_width < 2:
            raise ConfigError("diagonal_block_width must be at least 2")
        if self.diagonal_block_depth < 1:
            raise ConfigError("diagonal_block_depth must be at least 1")
        if self.max_aggregation_rounds < 1:
            raise ConfigError("max_aggregation_rounds must be at least 1")
        if self.exact_commutation_qubits < 2:
            raise ConfigError("exact_commutation_qubits must be at least 2")


DEFAULT_DEVICE = DeviceConfig()
DEFAULT_COMPILER = CompilerConfig()
