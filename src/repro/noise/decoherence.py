"""First-order decoherence model: output fidelity decays with latency.

The paper's central motivation (Sec. 1) is that "output fidelity decays
at least exponentially with latency".  We model each qubit as decohering
with the combined rate ``Gamma = 1/T1 + 1/T2`` while the computation
runs, giving the standard first-order estimate::

    F(T) = exp(-Gamma * sum_q T_q)

where ``T_q`` is how long qubit ``q`` must stay coherent (the schedule
makespan for every active qubit).  The absolute numbers are crude, but
the *ratio* between two schedules of the same circuit — which is what
the latency-reduction argument needs — only depends on the makespans.
"""

from __future__ import annotations

import math

from repro.config import DeviceConfig, DEFAULT_DEVICE
from repro.errors import ConfigError

_NS_PER_US = 1000.0


def _decoherence_rate_per_ns(device: DeviceConfig) -> float:
    return (1.0 / device.t1_us + 1.0 / device.t2_us) / _NS_PER_US


def circuit_survival_probability(
    latency_ns: float,
    num_qubits: int,
    device: DeviceConfig = DEFAULT_DEVICE,
) -> float:
    """Probability that no qubit decoheres during the computation."""
    if latency_ns < 0:
        raise ConfigError("latency must be non-negative")
    if num_qubits < 1:
        raise ConfigError("need at least one qubit")
    rate = _decoherence_rate_per_ns(device)
    return math.exp(-rate * latency_ns * num_qubits)


def schedule_survival_probability(
    schedule,
    device: DeviceConfig = DEFAULT_DEVICE,
) -> float:
    """Survival probability of a schedule's active qubits.

    Every qubit touched by at least one operation must stay coherent for
    the full makespan (idle qubits still decohere while they wait).
    """
    active: set[int] = set()
    for operation in schedule.operations:
        active.update(operation.node.qubits)
    if not active:
        return 1.0
    return circuit_survival_probability(
        schedule.makespan, len(active), device
    )


def speedup_fidelity_gain(
    baseline_latency_ns: float,
    optimized_latency_ns: float,
    num_qubits: int,
    device: DeviceConfig = DEFAULT_DEVICE,
) -> float:
    """Multiplicative output-fidelity gain from a latency reduction."""
    baseline = circuit_survival_probability(
        baseline_latency_ns, num_qubits, device
    )
    optimized = circuit_survival_probability(
        optimized_latency_ns, num_qubits, device
    )
    if baseline <= 0:
        return math.inf
    return optimized / baseline
