"""First-order decoherence model: output fidelity decays with latency.

The paper's central motivation (Sec. 1) is that "output fidelity decays
at least exponentially with latency".  We model each qubit as decohering
with the combined rate ``Gamma = 1/T1 + 1/T2`` while the computation
runs, giving the standard first-order estimate::

    F(T) = exp(-Gamma * sum_q T_q)

where ``T_q`` is how long qubit ``q`` must stay coherent (the schedule
makespan for every active qubit).  The absolute numbers are crude, but
the *ratio* between two schedules of the same circuit — which is what
the latency-reduction argument needs — only depends on the makespans.
"""

from __future__ import annotations

import math

from repro.config import DeviceConfig, DEFAULT_DEVICE
from repro.device.device import Device
from repro.errors import ConfigError

_NS_PER_US = 1000.0


def _decoherence_rate_per_ns(device: DeviceConfig) -> float:
    return (1.0 / device.t1_us + 1.0 / device.t2_us) / _NS_PER_US


def qubit_decoherence_rate_per_ns(device: Device, qubit: int) -> float:
    """Combined ``1/T1 + 1/T2`` rate of one physical qubit (per ns).

    Resolves the device's per-qubit overrides; qubits without one decay
    at the homogeneous baseline rate.
    """
    return (
        1.0 / device.t1_of(qubit) + 1.0 / device.t2_of(qubit)
    ) / _NS_PER_US


def circuit_survival_probability(
    latency_ns: float,
    num_qubits: int,
    device: DeviceConfig = DEFAULT_DEVICE,
) -> float:
    """Probability that no qubit decoheres during the computation."""
    if latency_ns < 0:
        raise ConfigError("latency must be non-negative")
    if num_qubits < 1:
        raise ConfigError("need at least one qubit")
    rate = _decoherence_rate_per_ns(device)
    return math.exp(-rate * latency_ns * num_qubits)


def schedule_survival_probability(
    schedule,
    device: DeviceConfig | Device = DEFAULT_DEVICE,
) -> float:
    """Survival probability of a schedule's active qubits.

    Every qubit touched by at least one operation must stay coherent for
    the full makespan (idle qubits still decohere while they wait).

    With a full :class:`~repro.device.device.Device`, each active qubit
    decays at its *own* combined rate (per-qubit ``t1_us``/``t2_us``
    overrides); schedules over physical qubits can therefore distinguish
    a mapping that parks work on a short-lived qubit from one that
    avoids it.
    """
    active: set[int] = set()
    for operation in schedule.operations:
        active.update(operation.node.qubits)
    if not active:
        return 1.0
    if isinstance(device, Device):
        if schedule.makespan < 0:
            raise ConfigError("latency must be non-negative")
        total_rate = sum(
            qubit_decoherence_rate_per_ns(device, qubit) for qubit in active
        )
        return math.exp(-total_rate * schedule.makespan)
    return circuit_survival_probability(
        schedule.makespan, len(active), device
    )


def speedup_fidelity_gain(
    baseline_latency_ns: float,
    optimized_latency_ns: float,
    num_qubits: int,
    device: DeviceConfig = DEFAULT_DEVICE,
) -> float:
    """Multiplicative output-fidelity gain from a latency reduction."""
    baseline = circuit_survival_probability(
        baseline_latency_ns, num_qubits, device
    )
    optimized = circuit_survival_probability(
        optimized_latency_ns, num_qubits, device
    )
    if baseline <= 0:
        return math.inf
    return optimized / baseline
