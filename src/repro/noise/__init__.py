"""Decoherence modeling: why latency reduction matters."""

from repro.noise.decoherence import (
    circuit_survival_probability,
    schedule_survival_probability,
    speedup_fidelity_gain,
)

__all__ = [
    "circuit_survival_probability",
    "schedule_survival_probability",
    "speedup_fidelity_gain",
]
