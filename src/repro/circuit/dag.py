"""The gate-dependence graph (GDG) with commutation groups (paper Sec. 3.3).

Representation
--------------
The GDG stores, for every qubit, the *ordered* list of nodes acting on it
(the execution order chosen so far) plus that list's partition into
*commutation groups*: maximal runs of consecutive nodes that pairwise
commute.  Nodes in the same group on every shared qubit can be reordered
freely; nodes in consecutive groups can be made adjacent (the parent can
always be scheduled last in its group and the child first in its group,
because group members mutually commute).

Timing edges are the per-qubit chains: consecutive nodes on a qubit cannot
overlap in time even when they commute, because they share control
hardware.  The makespan of the current order is therefore the longest path
through the chain DAG with node weights given by a latency function —
schedulers improve the makespan by *reordering* within the freedom the
commutation groups describe, and instruction aggregation *merges* adjacent
nodes.

Implementation notes: adjacency is kept as per-qubit prev/next links and
updated locally on merges; commutation groups are recomputed lazily per
qubit (the aggregator executes hundreds of merges between group queries).
Nodes are any objects exposing ``qubits``, ``is_diagonal`` and
``signature`` and hashable by identity (:class:`~repro.gates.gate.Gate`
and aggregated instructions both qualify).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence

from repro.errors import CircuitError, SchedulingError

CommuteFn = Callable[[object, object], bool]


class GateDependenceGraph:
    """Commutation-aware dependence structure over an ordered node list."""

    def __init__(
        self,
        num_qubits: int,
        nodes: Iterable,
        commute_fn: CommuteFn,
    ) -> None:
        self.num_qubits = int(num_qubits)
        self.commute_fn = commute_fn
        self.nodes: list = list(nodes)
        for node in self.nodes:
            if any(q < 0 or q >= self.num_qubits for q in node.qubits):
                raise CircuitError(f"{node} exceeds register width {num_qubits}")
        self._qubit_order: dict[int, list] = {q: [] for q in range(self.num_qubits)}
        for node in self.nodes:
            for q in node.qubits:
                self._qubit_order[q].append(node)
        self._prev: dict[int, dict[int, object]] = {}
        self._next: dict[int, dict[int, object]] = {}
        for q in range(self.num_qubits):
            self._relink(q)
        self._groups: dict[int, list[list]] = {}
        self._group_of: dict[int, dict[int, int]] = {}
        self._groups_dirty: set[int] = set(range(self.num_qubits))

    @classmethod
    def from_circuit(cls, circuit, checker) -> GateDependenceGraph:
        """Build the GDG of a circuit using a commutation checker."""
        return cls(circuit.num_qubits, circuit.gates, checker.commute)

    # ------------------------------------------------------------------
    # Structure queries

    def qubit_sequence(self, qubit: int) -> list:
        """Nodes acting on ``qubit`` in current execution order."""
        return list(self._qubit_order[qubit])

    def commutation_groups(self, qubit: int) -> list[list]:
        """The qubit's ordered partition into commutation groups."""
        return [list(group) for group in self._groups_for(qubit)]

    def group_view(self, qubit: int) -> list[list]:
        """The live (no-copy) commutation groups on ``qubit``.

        The hot-path form of :meth:`commutation_groups`: callers must
        not mutate the lists and must re-fetch after any merge/reorder
        (group recomputation replaces them)."""
        return self._groups_for(qubit)

    def group_index(self, node, qubit: int) -> int:
        """Index of the commutation group containing ``node`` on ``qubit``."""
        self._groups_for(qubit)
        try:
            return self._group_of[qubit][id(node)]
        except KeyError:
            raise SchedulingError(
                f"{node} does not act on qubit {qubit}"
            ) from None

    def same_group(self, a, b, qubit: int) -> bool:
        """True when both nodes share a commutation group on ``qubit``."""
        return self.group_index(a, qubit) == self.group_index(b, qubit)

    def commute_nodes(self, a, b) -> bool:
        """Paper rule: two nodes commute iff they are in the same
        commutation group on every qubit they share."""
        shared = set(a.qubits) & set(b.qubits)
        if not shared:
            return True
        return all(self.same_group(a, b, q) for q in shared)

    def predecessors(self, node) -> list:
        """Immediate timing predecessors (previous node on each qubit)."""
        result: list = []
        seen: set[int] = set()
        for q in node.qubits:
            predecessor = self._prev[q].get(id(node))
            if predecessor is not None and id(predecessor) not in seen:
                seen.add(id(predecessor))
                result.append(predecessor)
        return result

    def successors(self, node) -> list:
        """Immediate timing successors (next node on each qubit)."""
        result: list = []
        seen: set[int] = set()
        for q in node.qubits:
            successor = self._next[q].get(id(node))
            if successor is not None and id(successor) not in seen:
                seen.add(id(successor))
                result.append(successor)
        return result

    def source_nodes(self) -> list:
        """Nodes with no timing predecessor."""
        prev_maps = self._prev
        return [
            node
            for node in self.nodes
            if not any(id(node) in prev_maps[q] for q in node.qubits)
        ]

    def chain_prev(self, qubit: int) -> dict[int, object]:
        """Read-only chain links: ``id(node)`` -> previous node on ``qubit``.

        The live link map, *not* a copy — hot paths (aggregation timing,
        schedulers) walk it without allocating per-node predecessor
        lists.  Callers must not mutate it, and must re-fetch after any
        ``merge``/``reorder`` (both relink the chains).
        """
        return self._prev[qubit]

    def chain_next(self, qubit: int) -> dict[int, object]:
        """Read-only chain links: ``id(node)`` -> next node on ``qubit``
        (same contract as :meth:`chain_prev`)."""
        return self._next[qubit]

    def group_lookup(self, qubit: int) -> dict[int, int]:
        """Read-only map ``id(node)`` -> commutation-group index on
        ``qubit`` — the no-copy bulk form of :meth:`group_index`.  Stale
        after the next merge/reorder; re-fetch per round."""
        self._groups_for(qubit)
        return self._group_of[qubit]

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Timing

    def _chain_in_degrees(self) -> dict[int, int]:
        """Per-node incoming chain-edge counts (keyed by ``id(node)``).

        Every dependence edge is a per-qubit chain edge, so in-degrees
        are edge counts: a predecessor shared across several qubits is
        counted once per chain and decremented once per chain — the node
        still unblocks exactly when its last predecessor is emitted, and
        no per-node predecessor list is ever allocated.
        """
        prev_maps = self._prev
        in_degree: dict[int, int] = {}
        for node in self.nodes:
            nid = id(node)
            count = 0
            for q in node.qubits:
                if nid in prev_maps[q]:
                    count += 1
            in_degree[nid] = count
        return in_degree

    def topological_order(self) -> list:
        """Kahn topological sort; raises SchedulingError on a cycle."""
        next_maps = self._next
        in_degree = self._chain_in_degrees()
        ready = [node for node in self.nodes if in_degree[id(node)] == 0]
        order: list = []
        while ready:
            node = ready.pop()
            order.append(node)
            nid = id(node)
            for q in node.qubits:
                successor = next_maps[q].get(nid)
                if successor is not None:
                    sid = id(successor)
                    in_degree[sid] -= 1
                    if in_degree[sid] == 0:
                        ready.append(successor)
        if len(order) != len(self.nodes):
            raise SchedulingError("dependence graph contains a cycle")
        return order

    def stable_topological_order(self) -> list:
        """Topological order that follows ``self.nodes`` order where legal.

        Kahn's algorithm with a min-heap keyed by each node's position in
        the current node list, so the result is deterministic and stays as
        close to program order as the dependencies allow.
        """
        position = {id(node): index for index, node in enumerate(self.nodes)}
        next_maps = self._next
        in_degree = self._chain_in_degrees()
        heap = [
            (position[id(node)], id(node), node)
            for node in self.nodes
            if in_degree[id(node)] == 0
        ]
        heapq.heapify(heap)
        order: list = []
        while heap:
            _, _, node = heapq.heappop(heap)
            order.append(node)
            nid = id(node)
            for q in node.qubits:
                successor = next_maps[q].get(nid)
                if successor is not None:
                    sid = id(successor)
                    in_degree[sid] -= 1
                    if in_degree[sid] == 0:
                        heapq.heappush(heap, (position[sid], sid, successor))
        if len(order) != len(self.nodes):
            raise SchedulingError("dependence graph contains a cycle")
        return order

    def asap_times(self, latency_fn: Callable[[object], float]) -> dict[int, float]:
        """Earliest start time of every node (keyed by ``id(node)``)."""
        starts: dict[int, float] = {}
        finishes: dict[int, float] = {}
        prev_maps = self._prev
        for node in self.topological_order():
            nid = id(node)
            start = 0.0
            for q in node.qubits:
                predecessor = prev_maps[q].get(nid)
                if predecessor is not None:
                    finish = finishes[id(predecessor)]
                    if finish > start:
                        start = finish
            starts[nid] = start
            finishes[nid] = start + latency_fn(node)
        return starts

    def makespan(self, latency_fn: Callable[[object], float]) -> float:
        """Total latency of the current execution order."""
        if not self.nodes:
            return 0.0
        starts = self.asap_times(latency_fn)
        return max(
            starts[id(node)] + latency_fn(node) for node in self.nodes
        )

    def critical_path(self, latency_fn: Callable[[object], float]) -> list:
        """One longest path (as a node list) through the chain DAG."""
        if not self.nodes:
            return []
        starts = self.asap_times(latency_fn)
        finish = {
            id(node): starts[id(node)] + latency_fn(node) for node in self.nodes
        }
        node = max(self.nodes, key=lambda n: finish[id(n)])
        path = [node]
        while True:
            candidates = [
                p
                for p in self.predecessors(node)
                if abs(finish[id(p)] - starts[id(node)]) < 1e-9
            ]
            if not candidates:
                break
            node = candidates[0]
            path.append(node)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Reordering (used by CLS)

    def reorder(self, new_order: Sequence) -> None:
        """Replace the execution order with ``new_order``.

        The new order must contain exactly the same node instances and,
        on every qubit, must not move a node across a commutation-group
        boundary (group indices must be non-decreasing along each qubit's
        new sequence).
        """
        if len(new_order) != len(self.nodes) or {id(n) for n in new_order} != {
            id(n) for n in self.nodes
        }:
            raise SchedulingError("reorder must permute the existing nodes")
        new_qubit_order: dict[int, list] = {
            q: [] for q in range(self.num_qubits)
        }
        for node in new_order:
            for q in node.qubits:
                new_qubit_order[q].append(node)
        for q in range(self.num_qubits):
            indices = [self.group_index(node, q) for node in new_qubit_order[q]]
            if any(b < a for a, b in zip(indices, indices[1:])):
                raise SchedulingError(
                    f"reorder moves a node across a commutation group on qubit {q}"
                )
        self.nodes = list(new_order)
        self._qubit_order = new_qubit_order
        for q in range(self.num_qubits):
            self._relink(q)
        self._groups_dirty.update(range(self.num_qubits))

    # ------------------------------------------------------------------
    # Merging (used by instruction aggregation)

    def can_merge(self, a, b) -> bool:
        """Paper Sec. 4.1 action-space test (cheap structural part).

        True when the nodes overlap and, on every shared qubit, sit in
        the same or in consecutive commutation groups (so they can be
        made adjacent by a legal reorder).  The full test additionally
        requires acyclicity after the merge, which :meth:`merge` checks
        transactionally.
        """
        shared = set(a.qubits) & set(b.qubits)
        if not shared:
            return False
        for q in shared:
            if abs(self.group_index(a, q) - self.group_index(b, q)) > 1:
                return False
        return True

    def merge(
        self,
        a,
        b,
        merged,
        validated: bool = False,
        check_cycles: bool = True,
    ) -> None:
        """Replace nodes ``a`` and ``b`` with ``merged``.

        Args:
            validated: Skip the structural :meth:`can_merge` test (the
                caller already established it).
            check_cycles: Run the transactional acyclicity check.  The
                aggregator pre-checks with an est-pruned reachability
                search and passes False; external callers should keep
                the default.

        Raises SchedulingError (and leaves the graph unchanged) when the
        merge is structurally invalid or would create a cycle.
        """
        if not validated and not self.can_merge(a, b):
            raise SchedulingError(f"cannot merge {a} and {b}: not adjacent-able")
        expected = set(a.qubits) | set(b.qubits)
        if set(merged.qubits) != expected:
            raise SchedulingError(
                f"merged node must act on {sorted(expected)}, "
                f"got {sorted(merged.qubits)}"
            )
        saved_orders = {q: list(self._qubit_order[q]) for q in expected}
        saved_nodes = list(self.nodes)
        try:
            self._splice_merge(a, b, merged)
            if check_cycles:
                self.topological_order()
        except SchedulingError:
            self._qubit_order.update(saved_orders)
            self.nodes = saved_nodes
            for q in expected:
                self._relink(q)
                self._groups_dirty.add(q)
            raise

    def _splice_merge(self, a, b, merged) -> None:
        shared = set(a.qubits) & set(b.qubits)
        probe = next(iter(shared))
        first, second = (a, b)
        if self._position(probe, a) > self._position(probe, b):
            first, second = (b, a)
        # The merged node sits at the *commutation-group boundary* on
        # every shared qubit: in-between members of ``first``'s group
        # commute with ``first`` and slide before the merged node, but
        # members of ``second``'s group only commute with ``second`` —
        # sliding them before the merged node (which contains ``first``'s
        # gates) would silently reorder non-commuting operations, so
        # they must slide after it.  Placement is decided for all shared
        # qubits before any sequence mutates (group indices are
        # positional and go stale mid-splice).
        placements: dict[int, list] = {}
        for q in shared:
            sequence = self._qubit_order[q]
            first_at = self._position(q, first)
            second_at = self._position(q, second)
            between = sequence[first_at + 1 : second_at]
            boundary = self.group_index(second, q)
            if between and self.group_index(first, q) != boundary:
                before = [
                    m for m in between if self.group_index(m, q) < boundary
                ]
                after = [
                    m for m in between if self.group_index(m, q) >= boundary
                ]
            else:
                # Same group: everything in between commutes with both
                # nodes, so the historical placement (all before) stands.
                before, after = list(between), []
            placements[q] = (
                sequence[:first_at]
                + before
                + [merged]
                + after
                + sequence[second_at + 1 :]
            )
        for q in set(a.qubits) | set(b.qubits):
            if q in shared:
                self._qubit_order[q] = placements[q]
            else:
                sequence = self._qubit_order[q]
                owner = a if q in a.qubits else b
                index = next(
                    i for i, node in enumerate(sequence) if node is owner
                )
                sequence[index] = merged
            self._relink(q)
            self._groups_dirty.add(q)
        new_nodes = []
        for node in self.nodes:
            if node is first:
                continue
            if node is second:
                new_nodes.append(merged)
            else:
                new_nodes.append(node)
        self.nodes = new_nodes

    # ------------------------------------------------------------------
    # Internals

    def _position(self, qubit: int, node) -> int:
        for index, candidate in enumerate(self._qubit_order[qubit]):
            if candidate is node:
                return index
        raise SchedulingError(f"{node} does not act on qubit {qubit}")

    def _relink(self, qubit: int) -> None:
        """Rebuild the prev/next chain links of one qubit."""
        sequence = self._qubit_order[qubit]
        prev_map: dict[int, object] = {}
        next_map: dict[int, object] = {}
        previous = None
        for node in sequence:
            if previous is not None:
                prev_map[id(node)] = previous
                next_map[id(previous)] = node
            previous = node
        self._prev[qubit] = prev_map
        self._next[qubit] = next_map

    def _groups_for(self, qubit: int) -> list[list]:
        if qubit in self._groups_dirty or qubit not in self._groups:
            groups = self._compute_groups(self._qubit_order[qubit])
            self._groups[qubit] = groups
            lookup: dict[int, int] = {}
            for index, group in enumerate(groups):
                for member in group:
                    lookup[id(member)] = index
            self._group_of[qubit] = lookup
            self._groups_dirty.discard(qubit)
        return self._groups[qubit]

    def _compute_groups(self, sequence: list) -> list[list]:
        groups: list[list] = []
        for node in sequence:
            if groups and all(
                self.commute_fn(node, member) for member in groups[-1]
            ):
                groups[-1].append(node)
            else:
                groups.append([node])
        return groups
