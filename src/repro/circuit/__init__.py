"""Circuit IR: gate lists, QASM dialect, commutation analysis, the GDG."""

from repro.circuit.circuit import Circuit
from repro.circuit.commutation import CommutationChecker
from repro.circuit.dag import GateDependenceGraph
from repro.circuit.qasm import circuit_to_qasm, parse_qasm

__all__ = [
    "Circuit",
    "CommutationChecker",
    "GateDependenceGraph",
    "circuit_to_qasm",
    "parse_qasm",
]
