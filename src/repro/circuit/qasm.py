"""A small QASM-style text dialect for circuits.

Grammar (one statement per line, ``#`` starts a comment)::

    qubits 5
    h q0
    cnot q0, q1
    rz(0.5) q2
    swap q1, q3

Qubit tokens are either ``q<N>`` or bare integers.  Gate names are the
mnemonics understood by :func:`repro.gates.library.gate_from_name`
(case-insensitive, including aliases like ``cx``).
"""

from __future__ import annotations

import re

from repro.circuit.circuit import Circuit
from repro.errors import QasmError
from repro.gates.library import gate_from_name

_GATE_LINE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<qubits>.+)$"
)


def circuit_to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to the text dialect."""
    lines = [f"# {circuit.name}", f"qubits {circuit.num_qubits}"]
    for gate in circuit.gates:
        params = ""
        if gate.params:
            params = "(" + ", ".join(repr(p) for p in gate.params) + ")"
        qubits = ", ".join(f"q{q}" for q in gate.qubits)
        lines.append(f"{gate.name.lower()}{params} {qubits}")
    return "\n".join(lines) + "\n"


def parse_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse the text dialect into a :class:`Circuit`."""
    circuit: Circuit | None = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.lower().startswith("qubits"):
            if circuit is not None:
                raise QasmError(f"line {line_number}: duplicate qubits directive")
            parts = line.split()
            if len(parts) != 2 or not parts[1].isdigit():
                raise QasmError(f"line {line_number}: malformed qubits directive")
            circuit = Circuit(int(parts[1]), name=name)
            continue
        if circuit is None:
            raise QasmError(
                f"line {line_number}: gate before the qubits directive"
            )
        circuit.append(_parse_gate_line(line, line_number))
    if circuit is None:
        raise QasmError("no qubits directive found")
    return circuit


def _parse_gate_line(line: str, line_number: int):
    match = _GATE_LINE.match(line)
    if not match:
        raise QasmError(f"line {line_number}: cannot parse {line!r}")
    name = match.group("name")
    params: list[float] = []
    if match.group("params") is not None:
        for token in match.group("params").split(","):
            token = token.strip()
            if not token:
                raise QasmError(f"line {line_number}: empty parameter")
            try:
                params.append(float(token))
            except ValueError:
                raise QasmError(
                    f"line {line_number}: bad parameter {token!r}"
                ) from None
    qubits: list[int] = []
    for token in match.group("qubits").split(","):
        token = token.strip()
        if token.lower().startswith("q"):
            token = token[1:]
        if not token.lstrip("-").isdigit():
            raise QasmError(f"line {line_number}: bad qubit token {token!r}")
        qubits.append(int(token))
    try:
        return gate_from_name(name, qubits, params)
    except Exception as error:
        raise QasmError(f"line {line_number}: {error}") from error
